//! Screen and column configuration.
//!
//! A *screen* is an ordered list of columns; numeric columns are defined by
//! metric [`Expr`]essions over counter deltas, so users can add any ratio
//! their hardware can count (§2.2: "The collected events and displayed
//! ratios are fully customizable"). The default screen reproduces the
//! paper's Figure 1 layout:
//!
//! ```text
//! PID USER %CPU Mcycle Minst IPC DMIS COMMAND
//! ```
//!
//! Screens can be built programmatically or parsed from a small text format
//! (one column per line):
//!
//! ```text
//! screen "default"
//! col PID
//! col USER
//! col %CPU
//! col "Mcycle" 8 M  = CYCLES
//! col "Minst"  8 M  = INSTRUCTIONS
//! col "IPC"    5 .2 = INSTRUCTIONS / CYCLES
//! col "DMIS"   5 .1 = 100 * CACHE_MISSES / INSTRUCTIONS
//! col COMMAND
//! ```

use std::collections::BTreeSet;

use tiptop_machine::pmu::HwEvent;

use crate::events::parse_event;
use crate::expr::Expr;

/// How a numeric cell is formatted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumFormat {
    /// Fixed decimals, e.g. `1.97`.
    Float(u8),
    /// Integer.
    Int,
    /// Divide by 10⁶ and print as integer — the paper's `Mcycle`/`Minst`.
    Millions,
}

impl NumFormat {
    pub fn render(self, v: f64) -> String {
        if v.is_nan() || v.is_infinite() {
            return "-".to_string();
        }
        match self {
            NumFormat::Float(d) => format!("{v:.*}", d as usize),
            NumFormat::Int => format!("{:.0}", v),
            NumFormat::Millions => format!("{:.0}", v / 1e6),
        }
    }
}

/// What a column shows.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnKind {
    Pid,
    User,
    CpuPct,
    State,
    /// PU the task last ran on.
    Processor,
    Comm,
    /// A metric over counter deltas.
    Metric {
        expr: Expr,
        format: NumFormat,
    },
}

/// One column of a screen.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnSpec {
    pub header: String,
    pub width: usize,
    pub kind: ColumnKind,
}

impl ColumnSpec {
    pub fn metric(
        header: impl Into<String>,
        width: usize,
        format: NumFormat,
        expr_src: &str,
    ) -> Result<ColumnSpec, String> {
        let expr = Expr::parse(expr_src).map_err(|e| e.to_string())?;
        Ok(ColumnSpec {
            header: header.into(),
            width,
            kind: ColumnKind::Metric { expr, format },
        })
    }
}

/// A complete screen.
#[derive(Clone, Debug, PartialEq)]
pub struct ScreenConfig {
    pub name: String,
    pub columns: Vec<ColumnSpec>,
}

impl ScreenConfig {
    /// The paper's Figure 1 screen.
    pub fn default_screen() -> ScreenConfig {
        ScreenConfig {
            name: "default".to_string(),
            columns: vec![
                ColumnSpec {
                    header: "PID".into(),
                    width: 6,
                    kind: ColumnKind::Pid,
                },
                ColumnSpec {
                    header: "USER".into(),
                    width: 8,
                    kind: ColumnKind::User,
                },
                ColumnSpec {
                    header: "%CPU".into(),
                    width: 5,
                    kind: ColumnKind::CpuPct,
                },
                ColumnSpec::metric("Mcycle", 8, NumFormat::Millions, "CYCLES").unwrap(),
                ColumnSpec::metric("Minst", 8, NumFormat::Millions, "INSTRUCTIONS").unwrap(),
                ColumnSpec::metric("IPC", 5, NumFormat::Float(2), "INSTRUCTIONS / CYCLES").unwrap(),
                ColumnSpec::metric(
                    "DMIS",
                    5,
                    NumFormat::Float(1),
                    "100 * CACHE_MISSES / INSTRUCTIONS",
                )
                .unwrap(),
                ColumnSpec {
                    header: "COMMAND".into(),
                    width: 12,
                    kind: ColumnKind::Comm,
                },
            ],
        }
    }

    /// The §3.1 screen: default plus the `%ASS` FP-assist column the author
    /// added to trace the R anomaly ("We added a new column to tiptop in
    /// order to trace simultaneously IPC and FP assist events").
    pub fn fp_assist_screen() -> ScreenConfig {
        let mut s = Self::default_screen();
        s.name = "fp-assist".to_string();
        let comm = s.columns.pop().unwrap();
        s.columns.push(
            ColumnSpec::metric(
                "%ASS",
                6,
                NumFormat::Float(2),
                "100 * FP_ASSIST / INSTRUCTIONS",
            )
            .unwrap(),
        );
        s.columns.push(comm);
        s
    }

    /// A memory-hierarchy screen used by the §3.4 interference experiments.
    pub fn cache_screen() -> ScreenConfig {
        ScreenConfig {
            name: "cache".to_string(),
            columns: vec![
                ColumnSpec {
                    header: "PID".into(),
                    width: 6,
                    kind: ColumnKind::Pid,
                },
                ColumnSpec {
                    header: "P".into(),
                    width: 2,
                    kind: ColumnKind::Processor,
                },
                ColumnSpec {
                    header: "%CPU".into(),
                    width: 5,
                    kind: ColumnKind::CpuPct,
                },
                ColumnSpec::metric("IPC", 5, NumFormat::Float(2), "INSTRUCTIONS / CYCLES").unwrap(),
                ColumnSpec::metric(
                    "L2/100",
                    7,
                    NumFormat::Float(2),
                    "100 * L2_MISSES / INSTRUCTIONS",
                )
                .unwrap(),
                ColumnSpec::metric(
                    "L3/100",
                    7,
                    NumFormat::Float(2),
                    "100 * CACHE_MISSES / INSTRUCTIONS",
                )
                .unwrap(),
                ColumnSpec {
                    header: "COMMAND".into(),
                    width: 12,
                    kind: ColumnKind::Comm,
                },
            ],
        }
    }

    /// Hardware events all metric columns need (the set of counters the
    /// collector opens per task).
    pub fn required_events(&self) -> Vec<HwEvent> {
        let mut set = BTreeSet::new();
        for col in &self.columns {
            if let ColumnKind::Metric { expr, .. } = &col.kind {
                for ident in expr.idents() {
                    if let Some(e) = parse_event(&ident) {
                        set.insert(e.index());
                    }
                    // Non-event identifiers (DELTA_T, %CPU, TIME) are
                    // builtins supplied by the app, not counters.
                }
            }
        }
        set.into_iter()
            .map(|i| tiptop_machine::pmu::ALL_EVENTS[i])
            .collect()
    }

    /// Parse the text format described in the module docs.
    pub fn parse(text: &str) -> Result<ScreenConfig, String> {
        let mut name = "custom".to_string();
        let mut columns = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |m: String| format!("line {}: {m}", lineno + 1);
            if let Some(rest) = line.strip_prefix("screen") {
                name = rest.trim().trim_matches('"').to_string();
                continue;
            }
            let rest = line
                .strip_prefix("col")
                .ok_or_else(|| err(format!("expected 'col' or 'screen', got '{line}'")))?
                .trim();
            // Builtin columns.
            let builtin = match rest {
                "PID" => Some((ColumnKind::Pid, 6)),
                "USER" => Some((ColumnKind::User, 8)),
                "%CPU" => Some((ColumnKind::CpuPct, 5)),
                "STATE" => Some((ColumnKind::State, 2)),
                "P" | "PROCESSOR" => Some((ColumnKind::Processor, 2)),
                "COMMAND" => Some((ColumnKind::Comm, 12)),
                _ => None,
            };
            if let Some((kind, width)) = builtin {
                columns.push(ColumnSpec {
                    header: rest.to_string(),
                    width,
                    kind,
                });
                continue;
            }
            // Metric columns: "HDR" WIDTH FMT = EXPR
            let (head, expr_src) = rest
                .split_once('=')
                .ok_or_else(|| err("metric column needs '= expr'".to_string()))?;
            let mut parts = head.split_whitespace();
            let header = parts
                .next()
                .ok_or_else(|| err("missing header".to_string()))?
                .trim_matches('"')
                .to_string();
            let width: usize = parts
                .next()
                .ok_or_else(|| err("missing width".to_string()))?
                .parse()
                .map_err(|_| err("bad width".to_string()))?;
            let fmt_s = parts
                .next()
                .ok_or_else(|| err("missing format".to_string()))?;
            let format = if fmt_s == "M" {
                NumFormat::Millions
            } else if fmt_s == "i" {
                NumFormat::Int
            } else if let Some(d) = fmt_s.strip_prefix('.') {
                NumFormat::Float(d.parse().map_err(|_| err("bad decimals".to_string()))?)
            } else {
                return Err(err(format!("unknown format '{fmt_s}' (use M, i, or .N)")));
            };
            let expr = Expr::parse(expr_src.trim()).map_err(|e| err(e.to_string()))?;
            columns.push(ColumnSpec {
                header,
                width,
                kind: ColumnKind::Metric { expr, format },
            });
        }
        if columns.is_empty() {
            return Err("no columns defined".to_string());
        }
        Ok(ScreenConfig { name, columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_screen_matches_fig1_layout() {
        let s = ScreenConfig::default_screen();
        let headers: Vec<&str> = s.columns.iter().map(|c| c.header.as_str()).collect();
        assert_eq!(
            headers,
            vec!["PID", "USER", "%CPU", "Mcycle", "Minst", "IPC", "DMIS", "COMMAND"]
        );
    }

    #[test]
    fn required_events_cover_all_metric_columns() {
        let s = ScreenConfig::default_screen();
        let evs = s.required_events();
        assert!(evs.contains(&HwEvent::Cycles));
        assert!(evs.contains(&HwEvent::Instructions));
        assert!(evs.contains(&HwEvent::CacheMisses));
        assert_eq!(evs.len(), 3, "no spurious counters: {evs:?}");
    }

    #[test]
    fn fp_screen_adds_assist_counter() {
        let s = ScreenConfig::fp_assist_screen();
        assert!(s.required_events().contains(&HwEvent::FpAssists));
        assert_eq!(
            s.columns.last().unwrap().header,
            "COMMAND",
            "COMMAND stays last"
        );
    }

    #[test]
    fn formats_render() {
        assert_eq!(NumFormat::Float(2).render(1.966), "1.97");
        assert_eq!(NumFormat::Millions.render(26_456_000_000.0), "26456");
        assert_eq!(NumFormat::Int.render(42.4), "42");
        assert_eq!(NumFormat::Float(2).render(f64::NAN), "-");
        assert_eq!(NumFormat::Float(2).render(f64::INFINITY), "-");
    }

    #[test]
    fn parse_round_trips_the_default_layout() {
        let text = r#"
screen "default"
col PID
col USER
col %CPU
col "Mcycle" 8 M  = CYCLES
col "Minst"  8 M  = INSTRUCTIONS
col "IPC"    5 .2 = INSTRUCTIONS / CYCLES
col "DMIS"   5 .1 = 100 * CACHE_MISSES / INSTRUCTIONS
col COMMAND
"#;
        let s = ScreenConfig::parse(text).unwrap();
        assert_eq!(s, ScreenConfig::default_screen());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(ScreenConfig::parse("nonsense").is_err());
        assert!(
            ScreenConfig::parse("col \"X\" 5 .2").is_err(),
            "missing expr"
        );
        assert!(
            ScreenConfig::parse("col \"X\" w .2 = 1").is_err(),
            "bad width"
        );
        assert!(
            ScreenConfig::parse("col \"X\" 5 q = 1").is_err(),
            "bad format"
        );
        assert!(
            ScreenConfig::parse("# only comments\n").is_err(),
            "no columns"
        );
        assert!(
            ScreenConfig::parse("col \"X\" 5 .2 = 1 +").is_err(),
            "bad expr"
        );
    }

    #[test]
    fn parse_supports_custom_raw_events() {
        let s = ScreenConfig::parse("col PID\ncol \"ASS\" 6 .2 = 100 * FP_ASSIST / INSTRUCTIONS\n")
            .unwrap();
        assert!(s.required_events().contains(&HwEvent::FpAssists));
    }
}
