//! Integration tests for the unified `Scenario`/`Monitor` session API:
//!
//! 1. Tiptop and `top` driven side-by-side through one `Scenario` agree on
//!    `%CPU` per pid (the Fig 1 cross-check — same scheduler deltas seen
//!    through two different tools).
//! 2. Timed kill/renice/pin events take effect at the scheduled instant.
//! 3. A `FrameSink` receives exactly the frames a hand-driven
//!    prime/advance/observe loop produces for an identical world.
//! 4. Property-style edge cases of `Scenario::build` (events after a kill,
//!    tag scoping across machines, zero-duration scenarios).

use tiptop_core::prelude::*;
use tiptop_kernel::prelude::*;
use tiptop_machine::access::MemoryBehavior;
use tiptop_machine::config::MachineConfig;
use tiptop_machine::exec::ExecProfile;
use tiptop_machine::topology::PuId;

fn spin(name: &str) -> Program {
    Program::endless(
        ExecProfile::builder(name)
            .base_cpi(0.8)
            .branches(0.18, 0.0)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .build(),
    )
}

/// Half-busy task: ~10 ms of work then 10 ms of sleep.
fn duty_cycle(name: &str) -> Program {
    Program::looping(vec![
        Phase::compute(
            ExecProfile::builder(name)
                .base_cpi(0.8)
                .branches(0.18, 0.0)
                .memory(MemoryBehavior::uniform(16 * 1024))
                .build(),
            38_375_000,
        ),
        Phase::sleep(SimDuration::from_millis(10)),
    ])
}

fn tiptop_1s() -> Tiptop {
    Tiptop::new(
        TiptopOptions::default().delay(SimDuration::from_secs(1)),
        ScreenConfig::default_screen(),
    )
}

#[test]
fn tiptop_and_top_agree_on_cpu_pct_side_by_side() {
    let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(4)
        .user(Uid(1), "user1")
        .spawn("busy", SpawnSpec::new("busy", Uid(1), spin("busy")))
        .spawn("half", SpawnSpec::new("half", Uid(1), duty_cycle("half")))
        .build()
        .unwrap();
    let busy = session.pid("busy").unwrap();
    let half = session.pid("half").unwrap();

    let mut tip = tiptop_1s();
    let mut top = TopView::new().delay(SimDuration::from_secs(1));

    let mut tip_frames: Vec<Frame> = Vec::new();
    let mut top_frames: Vec<Frame> = Vec::new();
    {
        let mut sink = |source: &str, frame: Frame| match source {
            "tiptop" => tip_frames.push(frame),
            "top" => top_frames.push(frame),
            other => panic!("unexpected source {other}"),
        };
        session
            .run_all(&mut [&mut tip, &mut top], 4, &mut sink)
            .unwrap();
    }

    assert_eq!(tip_frames.len(), 4);
    assert_eq!(top_frames.len(), 4);
    for (tf, of) in tip_frames.iter().zip(&top_frames) {
        assert_eq!(tf.time, of.time, "observed at the same instants");
        for pid in [busy, half] {
            let a = tf.row_for(pid).unwrap().value("%CPU").unwrap();
            let b = of.row_for(pid).unwrap().value("%CPU").unwrap();
            assert!(
                (a - b).abs() < 1e-9,
                "pid {} at t={}: tiptop {a} vs top {b}",
                pid.0,
                tf.time.as_secs_f64()
            );
        }
    }
    // Sanity: the two tasks are actually different loads.
    let last = tip_frames.last().unwrap();
    assert!(last.row_for(busy).unwrap().cpu_pct > 99.0);
    let h = last.row_for(half).unwrap().cpu_pct;
    assert!((35.0..65.0).contains(&h), "duty-cycled task ~50%, got {h}");
}

#[test]
fn timed_kill_takes_effect_at_the_scheduled_instant() {
    let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(5)
        .user(Uid(1), "user1")
        .spawn("victim", SpawnSpec::new("victim", Uid(1), spin("victim")))
        .kill_at(SimTime::from_secs(3), "victim")
        .build()
        .unwrap();
    let victim = session.pid("victim").unwrap();

    session.advance_to(SimTime::from_secs(2)).unwrap();
    assert!(session.kernel().is_alive(victim), "alive before the kill");

    session.advance_to(SimTime::from_secs(5)).unwrap();
    assert!(!session.kernel().is_alive(victim));
    let rec = session.kernel().exit_record(victim).expect("tombstone");
    assert_eq!(rec.end_time, SimTime::from_secs(3), "died exactly at t=3");
    // It computed for exactly the 3 seconds it lived.
    assert!((rec.utime.as_secs_f64() - 3.0).abs() < 0.05);
}

#[test]
fn timed_renice_takes_effect_at_the_scheduled_instant() {
    // Two CPU-bound tasks pinned to one PU share it 50/50 until t=4, when
    // one is reniced to +19 and the other starts winning ~nine tenths.
    let pin = CpuSet::single(PuId(0));
    let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(6)
        .user(Uid(1), "user1")
        .spawn("a", SpawnSpec::new("a", Uid(1), spin("a")).affinity(pin))
        .spawn("b", SpawnSpec::new("b", Uid(1), spin("b")).affinity(pin))
        .renice_at(SimTime::from_secs(4), "b", 19)
        .build()
        .unwrap();
    let a = session.pid("a").unwrap();
    let b = session.pid("b").unwrap();

    session.advance_to(SimTime::from_secs(4)).unwrap();
    let a_before = session.kernel().stat(a).unwrap().cpu_time().as_secs_f64();
    let b_before = session.kernel().stat(b).unwrap().cpu_time().as_secs_f64();
    assert!(
        (a_before / 4.0 - 0.5).abs() < 0.1,
        "fair share before: {a_before}"
    );
    assert_eq!(
        session.kernel().stat(b).unwrap().nice,
        19,
        "renice applied at t=4"
    );

    session.advance_to(SimTime::from_secs(10)).unwrap();
    let a_after = session.kernel().stat(a).unwrap().cpu_time().as_secs_f64() - a_before;
    let b_after = session.kernel().stat(b).unwrap().cpu_time().as_secs_f64() - b_before;
    assert!(
        a_after > b_after * 3.0,
        "nice 0 vs +19 after t=4 should be a lopsided split: {a_after} vs {b_after}"
    );
}

#[test]
fn frame_sink_receives_exactly_the_manually_driven_frames() {
    // Identical worlds: one driven by hand on a bare kernel through the
    // raw `Monitor` contract (prime, advance one interval, observe — the
    // loop the session API promises to reproduce), one through a Session
    // with a streaming sink. An independent oracle, not run_all vs itself.
    let mut k = Kernel::new(KernelConfig::new(MachineConfig::nehalem_w3550().noiseless()).seed(11));
    k.add_user(Uid(1), "user1");
    k.spawn(SpawnSpec::new("spin", Uid(1), spin("spin")).seed(2));
    let mut manual_tool = tiptop_1s();
    manual_tool.prime(&mut k);
    let mut manual: Vec<Frame> = Vec::new();
    for _ in 0..5 {
        k.advance(SimDuration::from_secs(1));
        manual.push(manual_tool.observe(&mut k));
    }

    let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(11)
        .user(Uid(1), "user1")
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin("spin")).seed(2))
        .build()
        .unwrap();
    let mut tool = tiptop_1s();
    let mut sink = CollectSink::new();
    session.run_all(&mut [&mut tool], 5, &mut sink).unwrap();
    let streamed = sink.into_frames();

    assert_eq!(manual.len(), streamed.len());
    for (i, (l, s)) in manual.iter().zip(&streamed).enumerate() {
        assert_eq!(l.time, SimTime::from_secs(i as u64 + 1), "one per interval");
        assert_eq!(l.time, s.time);
        assert_eq!(l.headers, s.headers);
        assert_eq!(l.rows.len(), s.rows.len());
        for (lr, sr) in l.rows.iter().zip(&s.rows) {
            assert_eq!(lr.pid, sr.pid);
            assert_eq!(lr.cells(), sr.cells(), "identical rendered cells");
            assert_eq!(lr.cpu_pct, sr.cpu_pct);
        }
    }
}

// ---------------------------------------------------------------------
// Property-style edge cases of `Scenario::build` and the event schedule.
// ---------------------------------------------------------------------

#[test]
fn events_after_a_kill_are_rejected_at_build_time() {
    // A renice scheduled after its target's scripted kill is statically
    // contradictory — build() must reject it, whatever the declaration
    // order of the events.
    let declare_orders: [&dyn Fn(Scenario) -> Scenario; 2] = [
        &|s: Scenario| {
            s.kill_at(SimTime::from_secs(2), "x")
                .renice_at(SimTime::from_secs(5), "x", 10)
        },
        &|s: Scenario| {
            s.renice_at(SimTime::from_secs(5), "x", 10)
                .kill_at(SimTime::from_secs(2), "x")
        },
    ];
    for order in declare_orders {
        let base = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .user(Uid(1), "u")
            .spawn("x", SpawnSpec::new("x", Uid(1), spin("x")));
        let err = order(base).build().unwrap_err();
        assert!(matches!(err, SessionError::InvalidScenario(_)));
        assert!(err.to_string().contains("follows its kill"), "got {err}");
    }

    // Same-instant kill-then-renice is rejected too (apply order would run
    // the renice against a zombie)...
    let err = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .user(Uid(1), "u")
        .spawn("x", SpawnSpec::new("x", Uid(1), spin("x")))
        .kill_at(SimTime::from_secs(2), "x")
        .renice_at(SimTime::from_secs(2), "x", 10)
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("follows its kill"), "got {err}");

    // ...while renice-then-kill at the same instant is fine.
    assert!(Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .user(Uid(1), "u")
        .spawn("x", SpawnSpec::new("x", Uid(1), spin("x")))
        .renice_at(SimTime::from_secs(2), "x", 10)
        .kill_at(SimTime::from_secs(2), "x")
        .build()
        .is_ok());
}

#[test]
fn same_tags_on_different_machines_are_independent() {
    // Tags are scoped to their scenario: two sessions on different machines
    // may reuse the same tag and resolve it independently.
    let build = |machine: MachineConfig, seed: u64| {
        Scenario::new(machine.noiseless())
            .seed(seed)
            .user(Uid(1), "u")
            .spawn("worker", SpawnSpec::new("worker", Uid(1), spin("worker")))
            .kill_at(SimTime::from_secs(2), "worker")
            .build()
            .unwrap()
    };
    let mut a = build(MachineConfig::nehalem_w3550(), 1);
    let mut b = build(MachineConfig::ppc970_machine(), 2);
    let (pa, pb) = (a.pid("worker").unwrap(), b.pid("worker").unwrap());
    a.advance_to(SimTime::from_secs(3)).unwrap();
    assert!(!a.kernel().is_alive(pa), "killed in session a");
    assert!(
        b.kernel().is_alive(pb),
        "session b's 'worker' is untouched by a's schedule"
    );
    b.advance_to(SimTime::from_secs(3)).unwrap();
    assert!(!b.kernel().is_alive(pb));
}

#[test]
fn zero_duration_scenarios_are_valid() {
    // All events at t=0, never advanced: everything applies at build time.
    let session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .user(Uid(1), "u")
        .spawn("a", SpawnSpec::new("a", Uid(1), spin("a")))
        .renice_at(SimTime::ZERO, "a", 5)
        .build()
        .unwrap();
    assert_eq!(session.now(), SimTime::ZERO);
    assert_eq!(session.pending_events(), 0, "t=0 events applied at build");
    let pid = session.pid("a").unwrap();
    assert_eq!(session.kernel().stat(pid).unwrap().nice, 5);
    let st = session.kernel().stat(pid).unwrap();
    assert_eq!(st.cpu_time(), SimDuration::ZERO, "no time has passed");

    // Advancing to the current instant is a no-op, and running a monitor
    // for zero refreshes yields zero frames without advancing the clock.
    let mut session = session;
    session.advance_to(SimTime::ZERO).unwrap();
    let frames = session.run(&mut tiptop_1s(), 0).unwrap();
    assert!(frames.is_empty());
    assert_eq!(session.now(), SimTime::ZERO);

    // An empty scenario (no users, no events) builds too.
    let empty = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .build()
        .unwrap();
    assert_eq!(empty.kernel().num_alive(), 0);
}

#[test]
fn timed_pin_takes_effect_at_the_scheduled_instant() {
    // Two tasks start as SMT siblings on core 0 (PU0/PU4); at t=4 one is
    // re-pinned to core 1 and both speed up (no more pipeline sharing).
    let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(7)
        .user(Uid(1), "user1")
        .spawn(
            "a",
            SpawnSpec::new("a", Uid(1), spin("a")).affinity(CpuSet::single(PuId(0))),
        )
        .spawn(
            "b",
            SpawnSpec::new("b", Uid(1), spin("b")).affinity(CpuSet::single(PuId(4))),
        )
        .pin_at(SimTime::from_secs(4), "b", CpuSet::single(PuId(1)))
        .build()
        .unwrap();
    let a = session.pid("a").unwrap();

    let mut tool = tiptop_1s();
    let frames = session.run(&mut tool, 8).unwrap();
    let ipc = series_for_pid(&frames, a, "IPC");
    let shared = mean(&ipc[1..3]);
    let alone = mean(&ipc[5..8]);
    assert!(
        alone > shared * 1.3,
        "losing the SMT sibling must raise IPC: {shared} -> {alone}"
    );

    // Pinning to a PU the machine does not have is a typed scenario error,
    // caught at build time rather than as a mid-run sched_setaffinity
    // EINVAL. (CpuSet::single(PuId(63)) itself is a legal 64-PU mask — the
    // mismatch is against *this machine's* 8 PUs.)
    let err = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .user(Uid(1), "user1")
        .spawn("a", SpawnSpec::new("a", Uid(1), spin("a")))
        .pin_at(SimTime::from_secs(1), "a", CpuSet::single(PuId(63)))
        .build()
        .unwrap_err();
    assert!(
        matches!(&err, SessionError::InvalidScenario(msg) if msg.contains("pin for 'a'")),
        "got {err:?}"
    );

    // Same for a spawn affinity off the machine; masks beyond the 64-PU
    // limit never panic when built through the fallible constructors.
    assert!(CpuSet::try_single(PuId(64)).is_none());
    let off_machine = CpuSet::try_of(&[PuId(32), PuId(63)]).unwrap();
    let err = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .user(Uid(1), "user1")
        .spawn(
            "a",
            SpawnSpec::new("a", Uid(1), spin("a")).affinity(off_machine),
        )
        .build()
        .unwrap_err();
    assert!(
        matches!(&err, SessionError::InvalidScenario(msg) if msg.contains("spawn affinity")),
        "got {err:?}"
    );
}

#[test]
fn pin_monitor_cross_checks_tiptop_counts() {
    // §2.4 in session form: tiptop's sampled instruction counts and Pin's
    // exact counts, observed side-by-side, agree to well under 1%.
    let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(8)
        .user(Uid(1), "user1")
        .spawn("work", SpawnSpec::new("work", Uid(1), spin("work")))
        .build()
        .unwrap();
    let work = session.pid("work").unwrap();

    let mut tip = tiptop_1s();
    let mut pin = PinInscount::default(); // samples every 1 s
    let mut tip_insns = 0.0;
    let mut pin_last = 0.0;
    {
        let mut sink = |source: &str, frame: Frame| {
            let row = frame.row_for(work).expect("work visible");
            match source {
                // "Minst" renders in millions but its typed value is the
                // raw INSTRUCTIONS delta of the interval.
                "tiptop" => tip_insns += row.value("Minst").unwrap(),
                "pin-inscount" => pin_last = row.value("INSN").unwrap(),
                other => panic!("unexpected source {other}"),
            }
        };
        session
            .run_all(&mut [&mut tip, &mut pin], 4, &mut sink)
            .unwrap();
    }
    assert!(pin_last > 0.0);
    let rel = (tip_insns - pin_last).abs() / pin_last;
    assert!(
        rel < 0.01,
        "tiptop {tip_insns:.0} vs pin exact {pin_last:.0}: off by {:.3}%",
        rel * 100.0
    );
}
