//! Declarative experiment sessions: a [`Scenario`] assembles the machine,
//! the users, and *timed workload events* (spawn at t, kill at t, renice at
//! t); building it yields a [`Session`] that owns the kernel, applies each
//! event at its exact instant, and drives any set of
//! [`Monitor`]s — tiptop, `top`, Pin, or several at once — through one loop.
//!
//! This replaces the seed's hand-rolled `Kernel::new` + `spawn` + `advance`
//! choreography that every experiment used to reassemble:
//!
//! ```
//! use tiptop_core::prelude::*;
//! use tiptop_kernel::prelude::*;
//! use tiptop_machine::prelude::*;
//!
//! let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
//!     .seed(7)
//!     .user(Uid(1), "alice")
//!     .spawn(
//!         "hog",
//!         SpawnSpec::new("hog", Uid(1), Program::endless(ExecProfile::builder("hog").build())),
//!     )
//!     .kill_at(SimTime::from_secs(5), "hog")
//!     .build()
//!     .unwrap();
//!
//! let mut tool = Tiptop::new(
//!     TiptopOptions::default().delay(SimDuration::from_secs(1)),
//!     ScreenConfig::default_screen(),
//! );
//! let frames = session.run(&mut tool, 6).unwrap();
//! assert!(frames[3].row_for_comm("hog").is_some(), "alive at t=4s");
//! assert!(frames[5].row_for_comm("hog").is_none(), "killed at t=5s");
//! ```

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

use tiptop_kernel::errno::Errno;
use tiptop_kernel::kernel::{Checkpoint, Kernel, KernelConfig};
use tiptop_kernel::sched::{CpuSet, SchedulerSelect};
use tiptop_kernel::task::Uid;
use tiptop_kernel::task::{Pid, SpawnSpec};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_machine::topology::PuId;

use crate::monitor::{CollectSink, FrameSink, Monitor};
use crate::render::Frame;

/// Typed failure of a session — the core crate's public surface instead of
/// leaked [`Errno`]s and panics.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// The scenario is self-contradictory (duplicate tag, event against an
    /// unknown tag, event scheduled before its task's spawn, ...).
    InvalidScenario(String),
    /// A scheduled event's syscall failed (e.g. killing a task that had
    /// already exited on its own).
    Syscall {
        call: &'static str,
        pid: Pid,
        errno: Errno,
    },
    /// A bounded wait elapsed.
    Timeout {
        limit: SimDuration,
        waiting_for: String,
    },
    /// A cluster shard failed with a session error of its own; the error is
    /// labelled with the machine it happened on and the rest of the pool
    /// keeps running (see [`crate::cluster`]).
    Shard {
        machine: String,
        error: Box<SessionError>,
    },
    /// A cluster shard panicked. The worker pool survives — the panic is
    /// contained to the shard and surfaces here with its payload.
    ShardPanicked { machine: String, message: String },
    /// A *run-time* scheduled event or live scheduling decision is
    /// infeasible — the run-time half of the validation that
    /// [`Scenario::build`] performs up front for scripted schedules:
    /// scheduling into the past, migrating a tag that just exited, spawning
    /// a tag the machine already carries, ... Raised by
    /// [`Session::schedule_at`] and by reactive policies' decisions
    /// (see `ClusterSession::run_reactive` in [`crate::cluster`]).
    InvalidDecision(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SessionError::Syscall { call, pid, errno } => {
                write!(f, "{call}(pid {}) failed: {errno}", pid.0)
            }
            SessionError::Timeout { limit, waiting_for } => {
                write!(
                    f,
                    "did not finish within {limit:?} (waiting for {waiting_for})"
                )
            }
            SessionError::Shard { machine, error } => {
                write!(f, "machine '{machine}': {error}")
            }
            SessionError::ShardPanicked { machine, message } => {
                write!(f, "machine '{machine}' panicked: {message}")
            }
            SessionError::InvalidDecision(msg) => {
                write!(f, "infeasible live decision: {msg}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A timed action on the workload.
#[derive(Debug)]
pub enum WorkloadEvent {
    /// Create the task; its pid becomes addressable by `tag`.
    Spawn { tag: String, spec: SpawnSpec },
    /// SIGKILL the tagged task.
    Kill { tag: String },
    /// Change the tagged task's nice level.
    Renice { tag: String, nice: i32 },
    /// Change the tagged task's CPU affinity (`taskset`-style pinning — the
    /// §3.4 interference experiments move tasks between SMT siblings and
    /// separate cores mid-run).
    Pin { tag: String, cpus: CpuSet },
    /// Checkpoint the tagged task's progress, then SIGKILL it — the source
    /// half of a resume-mode migration. The checkpoint is published on the
    /// session's [`HandoffBoard`] under `(tag, instant)`. A tag whose
    /// program already ran to completion has nothing to checkpoint; that
    /// surfaces as a typed [`SessionError::InvalidDecision`].
    CheckpointKill { tag: String },
    /// Spawn a new incarnation of the tagged task from the checkpoint
    /// published under `(tag, instant)` — the destination half of a
    /// resume-mode migration. `spec` is the job's original spec, retained so
    /// the tag stays re-migratable from here.
    ResumeSpawn { tag: String, spec: SpawnSpec },
}

impl WorkloadEvent {
    /// The tag this event targets.
    pub(crate) fn tag(&self) -> &str {
        match self {
            WorkloadEvent::Spawn { tag, .. }
            | WorkloadEvent::Kill { tag }
            | WorkloadEvent::Renice { tag, .. }
            | WorkloadEvent::Pin { tag, .. }
            | WorkloadEvent::CheckpointKill { tag }
            | WorkloadEvent::ResumeSpawn { tag, .. } => tag,
        }
    }

    /// Does this event create a new incarnation of its tag?
    fn is_spawn(&self) -> bool {
        matches!(
            self,
            WorkloadEvent::Spawn { .. } | WorkloadEvent::ResumeSpawn { .. }
        )
    }

    /// Does this event end its tag's current incarnation?
    fn is_kill(&self) -> bool {
        matches!(
            self,
            WorkloadEvent::Kill { .. } | WorkloadEvent::CheckpointKill { .. }
        )
    }
}

/// Cross-machine checkpoint transport for resume-mode migrations: the
/// source machine's [`WorkloadEvent::CheckpointKill`] publishes the
/// checkpoint under `(tag, instant)`, the destination's
/// [`WorkloadEvent::ResumeSpawn`] takes it. Shared (via `Arc`) by every
/// session of a cluster; the cluster's run loops order the two sides so a
/// take never races its publish (see `crate::cluster`).
///
/// Keys stay registered after their checkpoint is taken, so the cluster's
/// worker gating can distinguish "not yet produced" from "already consumed".
#[derive(Debug, Default)]
pub struct HandoffBoard {
    inner: Mutex<BoardInner>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct BoardInner {
    /// `Some` until taken, then `None` (the key itself is never removed).
    published: HashMap<(String, SimTime), Option<Checkpoint>>,
    /// Shard indices whose run has finished (cleanly or not) — a consumer
    /// waiting on a checkpoint its producer can no longer publish must fail
    /// rather than wait forever.
    done: Vec<bool>,
}

impl HandoffBoard {
    pub(crate) fn new(shards: usize) -> Arc<Self> {
        Arc::new(HandoffBoard {
            inner: Mutex::new(BoardInner {
                published: HashMap::new(),
                done: vec![false; shards],
            }),
            cv: Condvar::new(),
        })
    }

    fn publish(&self, tag: &str, at: SimTime, cp: Checkpoint) {
        let mut inner = self.inner.lock().unwrap();
        inner.published.insert((tag.to_string(), at), Some(cp));
        self.cv.notify_all();
    }

    fn take(&self, tag: &str, at: SimTime) -> Option<Checkpoint> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .published
            .get_mut(&(tag.to_string(), at))
            .and_then(|slot| slot.take())
    }

    /// Has the checkpoint for `(tag, at)` ever been published?
    pub(crate) fn is_published(&self, tag: &str, at: SimTime) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.published.contains_key(&(tag.to_string(), at))
    }

    /// Record that shard `index`'s run is over; wakes every waiter.
    pub(crate) fn mark_done(&self, index: usize) {
        let mut inner = self.inner.lock().unwrap();
        if index < inner.done.len() {
            inner.done[index] = true;
        }
        self.cv.notify_all();
    }

    /// Block until the checkpoint for `(tag, at)` is published, or until
    /// shard `producer` finishes without publishing it (returns `false`).
    pub(crate) fn wait_published(&self, tag: &str, at: SimTime, producer: usize) -> bool {
        let key = (tag.to_string(), at);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.published.contains_key(&key) {
                return true;
            }
            if inner.done.get(producer).copied().unwrap_or(true) {
                return false;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }
}

/// Declarative description of an experiment: machine, seed, users, and a
/// schedule of [`WorkloadEvent`]s. Build it into a [`Session`] to run.
#[derive(Debug)]
pub struct Scenario {
    machine: Arc<MachineConfig>,
    seed: u64,
    epoch: Option<SimDuration>,
    scheduler: Option<SchedulerSelect>,
    users: Vec<(Uid, String)>,
    events: Vec<(SimTime, WorkloadEvent)>,
}

impl Scenario {
    /// Accepts an owned [`MachineConfig`] or an already-shared
    /// `Arc<MachineConfig>`; a fleet built from one `Arc` shares the
    /// allocation across every shard.
    pub fn new(machine: impl Into<Arc<MachineConfig>>) -> Self {
        Scenario {
            machine: machine.into(),
            seed: 0,
            epoch: None,
            scheduler: None,
            users: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Adopt an existing [`KernelConfig`] (machine + epoch + seed +
    /// scheduler).
    pub fn from_kernel_config(cfg: KernelConfig) -> Self {
        Scenario::new(cfg.machine)
            .epoch(cfg.epoch)
            .seed(cfg.seed)
            .scheduler(cfg.scheduler)
    }

    /// Deterministic seed for the machine and the task address streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the scheduler epoch (defaults to the kernel's 20 ms).
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Pick the in-kernel epoch planner (defaults to the CFS-like policy).
    pub fn scheduler(mut self, scheduler: SchedulerSelect) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Cluster-layer default: adopt `scheduler` unless this machine already
    /// chose its own planner.
    pub(crate) fn default_scheduler(&mut self, scheduler: &SchedulerSelect) {
        if self.scheduler.is_none() {
            self.scheduler = Some(scheduler.clone());
        }
    }

    /// Register a user name for a uid (like `/etc/passwd`).
    pub fn user(mut self, uid: Uid, name: impl Into<String>) -> Self {
        self.users.push((uid, name.into()));
        self
    }

    /// Spawn a task at t=0. `tag` names it for later events and
    /// [`Session::pid`]; tags must be unique.
    pub fn spawn(self, tag: impl Into<String>, spec: SpawnSpec) -> Self {
        self.spawn_at(SimTime::ZERO, tag, spec)
    }

    /// Spawn a task at an absolute instant.
    pub fn spawn_at(mut self, at: SimTime, tag: impl Into<String>, spec: SpawnSpec) -> Self {
        self.events.push((
            at,
            WorkloadEvent::Spawn {
                tag: tag.into(),
                spec,
            },
        ));
        self
    }

    /// SIGKILL the tagged task at an absolute instant.
    pub fn kill_at(mut self, at: SimTime, tag: impl Into<String>) -> Self {
        self.events
            .push((at, WorkloadEvent::Kill { tag: tag.into() }));
        self
    }

    /// Renice the tagged task at an absolute instant.
    pub fn renice_at(mut self, at: SimTime, tag: impl Into<String>, nice: i32) -> Self {
        self.events.push((
            at,
            WorkloadEvent::Renice {
                tag: tag.into(),
                nice,
            },
        ));
        self
    }

    /// Re-pin the tagged task to a CPU set at an absolute instant.
    pub fn pin_at(mut self, at: SimTime, tag: impl Into<String>, cpus: CpuSet) -> Self {
        self.events.push((
            at,
            WorkloadEvent::Pin {
                tag: tag.into(),
                cpus,
            },
        ));
        self
    }

    /// Every spawn-like event declared for `tag` (scripted spawns and
    /// desugared resume-spawns alike), sorted by instant — the cluster layer
    /// reads these to resolve which machine hosts a tag's *current*
    /// incarnation when validating cross-machine migrations, and to clone
    /// the job spec onto a migration's destination.
    pub(crate) fn spawn_events(&self, tag: &str) -> Vec<(SimTime, &SpawnSpec)> {
        let mut spawns: Vec<(SimTime, &SpawnSpec)> = self
            .events
            .iter()
            .filter_map(|(at, ev)| match ev {
                WorkloadEvent::Spawn { tag: t, spec }
                | WorkloadEvent::ResumeSpawn { tag: t, spec }
                    if t == tag =>
                {
                    Some((*at, spec))
                }
                _ => None,
            })
            .collect();
        spawns.sort_by_key(|(at, _)| *at);
        spawns
    }

    /// Every kill-like event declared against `tag`, sorted by instant.
    pub(crate) fn kill_events(&self, tag: &str) -> Vec<SimTime> {
        let mut kills: Vec<SimTime> = self
            .events
            .iter()
            .filter_map(|(at, ev)| match ev {
                WorkloadEvent::Kill { tag: t } | WorkloadEvent::CheckpointKill { tag: t }
                    if t == tag =>
                {
                    Some(*at)
                }
                _ => None,
            })
            .collect();
        kills.sort();
        kills
    }

    /// Is some incarnation of `tag` live at instant `at`, per the declared
    /// schedule? Each spawn is paired with the earliest following kill; an
    /// incarnation killed at exactly `at` no longer counts as live.
    pub(crate) fn tag_live_at(&self, tag: &str, at: SimTime) -> bool {
        let spawns = self.spawn_events(tag);
        let mut kills = self.kill_events(tag).into_iter().peekable();
        for (s, _) in spawns {
            // Consume kills that ended earlier incarnations.
            while kills.peek().is_some_and(|k| *k < s) {
                kills.next();
            }
            let end = kills.next();
            if s <= at && end.is_none_or(|k| k > at) {
                return true;
            }
        }
        false
    }

    /// Append an event in place (the by-value builder methods cover user
    /// code; the cluster layer desugars migrations into per-machine events
    /// through this).
    pub(crate) fn schedule(&mut self, at: SimTime, ev: WorkloadEvent) {
        self.events.push((at, ev));
    }

    /// Validate the schedule and build the live [`Session`]. Events at t=0
    /// are applied immediately, so their pids are resolvable right away.
    pub fn build(mut self) -> Result<Session, SessionError> {
        // Stable by time: same-instant events keep their declaration order.
        self.events.sort_by_key(|(at, _)| *at);

        // First spawn instant per tag, for the "precedes its spawn" message.
        let mut first_spawn: BTreeMap<&str, SimTime> = BTreeMap::new();
        for (at, ev) in &self.events {
            if ev.is_spawn() {
                first_spawn.entry(ev.tag()).or_insert(*at);
            }
        }
        // Walk in final apply order (sorted is stable, so same-instant
        // events keep declaration order), tracking each tag's incarnation
        // state. A tag may be spawned again once its previous incarnation
        // is killed — that is what lets a migrated job return to a machine
        // it already ran on — but two incarnations of one tag must never be
        // live at once, and every kill/renice/pin must land inside a live
        // incarnation.
        #[derive(Clone, Copy)]
        enum TagState {
            Live,
            Dead(SimTime),
        }
        let mut state: BTreeMap<&str, TagState> = BTreeMap::new();
        for (at, ev) in &self.events {
            let tag = ev.tag();
            if ev.is_spawn() {
                if matches!(state.get(tag), Some(TagState::Live)) {
                    return Err(SessionError::InvalidScenario(format!(
                        "duplicate spawn tag '{tag}': the previous incarnation is still \
                         live at {at:?} (incarnations of one tag must not overlap)"
                    )));
                }
                state.insert(tag, TagState::Live);
                continue;
            }
            match state.get(tag) {
                None => {
                    return Err(match first_spawn.get(tag) {
                        None => SessionError::InvalidScenario(format!(
                            "event against unknown tag '{tag}'"
                        )),
                        Some(spawned) => SessionError::InvalidScenario(format!(
                            "event against '{tag}' at {at:?} precedes its spawn at \
                             {spawned:?} (same-instant events apply in declaration order)"
                        )),
                    });
                }
                Some(TagState::Dead(kill_at)) => {
                    return Err(SessionError::InvalidScenario(format!(
                        "event against '{tag}' at {at:?} follows its kill at {kill_at:?}"
                    )));
                }
                Some(TagState::Live) => {
                    if ev.is_kill() {
                        state.insert(tag, TagState::Dead(*at));
                    }
                }
            }
        }

        // Affinity masks are validated here, not at apply time: a pin (or a
        // spawn affinity) that no PU of this machine satisfies would
        // otherwise surface as a mid-run sched_setaffinity EINVAL — a
        // scripting mistake, so reject it before the kernel boots. (The
        // `CpuSet` constructors still assert internally; scripts that build
        // masks from untrusted input use `CpuSet::try_of`/`try_single`.)
        let num_pus = self.machine.topology.num_pus();
        for (at, ev) in &self.events {
            let (tag, cpus, what) = match ev {
                WorkloadEvent::Pin { tag, cpus } => (tag, cpus, "pin"),
                WorkloadEvent::Spawn { tag, spec } | WorkloadEvent::ResumeSpawn { tag, spec } => {
                    (tag, &spec.affinity, "spawn affinity")
                }
                _ => continue,
            };
            if !(0..num_pus).any(|pu| cpus.allows(PuId(pu))) {
                return Err(SessionError::InvalidScenario(format!(
                    "{what} for '{tag}' at {at:?} allows none of the machine's \
                     {num_pus} PUs"
                )));
            }
        }

        let mut cfg = KernelConfig::new(self.machine).seed(self.seed);
        if let Some(epoch) = self.epoch {
            cfg = cfg.epoch(epoch);
        }
        if let Some(scheduler) = self.scheduler {
            cfg = cfg.scheduler(scheduler);
        }
        let mut kernel = Kernel::new(cfg);
        for (uid, name) in self.users {
            kernel.add_user(uid, name);
        }
        // Retain every job spec by tag: a live migration decided mid-run
        // (see `ClusterSession::run_reactive`) re-spawns the job on its
        // destination machine from this copy.
        let specs: BTreeMap<String, SpawnSpec> =
            self.events
                .iter()
                .filter_map(|(_, ev)| match ev {
                    WorkloadEvent::Spawn { tag, spec }
                    | WorkloadEvent::ResumeSpawn { tag, spec } => Some((tag.clone(), spec.clone())),
                    _ => None,
                })
                .collect();
        let mut session = Session {
            kernel,
            pending: self.events.into(),
            pids: BTreeMap::new(),
            specs,
            handoff: None,
        };
        session.apply_due()?;
        Ok(session)
    }
}

/// A live experiment: the kernel plus the not-yet-due workload events. The
/// session owns the clock — all time advancement goes through it so events
/// land at their exact instants.
pub struct Session {
    kernel: Kernel,
    /// Sorted by time (stable); front is next due.
    pending: VecDeque<(SimTime, WorkloadEvent)>,
    /// Every incarnation a tag resolved to on this machine, in spawn order;
    /// the last entry is the current one. A tag gets a new incarnation each
    /// time it is (re-)spawned here — a job migrated away and back is the
    /// same tag, a fresh pid.
    pids: BTreeMap<String, Vec<Pid>>,
    /// Every tag's job spec (scripted and runtime-scheduled spawns alike),
    /// kept so a live migration can clone the job onto another machine.
    specs: BTreeMap<String, SpawnSpec>,
    /// Checkpoint transport shared with the other sessions of a cluster;
    /// `None` outside cluster runs (resume events then fail cleanly).
    handoff: Option<Arc<HandoffBoard>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("now", &self.kernel.now())
            .field("tasks", &self.kernel.num_alive())
            .field("pending_events", &self.pending.len())
            .field("tags", &self.pids)
            .finish()
    }
}

impl Session {
    /// The pid of the tag's *current* (latest) incarnation on this machine
    /// (`None` until its first spawn time).
    pub fn pid(&self, tag: &str) -> Option<Pid> {
        self.pids.get(tag).and_then(|v| v.last()).copied()
    }

    /// Every pid the tag has resolved to on this machine, in spawn order —
    /// one entry per incarnation. A job that migrated away and came back
    /// has two entries here.
    pub fn incarnations(&self, tag: &str) -> &[Pid] {
        self.pids.get(tag).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Attach the cluster's shared checkpoint transport (resume-mode
    /// migrations publish/take through it).
    pub(crate) fn attach_handoff(&mut self, board: Arc<HandoffBoard>) {
        self.handoff = Some(board);
    }

    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Escape hatch for direct syscalls mid-experiment. Advancing the
    /// kernel directly skips scheduled events — use [`Session::advance`].
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Dissolve the session into its kernel (pending events are dropped).
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// Workload events not yet applied.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// The job spec a tag was (or will be) spawned from — scripted spawns
    /// and runtime-scheduled ones alike. The reactive scheduling layer
    /// clones this onto a migration's destination machine.
    pub fn job_spec(&self, tag: &str) -> Option<&SpawnSpec> {
        self.specs.get(tag)
    }

    /// Time of the earliest not-yet-applied spawn (or resume-spawn) of
    /// `tag`, if any.
    fn pending_spawn(&self, tag: &str) -> Option<SimTime> {
        self.pending
            .iter()
            .find_map(|(at, ev)| (ev.is_spawn() && ev.tag() == tag).then_some(*at))
    }

    /// Time of the earliest not-yet-applied kill (plain or checkpointing)
    /// of `tag`, if any — the reactive layer checks this so two live
    /// decisions cannot both claim the same job.
    pub(crate) fn pending_kill(&self, tag: &str) -> Option<SimTime> {
        self.pending
            .iter()
            .find_map(|(at, ev)| (ev.is_kill() && ev.tag() == tag).then_some(*at))
    }

    /// Remove every not-yet-applied event targeting `tag` at exactly `at`
    /// — the reactive layer rolls a decision's kill/spawn back when the
    /// run errors before they could apply, so a handed-back session never
    /// performs an unrecorded migration on a later run. A cancelled spawn
    /// frees its tag (and retained spec) again.
    pub(crate) fn cancel_scheduled(&mut self, at: SimTime, tag: &str) {
        let mut i = 0;
        while i < self.pending.len() {
            let (at_i, ev) = &self.pending[i];
            if *at_i == at && ev.tag() == tag {
                if ev.is_spawn() && !self.pids.contains_key(tag) {
                    self.specs.remove(tag);
                }
                self.pending.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Schedule a workload event **at run time** — the per-run event queue
    /// behind live scheduling decisions. Scripted schedules are fully
    /// validated by [`Scenario::build`]; an event injected mid-run gets the
    /// *run-time half* of that validation here, with infeasible requests
    /// surfacing as typed [`SessionError::InvalidDecision`]s:
    ///
    /// * `at` must not lie in the past (an event at exactly the current
    ///   instant is applied before this returns);
    /// * a `Spawn` (or `ResumeSpawn`) starts a *new incarnation* of its
    ///   tag — allowed once the previous incarnation is dead (or has a kill
    ///   pending no later than `at`), rejected while it is live:
    ///   incarnation addressing never aliases two live tasks;
    /// * a `Kill`/`Renice`/`Pin` must target a tag whose current
    ///   incarnation is spawned (or has a pending spawn no later than `at`)
    ///   and has not already exited;
    /// * a `Kill` is rejected while another kill of the same tag is still
    ///   pending (two live decisions cannot both claim one job).
    ///
    /// A task can still exit *between* scheduling and `at`; that surfaces
    /// as [`SessionError::Syscall`] when the event applies, exactly like a
    /// scripted kill racing a natural exit.
    pub fn schedule_at(&mut self, at: SimTime, ev: WorkloadEvent) -> Result<(), SessionError> {
        let now = self.kernel.now();
        if at < now {
            return Err(SessionError::InvalidDecision(format!(
                "event scheduled at {at:?} lies in the past (now {now:?})"
            )));
        }
        match &ev {
            WorkloadEvent::Spawn { tag, .. } | WorkloadEvent::ResumeSpawn { tag, .. } => {
                if let Some(spawn_at) = self.pending_spawn(tag) {
                    return Err(SessionError::InvalidDecision(format!(
                        "tag '{tag}' already has a spawn pending at {spawn_at:?} \
                         (incarnation addressing never aliases two live tasks)"
                    )));
                }
                if let Some(pid) = self.pid(tag) {
                    let claimed = self.pending_kill(tag).is_some_and(|k| k <= at);
                    if self.kernel.is_alive(pid) && !claimed {
                        return Err(SessionError::InvalidDecision(format!(
                            "tag '{tag}' already names a live task on this machine \
                             (incarnation addressing never aliases two live tasks)"
                        )));
                    }
                }
            }
            WorkloadEvent::Kill { tag }
            | WorkloadEvent::CheckpointKill { tag }
            | WorkloadEvent::Renice { tag, .. }
            | WorkloadEvent::Pin { tag, .. } => {
                if ev.is_kill() {
                    if let Some(kill_at) = self.pending_kill(tag) {
                        return Err(SessionError::InvalidDecision(format!(
                            "'{tag}' already has a kill pending at {kill_at:?}"
                        )));
                    }
                }
                let live = self.pid(tag).is_some_and(|pid| self.kernel.is_alive(pid));
                if !live {
                    // The current incarnation is gone (or never spawned):
                    // the event is only feasible against a pending respawn
                    // that lands no later than `at`.
                    match self.pending_spawn(tag) {
                        Some(spawn_at) if spawn_at <= at => {}
                        Some(spawn_at) => {
                            return Err(SessionError::InvalidDecision(format!(
                                "event against '{tag}' at {at:?} precedes its spawn at \
                                 {spawn_at:?}"
                            )));
                        }
                        None if self.pid(tag).is_some() => {
                            return Err(SessionError::InvalidDecision(format!(
                                "'{tag}' already exited"
                            )));
                        }
                        None => {
                            return Err(SessionError::InvalidDecision(format!(
                                "no task tagged '{tag}' on this machine"
                            )));
                        }
                    }
                }
            }
        }
        if let WorkloadEvent::Spawn { tag, spec } | WorkloadEvent::ResumeSpawn { tag, spec } = &ev {
            self.specs.insert(tag.clone(), spec.clone());
        }
        // Keep `pending` sorted by time, stable: an event lands after every
        // already-queued event of the same instant.
        let pos = self
            .pending
            .iter()
            .position(|(t, _)| *t > at)
            .unwrap_or(self.pending.len());
        self.pending.insert(pos, (at, ev));
        if at == now {
            self.apply_due()?;
        }
        Ok(())
    }

    fn apply_due(&mut self) -> Result<(), SessionError> {
        while let Some((at, _)) = self.pending.front() {
            if *at > self.kernel.now() {
                break;
            }
            let (_, ev) = self.pending.pop_front().expect("front exists");
            self.apply(ev)?;
        }
        Ok(())
    }

    fn resolved(&self, tag: &str) -> Result<Pid, SessionError> {
        self.pid(tag).ok_or_else(|| {
            SessionError::InvalidScenario(format!(
                "event against '{tag}' applied before its spawn (declare the spawn first \
                 when scheduling same-instant events)"
            ))
        })
    }

    fn apply(&mut self, ev: WorkloadEvent) -> Result<(), SessionError> {
        match ev {
            WorkloadEvent::Spawn { tag, spec } => {
                let pid = self.kernel.spawn(spec);
                self.pids.entry(tag).or_default().push(pid);
            }
            WorkloadEvent::CheckpointKill { tag } => {
                let pid = self.resolved(&tag)?;
                let now = self.kernel.now();
                let cp = self.kernel.checkpoint(pid).map_err(|_| {
                    // ESRCH from checkpoint() means the program already ran
                    // to completion — there is nothing to resume, which a
                    // resume-mode decision must surface as a typed error,
                    // never as a zero-length resumed clone.
                    SessionError::InvalidDecision(format!(
                        "resume-mode kill of '{tag}' (pid {}) at {now:?}: the program \
                         already ran to completion; nothing to checkpoint",
                        pid.0
                    ))
                })?;
                self.kernel
                    .kill(pid)
                    .map_err(|errno| SessionError::Syscall {
                        call: "kill",
                        pid,
                        errno,
                    })?;
                match &self.handoff {
                    Some(board) => board.publish(&tag, now, cp),
                    None => {
                        return Err(SessionError::InvalidDecision(format!(
                            "checkpoint of '{tag}' has no handoff board to publish to \
                             (resume migrations only run inside a cluster)"
                        )))
                    }
                }
            }
            WorkloadEvent::ResumeSpawn { tag, spec: _ } => {
                let now = self.kernel.now();
                let cp = self
                    .handoff
                    .as_ref()
                    .and_then(|board| board.take(&tag, now))
                    .ok_or_else(|| {
                        SessionError::InvalidDecision(format!(
                            "no checkpoint published for '{tag}' at {now:?} (the source \
                             machine did not produce one, or the handoff was misordered)"
                        ))
                    })?;
                let pid = self.kernel.spawn_from_checkpoint(cp);
                self.pids.entry(tag).or_default().push(pid);
            }
            WorkloadEvent::Kill { tag } => {
                let pid = self.resolved(&tag)?;
                self.kernel
                    .kill(pid)
                    .map_err(|errno| SessionError::Syscall {
                        call: "kill",
                        pid,
                        errno,
                    })?;
            }
            WorkloadEvent::Renice { tag, nice } => {
                let pid = self.resolved(&tag)?;
                self.kernel
                    .renice(pid, nice)
                    .map_err(|errno| SessionError::Syscall {
                        call: "renice",
                        pid,
                        errno,
                    })?;
            }
            WorkloadEvent::Pin { tag, cpus } => {
                let pid = self.resolved(&tag)?;
                self.kernel
                    .set_affinity(pid, cpus)
                    .map_err(|errno| SessionError::Syscall {
                        call: "sched_setaffinity",
                        pid,
                        errno,
                    })?;
            }
        }
        Ok(())
    }

    /// Advance simulated time to an absolute instant, applying every
    /// scheduled event at its exact time along the way (events at `t`
    /// itself apply before this returns). No-op if `t` is in the past.
    pub fn advance_to(&mut self, t: SimTime) -> Result<(), SessionError> {
        loop {
            let next_due = self
                .pending
                .front()
                .map(|(at, _)| *at)
                .filter(|at| *at <= t);
            match next_due {
                Some(at) => {
                    self.kernel.advance_until(at);
                    self.apply_due()?;
                }
                None => {
                    self.kernel.advance_until(t);
                    return Ok(());
                }
            }
        }
    }

    /// Advance simulated time by a span (see [`Session::advance_to`]).
    pub fn advance(&mut self, dur: SimDuration) -> Result<(), SessionError> {
        self.advance_to(self.kernel.now() + dur)
    }

    /// Reject zero-interval monitors (they would never let time advance)
    /// and prime the rest at the current instant.
    fn check_and_prime(&mut self, monitors: &mut [&mut dyn Monitor]) -> Result<(), SessionError> {
        for m in monitors.iter() {
            if m.interval().is_zero() {
                return Err(SessionError::InvalidScenario(format!(
                    "monitor '{}' has a zero refresh interval",
                    m.name()
                )));
            }
        }
        for m in monitors.iter_mut() {
            m.prime(&mut self.kernel);
        }
        Ok(())
    }

    /// Advance one interval of a primed monitor (applying due events) and
    /// take its observation.
    fn observe_next(&mut self, monitor: &mut dyn Monitor) -> Result<Frame, SessionError> {
        self.advance_to(self.kernel.now() + monitor.interval())?;
        Ok(monitor.observe(&mut self.kernel))
    }

    /// Drive several monitors concurrently — the §2.5 interference shape.
    /// Every monitor is primed now, then observed on its own interval until
    /// it has produced `refreshes` frames; frames go to `sink` labelled
    /// with [`Monitor::name`]. Monitors due at the same instant observe in
    /// slice order.
    pub fn run_all(
        &mut self,
        monitors: &mut [&mut dyn Monitor],
        refreshes: usize,
        sink: &mut dyn FrameSink,
    ) -> Result<(), SessionError> {
        self.check_and_prime(monitors)?;
        let start = self.kernel.now();
        let mut next: Vec<SimTime> = monitors.iter().map(|m| start + m.interval()).collect();
        let mut taken = vec![0usize; monitors.len()];
        loop {
            let due = next
                .iter()
                .zip(&taken)
                .filter(|(_, &n)| n < refreshes)
                .map(|(&t, _)| t)
                .min();
            let Some(t) = due else { break };
            self.advance_to(t)?;
            for (i, m) in monitors.iter_mut().enumerate() {
                if taken[i] < refreshes && next[i] == t {
                    let frame = m.observe(&mut self.kernel);
                    sink.on_frame(m.name(), frame);
                    taken[i] += 1;
                    next[i] = t + m.interval();
                }
            }
        }
        Ok(())
    }

    /// Drive one monitor for `refreshes` intervals and collect its frames.
    ///
    /// Each iteration advances simulated time by the monitor's interval,
    /// then takes a frame — so frame *i* covers interval *i*. An initial
    /// priming refresh attaches counters at the current instant without
    /// recording a frame, like starting the real tool:
    ///
    /// ```
    /// use tiptop_core::prelude::*;
    /// use tiptop_kernel::prelude::*;
    /// use tiptop_machine::prelude::*;
    ///
    /// let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
    ///     .user(Uid(1), "u1")
    ///     .spawn(
    ///         "spin",
    ///         SpawnSpec::new("spin", Uid(1), Program::endless(ExecProfile::builder("spin").build())),
    ///     )
    ///     .build()
    ///     .unwrap();
    /// let mut tool = Tiptop::new(
    ///     TiptopOptions::default().delay(SimDuration::from_secs(1)),
    ///     ScreenConfig::default_screen(),
    /// );
    /// let frames = session.run(&mut tool, 3).unwrap();
    /// assert_eq!(frames.len(), 3);
    /// assert_eq!(frames[0].time.as_secs_f64(), 1.0, "frame 0 covers interval 0");
    /// assert_eq!(frames[2].time.as_secs_f64(), 3.0);
    /// ```
    pub fn run(
        &mut self,
        monitor: &mut dyn Monitor,
        refreshes: usize,
    ) -> Result<Vec<Frame>, SessionError> {
        let mut sink = CollectSink::new();
        self.run_all(&mut [monitor], refreshes, &mut sink)?;
        Ok(sink.into_frames())
    }

    /// Like [`Session::run`] but stops early when `until` says so (given
    /// the latest frame). Returns the frames recorded so far.
    pub fn run_until(
        &mut self,
        monitor: &mut dyn Monitor,
        max_refreshes: usize,
        until: impl Fn(&Frame) -> bool,
    ) -> Result<Vec<Frame>, SessionError> {
        self.check_and_prime(&mut [&mut *monitor])?;
        let mut frames = Vec::new();
        for _ in 0..max_refreshes {
            let frame = self.observe_next(monitor)?;
            let done = until(&frame);
            frames.push(frame);
            if done {
                break;
            }
        }
        Ok(frames)
    }

    /// Tear a monitor down (close its counter fds etc.) against this
    /// session's kernel.
    pub fn teardown(&mut self, monitor: &mut dyn Monitor) {
        monitor.teardown(&mut self.kernel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Tiptop, TiptopOptions};
    use crate::config::ScreenConfig;
    use tiptop_kernel::program::Program;
    use tiptop_machine::access::MemoryBehavior;
    use tiptop_machine::exec::ExecProfile;

    fn spin() -> Program {
        Program::endless(
            ExecProfile::builder("spin")
                .base_cpi(0.8)
                .branches(0.18, 0.0)
                .memory(MemoryBehavior::uniform(16 * 1024))
                .build(),
        )
    }

    fn base() -> Scenario {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(9)
            .user(Uid(1), "u1")
    }

    fn tool(delay_s: u64) -> Tiptop {
        Tiptop::new(
            TiptopOptions::default().delay(SimDuration::from_secs(delay_s)),
            ScreenConfig::default_screen(),
        )
    }

    #[test]
    fn build_resolves_t0_spawns_immediately() {
        let session = base()
            .spawn("a", SpawnSpec::new("a", Uid(1), spin()))
            .spawn_at(
                SimTime::from_secs(2),
                "late",
                SpawnSpec::new("late", Uid(1), spin()),
            )
            .build()
            .unwrap();
        assert!(session.pid("a").is_some());
        assert!(session.pid("late").is_none(), "not yet spawned");
        assert_eq!(session.pending_events(), 1);
    }

    #[test]
    fn duplicate_tags_rejected() {
        let err = base()
            .spawn("x", SpawnSpec::new("x", Uid(1), spin()))
            .spawn("x", SpawnSpec::new("x2", Uid(1), spin()))
            .build()
            .unwrap_err();
        assert!(matches!(err, SessionError::InvalidScenario(_)));
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn unknown_and_premature_events_rejected() {
        let err = base()
            .kill_at(SimTime::from_secs(1), "ghost")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("unknown tag"));

        let err = base()
            .spawn_at(
                SimTime::from_secs(5),
                "late",
                SpawnSpec::new("late", Uid(1), spin()),
            )
            .kill_at(SimTime::from_secs(1), "late")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("precedes its spawn"));

        // Same instant, but the kill is declared before the spawn: the
        // stable sort would apply it first, so build() must reject it too.
        let err = base()
            .kill_at(SimTime::from_secs(5), "x")
            .spawn_at(
                SimTime::from_secs(5),
                "x",
                SpawnSpec::new("x", Uid(1), spin()),
            )
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("precedes its spawn"), "got {err}");

        // Declared spawn-then-kill at the same instant is fine.
        assert!(base()
            .spawn_at(
                SimTime::from_secs(5),
                "y",
                SpawnSpec::new("y", Uid(1), spin())
            )
            .kill_at(SimTime::from_secs(5), "y")
            .build()
            .is_ok());
    }

    #[test]
    fn spawn_at_takes_effect_at_the_instant() {
        let mut session = base()
            .spawn_at(
                SimTime::from_secs(3),
                "late",
                SpawnSpec::new("late", Uid(1), spin()),
            )
            .build()
            .unwrap();
        session.advance_to(SimTime::from_secs(2)).unwrap();
        assert!(session.pid("late").is_none());
        session.advance_to(SimTime::from_secs(3)).unwrap();
        let pid = session.pid("late").expect("spawned exactly at t=3");
        // It must not have run before t=3: lifetime CPU ≤ elapsed-since-3.
        session.advance_to(SimTime::from_secs(4)).unwrap();
        let st = session.kernel().stat(pid).unwrap();
        assert_eq!(st.start_time, SimTime::from_secs(3));
        assert!(st.cpu_time().as_secs_f64() <= 1.0 + 1e-9);
    }

    #[test]
    fn kill_of_already_exited_task_is_typed_error() {
        let mut session = base()
            .spawn(
                "short",
                SpawnSpec::new(
                    "short",
                    Uid(1),
                    Program::single(ExecProfile::builder("s").base_cpi(0.8).build(), 1_000_000),
                ),
            )
            .kill_at(SimTime::from_secs(5), "short")
            .build()
            .unwrap();
        // The program retires 1M instructions in well under a second; the
        // kill at t=5 hits a tombstone.
        let err = session.advance_to(SimTime::from_secs(6)).unwrap_err();
        assert!(
            matches!(
                err,
                SessionError::Syscall {
                    call: "kill",
                    errno: Errno::ESRCH,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn run_matches_manual_loop_shape() {
        let mut session = base()
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
            .build()
            .unwrap();
        let mut t = tool(1);
        let frames = session.run(&mut t, 3).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].time.as_secs_f64(), 1.0);
        assert_eq!(frames[2].time.as_secs_f64(), 3.0);
        session.teardown(&mut t);
        assert_eq!(
            session.kernel().open_fds(Uid::ROOT),
            0,
            "teardown closes fds"
        );
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut session = base()
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
            .build()
            .unwrap();
        let frames = session
            .run_until(&mut tool(1), 100, |f| f.time.as_secs_f64() >= 2.0)
            .unwrap();
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn monitors_with_different_intervals_interleave() {
        let mut session = base()
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
            .build()
            .unwrap();
        let mut fast = tool(1);
        let mut slow = tool(3);
        let mut times: Vec<(String, f64)> = Vec::new();
        let mut sink = |source: &str, frame: Frame| {
            times.push((source.to_string(), frame.time.as_secs_f64()));
        };
        session
            .run_all(&mut [&mut fast, &mut slow], 3, &mut sink)
            .unwrap();
        // fast at 1,2,3; slow at 3,6,9 — same-instant order follows slices.
        let expect = [
            ("tiptop", 1.0),
            ("tiptop", 2.0),
            ("tiptop", 3.0),
            ("tiptop", 3.0),
            ("tiptop", 6.0),
            ("tiptop", 9.0),
        ];
        assert_eq!(times.len(), expect.len());
        for ((_, got), (_, want)) in times.iter().zip(expect.iter()) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn zero_interval_monitor_rejected() {
        let mut session = base()
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
            .build()
            .unwrap();
        let err = session.run(&mut tool(0), 1).unwrap_err();
        assert!(matches!(err, SessionError::InvalidScenario(_)));
    }
}
