//! Hardware events and per-slice event counts.
//!
//! This is the *vocabulary* of the performance-monitoring unit: every
//! countable hardware event the simulated machines expose. The split between
//! "generic" events (portable across architectures — cycles, instructions,
//! LLC references/misses, branches, branch misses, exactly the set the Linux
//! header provides) and "raw" target-specific events (FP assists, L1D/L2
//! misses…) is made one layer up, in the kernel's `perf` module; down here
//! everything is just a hardware event.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

/// Every hardware event a simulated PMU can count.
///
/// `CacheReferences`/`CacheMisses` follow the Linux generic-event convention
/// of referring to the *last-level* cache: references are accesses that reach
/// the L3, misses are accesses the L3 could not serve.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(usize)]
pub enum HwEvent {
    /// Unhalted core cycles.
    Cycles = 0,
    /// Retired instructions.
    Instructions,
    /// Last-level cache references (accesses reaching the L3).
    CacheReferences,
    /// Last-level cache misses (served from memory).
    CacheMisses,
    /// Retired branch instructions.
    BranchInstructions,
    /// Mispredicted branches.
    BranchMisses,
    /// L1 data-cache misses.
    L1dMisses,
    /// L2 cache misses (same set of accesses as `CacheReferences`; exposed
    /// separately because the paper's Figure 11(d) plots "L2 misses").
    L2Misses,
    /// Retired load instructions.
    Loads,
    /// Retired store instructions.
    Stores,
    /// Retired floating-point operations.
    FpOps,
    /// Floating-point operations that required micro-code assist
    /// (`FP_ASSIST.ANY` on Nehalem; the key counter of the paper's §3.1).
    FpAssists,
    /// Cycles in which retirement was stalled on memory.
    StallCyclesMem,
    /// Reference (bus) cycles — counts wall-clock at the nominal frequency
    /// regardless of what the core does.
    RefCycles,
}

/// Number of distinct hardware events.
pub const N_EVENTS: usize = 14;

/// All events, in index order.
pub const ALL_EVENTS: [HwEvent; N_EVENTS] = [
    HwEvent::Cycles,
    HwEvent::Instructions,
    HwEvent::CacheReferences,
    HwEvent::CacheMisses,
    HwEvent::BranchInstructions,
    HwEvent::BranchMisses,
    HwEvent::L1dMisses,
    HwEvent::L2Misses,
    HwEvent::Loads,
    HwEvent::Stores,
    HwEvent::FpOps,
    HwEvent::FpAssists,
    HwEvent::StallCyclesMem,
    HwEvent::RefCycles,
];

impl HwEvent {
    /// Stable index into an [`EventCounts`] array.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Canonical upper-case name, used by the metric DSL and config files.
    pub fn name(self) -> &'static str {
        match self {
            HwEvent::Cycles => "CYCLES",
            HwEvent::Instructions => "INSTRUCTIONS",
            HwEvent::CacheReferences => "CACHE_REFERENCES",
            HwEvent::CacheMisses => "CACHE_MISSES",
            HwEvent::BranchInstructions => "BRANCHES",
            HwEvent::BranchMisses => "BRANCH_MISSES",
            HwEvent::L1dMisses => "L1D_MISSES",
            HwEvent::L2Misses => "L2_MISSES",
            HwEvent::Loads => "LOADS",
            HwEvent::Stores => "STORES",
            HwEvent::FpOps => "FP_OPS",
            HwEvent::FpAssists => "FP_ASSIST",
            HwEvent::StallCyclesMem => "STALL_CYCLES_MEM",
            HwEvent::RefCycles => "REF_CYCLES",
        }
    }

    /// Parse a canonical name back to an event.
    pub fn from_name(name: &str) -> Option<HwEvent> {
        ALL_EVENTS.iter().copied().find(|e| e.name() == name)
    }

    /// Events counted by *fixed* hardware counters (always on, never
    /// multiplexed), mirroring the Intel fixed counters for instructions
    /// retired / core cycles / reference cycles.
    pub fn is_fixed(self) -> bool {
        matches!(
            self,
            HwEvent::Cycles | HwEvent::Instructions | HwEvent::RefCycles
        )
    }
}

impl fmt::Display for HwEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A vector of per-event counts, indexable by [`HwEvent`].
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventCounts([u64; N_EVENTS]);

impl EventCounts {
    pub const ZERO: EventCounts = EventCounts([0; N_EVENTS]);

    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn get(&self, e: HwEvent) -> u64 {
        self.0[e.index()]
    }

    #[inline]
    pub fn set(&mut self, e: HwEvent, v: u64) {
        self.0[e.index()] = v;
    }

    #[inline]
    pub fn add(&mut self, e: HwEvent, v: u64) {
        self.0[e.index()] += v;
    }

    /// Element-wise accumulate.
    pub fn accumulate(&mut self, other: &EventCounts) {
        for i in 0..N_EVENTS {
            self.0[i] += other.0[i];
        }
    }

    /// Element-wise saturating difference (`self - earlier`).
    pub fn delta_since(&self, earlier: &EventCounts) -> EventCounts {
        let mut d = EventCounts::ZERO;
        for i in 0..N_EVENTS {
            d.0[i] = self.0[i].saturating_sub(earlier.0[i]);
        }
        d
    }

    pub fn iter(&self) -> impl Iterator<Item = (HwEvent, u64)> + '_ {
        ALL_EVENTS.iter().map(move |&e| (e, self.get(e)))
    }

    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&v| v == 0)
    }
}

impl Index<HwEvent> for EventCounts {
    type Output = u64;
    fn index(&self, e: HwEvent) -> &u64 {
        &self.0[e.index()]
    }
}

impl IndexMut<HwEvent> for EventCounts {
    fn index_mut(&mut self, e: HwEvent) -> &mut u64 {
        &mut self.0[e.index()]
    }
}

impl fmt::Debug for EventCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("EventCounts");
        for (e, v) in self.iter() {
            if v != 0 {
                d.field(e.name(), &v);
            }
        }
        d.finish()
    }
}

/// What the PMU hardware of a CPU model offers: how many events can be
/// counted *simultaneously*. Requesting more forces the kernel to
/// time-multiplex (see `tiptop-kernel::perf`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuCapabilities {
    /// Fixed-function counters (each tied to one [`HwEvent::is_fixed`] event).
    pub fixed_counters: usize,
    /// General-purpose programmable counters.
    pub programmable_counters: usize,
}

impl PmuCapabilities {
    /// Nehalem-style PMU: 3 fixed + 4 programmable.
    pub fn nehalem() -> Self {
        PmuCapabilities {
            fixed_counters: 3,
            programmable_counters: 4,
        }
    }

    /// The paper reports the Xeon W3550 supports "up to sixteen simultaneous
    /// events"; modelled as 3 fixed + 13 programmable.
    pub fn nehalem_wide() -> Self {
        PmuCapabilities {
            fixed_counters: 3,
            programmable_counters: 13,
        }
    }

    /// Older machines "used to have only a few counters" (§2.6).
    pub fn legacy(programmable: usize) -> Self {
        PmuCapabilities {
            fixed_counters: 0,
            programmable_counters: programmable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for e in ALL_EVENTS {
            assert_eq!(HwEvent::from_name(e.name()), Some(e));
        }
        assert_eq!(HwEvent::from_name("NOPE"), None);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; N_EVENTS];
        for e in ALL_EVENTS {
            assert!(e.index() < N_EVENTS);
            assert!(!seen[e.index()], "duplicate index for {e:?}");
            seen[e.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn counts_accumulate_and_delta() {
        let mut a = EventCounts::new();
        a.add(HwEvent::Cycles, 100);
        a.add(HwEvent::Instructions, 150);
        let mut b = a;
        b.add(HwEvent::Cycles, 50);
        let d = b.delta_since(&a);
        assert_eq!(d.get(HwEvent::Cycles), 50);
        assert_eq!(d.get(HwEvent::Instructions), 0);

        let mut sum = EventCounts::new();
        sum.accumulate(&a);
        sum.accumulate(&d);
        assert_eq!(sum.get(HwEvent::Cycles), b.get(HwEvent::Cycles));
    }

    #[test]
    fn delta_saturates_rather_than_underflows() {
        let mut a = EventCounts::new();
        a.set(HwEvent::Cycles, 10);
        let b = EventCounts::new();
        assert_eq!(b.delta_since(&a).get(HwEvent::Cycles), 0);
    }

    #[test]
    fn fixed_events_are_the_intel_fixed_set() {
        let fixed: Vec<_> = ALL_EVENTS.iter().filter(|e| e.is_fixed()).collect();
        assert_eq!(fixed.len(), 3);
    }
}
