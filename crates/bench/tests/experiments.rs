//! Golden-data regression tests: one test per paper experiment, each
//! asserting the paper-level *structure* of the regenerated artifact
//! (collapse happens where the numerics diverge, the victim's IPC dips
//! during the burst, exact counts validate to zero error, ...) rather than
//! eyeballed output. Machine-checkable counterparts of Figs 3, 6–11 and
//! the §2.4 validation; Figure 1 and Table 1 are covered by their module
//! tests.

use tiptop_bench::experiments::policy_lab::{LabPolicy, LabScenario};
use tiptop_bench::experiments::tournament::Detector;
use tiptop_bench::experiments::{
    evaluation_machines, fig03_evolution, fig06_07_phases, fig08_ipc_vs_instructions,
    fig09_compilers, fig10_datacenter, fig11_interference, fleet, grid, pipelines, policy_lab,
    reactive, scaling, tournament, validation,
};
use tiptop_core::reactive::MigrationMode;
use tiptop_workloads::spec::{Compiler, SpecBenchmark};

#[test]
fn fig03_ipc_collapses_exactly_where_the_numerics_diverge() {
    let r = fig03_evolution::run(7, 0.001);

    // The divergence step is a property of the matrix arithmetic, not of
    // any tuning: the paper observes it after 953 of 3327 samples.
    let step = r.divergence_step.expect("unclipped run must diverge");
    assert!((900..1010).contains(&step), "divergence at step {step}");

    // Nehalem x87: IPC ≈ 1 before the collapse, ≈ 0.03 after, while the
    // %ASS column lights up at the same instant.
    let nehalem = r.run_for("Nehalem x87");
    let collapse = nehalem.collapse_time.expect("assists must fire");
    let before = nehalem.ipc.mean_in(0.0, collapse - 1.0);
    let after = nehalem.ipc.mean_in(collapse + 2.0, f64::INFINITY);
    assert!(
        (0.85..1.45).contains(&before),
        "healthy interpreter IPC ≈ 1, got {before}"
    );
    assert!(after < 0.1, "collapsed IPC ≈ 0.03, got {after}");
    assert!(
        nehalem.assists.mean_in(collapse + 2.0, f64::INFINITY) > 5.0,
        "x87 assists must dominate the collapsed region"
    );
    // The collapse sits where the numerics put it: the healthy prefix is
    // 953/1448 of the steps but (being fast steps) less of the wall time.
    assert!(
        collapse > 0.1 * nehalem.wall && collapse < 0.6 * nehalem.wall,
        "collapse at {collapse}s of {}s",
        nehalem.wall
    );

    // The paper's fix: clipping keeps IPC healthy and speeds the whole run
    // up (§3.1 reports 2.3×).
    let clipped = r.run_for("Nehalem x87 clipped");
    assert!(clipped.collapse_time.is_none(), "no assists once clipped");
    assert!(clipped.ipc.mean() > 0.85, "clipped run stays at IPC ≈ 1");
    let speedup = r.clip_speedup();
    assert!(
        (1.7..3.5).contains(&speedup),
        "clip speedup {speedup} should be ≈ 2.3x"
    );

    // Fig 3 (d): the PPC970 has no x87-style assists — same diverging
    // numerics, no collapse.
    let ppc = r.run_for("PPC970");
    assert!(ppc.collapse_time.is_none(), "PPC970 never assists");
    let late = ppc.ipc.mean_in(0.8 * ppc.wall, f64::INFINITY);
    assert!(late > 0.8, "PPC970 IPC must not collapse, got {late}");

    assert!(r.report().contains("Figure 3"), "report renders");
}

#[test]
fn fig06_07_phase_shapes_hold_on_all_three_machines() {
    let r = fig06_07_phases::run(11, 0.02);

    for (mname, _) in evaluation_machines() {
        // astar: strong build/search alternation — a wide IPC swing with
        // repeated transitions, on every machine.
        let astar = r.run_for(mname, SpecBenchmark::Astar);
        let swing = astar.ipc.max_y() - astar.ipc.min_y();
        assert!(swing > 0.4, "{mname}: astar swing {swing} too flat");
        let mean = astar.ipc.mean();
        let crossings = astar
            .ipc
            .points
            .windows(2)
            .filter(|w| (w[0].1 - mean).signum() != (w[1].1 - mean).signum())
            .count();
        assert!(
            crossings >= 3,
            "{mname}: astar should alternate phases, {crossings} crossings"
        );

        // bwaves: steady streaming — relative dispersion well below astar's.
        let bwaves = r.run_for(mname, SpecBenchmark::Bwaves);
        let rel = |s: &tiptop_bench::report::Series| s.stddev_y() / s.mean().max(1e-9);
        assert!(
            rel(&bwaves.ipc) < 0.5 * rel(&astar.ipc),
            "{mname}: bwaves ({}) should be far steadier than astar ({})",
            rel(&bwaves.ipc),
            rel(&astar.ipc)
        );
    }

    // gromacs on Nehalem: high IPC with small but visible wiggles (skip
    // the first cold-cache sample).
    let gromacs = r.run_for("Nehalem", SpecBenchmark::Gromacs);
    assert!(
        (1.3..2.0).contains(&gromacs.ipc.mean()),
        "gromacs IPC ≈ 1.7, got {}",
        gromacs.ipc.mean()
    );
    let warm: Vec<f64> = gromacs.ipc.points.iter().skip(2).map(|(_, y)| *y).collect();
    let wiggle = warm.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - warm.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        (0.05..0.6).contains(&wiggle),
        "gromacs wiggles small but visible, got {wiggle}"
    );

    // The same instruction stream takes longer on the slower machines.
    for bench in fig06_07_phases::BENCHMARKS {
        let nehalem = r.run_for("Nehalem", bench).wall;
        let core = r.run_for("Core", bench).wall;
        let ppc = r.run_for("PPC970", bench).wall;
        assert!(
            nehalem < core && core < ppc,
            "{bench:?}: walls must order Nehalem {nehalem} < Core {core} < PPC970 {ppc}"
        );
    }

    assert!(r.report().contains("473.astar"), "report renders");
}

#[test]
fn fig08_instruction_axis_aligns_the_machines() {
    let r = fig08_ipc_vs_instructions::run(13, 0.02);

    // The two Intel machines execute the *same binary*: identical retired
    // instruction totals (up to the final-epoch sliver).
    let nehalem = r.curve_for("Nehalem");
    let core = r.curve_for("Core");
    let ppc = r.curve_for("PPC970");
    let intel_ratio = core.total_instructions as f64 / nehalem.total_instructions as f64;
    assert!(
        (0.99..1.01).contains(&intel_ratio),
        "same binary, same instructions: ratio {intel_ratio}"
    );
    // The PowerPC build retires ~7% more instructions — the small
    // rightward shift of Fig 8.
    let ppc_ratio = ppc.total_instructions as f64 / nehalem.total_instructions as f64;
    assert!(
        (1.05..1.10).contains(&ppc_ratio),
        "PPC970 shift should be ≈ 1.07, got {ppc_ratio}"
    );
    // Time axes do NOT align: the same instructions take longest on the
    // 1.8 GHz PPC970.
    assert!(nehalem.wall < ppc.wall);

    // On the instruction axis the final long search phase is the slow tail
    // everywhere: mean IPC over the last tenth of retired instructions
    // sits below each machine's overall mean.
    for c in &r.curves {
        let total_gi = c.ipc_vs_insns.last_x();
        let tail = c.ipc_vs_insns.mean_in(0.9 * total_gi, f64::INFINITY);
        assert!(
            tail < c.ipc_vs_insns.mean(),
            "{}: tail {tail} should sit below the mean {}",
            c.machine,
            c.ipc_vs_insns.mean()
        );
    }

    assert!(r.report().contains("giga-instructions"), "report renders");
}

#[test]
fn fig09_compiler_morals_reproduce() {
    let r = fig09_compilers::run(17, 0.02);
    let cell = |b, c| r.cell(b, c);

    // hmmer: icc wins on IPC *and* on time.
    let (g, i) = (
        cell(SpecBenchmark::Hmmer, Compiler::Gcc),
        cell(SpecBenchmark::Hmmer, Compiler::Icc),
    );
    assert!(i.lifetime_ipc > g.lifetime_ipc, "hmmer: icc IPC higher");
    assert!(i.wall < g.wall, "hmmer: icc faster");

    // sphinx3: gcc's IPC is LOWER yet it finishes first — fewer
    // instructions beat prettier IPC.
    let (g, i) = (
        cell(SpecBenchmark::Sphinx3, Compiler::Gcc),
        cell(SpecBenchmark::Sphinx3, Compiler::Icc),
    );
    assert!(g.lifetime_ipc < i.lifetime_ipc, "sphinx3: gcc IPC lower");
    assert!(g.wall < i.wall, "sphinx3: gcc still faster");
    assert!(g.instructions < i.instructions);

    // h264ref: IPC inversion between the phases, near-identical totals.
    let (g, i) = (
        cell(SpecBenchmark::H264ref, Compiler::Gcc),
        cell(SpecBenchmark::H264ref, Compiler::Icc),
    );
    let early = |r: &fig09_compilers::CompilerRun| r.ipc.mean_in(0.0, 0.15 * r.wall);
    let late = |r: &fig09_compilers::CompilerRun| r.ipc.mean_in(0.5 * r.wall, 0.95 * r.wall);
    assert!(
        early(g) > early(i),
        "h264ref phase 1: gcc {} vs icc {}",
        early(g),
        early(i)
    );
    assert!(
        late(g) < late(i),
        "h264ref phase 2: gcc {} vs icc {}",
        late(g),
        late(i)
    );
    let ratio = g.wall / i.wall;
    assert!((0.9..1.1).contains(&ratio), "h264ref totals close: {ratio}");

    // milc: same wall clock, gcc's higher IPC is only more instructions.
    let (g, i) = (
        cell(SpecBenchmark::Milc, Compiler::Gcc),
        cell(SpecBenchmark::Milc, Compiler::Icc),
    );
    let ratio = g.wall / i.wall;
    assert!(
        (0.93..1.07).contains(&ratio),
        "milc identical time: {ratio}"
    );
    assert!(
        g.lifetime_ipc > 1.15 * i.lifetime_ipc,
        "milc: gcc IPC higher"
    );
    assert!(
        g.instructions as f64 > 1.15 * i.instructions as f64,
        "...because gcc retires ~22% more instructions"
    );

    assert!(r.report().contains("gcc"), "report renders");
}

#[test]
fn fig10_burst_depresses_victim_ipc_while_cpu_stays_pegged() {
    let r = fig10_datacenter::run(19, 0.01);
    let [before, during, after] = r.windows();
    assert!(r.burst_end > r.arrival, "the burst must have happened");

    for v in &r.victims {
        let ipc_before = v.ipc.mean_in(before.0, before.1);
        let ipc_during = v.ipc.mean_in(during.0, during.1);
        let ipc_after = v.ipc.mean_in(after.0, after.1);
        // The headline: a clear IPC dip during the burst...
        assert!(
            ipc_during < 0.95 * ipc_before,
            "{}: IPC {ipc_before} -> {ipc_during} should dip during the burst",
            v.comm
        );
        // ...and recovery once the batch jobs leave.
        assert!(
            ipc_after > ipc_during,
            "{}: IPC should recover after the burst ({ipc_during} -> {ipc_after})",
            v.comm
        );
        // ...which `top` cannot see: %CPU stays pegged throughout.
        let cpu_during = v.cpu.mean_in(during.0, during.1);
        assert!(
            cpu_during > 99.0,
            "{}: %CPU must stay ≈100 during the burst, got {cpu_during}",
            v.comm
        );
        // The mechanism is the shared L3: the victims' miss rate rises.
        assert!(
            v.dmis.mean_in(during.0, during.1) > v.dmis.mean_in(before.0, before.1),
            "{}: LLC misses must rise during the burst",
            v.comm
        );
    }

    assert!(r.report().contains("sim-fluid"), "report renders");
}

#[test]
fn fig11_interference_matrix_orders_the_placements() {
    let r = fig11_interference::run(23);
    let alone = r.cell("alone").victim_ipc;
    let smt_mcf = r.cell("SMT siblings (mcf+mcf").victim_ipc;
    let cores_mcf = r.cell("separate cores (mcf+mcf").victim_ipc;
    let smt_light = r.cell("SMT siblings (mcf+light").victim_ipc;
    let no_smt = r.cell("separate cores, SMT off").victim_ipc;

    // SMT siblings contend in the pipelines AND the private L2; separate
    // cores only in the shared L3; alone not at all.
    assert!(
        smt_mcf < cores_mcf && cores_mcf < alone,
        "placement order: smt {smt_mcf} < cores {cores_mcf} < alone {alone}"
    );
    // A cache-light sibling costs the pipeline share but not the caches.
    assert!(
        smt_mcf < smt_light && smt_light < alone,
        "light partner: smt {smt_mcf} < light {smt_light} < alone {alone}"
    );
    // Shared-L3 thrash is visible in the victim's LLC miss column (the
    // always-missing cold arena keeps the solo baseline above zero).
    let l3_alone = r.cell("alone").victim_l3_per100;
    let l3_pair = r.cell("separate cores (mcf+mcf").victim_l3_per100;
    assert!(
        l3_pair > 1.5 * l3_alone,
        "co-running mcf must thrash the shared L3: {l3_alone} -> {l3_pair}"
    );
    // The SMT-off knob: separate cores behave the same with HT disabled.
    let ratio = no_smt / cores_mcf;
    assert!(
        (0.85..1.15).contains(&ratio),
        "SMT off must not change core-to-core contention: {ratio}"
    );

    // The staircase: sibling pressure until t=12, L3-only until t=24,
    // alone afterwards — victim IPC steps *up* at each event.
    let s = &r.staircase;
    let sibling = s.mean_in(6.0, 12.0);
    let separate = s.mean_in(18.0, 24.0);
    let solo = s.mean_in(30.0, 36.0);
    assert!(
        sibling < separate && separate < solo,
        "staircase must rise: {sibling} < {separate} < {solo}"
    );

    let report = r.report();
    assert!(report.contains("PU#4"), "topology diagram renders");
    assert!(report.contains("staircase"), "report renders");
}

#[test]
fn fleet_merges_all_machines_into_one_deterministic_timeline() {
    let r = fleet::run_on(31, 0.02, 3);

    // Every machine contributes to the one merged stream, which is ordered
    // by (sim-time, machine-index) end to end.
    assert_eq!(r.machines, vec!["Nehalem", "Core", "PPC970"]);
    for m in &r.machines {
        assert!(
            r.merged.iter().any(|cf| &cf.machine == m),
            "{m} missing from the merged stream"
        );
    }
    for w in r.merged.windows(2) {
        let a = (w[0].frame.time, w[0].machine_index);
        let b = (w[1].frame.time, w[1].machine_index);
        assert!(a <= b, "merge order violated: {a:?} then {b:?}");
    }

    // Same binary, shared wall clock: the faster machine finishes first and
    // drops out of the timeline while the PPC970 is still running.
    let nehalem = r.wall_for("Nehalem");
    let core = r.wall_for("Core");
    let ppc = r.wall_for("PPC970");
    assert!(
        nehalem < core && core < ppc,
        "fleet completion must order Nehalem {nehalem} < Core {core} < PPC970 {ppc}"
    );
    let tail_machines: Vec<&str> = r
        .merged
        .iter()
        .filter(|cf| cf.frame.time.as_secs_f64() > nehalem + 1.0)
        .map(|cf| cf.machine.as_str())
        .collect();
    assert!(
        !tail_machines.is_empty() && tail_machines.iter().all(|m| *m != "Nehalem"),
        "after its completion the Nehalem leaves the timeline"
    );

    // The acceptance criterion: >1 worker thread produces frames
    // byte-identical to the single-threaded run with the same seed.
    let single = fleet::run_on(31, 0.02, 1);
    assert_eq!(
        r.rendered_stream(),
        single.rendered_stream(),
        "3 workers vs 1 worker must not change one byte"
    );

    assert!(r.report().contains("473.astar"), "report renders");
}

#[test]
fn grid_migration_relieves_the_victims_mid_burst() {
    let r = grid::run(37, 0.01);
    let [before, during, after] = r.windows();
    assert!(r.arrival < r.relief && r.relief < r.end);

    for v in &r.victims {
        let ipc_before = v.ipc.mean_in(before.0, before.1);
        let ipc_during = v.ipc.mean_in(during.0, during.1);
        let ipc_after = v.ipc.mean_in(after.0, after.1);
        // The dwell depresses the victims (same L3 mechanism as Fig 10)...
        assert!(
            ipc_during < 0.95 * ipc_before,
            "{}: IPC {ipc_before} -> {ipc_during} should dip during the dwell",
            v.comm
        );
        // ...and the *migration* — not job completion; the aggressors are
        // endless — is what ends it.
        assert!(
            ipc_after > 1.1 * ipc_during,
            "{}: IPC must recover once the aggressors are migrated away \
             ({ipc_during} -> {ipc_after})",
            v.comm
        );
        // Which the co-running `top` monitor cannot see: %CPU stays pegged.
        let cpu_during = v.cpu.mean_in(during.0, during.1);
        assert!(
            cpu_during > 99.0,
            "{}: %CPU must stay ~100 through the dwell, got {cpu_during}",
            v.comm
        );
    }

    // The migration is observable in the merged stream: every aggressor
    // runs on the victims' node during the dwell and on the spare after —
    // never on the spare before the relief instant, never on the victims'
    // node after the handover frame.
    for h in &r.handovers {
        assert_eq!(
            h.exit_at, h.start_at,
            "{}: exit on the source and spawn on the destination must \
             carry the same sim-time",
            h.comm
        );
        assert_eq!(h.exit_at, r.relief);
        assert!(
            r.frames_showing(grid::VICTIM_NODE, &h.comm, r.arrival, r.relief) > 0,
            "{}: visible on the victims' node during the dwell",
            h.comm
        );
        assert_eq!(
            r.frames_showing(grid::SPARE_NODE, &h.comm, 0.0, r.relief - 0.1),
            0,
            "{}: never on the spare before the migration",
            h.comm
        );
        assert_eq!(
            r.frames_showing(grid::VICTIM_NODE, &h.comm, r.relief + 0.1, f64::INFINITY),
            0,
            "{}: gone from the victims' node after the handover frame",
            h.comm
        );
        assert!(
            r.frames_showing(grid::SPARE_NODE, &h.comm, r.relief - 0.1, f64::INFINITY) > 0,
            "{}: visible on the spare from the handover frame on",
            h.comm
        );
    }

    // The fleet-scale run_all shape: two monitors on the contended node
    // (tiptop + top), one on the spare, all in one merged stream.
    let count = |m: &str, s: &str| {
        r.merged
            .iter()
            .filter(|cf| cf.machine == m && cf.source == s)
            .count()
    };
    assert!(count(grid::VICTIM_NODE, "tiptop") > 0);
    assert_eq!(
        count(grid::VICTIM_NODE, "tiptop"),
        count(grid::VICTIM_NODE, "top"),
        "both observers cover the whole run"
    );
    assert_eq!(
        count(grid::VICTIM_NODE, "tiptop"),
        count(grid::SPARE_NODE, "tiptop"),
        "the spare node is observed for the whole run too"
    );
    for w in r.merged.windows(2) {
        let a = (w[0].frame.time, w[0].machine_index);
        let b = (w[1].frame.time, w[1].machine_index);
        assert!(a <= b, "merge order violated: {a:?} then {b:?}");
    }

    assert!(r.report().contains("migrated away"), "report renders");
}

#[test]
fn reactive_policy_fires_within_one_refresh_of_the_scripted_relief() {
    // Run the reactive experiment single-threaded; the worker-thread
    // determinism is asserted against this run's stream below.
    let r = reactive::run_on(41, 0.01, 1);
    assert!(r.arrival < r.trigger() && r.trigger() < r.end);

    // The headline: the relief is *decided from the stream*, and the
    // trigger lands within one refresh interval of the instant the
    // scripted grid baseline migrates at.
    assert_eq!(r.scripted_relief, r.baseline.relief);
    assert!(
        (r.trigger() - r.scripted_relief).abs() <= r.refresh + 1e-9,
        "reactive trigger {} vs scripted relief {} must agree within one \
         refresh ({}s)",
        r.trigger(),
        r.scripted_relief,
        r.refresh
    );

    // One firing moved every aggressor; the decisions applied at the first
    // epoch boundary after the deciding frame — same instant for all five,
    // kill on the source == spawn on the destination.
    assert_eq!(r.decisions.len(), 5, "all five aggressors evicted");
    for d in &r.decisions {
        assert_eq!(d.policy, "ipc-floor");
        assert_eq!(d.decided_at.as_secs_f64(), r.trigger());
        assert_eq!(d.applied_at.as_secs_f64(), r.applied());
    }
    let boundary_lag = r.applied() - r.trigger();
    assert!(
        boundary_lag > 0.0 && boundary_lag <= 0.02 + 1e-9,
        "applied at the next 20 ms epoch boundary, got +{boundary_lag}s"
    );
    assert_eq!(r.handovers.len(), 5);
    for h in &r.handovers {
        assert_eq!(
            h.exit_at, h.start_at,
            "{}: exit on the source and spawn on the destination must \
             carry the same sim-time",
            h.comm
        );
        assert_eq!(h.exit_at, r.applied());
        // Stream-level: on the victims' node during the dwell, never on
        // the spare before the migration, gone from the victims' node (and
        // on the spare) after it.
        assert!(r.frames_showing(grid::VICTIM_NODE, &h.comm, r.arrival, r.trigger()) > 0);
        assert_eq!(
            r.frames_showing(grid::SPARE_NODE, &h.comm, 0.0, r.applied()),
            0
        );
        assert_eq!(
            r.frames_showing(grid::VICTIM_NODE, &h.comm, r.applied(), f64::INFINITY),
            0
        );
        assert!(r.frames_showing(grid::SPARE_NODE, &h.comm, r.applied(), f64::INFINITY) > 0);
    }

    // The Fig 10 shape, with the dwell ended by the *policy*: IPC dips
    // through the dwell, recovers once the migration applies — while the
    // co-running `top` still shows every %CPU pegged.
    for v in &r.victims {
        let [before, during, after] = r.windows();
        let ipc_before = v.ipc.mean_in(before.0, before.1);
        let ipc_during = v.ipc.mean_in(during.0, during.1);
        let ipc_after = v.ipc.mean_in(after.0, after.1);
        assert!(
            ipc_during < 0.95 * ipc_before,
            "{}: IPC {ipc_before} -> {ipc_during} should dip during the dwell",
            v.comm
        );
        assert!(
            ipc_after > 1.1 * ipc_during,
            "{}: IPC must recover once the policy's migration applies \
             ({ipc_during} -> {ipc_after})",
            v.comm
        );
        let cpu_during = v.cpu.mean_in(during.0, during.1);
        assert!(
            cpu_during > 99.0,
            "{}: %CPU must stay ~100 through the dwell, got {cpu_during}",
            v.comm
        );
        // Side-by-side: after its relief the reactive run recovers to the
        // same place the scripted baseline does (the migration instants
        // differ by at most one refresh + one epoch).
        let scripted_after = r
            .baseline
            .victim(&v.comm)
            .ipc
            .mean_in(r.end - 6.0, r.end + 1.0);
        assert!(
            (ipc_after - scripted_after).abs() < 0.05 * scripted_after,
            "{}: reactive recovery {ipc_after} vs scripted {scripted_after}",
            v.comm
        );
    }

    // Determinism: stream AND decisions byte-identical at 1, 2, 8 workers
    // (the main run above was single-threaded — it is the golden).
    let golden = r.rendered_stream();
    assert!(golden.contains("[decision ipc-floor 'batch0'"));
    assert_eq!(
        golden,
        reactive::run_stream(41, 0.01, 2),
        "2 workers must not change one byte"
    );
    assert_eq!(
        golden,
        reactive::run_stream(41, 0.01, 8),
        "8 workers must not change one byte"
    );

    assert!(r.report().contains("policy fired"), "report renders");
}

#[test]
fn validation_pin_counts_are_exact_and_tiptop_agrees() {
    let r = validation::run(29);
    assert_eq!(r.rows.len(), 3);
    for row in &r.rows {
        // Pin sees every basic block: its count IS the ground truth.
        assert_eq!(
            row.pin_rel_err, 0.0,
            "{}: Pin must be exact, got {} vs {}",
            row.kernel, row.pin_count, row.ground_truth_instructions
        );
        // The program retires what the assembly says (§2.4's analytic
        // expectation), up to the final scheduler-slice sliver.
        assert!(
            row.ground_truth_instructions >= row.expected.instructions,
            "{}: must retire at least the analytic count",
            row.kernel
        );
        assert!(
            row.expected_rel_err < 0.005,
            "{}: analytic vs ground truth off by {}",
            row.kernel,
            row.expected_rel_err
        );
        // Tiptop's counter-derived count agrees with Pin wherever both
        // observed (the paper: within 0.06% over full runs).
        assert!(
            row.tiptop_vs_pin_rel_err() < 6e-4,
            "{}: tiptop vs Pin off by {}",
            row.kernel,
            row.tiptop_vs_pin_rel_err()
        );
    }
    // The branch kernel's misprediction ratio validates too.
    let branch = r.row("branch");
    let rel = (branch.ground_truth_branches as f64 - branch.expected.branches as f64).abs()
        / branch.expected.branches as f64;
    assert!(rel < 0.005, "branch count off by {rel}");

    assert!(r.report().contains("pin"), "report renders");
}

#[test]
fn tournament_resume_beats_restart_under_both_detectors() {
    let r = tournament::run_on(43, 0.01, 1);
    assert_eq!(r.cells.len(), 4, "the full 2x2 ran");

    for detector in [Detector::IpcFloor, Detector::Cusum] {
        let restart = r.cell(detector, MigrationMode::Restart);
        let resume = r.cell(detector, MigrationMode::Resume);

        // Within a detector the trigger is identical across modes: the
        // decision is made from the same merged stream before any
        // migration lands, so the wall-clock gap below is pure mode.
        assert_eq!(restart.trigger, resume.trigger, "{detector:?}");
        assert_eq!(restart.applied, resume.applied, "{detector:?}");
        assert!(
            r.arrival < restart.trigger,
            "{detector:?} fired during the burst, not the warmup"
        );
        assert!(
            restart.canary_dwell_ipc < 1.15,
            "{detector:?} fired on a genuinely depressed canary, got {}",
            restart.canary_dwell_ipc
        );

        // The headline pin: resume carries the payload's progress across
        // the hop and completes in strictly less wall-clock than restart,
        // which redoes every instruction the contended node had retired.
        assert!(
            resume.payload_wall < restart.payload_wall,
            "{detector:?}: resume {} must beat restart {}",
            resume.payload_wall,
            restart.payload_wall
        );
        assert!(
            r.saving(detector) > 0.5 * r.dwell,
            "{detector:?}: the saving should be of dwell magnitude, got {}s",
            r.saving(detector)
        );

        // Conservation: both modes end with the whole job retired — the
        // resumed incarnation reports the whole job's totals — but only
        // restart paid for instructions twice.
        assert_eq!(resume.payload_total_insns, r.payload_insns, "{detector:?}");
        assert_eq!(restart.payload_total_insns, r.payload_insns, "{detector:?}");
        assert_eq!(resume.wasted_insns, 0, "{detector:?}");
        assert!(
            restart.wasted_insns > r.payload_insns / 2,
            "{detector:?}: restart redid most of the dwell's work, got {}",
            restart.wasted_insns
        );

        // The relocated payload recovers on the spare node: the restart
        // clone runs long enough there for its mean IPC to approach the
        // healthy level (the resumed one may exit within a frame or two of
        // landing, so its spare-side mean is reported, not pinned).
        assert!(
            restart.recovered_ipc > 0.8,
            "{detector:?}: payload IPC on the spare stayed at {}",
            restart.recovered_ipc
        );
        assert_eq!(resume.decisions.len(), 1, "exactly one job relocated");
        assert_eq!(resume.decisions[0].tag, "sim-batch");
        assert_eq!(resume.decisions[0].policy, detector.label());
        assert_eq!(resume.decisions[0].mode, MigrationMode::Resume);
    }

    // The two families legitimately disagree on when to act — that is what
    // makes it a tournament, not one detector measured twice.
    assert_ne!(
        r.cell(Detector::IpcFloor, MigrationMode::Resume).trigger,
        r.cell(Detector::Cusum, MigrationMode::Resume).trigger,
        "detectors should differ on the trigger instant"
    );

    // Determinism: a cell that exercises both new pieces (CUSUM + resume)
    // is byte-identical at 1, 2 and 8 worker threads.
    let golden = tournament::run_cell_stream(43, 0.01, 1, Detector::Cusum, MigrationMode::Resume);
    assert!(golden.contains("[decision cusum resume 'sim-batch'"));
    assert_eq!(
        golden,
        tournament::run_cell_stream(43, 0.01, 2, Detector::Cusum, MigrationMode::Resume),
        "2 workers must not change one byte"
    );
    assert_eq!(
        golden,
        tournament::run_cell_stream(43, 0.01, 8, Detector::Cusum, MigrationMode::Resume),
        "8 workers must not change one byte"
    );

    assert!(r.report().contains("resume saves"), "report renders");
}

#[test]
fn scaling_sweeps_threads_and_reports_a_full_curve() {
    // Tiny points and a short sweep: the full 10/100/1000 × 1/2/4/8 curve
    // runs in bench_timing; this asserts the experiment's structure, not
    // its release-profile numbers.
    let r = scaling::run_on(53, &[1, 2], &[(4, 50)]);
    assert_eq!(r.points.len(), 1);
    assert_eq!(r.thread_sweep, vec![1, 2]);
    let p = &r.points[0];
    assert_eq!(p.machines, 4);
    assert_eq!(p.frames, 200, "every frame delivered exactly once");
    assert_eq!(p.arms.len(), 2, "one arm per swept thread count");
    let a1 = p.arm(1).expect("single-thread arm");
    assert!(
        a1.batches < p.frames,
        "transport must coalesce: {} messages for {} frames",
        a1.batches,
        p.frames
    );
    assert!(a1.peak_buffered_frames > 0, "merge buffered something");
    assert!(a1.peak_buffered_bytes > 0, "byte accounting is live");
    assert!(a1.frames_per_sec > 0.0 && p.baseline_frames_per_sec > 0.0);
    assert!(
        (a1.parallel_efficiency - 1.0).abs() < 1e-9,
        "the 1-thread arm is its own efficiency base, got {}",
        a1.parallel_efficiency
    );
    let a2 = p.arm(2).expect("2-thread arm");
    assert!(a2.parallel_efficiency > 0.0);
    assert!(p.speedup() > 0.0);
    assert!(
        r.anchor().is_none(),
        "no 100-machine point in this tiny run"
    );
    let json = r.to_json();
    assert!(json.contains("\"schema\": \"tiptop-bench-cluster/2\""));
    assert!(json.contains("\"thread_sweep\": [1, 2]"));
    assert!(json.contains("\"machines\": 4,"));
    assert!(json.contains("\"threads\": 2,"));
    assert!(json.contains("\"parallel_efficiency\""));
    assert!(json.contains("\"peak_rss_bytes\""));
    assert!(json.contains("\"rss_per_machine_bytes\""));
    assert!(json.contains("\"rss_delta_bytes\""));
    assert!(r.report().contains("scaling frontier"));
}

#[test]
fn policy_lab_ranks_least_loaded_placement_first_in_the_fleet() {
    let r = policy_lab::run_on(53, 0.01, 1);
    assert_eq!(r.cells.len(), 9, "the full 3x3 grid ran");

    // Structure: every cell fired exactly one migration, landed it at an
    // epoch boundary after its trigger, and recovered the canary above the
    // dwell level on the victim node.
    for c in &r.cells {
        assert_eq!(
            c.migrations, 1,
            "{:?}/{:?} fired once",
            c.policy, c.scenario
        );
        assert!(c.applied >= c.trigger, "applied at the next epoch boundary");
        assert!(
            c.payload_wall > c.applied,
            "the payload finished after the hop"
        );
        assert!(
            c.canary_recovery_ipc > 1.0,
            "{:?}/{:?}: canary recovered past the dwell (~1.0), got {}",
            c.policy,
            c.scenario,
            c.canary_recovery_ipc
        );
    }

    // The population detector calibrates on the same plateau the CUSUM
    // skips and confirms on the second dwell sample — one refresh ahead of
    // the CUSUM, level with the floor's patience.
    for scenario in LabScenario::ALL {
        let population = r.cell(LabPolicy::Population, scenario);
        let cusum = r.cell(LabPolicy::Cusum, scenario);
        let floor = r.cell(LabPolicy::Floor, scenario);
        assert!(
            population.trigger < cusum.trigger,
            "{scenario:?}: population ({}) should fire before cusum ({})",
            population.trigger,
            cusum.trigger
        );
        assert_eq!(
            population.trigger, floor.trigger,
            "{scenario:?}: population and floor confirm on the same refresh"
        );
    }

    // Fixed placement always relieves onto the designated spare; live
    // placement routes around it to the idle third node the moment the
    // spare is busy.
    for scenario in [LabScenario::BurstCfs, LabScenario::BurstRr] {
        for policy in LabPolicy::ALL {
            assert_eq!(r.cell(policy, scenario).destination, "node-spare");
        }
    }
    assert_eq!(
        r.cell(LabPolicy::Floor, LabScenario::Fleet).destination,
        "node-spare"
    );
    assert_eq!(
        r.cell(LabPolicy::Cusum, LabScenario::Fleet).destination,
        "node-spare"
    );
    assert_eq!(
        r.cell(LabPolicy::Population, LabScenario::Fleet)
            .destination,
        policy_lab::IDLE_NODE,
        "least-loaded placement picks the idle machine from live fleet load"
    );

    // The ranked table: in the fleet scenario, population+least-loaded wins
    // wall-clock outright because the fixed policies co-locate the payload
    // with the background load.
    assert_eq!(
        r.ranking(LabScenario::Fleet),
        vec![LabPolicy::Population, LabPolicy::Cusum, LabPolicy::Floor]
    );
    let fleet_floor = r.cell(LabPolicy::Floor, LabScenario::Fleet);
    let burst_floor = r.cell(LabPolicy::Floor, LabScenario::BurstCfs);
    assert!(
        fleet_floor.payload_wall > burst_floor.payload_wall,
        "fixed placement pays for co-locating with the busy spare \
         ({} vs {})",
        fleet_floor.payload_wall,
        burst_floor.payload_wall
    );
    let fleet_population = r.cell(LabPolicy::Population, LabScenario::Fleet);
    assert!(
        fleet_population.payload_wall < fleet_floor.payload_wall,
        "routing around the busy spare wins wall-clock"
    );
    assert!(
        fleet_population.recovered_ipc > fleet_floor.recovered_ipc,
        "and recovers more IPC on the destination"
    );

    // In the burst scenarios nobody is co-located, so the walls collapse to
    // the trigger instants: floor and population tie (same trigger, same
    // destination) and the stable ranking keeps declaration order.
    assert_eq!(
        r.ranking(LabScenario::BurstCfs),
        vec![LabPolicy::Cusum, LabPolicy::Floor, LabPolicy::Population]
    );
    assert_eq!(
        r.ranking(LabScenario::BurstRr),
        vec![LabPolicy::Cusum, LabPolicy::Floor, LabPolicy::Population]
    );

    // The kernel-layer axis is real: the same burst under round-robin
    // kernels produces a different stream than under CFS-like kernels.
    let rr = policy_lab::run_cell_stream(53, 0.01, 1, LabPolicy::Population, LabScenario::BurstRr);
    let cfs =
        policy_lab::run_cell_stream(53, 0.01, 1, LabPolicy::Population, LabScenario::BurstCfs);
    assert_ne!(rr, cfs, "swapping the epoch planner must change the frames");
    assert!(rr.contains("[decision population+least-loaded resume 'sim-batch'"));

    // Determinism: the cell exercising both new layers (round-robin kernels
    // + population/least-loaded policy) is byte-identical at 2 and 8
    // worker threads.
    assert_eq!(
        rr,
        policy_lab::run_cell_stream(53, 0.01, 2, LabPolicy::Population, LabScenario::BurstRr),
        "2 workers must not change one byte"
    );
    assert_eq!(
        rr,
        policy_lab::run_cell_stream(53, 0.01, 8, LabPolicy::Population, LabScenario::BurstRr),
        "8 workers must not change one byte"
    );

    let report = r.report();
    assert!(report.contains("policy lab (3 policies × 3 scenarios"));
    assert!(report.contains("population+least-loaded"));
    assert!(report.contains("node-idle"));
}

#[test]
fn pipelines_pin_stage_ordering_critical_path_and_thread_byte_identity() {
    let golden = pipelines::run_on(7, 1);

    // The ETL chain is strictly sequential: declaration order is execution
    // order, and every stage starts exactly 50 ms after its predecessor
    // exits (the submission gap is above the scheduler epoch, so the
    // after-exit edges fire exactly).
    let etl = golden.run_named("etl-chain");
    let order: Vec<&str> = etl.records.iter().map(|r| r.tag.as_str()).collect();
    assert_eq!(order, ["extract", "transform", "load", "report"]);
    for w in etl.records.windows(2) {
        assert!(
            (w[1].start - (w[0].end + 0.050)).abs() < 1e-9,
            "{} must start exactly 50ms after {} exits ({} vs {})",
            w[1].tag,
            w[0].tag,
            w[1].start,
            w[0].end + 0.050
        );
    }
    // A chain's wall-clock IS its critical path: the sum of its stage
    // durations plus its three submission gaps.
    let chain_path: f64 = etl.records.iter().map(|r| r.end - r.start).sum::<f64>() + 3.0 * 0.050;
    assert!((etl.wall - chain_path).abs() < 1e-9);
    assert_eq!(etl.depth, 4);

    // The build farm fans out: configure first, then every compile unit
    // starts exactly at its staggered delay, and the farm's wall-clock
    // beats the serialized sum of its compile durations.
    let farm = golden.run_named("build-farm");
    assert_eq!(farm.records[0].tag, "configure");
    let configure_end = farm.records[0].end;
    let mut compile_sum = 0.0;
    for r in &farm.records[1..] {
        let unit: usize = r.tag.strip_prefix("compile-").unwrap().parse().unwrap();
        let delay = 0.030 + 0.010 * unit as f64;
        assert!(
            (r.start - (configure_end + delay)).abs() < 1e-9,
            "{} must start exactly {delay}s after configure exits",
            r.tag
        );
        compile_sum += r.end - r.start;
    }
    assert!(
        farm.wall < compile_sum,
        "fan-out must beat the serialized compile time ({} vs {compile_sum})",
        farm.wall
    );
    assert_eq!(farm.depth, 2);

    // Map-shuffle fans out to the mappers and back in to node-0's sorters,
    // every edge crossing machines with exact firing instants.
    let shuffle = golden.run_named("map-shuffle");
    assert_eq!(shuffle.records[0].tag, "extract");
    for i in 0..2 {
        let map = shuffle
            .records
            .iter()
            .find(|r| r.tag == format!("map-{i}"))
            .unwrap();
        let sort = shuffle
            .records
            .iter()
            .find(|r| r.tag == format!("sort-{i}"))
            .unwrap();
        assert_ne!(map.machine, 0, "mappers run off the extract node");
        assert_eq!(sort.machine, 0, "sorters shuffle back to node-0");
        let delay = 0.040 + 0.020 * i as f64;
        assert!((map.start - (shuffle.records[0].end + delay)).abs() < 1e-9);
        assert!((sort.start - (map.end + 0.030)).abs() < 1e-9);
    }

    // Byte-identity at 2 and 8 workers, for all four scripts — including
    // the seeded random DAG, the determinism case of the byte-identity
    // suite: same seed, same merged stream, same records, byte for byte.
    for threads in [2usize, 8] {
        let other = pipelines::run_on(7, threads);
        for (a, b) in golden.runs.iter().zip(&other.runs) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.stream, b.stream,
                "{}: {threads} workers must not change one byte",
                a.name
            );
            assert_eq!(a.records.len(), b.records.len());
            for (x, y) in a.records.iter().zip(&b.records) {
                assert_eq!((x.tag.as_str(), x.machine), (y.tag.as_str(), y.machine));
                assert_eq!(x.start.to_bits(), y.start.to_bits(), "{}", x.tag);
                assert_eq!(x.end.to_bits(), y.end.to_bits(), "{}", x.tag);
            }
        }
    }
}
