//! Epoch-driven CFS-like scheduler.
//!
//! The kernel advances time in fixed *epochs* (default 20 ms). Each epoch the
//! scheduler picks, per processing unit, at most one runnable task; fairness
//! across epochs comes from CFS-style virtual runtimes — tasks that were left
//! out keep their low `vruntime` and win the next epoch, so timesharing
//! emerges at epoch granularity (far finer than the tool's seconds-scale
//! refresh).
//!
//! Placement mirrors the behaviour the paper leans on: a waking task prefers
//! (1) the PU it last ran on if free (cache warmth), then (2) a PU on a fully
//! idle *physical core* (so SMT siblings are used only when all cores are
//! busy — and the mostly-idle tiptop process itself lands "on the least
//! loaded core", §2.5), then (3) any free PU. `taskset`-style affinity masks
//! restrict all choices.
//!
//! The pick *order* is pluggable: a [`Scheduler`] turns a [`SchedCtx`] (the
//! topology plus every runnable entity) into an [`EpochPlan`] once per
//! epoch. [`CfsLike`] is the default and what every paper figure runs on;
//! [`Fifo`] and [`RoundRobin`] are alternative planners, and custom ones
//! plug in through [`SchedulerSelect::custom`] without touching the kernel.

use std::fmt;
use std::sync::Arc;

use tiptop_machine::topology::{PuId, Topology};

use crate::task::Pid;

/// A set of PUs a task may run on (`taskset` mask). Supports up to 64 PUs,
/// ample for the paper's 16-PU data-center nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpuSet(u64);

impl CpuSet {
    /// All PUs allowed.
    pub fn all() -> CpuSet {
        CpuSet(u64::MAX)
    }

    /// Only `pu` allowed.
    pub fn single(pu: PuId) -> CpuSet {
        assert!(pu.0 < 64, "CpuSet supports up to 64 PUs");
        CpuSet(1 << pu.0)
    }

    /// Allow exactly the given PUs.
    pub fn of(pus: &[PuId]) -> CpuSet {
        let mut m = 0u64;
        for pu in pus {
            assert!(pu.0 < 64, "CpuSet supports up to 64 PUs");
            m |= 1 << pu.0;
        }
        assert!(m != 0, "empty CpuSet");
        CpuSet(m)
    }

    /// Fallible [`CpuSet::single`]: `None` when `pu` is beyond the 64-PU
    /// mask. User-facing builders (`Scenario::pin_at`, spawn affinities)
    /// route through this so a bad mask surfaces as a typed scenario error
    /// instead of a panic.
    pub fn try_single(pu: PuId) -> Option<CpuSet> {
        (pu.0 < 64).then(|| CpuSet(1 << pu.0))
    }

    /// Fallible [`CpuSet::of`]: `None` for an empty set or any PU ≥ 64.
    pub fn try_of(pus: &[PuId]) -> Option<CpuSet> {
        let mut m = 0u64;
        for pu in pus {
            if pu.0 >= 64 {
                return None;
            }
            m |= 1 << pu.0;
        }
        (m != 0).then_some(CpuSet(m))
    }

    pub fn allows(&self, pu: PuId) -> bool {
        pu.0 < 64 && (self.0 >> pu.0) & 1 == 1
    }

    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }
}

/// CFS weight for a nice level: each nice step changes the share by ~1.25×,
/// as in Linux.
pub fn weight_for_nice(nice: i32) -> f64 {
    1.25f64.powi(-nice)
}

/// Scheduler's view of one runnable task.
#[derive(Clone, Debug)]
pub struct SchedEntity {
    pub pid: Pid,
    pub vruntime: f64,
    pub weight: f64,
    pub affinity: CpuSet,
    /// PU the task last ran on, for cache-warm placement.
    pub last_pu: Option<PuId>,
}

/// The epoch's placement decision: `assignment[pu] = Some(pid)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochPlan {
    pub assignment: Vec<Option<Pid>>,
}

impl EpochPlan {
    pub fn running_pairs(&self) -> impl Iterator<Item = (PuId, Pid)> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(pu, p)| p.map(|pid| (PuId(pu), pid)))
    }

    pub fn num_running(&self) -> usize {
        self.assignment.iter().filter(|p| p.is_some()).count()
    }
}

/// Plan one epoch: assign the lowest-vruntime runnable tasks to PUs.
///
/// Deterministic: ties break on pid, placement preferences are fixed-order.
/// This is the [`CfsLike`] policy as a free function, kept for callers that
/// predate the [`Scheduler`] trait.
pub fn plan_epoch(topo: &Topology, runnable: &[SchedEntity]) -> EpochPlan {
    // Lowest vruntime first; ties on pid for determinism.
    let mut order: Vec<&SchedEntity> = runnable.iter().collect();
    order.sort_by(|a, b| {
        a.vruntime
            .partial_cmp(&b.vruntime)
            .unwrap()
            .then_with(|| a.pid.cmp(&b.pid))
    });
    place_in_order(topo, &order)
}

/// The greedy placement pass shared by every planner: walk `order` (highest
/// priority first) and give each entity its preferred free PU — warm, then
/// fully idle core, then warm-but-shared, then any allowed. Entities left
/// over when PUs run out simply don't run this epoch.
pub fn place_in_order(topo: &Topology, order: &[&SchedEntity]) -> EpochPlan {
    let mut assignment: Vec<Option<Pid>> = vec![None; topo.num_pus()];
    let mut core_busy = vec![0u32; topo.num_cores()];
    for ent in order {
        let chosen = choose_pu(topo, &assignment, &core_busy, ent);
        if let Some(pu) = chosen {
            assignment[pu.0] = Some(ent.pid);
            core_busy[topo.core_of(pu).0] += 1;
        }
        // else: no allowed PU free this epoch; under CfsLike the task keeps
        // its low vruntime and wins next epoch — timesharing.
    }
    EpochPlan { assignment }
}

fn choose_pu(
    topo: &Topology,
    assignment: &[Option<Pid>],
    core_busy: &[u32],
    ent: &SchedEntity,
) -> Option<PuId> {
    let free_allowed = |pu: PuId| assignment[pu.0].is_none() && ent.affinity.allows(pu);

    // 1. Warm PU, if free and its core is not already busy with someone else
    //    (don't volunteer for SMT sharing just for warmth).
    if let Some(last) = ent.last_pu {
        if last.0 < assignment.len() && free_allowed(last) && core_busy[topo.core_of(last).0] == 0 {
            return Some(last);
        }
    }
    // 2. Any PU on a fully idle physical core.
    for pu in topo.pus() {
        if free_allowed(pu) && core_busy[topo.core_of(pu).0] == 0 {
            return Some(pu);
        }
    }
    // 3. Warm PU even if sharing the core.
    if let Some(last) = ent.last_pu {
        if last.0 < assignment.len() && free_allowed(last) {
            return Some(last);
        }
    }
    // 4. Any free allowed PU (SMT sibling of a busy core).
    topo.pus().find(|&pu| free_allowed(pu))
}

/// What a [`Scheduler`] sees when planning one epoch: the machine topology
/// plus every runnable entity (vruntime, weight, affinity mask, last-ran
/// PU) and the index of the epoch being planned.
#[derive(Debug)]
pub struct SchedCtx<'a> {
    pub topo: &'a Topology,
    pub runnable: &'a [SchedEntity],
    /// 0-based epoch count since the engine booted; lets a planner rotate
    /// or age without carrying its own clock.
    pub epoch_index: u64,
}

/// An in-kernel epoch planner. Once per epoch the engine hands the planner
/// a [`SchedCtx`] and applies whatever [`EpochPlan`] comes back; everything
/// else (perf counting, memory, migration) is policy-agnostic.
///
/// Implementations must be deterministic functions of the contexts seen so
/// far — the cluster layer replays machines on arbitrary worker threads and
/// expects byte-identical streams. `Send + Sync` because kernels are
/// sharded across cluster workers and shared behind `World`'s lock.
pub trait Scheduler: Send + Sync {
    fn name(&self) -> &'static str;

    /// Plan one epoch.
    fn plan(&mut self, ctx: &SchedCtx<'_>) -> EpochPlan;
}

/// The default planner — the paper's CFS-like policy: lowest vruntime wins,
/// ties on pid, warmth-aware placement. Byte-identical to the historical
/// free-function scheduler ([`plan_epoch`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct CfsLike;

impl Scheduler for CfsLike {
    fn name(&self) -> &'static str {
        "cfs-like"
    }

    fn plan(&mut self, ctx: &SchedCtx<'_>) -> EpochPlan {
        plan_epoch(ctx.topo, ctx.runnable)
    }
}

/// First-come-first-served: earliest-spawned (lowest-pid) runnable tasks
/// win every epoch, vruntime ignored. Under oversubscription late arrivals
/// starve until a winner exits — the contrast policy for fairness studies.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn plan(&mut self, ctx: &SchedCtx<'_>) -> EpochPlan {
        let mut order: Vec<&SchedEntity> = ctx.runnable.iter().collect();
        order.sort_by_key(|e| e.pid);
        place_in_order(ctx.topo, &order)
    }
}

/// Fixed-quantum round-robin: pid order rotated one slot per epoch, so
/// under oversubscription every task runs in turn regardless of how much it
/// has consumed. Stateless — the rotation derives from
/// [`SchedCtx::epoch_index`], keeping replays and checkpoints trivial.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn plan(&mut self, ctx: &SchedCtx<'_>) -> EpochPlan {
        let mut order: Vec<&SchedEntity> = ctx.runnable.iter().collect();
        order.sort_by_key(|e| e.pid);
        if !order.is_empty() {
            let k = (ctx.epoch_index % order.len() as u64) as usize;
            order.rotate_left(k);
        }
        place_in_order(ctx.topo, &order)
    }
}

/// A cloneable, `Debug`-gable scheduler choice: a named factory, so
/// `KernelConfig` (and `Scenario` above it) stays `Clone + Debug` while the
/// planner itself may hold mutable state. Third-party planners register
/// through [`SchedulerSelect::custom`] — swapping the in-kernel scheduler
/// never requires editing the kernel.
#[derive(Clone)]
pub struct SchedulerSelect {
    name: &'static str,
    make: Arc<dyn Fn() -> Box<dyn Scheduler> + Send + Sync>,
}

impl SchedulerSelect {
    /// The default CFS-like planner.
    pub fn cfs_like() -> SchedulerSelect {
        SchedulerSelect::custom("cfs-like", || Box::new(CfsLike))
    }

    /// First-come-first-served planner.
    pub fn fifo() -> SchedulerSelect {
        SchedulerSelect::custom("fifo", || Box::new(Fifo))
    }

    /// Rotating fixed-quantum planner.
    pub fn round_robin() -> SchedulerSelect {
        SchedulerSelect::custom("round-robin", || Box::new(RoundRobin))
    }

    /// Any user planner; `make` is called once per kernel boot.
    pub fn custom(
        name: &'static str,
        make: impl Fn() -> Box<dyn Scheduler> + Send + Sync + 'static,
    ) -> SchedulerSelect {
        SchedulerSelect {
            name,
            make: Arc::new(make),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Instantiate the planner.
    pub fn make(&self) -> Box<dyn Scheduler> {
        (self.make)()
    }
}

impl Default for SchedulerSelect {
    fn default() -> SchedulerSelect {
        SchedulerSelect::cfs_like()
    }
}

impl fmt::Debug for SchedulerSelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SchedulerSelect({:?})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(1, 4, 2, 4096) // 4 cores, 8 PUs
    }

    fn ent(pid: u32, vruntime: f64) -> SchedEntity {
        SchedEntity {
            pid: Pid(pid),
            vruntime,
            weight: 1.0,
            affinity: CpuSet::all(),
            last_pu: None,
        }
    }

    #[test]
    fn cpuset_membership() {
        let s = CpuSet::of(&[PuId(0), PuId(4)]);
        assert!(s.allows(PuId(0)));
        assert!(s.allows(PuId(4)));
        assert!(!s.allows(PuId(1)));
        assert_eq!(s.count(), 2);
    }

    #[test]
    #[should_panic(expected = "empty CpuSet")]
    fn empty_cpuset_rejected() {
        CpuSet::of(&[]);
    }

    #[test]
    fn weight_monotone_in_nice() {
        assert!(weight_for_nice(-5) > weight_for_nice(0));
        assert!(weight_for_nice(0) > weight_for_nice(5));
        assert_eq!(weight_for_nice(0), 1.0);
    }

    #[test]
    fn spreads_across_physical_cores_before_smt() {
        let t = topo();
        let runnable: Vec<_> = (0..4).map(|i| ent(i, 0.0)).collect();
        let plan = plan_epoch(&t, &runnable);
        assert_eq!(plan.num_running(), 4);
        // Each task must be on a distinct physical core.
        let mut cores: Vec<_> = plan
            .running_pairs()
            .map(|(pu, _)| t.core_of(pu).0)
            .collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 4, "4 tasks should occupy 4 distinct cores");
    }

    #[test]
    fn smt_used_when_cores_exhausted() {
        let t = topo();
        let runnable: Vec<_> = (0..8).map(|i| ent(i, 0.0)).collect();
        let plan = plan_epoch(&t, &runnable);
        assert_eq!(plan.num_running(), 8, "all 8 PUs busy");
    }

    #[test]
    fn oversubscription_picks_lowest_vruntime() {
        let t = topo();
        // 10 tasks, 8 PUs: the two largest vruntimes are left out.
        let runnable: Vec<_> = (0..10).map(|i| ent(i, i as f64)).collect();
        let plan = plan_epoch(&t, &runnable);
        assert_eq!(plan.num_running(), 8);
        let scheduled: Vec<u32> = plan.running_pairs().map(|(_, p)| p.0).collect();
        assert!(!scheduled.contains(&8) && !scheduled.contains(&9));
    }

    #[test]
    fn affinity_respected_even_if_core_busy() {
        let t = topo();
        // Both pinned to PU 0 and its sibling PU 4 — the paper's "two copies
        // on the same physical core" experiment.
        let mut a = ent(1, 0.0);
        a.affinity = CpuSet::single(PuId(0));
        let mut b = ent(2, 0.0);
        b.affinity = CpuSet::single(PuId(4));
        let plan = plan_epoch(&t, &[a, b]);
        assert_eq!(plan.assignment[0], Some(Pid(1)));
        assert_eq!(plan.assignment[4], Some(Pid(2)));
    }

    #[test]
    fn pinned_task_waits_if_pu_taken() {
        let t = topo();
        let mut a = ent(1, 0.0);
        a.affinity = CpuSet::single(PuId(3));
        let mut b = ent(2, 1.0);
        b.affinity = CpuSet::single(PuId(3));
        let plan = plan_epoch(&t, &[a, b]);
        assert_eq!(
            plan.assignment[3],
            Some(Pid(1)),
            "lower vruntime wins the pin"
        );
        assert_eq!(plan.num_running(), 1, "loser cannot run elsewhere");
    }

    #[test]
    fn warm_placement_prefers_last_pu() {
        let t = topo();
        let mut a = ent(1, 0.0);
        a.last_pu = Some(PuId(6));
        let plan = plan_epoch(&t, &[a]);
        assert_eq!(plan.assignment[6], Some(Pid(1)));
    }

    #[test]
    fn determinism_ties_break_on_pid() {
        let t = topo();
        let runnable: Vec<_> = (0..3).map(|i| ent(i, 7.0)).collect();
        let p1 = plan_epoch(&t, &runnable);
        let mut rev = runnable.clone();
        rev.reverse();
        let p2 = plan_epoch(&t, &rev);
        assert_eq!(p1, p2, "plan must not depend on input order");
    }

    #[test]
    fn try_constructors_reject_what_asserts_reject() {
        assert!(CpuSet::try_single(PuId(63)).is_some());
        assert!(CpuSet::try_single(PuId(64)).is_none());
        assert!(CpuSet::try_of(&[]).is_none());
        assert!(CpuSet::try_of(&[PuId(0), PuId(64)]).is_none());
        assert_eq!(
            CpuSet::try_of(&[PuId(0), PuId(4)]),
            Some(CpuSet::of(&[PuId(0), PuId(4)]))
        );
    }

    #[test]
    fn cfs_like_matches_free_function() {
        let t = topo();
        let runnable: Vec<_> = (0..10).map(|i| ent(i, (10 - i) as f64)).collect();
        let ctx = SchedCtx {
            topo: &t,
            runnable: &runnable,
            epoch_index: 3,
        };
        assert_eq!(CfsLike.plan(&ctx), plan_epoch(&t, &runnable));
    }

    #[test]
    fn fifo_ignores_vruntime_under_oversubscription() {
        let t = topo();
        // pids 0..9; give the oldest pids the *worst* vruntimes so CfsLike
        // and Fifo disagree about who sits out.
        let runnable: Vec<_> = (0..10).map(|i| ent(i, -(i as f64))).collect();
        let ctx = SchedCtx {
            topo: &t,
            runnable: &runnable,
            epoch_index: 0,
        };
        let plan = Fifo.plan(&ctx);
        let scheduled: Vec<u32> = plan.running_pairs().map(|(_, p)| p.0).collect();
        assert!(
            !scheduled.contains(&8) && !scheduled.contains(&9),
            "fifo must run the 8 earliest pids, got {scheduled:?}"
        );
        assert_eq!(plan.num_running(), 8);
    }

    #[test]
    fn round_robin_rotates_the_loser_each_epoch() {
        // 1 core, 1 PU, three runnable tasks: each epoch a different task
        // must win the single slot, in pid rotation.
        let t = Topology::new(1, 1, 1, 4096);
        let runnable: Vec<_> = (0..3).map(|i| ent(i, 0.0)).collect();
        let winners: Vec<u32> = (0..6)
            .map(|epoch| {
                let ctx = SchedCtx {
                    topo: &t,
                    runnable: &runnable,
                    epoch_index: epoch,
                };
                RoundRobin.plan(&ctx).assignment[0].unwrap().0
            })
            .collect();
        assert_eq!(winners, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn scheduler_select_is_clone_debug_and_makes_named_planners() {
        let sel = SchedulerSelect::default();
        assert_eq!(sel.name(), "cfs-like");
        assert_eq!(format!("{sel:?}"), "SchedulerSelect(\"cfs-like\")");
        let copy = sel.clone();
        assert_eq!(copy.make().name(), "cfs-like");
        assert_eq!(SchedulerSelect::fifo().make().name(), "fifo");
        assert_eq!(SchedulerSelect::round_robin().make().name(), "round-robin");
        let custom = SchedulerSelect::custom("mine", || Box::new(Fifo));
        assert_eq!(custom.name(), "mine");
    }
}
