//! Legacy session helpers and per-task time-series extraction.
//!
//! The driver half of this module is superseded by the [`crate::monitor`] /
//! [`crate::scenario`] subsystem: [`run_refreshes`] and [`run_until`] remain
//! as thin shims over the [`Monitor`] contract for callers that already hold
//! a `&mut Kernel`. New code should build a
//! [`Scenario`](crate::scenario::Scenario) and use
//! [`Session::run`](crate::scenario::Session::run), which also applies timed
//! workload events and can drive several monitors at once.
//!
//! The series helpers ([`series_for_pid`], [`series_for_comm`], [`mean`])
//! are what the figure-regeneration experiments consume and are not
//! deprecated.

use tiptop_kernel::kernel::Kernel;
use tiptop_kernel::task::Pid;

use crate::monitor::Monitor;
use crate::render::Frame;

/// Run `refreshes` refresh intervals: each iteration advances simulated
/// time by the monitor's interval, then takes a frame (so frame *i* covers
/// interval *i*). An initial priming refresh attaches counters at t=0
/// without recording a frame — like starting the real tool.
#[deprecated(
    since = "0.1.0",
    note = "build a `Scenario` and use `Session::run` (crate::scenario)"
)]
pub fn run_refreshes<M: Monitor>(k: &mut Kernel, monitor: &mut M, refreshes: usize) -> Vec<Frame> {
    let delay = monitor.interval();
    monitor.prime(k);
    let mut frames = Vec::with_capacity(refreshes);
    for _ in 0..refreshes {
        k.advance(delay);
        frames.push(monitor.observe(k));
    }
    frames
}

/// Like [`run_refreshes`] but stops early when `until` says so (given the
/// latest frame). Returns the frames recorded so far.
#[deprecated(
    since = "0.1.0",
    note = "build a `Scenario` and use `Session::run_until` (crate::scenario)"
)]
pub fn run_until<M: Monitor>(
    k: &mut Kernel,
    monitor: &mut M,
    max_refreshes: usize,
    until: impl Fn(&Frame) -> bool,
) -> Vec<Frame> {
    let delay = monitor.interval();
    monitor.prime(k);
    let mut frames = Vec::new();
    for _ in 0..max_refreshes {
        k.advance(delay);
        let f = monitor.observe(k);
        let done = until(&f);
        frames.push(f);
        if done {
            break;
        }
    }
    frames
}

/// Extract `(time_s, value)` samples of one column for one pid across
/// frames; frames where the task is absent are skipped.
pub fn series_for_pid(frames: &[Frame], pid: Pid, column: &str) -> Vec<(f64, f64)> {
    frames
        .iter()
        .filter_map(|f| {
            f.row_for(pid)
                .and_then(|r| r.value(column))
                .filter(|v| v.is_finite())
                .map(|v| (f.time.as_secs_f64(), v))
        })
        .collect()
}

/// Extract a column series for the first task matching a command name.
pub fn series_for_comm(frames: &[Frame], comm: &str, column: &str) -> Vec<(f64, f64)> {
    frames
        .iter()
        .filter_map(|f| {
            f.row_for_comm(comm)
                .and_then(|r| r.value(column))
                .filter(|v| v.is_finite())
                .map(|v| (f.time.as_secs_f64(), v))
        })
        .collect()
}

/// Mean of a series' values (0 for empty).
pub fn mean(series: &[(f64, f64)]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|(_, v)| v).sum::<f64>() / series.len() as f64
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::app::{Tiptop, TiptopOptions};
    use crate::config::ScreenConfig;
    use tiptop_kernel::kernel::KernelConfig;
    use tiptop_kernel::program::Program;
    use tiptop_kernel::task::{SpawnSpec, Uid};
    use tiptop_machine::access::MemoryBehavior;
    use tiptop_machine::config::MachineConfig;
    use tiptop_machine::exec::ExecProfile;
    use tiptop_machine::time::SimDuration;

    fn world_with_spinner() -> (Kernel, Pid) {
        let mut k =
            Kernel::new(KernelConfig::new(MachineConfig::nehalem_w3550().noiseless()).seed(9));
        k.add_user(Uid(1), "user1");
        let pid = k.spawn(SpawnSpec::new(
            "spin",
            Uid(1),
            Program::endless(
                ExecProfile::builder("spin")
                    .base_cpi(0.8)
                    .branches(0.18, 0.0)
                    .memory(MemoryBehavior::uniform(16 * 1024))
                    .build(),
            ),
        ));
        (k, pid)
    }

    #[test]
    fn frames_cover_consecutive_intervals() {
        let (mut k, pid) = world_with_spinner();
        let mut t = Tiptop::new(
            TiptopOptions::default().delay(SimDuration::from_secs(1)),
            ScreenConfig::default_screen(),
        );
        let frames = run_refreshes(&mut k, &mut t, 3);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].time.as_secs_f64(), 1.0);
        assert_eq!(frames[2].time.as_secs_f64(), 3.0);
        let s = series_for_pid(&frames, pid, "IPC");
        assert_eq!(s.len(), 3);
        for (_, ipc) in &s {
            assert!((1.1..1.4).contains(ipc), "steady IPC ≈ 1.25, got {ipc}");
        }
        assert!((mean(&s) - 1.25).abs() < 0.1);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let (mut k, _) = world_with_spinner();
        let mut t = Tiptop::new(
            TiptopOptions::default().delay(SimDuration::from_secs(1)),
            ScreenConfig::default_screen(),
        );
        let frames = run_until(&mut k, &mut t, 100, |f| f.time.as_secs_f64() >= 2.0);
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn series_for_comm_matches_series_for_pid() {
        let (mut k, pid) = world_with_spinner();
        let mut t = Tiptop::new(
            TiptopOptions::default().delay(SimDuration::from_secs(1)),
            ScreenConfig::default_screen(),
        );
        let frames = run_refreshes(&mut k, &mut t, 2);
        assert_eq!(
            series_for_pid(&frames, pid, "IPC"),
            series_for_comm(&frames, "spin", "IPC")
        );
    }
}
