//! # tiptop-machine
//!
//! A deterministic, cycle-approximate multicore machine simulator that plays
//! the role of the *hardware* underneath the Tiptop reproduction: CPUs with
//! per-hardware-thread performance-monitoring units (PMUs), an SMT-aware
//! topology, and a set-associative multi-level cache hierarchy through which
//! concurrently running tasks genuinely contend.
//!
//! The paper ("Tiptop: Hardware Performance Counters for the Masses", Rohou,
//! INRIA RR-7789 / ICPP 2012) evaluates on real Nehalem, Core and PPC970
//! machines. This crate substitutes those with parameterized micro-
//! architecture models. Counter *semantics* — what is counted, per hardware
//! thread, attributable per task slice — are faithful; absolute cycle counts
//! come from an analytical performance model driven by sampled cache
//! simulation:
//!
//! ```text
//! CPI = base_cpi · smt_factor
//!     + accesses/insn · E[miss penalty]/MLP
//!     + branches/insn · mispredict_rate · branch_penalty
//!     + fp/insn · assist_fraction · assist_cost
//! ```
//!
//! Cache-miss penalties are *measured* by pushing interleaved, seeded address
//! streams of all co-running tasks through a real set-associative LRU
//! hierarchy (private L1/L2 per physical core, shared L3 per socket), so
//! cross-core and SMT interference — the subject of the paper's Section 3.4 —
//! is emergent rather than scripted.
//!
//! ## Quick tour
//!
//! ```
//! use tiptop_machine::prelude::*;
//!
//! // A single-socket quad-core Nehalem with SMT, like the paper's Xeon W3550.
//! let cfg = MachineConfig::nehalem_w3550();
//! let mut machine = Machine::new(cfg, 42);
//!
//! // A task profile: integer-ish code with a 64 KiB working set.
//! let profile = ExecProfile::builder("demo")
//!     .base_cpi(0.75)
//!     .memory(MemoryBehavior::uniform(64 * 1024))
//!     .loads_per_insn(0.25)
//!     .build();
//!
//! let mut stream = TaskStream::new(1, 7);
//! let mut req = [SliceRequest::new(PuId(0), &profile, &mut stream)
//!     .cycles(1_000_000)];
//! let out = machine.execute_epoch(&mut req);
//! assert!(out[0].instructions > 0);
//! assert_eq!(out[0].events.get(HwEvent::Instructions), out[0].instructions);
//! ```

pub mod access;
pub mod cache;
pub mod config;
pub mod exec;
pub mod machine;
pub mod pmu;
pub mod time;
pub mod topology;

pub use access::{AccessPattern, MemoryBehavior, TaskStream, WorkingSetTier};
pub use cache::{AccessOutcome, CacheGeometry, CacheLevel, SetAssocCache};
pub use config::{AssistTriggers, CpuModelKind, MachineConfig, UarchParams};
pub use exec::{ExecOutcome, ExecProfile, ExecProfileBuilder, FpUnit};
pub use machine::{Machine, SliceRequest};
pub use pmu::{EventCounts, HwEvent, PmuCapabilities, N_EVENTS};
pub use time::{Freq, SimDuration, SimTime};
pub use topology::{CoreId, PuId, SocketId, Topology};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::access::{AccessPattern, MemoryBehavior, TaskStream, WorkingSetTier};
    pub use crate::cache::{CacheGeometry, SetAssocCache};
    pub use crate::config::{CpuModelKind, MachineConfig, UarchParams};
    pub use crate::exec::{ExecOutcome, ExecProfile, FpUnit};
    pub use crate::machine::{Machine, SliceRequest};
    pub use crate::pmu::{EventCounts, HwEvent};
    pub use crate::time::{Freq, SimDuration, SimTime};
    pub use crate::topology::{CoreId, PuId, SocketId, Topology};
}
