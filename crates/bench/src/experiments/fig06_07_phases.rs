//! **Figures 6 and 7** — SPEC CPU2006 phase behaviour as tiptop shows it,
//! on the three evaluation machines: 429.mcf's gentle long-period wave and
//! 473.astar's strong build/search alternation (Fig 6), 410.bwaves' steady
//! FP streaming and 435.gromacs' small force/update wiggles (Fig 7). The
//! same binary (in retired instructions) runs on every machine, so the
//! phase *pattern* is machine-invariant while its time axis stretches with
//! the machine's achieved IPC.

use tiptop_workloads::spec::{Compiler, SpecBenchmark};

use crate::experiments::{evaluation_machines, isa_for, run_spec_to_completion, spec_delay};
use crate::report::{PanelSet, Series, TableReport};

/// The four benchmarks the two figures show.
pub const BENCHMARKS: [SpecBenchmark; 4] = [
    SpecBenchmark::Mcf,
    SpecBenchmark::Astar,
    SpecBenchmark::Bwaves,
    SpecBenchmark::Gromacs,
];

/// One benchmark on one machine.
pub struct PhaseRun {
    pub machine: String,
    pub benchmark: SpecBenchmark,
    /// Tiptop's IPC column over time (seconds).
    pub ipc: Series,
    /// Run time in simulated seconds.
    pub wall: f64,
}

pub struct Fig0607Result {
    pub runs: Vec<PhaseRun>,
    pub scale: f64,
}

/// Run the four benchmarks on the three machines. `scale` multiplies
/// instruction counts (1.0 ≈ reference inputs; tests use ~0.02); the
/// tiptop refresh interval scales along (see `spec_delay`).
pub fn run(seed: u64, scale: f64) -> Fig0607Result {
    let delay = spec_delay(scale);
    let mut runs = Vec::new();
    for (mi, (mname, machine)) in evaluation_machines().into_iter().enumerate() {
        let isa = isa_for(&machine);
        for (bi, bench) in BENCHMARKS.into_iter().enumerate() {
            let r = run_spec_to_completion(
                machine.clone(),
                bench,
                Compiler::Gcc,
                isa,
                scale,
                seed + (mi * BENCHMARKS.len() + bi) as u64,
                delay,
            );
            runs.push(PhaseRun {
                machine: mname.to_string(),
                benchmark: bench,
                ipc: r.series("IPC", format!("{} on {}", bench.name(), mname)),
                wall: r.wall(),
            });
        }
    }
    Fig0607Result { runs, scale }
}

impl Fig0607Result {
    pub fn run_for(&self, machine: &str, bench: SpecBenchmark) -> &PhaseRun {
        self.runs
            .iter()
            .find(|r| r.machine == machine && r.benchmark == bench)
            .expect("known machine/benchmark pair")
    }

    pub fn report(&self) -> String {
        let mut out = String::new();
        for bench in BENCHMARKS {
            let mut fig = PanelSet::new(format!("Figs 6/7: {} IPC over time", bench.name()));
            for r in self.runs.iter().filter(|r| r.benchmark == bench) {
                fig.panel(&r.machine, vec![r.ipc.clone()]);
            }
            out.push_str(&fig.render(72, 10));
        }
        let mut t = TableReport::new(
            format!("phase summary (scale {})", self.scale),
            &["benchmark", "machine", "mean IPC", "min", "max", "wall (s)"],
        );
        for r in &self.runs {
            t.row(vec![
                r.benchmark.name().to_string(),
                r.machine.clone(),
                format!("{:.2}", r.ipc.mean()),
                format!("{:.2}", r.ipc.min_y()),
                format!("{:.2}", r.ipc.max_y()),
                format!("{:.1}", r.wall),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}
