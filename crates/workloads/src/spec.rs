//! Phase-structured stand-ins for the SPEC CPU2006 benchmarks the paper
//! evaluates (Figs 6–11).
//!
//! Each benchmark is a [`Program`] whose phases are expressed in *retired
//! instructions* — the same program therefore takes different wall-clock
//! time on different machines (Fig 8's instruction-axis alignment), and its
//! phase pattern stretches with the machine's achieved IPC.
//!
//! Absolute IPC values are calibrated to the Nehalem machine of the paper
//! (approximately — the figures are read off plots); what the experiments
//! rely on is the *shape*: which benchmark has phases, which compiler's
//! variant runs at higher IPC, which footprint collides with which cache.
//!
//! The per-compiler variants encode the §3.3 findings:
//!
//! * **456.hmmer** — icc generates higher-IPC code *and* wins on time.
//! * **482.sphinx3** — gcc's code has *lower* IPC yet finishes first
//!   (it executes fewer instructions).
//! * **464.h264ref** — two phases with an IPC *inversion*: gcc leads in the
//!   first phase, icc in the second; total times are close.
//! * **433.milc** — identical run time, gcc's IPC constantly higher (it
//!   simply executes proportionally more instructions).

use tiptop_kernel::program::{Phase, Program};
use tiptop_machine::access::{AccessPattern, MemoryBehavior, WorkingSetTier};
use tiptop_machine::exec::{ExecProfile, FpUnit};

/// Which compiler produced the binary (§3.3). Where the paper does not
/// compare compilers, use [`Compiler::Gcc`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Compiler {
    Gcc,
    Icc,
}

impl Compiler {
    pub fn label(self) -> &'static str {
        match self {
            Compiler::Gcc => "gcc",
            Compiler::Icc => "icc",
        }
    }
}

/// Instruction-set flavour of the binary. Intel machines (Nehalem, Core)
/// execute the *same* binary; the PowerPC build retires slightly more
/// instructions — the small rightward shift of the PPC970 curve in Fig 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Isa {
    X86,
    Ppc,
}

impl Isa {
    /// Instruction-count multiplier relative to the x86 binary.
    fn factor(self) -> f64 {
        match self {
            Isa::X86 => 1.0,
            Isa::Ppc => 1.07,
        }
    }
}

/// The eight benchmarks the paper's figures use.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpecBenchmark {
    Mcf,
    Astar,
    Bwaves,
    Gromacs,
    Hmmer,
    Sphinx3,
    H264ref,
    Milc,
}

impl SpecBenchmark {
    pub const ALL: [SpecBenchmark; 8] = [
        SpecBenchmark::Mcf,
        SpecBenchmark::Astar,
        SpecBenchmark::Bwaves,
        SpecBenchmark::Gromacs,
        SpecBenchmark::Hmmer,
        SpecBenchmark::Sphinx3,
        SpecBenchmark::H264ref,
        SpecBenchmark::Milc,
    ];

    /// SPEC-style name, e.g. `429.mcf`.
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::Mcf => "429.mcf",
            SpecBenchmark::Astar => "473.astar",
            SpecBenchmark::Bwaves => "410.bwaves",
            SpecBenchmark::Gromacs => "435.gromacs",
            SpecBenchmark::Hmmer => "456.hmmer",
            SpecBenchmark::Sphinx3 => "482.sphinx3",
            SpecBenchmark::H264ref => "464.h264ref",
            SpecBenchmark::Milc => "433.milc",
        }
    }

    /// Short command name as it appears in `COMMAND` columns.
    pub fn comm(self) -> &'static str {
        match self {
            SpecBenchmark::Mcf => "mcf",
            SpecBenchmark::Astar => "astar",
            SpecBenchmark::Bwaves => "bwaves",
            SpecBenchmark::Gromacs => "gromacs",
            SpecBenchmark::Hmmer => "hmmer",
            SpecBenchmark::Sphinx3 => "sphinx3",
            SpecBenchmark::H264ref => "h264ref",
            SpecBenchmark::Milc => "milc",
        }
    }

    /// Build the benchmark program. `scale` multiplies all instruction
    /// counts (1.0 ≈ the paper's reference-input run lengths; tests use much
    /// smaller values — shapes are preserved).
    pub fn program(self, compiler: Compiler, isa: Isa, scale: f64) -> Program {
        assert!(scale > 0.0 && scale.is_finite(), "bad scale {scale}");
        let s = scale * isa.factor();
        match self {
            SpecBenchmark::Mcf => mcf(s),
            SpecBenchmark::Astar => astar(s),
            SpecBenchmark::Bwaves => bwaves(s),
            SpecBenchmark::Gromacs => gromacs(s),
            SpecBenchmark::Hmmer => hmmer(compiler, s),
            SpecBenchmark::Sphinx3 => sphinx3(compiler, s),
            SpecBenchmark::H264ref => h264ref(compiler, s),
            SpecBenchmark::Milc => milc(compiler, s),
        }
    }

    /// Default x86/gcc build at the given scale.
    pub fn default_program(self, scale: f64) -> Program {
        self.program(Compiler::Gcc, Isa::X86, scale)
    }
}

/// Giga-instructions, scaled.
fn gi(n: f64, scale: f64) -> u64 {
    ((n * 1e9 * scale).round() as u64).max(1)
}

/// A compute-bound profile calibrated so the Nehalem machine runs it at
/// roughly `target_ipc`: the working set is L1-resident (no load-to-use
/// penalty beyond the base CPI), so `IPC ≈ 1 / (base_cpi + branch_cpi)`
/// with Nehalem's 17-cycle penalty.
fn cpu_profile(name: &str, target_ipc: f64, fp: f64) -> ExecProfile {
    let branches = 0.16;
    let miss_rate = 0.015;
    let branch_cpi = branches * miss_rate * 17.0;
    let base = (1.0 / target_ipc - branch_cpi).max(0.25);
    ExecProfile::builder(name)
        .base_cpi(base)
        .loads_per_insn(0.22)
        .stores_per_insn(0.08)
        .branches(branches, miss_rate)
        .fp(fp, FpUnit::Sse)
        .memory(MemoryBehavior::uniform(24 * 1024))
        .mlp(4.0)
        .build()
}

// ---------------------------------------------------------------------
// 429.mcf — the memory-bound workhorse of §3.4's interference study.
// ---------------------------------------------------------------------

/// The mcf main-loop profile. Its working-set tiers are what make Fig 11
/// work: a ~144 KiB hot tier (fits the 256 KiB L2 alone; two SMT siblings
/// together blow it), a ~4.5 MiB warm tier (fits the 8 MiB L3 alone; two or
/// three copies together thrash it), and a large cold arena.
pub fn mcf_main_profile(variant: u32) -> ExecProfile {
    let (hot_w, warm_w, cold_w, base) = match variant % 2 {
        0 => (0.905, 0.085, 0.010, 0.52),
        _ => (0.875, 0.110, 0.015, 0.58),
    };
    ExecProfile::builder(format!("mcf-loop{variant}"))
        .base_cpi(base)
        .loads_per_insn(0.31)
        .stores_per_insn(0.08)
        .branches(0.23, 0.045)
        .memory(MemoryBehavior::new(vec![
            WorkingSetTier::new(144 * 1024, hot_w, AccessPattern::Random),
            WorkingSetTier::new(4 * 1024 * 1024 + 512 * 1024, warm_w, AccessPattern::Random),
            WorkingSetTier::new(400 * 1024 * 1024, cold_w, AccessPattern::Random),
        ]))
        .mlp(3.0)
        .build()
}

fn mcf(s: f64) -> Program {
    let mut phases = vec![Phase::compute(
        ExecProfile::builder("mcf-init")
            .base_cpi(0.8)
            .loads_per_insn(0.28)
            .stores_per_insn(0.14)
            .branches(0.12, 0.01)
            .memory(MemoryBehavior::streaming(400 * 1024 * 1024))
            .mlp(8.0)
            .build(),
        gi(20.0, s),
    )];
    // Simplex iterations alternate between two pressure levels — the gentle
    // long-period wave of Fig 6 (a).
    for i in 0..6 {
        phases.push(Phase::compute(mcf_main_profile(i), gi(35.0, s)));
    }
    Program::run_once(phases)
}

// ---------------------------------------------------------------------
// 473.astar — strong alternating phases (Figs 6 (b), 8).
// ---------------------------------------------------------------------

fn astar(s: f64) -> Program {
    let search = ExecProfile::builder("astar-search")
        .base_cpi(0.62)
        .loads_per_insn(0.30)
        .stores_per_insn(0.07)
        .branches(0.20, 0.05)
        .memory(MemoryBehavior::new(vec![
            WorkingSetTier::new(128 * 1024, 0.80, AccessPattern::Random),
            WorkingSetTier::new(24 * 1024 * 1024, 0.20, AccessPattern::Random),
        ]))
        .mlp(2.2)
        .build();
    let build = ExecProfile::builder("astar-build")
        .base_cpi(0.58)
        .loads_per_insn(0.24)
        .stores_per_insn(0.12)
        .branches(0.15, 0.012)
        .memory(MemoryBehavior::new(vec![
            WorkingSetTier::new(64 * 1024, 0.92, AccessPattern::Strided(128)),
            WorkingSetTier::new(24 * 1024 * 1024, 0.08, AccessPattern::Sequential),
        ]))
        .mlp(5.0)
        .build();
    // Map/path pairs of growing size, ending in a long low-IPC search — the
    // "last phases" whose relative IPC differs on PowerPC.
    let mut phases = Vec::new();
    for (i, len) in [30.0, 40.0, 55.0, 70.0].iter().enumerate() {
        phases.push(Phase::compute(build.clone(), gi(len * 0.45, s)));
        phases.push(Phase::compute(
            search.clone(),
            gi(len * (0.55 + 0.05 * i as f64), s),
        ));
    }
    Program::run_once(phases)
}

// ---------------------------------------------------------------------
// 410.bwaves — steady FP streaming (Fig 7 (a)).
// ---------------------------------------------------------------------

fn bwaves(s: f64) -> Program {
    let solve = ExecProfile::builder("bwaves-solve")
        .base_cpi(0.60)
        .loads_per_insn(0.34)
        .stores_per_insn(0.12)
        .branches(0.06, 0.004)
        .fp(0.30, FpUnit::Sse)
        .memory(MemoryBehavior::new(vec![
            WorkingSetTier::new(1024 * 1024, 0.55, AccessPattern::Sequential),
            WorkingSetTier::new(420 * 1024 * 1024, 0.45, AccessPattern::Strided(64)),
        ]))
        .mlp(10.0)
        .build();
    // Boundary conditions sweep the same grid arrays (smaller share, lower
    // MLP): a brief wiggle, not a spike — Fig 7 (a) shows bwaves steady.
    let bc = ExecProfile::builder("bwaves-boundary")
        .base_cpi(0.70)
        .loads_per_insn(0.30)
        .stores_per_insn(0.11)
        .branches(0.10, 0.01)
        .fp(0.22, FpUnit::Sse)
        .memory(MemoryBehavior::new(vec![
            WorkingSetTier::new(1024 * 1024, 0.50, AccessPattern::Sequential),
            WorkingSetTier::new(420 * 1024 * 1024, 0.50, AccessPattern::Strided(64)),
        ]))
        .mlp(8.0)
        .build();
    // Long solver sweeps with brief boundary-condition blips.
    let mut phases = Vec::new();
    for _ in 0..5 {
        phases.push(Phase::compute(solve.clone(), gi(90.0, s)));
        phases.push(Phase::compute(bc.clone(), gi(8.0, s)));
    }
    Program::run_once(phases)
}

// ---------------------------------------------------------------------
// 435.gromacs — compute-bound FP with small Nehalem-visible wiggles
// (Fig 7 (b)).
// ---------------------------------------------------------------------

fn gromacs(s: f64) -> Program {
    let mut phases = Vec::new();
    for i in 0..12 {
        // Alternating force/update steps: ±4% around IPC ~1.7 — the "small
        // but noticeable variations" the paper sees on Nehalem.
        let ipc = if i % 2 == 0 { 1.75 } else { 1.62 };
        phases.push(Phase::compute(
            cpu_profile(&format!("gromacs-md{i}"), ipc, 0.34),
            gi(55.0, s),
        ));
    }
    Program::run_once(phases)
}

// ---------------------------------------------------------------------
// §3.3 compiler-comparison benchmarks (Fig 9). Only run on Nehalem.
// ---------------------------------------------------------------------

fn hmmer(c: Compiler, s: f64) -> Program {
    // icc: higher IPC and faster (Fig 9 (a)).
    let (ipc, total) = match c {
        Compiler::Gcc => (1.90, 980.0),
        Compiler::Icc => (2.25, 1000.0),
    };
    Program::run_once(vec![Phase::compute(
        cpu_profile(&format!("hmmer-{}", c.label()), ipc, 0.0),
        gi(total, s),
    )])
}

fn sphinx3(c: Compiler, s: f64) -> Program {
    // gcc: LOWER IPC yet slightly faster — fewer instructions (Fig 9 (b)).
    let (ipc, total) = match c {
        Compiler::Gcc => (1.22, 800.0),
        Compiler::Icc => (1.50, 1030.0),
    };
    Program::run_once(vec![Phase::compute(
        cpu_profile(&format!("sphinx3-{}", c.label()), ipc, 0.18),
        gi(total, s),
    )])
}

fn h264ref(c: Compiler, s: f64) -> Program {
    // Two phases with an IPC inversion (Fig 9 (c)): gcc leads the short
    // first phase, icc the long second one; totals run close.
    let (ipc1, ipc2, n1, n2) = match c {
        Compiler::Gcc => (1.95, 1.35, 330.0, 700.0),
        Compiler::Icc => (1.60, 1.65, 270.0, 860.0),
    };
    Program::run_once(vec![
        Phase::compute(
            cpu_profile(&format!("h264-enc1-{}", c.label()), ipc1, 0.05),
            gi(n1, s),
        ),
        Phase::compute(
            cpu_profile(&format!("h264-enc2-{}", c.label()), ipc2, 0.05),
            gi(n2, s),
        ),
    ])
}

// ---------------------------------------------------------------------
// §3.4 interference co-run generators (Fig 11). Steady-state (endless)
// programs so an interference experiment measures equilibria, not phases.
// ---------------------------------------------------------------------

/// Endless steady-state mcf main loop — what the paper co-runs in the
/// Fig 11 placements. Give co-running copies different `variant`s (and
/// spawn seeds) so they don't share address sequences.
pub fn mcf_endless(variant: u32) -> Program {
    Program::endless(mcf_main_profile(variant))
}

/// A cache-light compute-bound partner: its working set is L1-resident, so
/// co-running it on an SMT sibling exposes the pure pipeline-sharing cost
/// with no cache contention — the control column of the matrix.
pub fn corun_partner_light() -> Program {
    Program::endless(
        ExecProfile::builder("light-partner")
            .base_cpi(0.62)
            .loads_per_insn(0.20)
            .stores_per_insn(0.06)
            .branches(0.16, 0.01)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .mlp(4.0)
            .build(),
    )
}

/// The Fig 11 co-run pairs: a victim (always mcf) and its partner.
pub fn fig11_pairs() -> Vec<(&'static str, Program, Program)> {
    vec![
        ("mcf+mcf", mcf_endless(0), mcf_endless(1)),
        ("mcf+light", mcf_endless(0), corun_partner_light()),
    ]
}

fn milc(c: Compiler, s: f64) -> Program {
    // Same wall-clock speed, gcc's IPC constantly higher: gcc simply
    // retires ~22% more instructions (Fig 9 (d)).
    let (ipc, total) = match c {
        Compiler::Gcc => (1.10, 550.0),
        Compiler::Icc => (0.90, 450.0),
    };
    Program::run_once(vec![Phase::compute(
        cpu_profile(&format!("milc-{}", c.label()), ipc, 0.28),
        gi(total, s),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_construct_at_various_scales() {
        for b in SpecBenchmark::ALL {
            for c in [Compiler::Gcc, Compiler::Icc] {
                for isa in [Isa::X86, Isa::Ppc] {
                    let p = b.program(c, isa, 0.01);
                    assert!(p.instructions_per_pass() > 0, "{b:?} empty");
                }
            }
        }
    }

    #[test]
    fn scale_scales_instruction_counts_linearly() {
        let p1 = SpecBenchmark::Astar.default_program(0.1);
        let p2 = SpecBenchmark::Astar.default_program(0.2);
        let r = p2.instructions_per_pass() as f64 / p1.instructions_per_pass() as f64;
        assert!((r - 2.0).abs() < 0.01, "ratio {r}");
    }

    #[test]
    fn ppc_binary_retires_more_instructions() {
        let x86 = SpecBenchmark::Astar.program(Compiler::Gcc, Isa::X86, 0.1);
        let ppc = SpecBenchmark::Astar.program(Compiler::Gcc, Isa::Ppc, 0.1);
        let r = ppc.instructions_per_pass() as f64 / x86.instructions_per_pass() as f64;
        assert!((1.05..1.10).contains(&r), "PPC shift {r} should be ~1.07");
    }

    #[test]
    fn sphinx3_gcc_fewer_instructions_lower_ipc_targets() {
        let g = SpecBenchmark::Sphinx3.program(Compiler::Gcc, Isa::X86, 1.0);
        let i = SpecBenchmark::Sphinx3.program(Compiler::Icc, Isa::X86, 1.0);
        assert!(g.instructions_per_pass() < i.instructions_per_pass());
    }

    #[test]
    fn milc_gcc_more_instructions() {
        let g = SpecBenchmark::Milc.program(Compiler::Gcc, Isa::X86, 1.0);
        let i = SpecBenchmark::Milc.program(Compiler::Icc, Isa::X86, 1.0);
        let r = g.instructions_per_pass() as f64 / i.instructions_per_pass() as f64;
        assert!((1.15..1.3).contains(&r), "gcc/icc instruction ratio {r}");
    }

    #[test]
    fn mcf_profile_tiers_straddle_the_cache_boundaries() {
        // The tier sizes are the load-bearing part of Fig 11 — pin them.
        let p = mcf_main_profile(0);
        let tiers = p.mem.tiers();
        assert!(
            tiers[0].bytes > 128 * 1024 && tiers[0].bytes < 256 * 1024,
            "hot tier must fit one L2 but not half of one"
        );
        assert!(
            tiers[1].bytes > 4 * 1024 * 1024 && tiers[1].bytes < 8 * 1024 * 1024,
            "warm tier must fit one L3 but not two thirds of one"
        );
    }

    #[test]
    fn corun_generators_are_steady_state() {
        use tiptop_kernel::program::Continuation;
        for (label, a, b) in fig11_pairs() {
            assert_eq!(a.continuation(), Continuation::Loop, "{label} victim");
            assert_eq!(b.continuation(), Continuation::Loop, "{label} partner");
        }
        let profile_of = |p: &Program| match &p.phases()[0] {
            Phase::Compute { profile, .. } => profile.clone(),
            Phase::Sleep { .. } => panic!("corun programs start computing"),
        };
        // The light partner must not contend in any shared cache: its whole
        // footprint fits the 32 KiB L1.
        let fp = profile_of(&corun_partner_light()).mem.footprint();
        assert!(fp <= 32 * 1024, "light partner footprint {fp} spills L1");
        // Co-running mcf copies draw from distinct profile variants.
        let (_, a, b) = fig11_pairs().remove(0);
        assert_ne!(profile_of(&a).name, profile_of(&b).name);
    }

    #[test]
    fn names_and_comms_are_consistent() {
        for b in SpecBenchmark::ALL {
            assert!(b.name().contains(b.comm()));
        }
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn zero_scale_panics() {
        SpecBenchmark::Mcf.program(Compiler::Gcc, Isa::X86, 0.0);
    }
}
