//! The declarative [`Scenario`] builder: machine, users, and a schedule of
//! triggered [`WorkloadEvent`]s, validated and built into a live
//! [`Session`].

use std::collections::BTreeMap;
use std::sync::Arc;

use tiptop_kernel::kernel::{Kernel, KernelConfig};
use tiptop_kernel::sched::{CpuSet, SchedulerSelect};
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_machine::topology::PuId;

use super::errors::SessionError;
use super::events::{DeferredEvent, Trigger, WorkloadEvent};
use super::session::Session;
use super::validation::{self, DeferredDecl, TagFacts};

/// Declarative description of an experiment: machine, seed, users, and a
/// schedule of [`WorkloadEvent`]s fired by [`Trigger`]s. Build it into a
/// [`Session`] to run.
#[derive(Debug)]
pub struct Scenario {
    machine: Arc<MachineConfig>,
    seed: u64,
    epoch: Option<SimDuration>,
    scheduler: Option<SchedulerSelect>,
    users: Vec<(Uid, String)>,
    events: Vec<(Trigger, WorkloadEvent)>,
}

impl Scenario {
    /// Accepts an owned [`MachineConfig`] or an already-shared
    /// `Arc<MachineConfig>`; a fleet built from one `Arc` shares the
    /// allocation across every shard.
    pub fn new(machine: impl Into<Arc<MachineConfig>>) -> Self {
        Scenario {
            machine: machine.into(),
            seed: 0,
            epoch: None,
            scheduler: None,
            users: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Adopt an existing [`KernelConfig`] (machine + epoch + seed +
    /// scheduler).
    pub fn from_kernel_config(cfg: KernelConfig) -> Self {
        Scenario::new(cfg.machine)
            .epoch(cfg.epoch)
            .seed(cfg.seed)
            .scheduler(cfg.scheduler)
    }

    /// Deterministic seed for the machine and the task address streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the scheduler epoch (defaults to the kernel's 20 ms).
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = Some(epoch);
        self
    }

    /// Pick the in-kernel epoch planner (defaults to the CFS-like policy).
    pub fn scheduler(mut self, scheduler: SchedulerSelect) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Cluster-layer default: adopt `scheduler` unless this machine already
    /// chose its own planner.
    pub(crate) fn default_scheduler(&mut self, scheduler: &SchedulerSelect) {
        if self.scheduler.is_none() {
            self.scheduler = Some(scheduler.clone());
        }
    }

    /// Register a user name for a uid (like `/etc/passwd`).
    pub fn user(mut self, uid: Uid, name: impl Into<String>) -> Self {
        self.users.push((uid, name.into()));
        self
    }

    /// Spawn a task at t=0. `tag` names it for later events and
    /// [`Session::pid`]; tags must be unique.
    pub fn spawn(self, tag: impl Into<String>, spec: SpawnSpec) -> Self {
        self.spawn_at(SimTime::ZERO, tag, spec)
    }

    /// Spawn a task at an absolute instant.
    pub fn spawn_at(mut self, at: SimTime, tag: impl Into<String>, spec: SpawnSpec) -> Self {
        self.events.push((
            Trigger::At(at),
            WorkloadEvent::Spawn {
                tag: tag.into(),
                spec,
            },
        ));
        self
    }

    /// SIGKILL the tagged task at an absolute instant.
    pub fn kill_at(mut self, at: SimTime, tag: impl Into<String>) -> Self {
        self.events
            .push((Trigger::At(at), WorkloadEvent::Kill { tag: tag.into() }));
        self
    }

    /// Renice the tagged task at an absolute instant.
    pub fn renice_at(mut self, at: SimTime, tag: impl Into<String>, nice: i32) -> Self {
        self.events.push((
            Trigger::At(at),
            WorkloadEvent::Renice {
                tag: tag.into(),
                nice,
            },
        ));
        self
    }

    /// Re-pin the tagged task to a CPU set at an absolute instant.
    pub fn pin_at(mut self, at: SimTime, tag: impl Into<String>, cpus: CpuSet) -> Self {
        self.events.push((
            Trigger::At(at),
            WorkloadEvent::Pin {
                tag: tag.into(),
                cpus,
            },
        ));
        self
    }

    /// Spawn a task `delay` after the job tagged `dep` exits — a dependency
    /// edge in the scenario DAG (stage 2 of an ETL chain starts when stage
    /// 1 finishes). Edges are validated at build time by topological sort;
    /// in a [`ClusterScenario`](crate::cluster::ClusterScenario), `dep` may
    /// live on a different machine.
    pub fn spawn_after(
        mut self,
        dep: impl Into<String>,
        delay: SimDuration,
        tag: impl Into<String>,
        spec: SpawnSpec,
    ) -> Self {
        self.events.push((
            Trigger::AfterExit {
                tag: dep.into(),
                delay,
            },
            WorkloadEvent::Spawn {
                tag: tag.into(),
                spec,
            },
        ));
        self
    }

    /// SIGKILL the tagged task `delay` after the job tagged `dep` exits.
    pub fn kill_after(
        mut self,
        dep: impl Into<String>,
        delay: SimDuration,
        tag: impl Into<String>,
    ) -> Self {
        self.events.push((
            Trigger::AfterExit {
                tag: dep.into(),
                delay,
            },
            WorkloadEvent::Kill { tag: tag.into() },
        ));
        self
    }

    /// Renice the tagged task `delay` after the job tagged `dep` exits.
    pub fn renice_after(
        mut self,
        dep: impl Into<String>,
        delay: SimDuration,
        tag: impl Into<String>,
        nice: i32,
    ) -> Self {
        self.events.push((
            Trigger::AfterExit {
                tag: dep.into(),
                delay,
            },
            WorkloadEvent::Renice {
                tag: tag.into(),
                nice,
            },
        ));
        self
    }

    /// Re-pin the tagged task `delay` after the job tagged `dep` exits.
    pub fn pin_after(
        mut self,
        dep: impl Into<String>,
        delay: SimDuration,
        tag: impl Into<String>,
        cpus: CpuSet,
    ) -> Self {
        self.events.push((
            Trigger::AfterExit {
                tag: dep.into(),
                delay,
            },
            WorkloadEvent::Pin {
                tag: tag.into(),
                cpus,
            },
        ));
        self
    }

    /// Every *timed* spawn-like event declared for `tag` (scripted spawns
    /// and desugared resume-spawns alike), sorted by instant — the cluster
    /// layer reads these to resolve which machine hosts a tag's *current*
    /// incarnation when validating cross-machine migrations, and to clone
    /// the job spec onto a migration's destination. Dependency-triggered
    /// spawns have no instant; the cluster rejects migrations of such tags.
    pub(crate) fn spawn_events(&self, tag: &str) -> Vec<(SimTime, &SpawnSpec)> {
        let mut spawns: Vec<(SimTime, &SpawnSpec)> = self
            .events
            .iter()
            .filter_map(|(trigger, ev)| match (trigger, ev) {
                (
                    Trigger::At(at),
                    WorkloadEvent::Spawn { tag: t, spec }
                    | WorkloadEvent::ResumeSpawn { tag: t, spec },
                ) if t == tag => Some((*at, spec)),
                _ => None,
            })
            .collect();
        spawns.sort_by_key(|(at, _)| *at);
        spawns
    }

    /// Every timed kill-like event declared against `tag`, sorted by
    /// instant.
    pub(crate) fn kill_events(&self, tag: &str) -> Vec<SimTime> {
        let mut kills: Vec<SimTime> = self
            .events
            .iter()
            .filter_map(|(trigger, ev)| match (trigger, ev) {
                (
                    Trigger::At(at),
                    WorkloadEvent::Kill { tag: t } | WorkloadEvent::CheckpointKill { tag: t },
                ) if t == tag => Some(*at),
                _ => None,
            })
            .collect();
        kills.sort();
        kills
    }

    /// Is some incarnation of `tag` live at instant `at`, per the declared
    /// timed schedule? Each spawn is paired with the earliest following
    /// kill; an incarnation killed at exactly `at` no longer counts as live.
    pub(crate) fn tag_live_at(&self, tag: &str, at: SimTime) -> bool {
        let spawns = self.spawn_events(tag);
        let mut kills = self.kill_events(tag).into_iter().peekable();
        for (s, _) in spawns {
            // Consume kills that ended earlier incarnations.
            while kills.peek().is_some_and(|k| *k < s) {
                kills.next();
            }
            let end = kills.next();
            if s <= at && end.is_none_or(|k| k > at) {
                return true;
            }
        }
        false
    }

    /// Append a timed event in place (the by-value builder methods cover
    /// user code; the cluster layer desugars migrations into per-machine
    /// events through this).
    pub(crate) fn schedule(&mut self, at: SimTime, ev: WorkloadEvent) {
        self.events.push((Trigger::At(at), ev));
    }

    /// Re-append a dependency-triggered entry — the cluster layer hands
    /// same-machine edges back after classifying the drained set.
    pub(crate) fn defer(&mut self, dep: String, delay: SimDuration, ev: WorkloadEvent) {
        self.events
            .push((Trigger::AfterExit { tag: dep, delay }, ev));
    }

    /// The earliest *timed* event targeting `tag`, if any — the cluster
    /// layer's typed rejection of scripted events against
    /// dependency-spawned tags points at it.
    pub(crate) fn first_timed_event_on(&self, tag: &str) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|(trigger, ev)| match trigger {
                Trigger::At(at) if ev.tag() == tag => Some(*at),
                _ => None,
            })
            .min()
    }

    /// Does this machine's timed schedule end `tag`'s life with a
    /// checkpoint-kill (migrated away, no later spawn)? Its exit then never
    /// lands here — an after-exit edge keyed on it would wait forever.
    pub(crate) fn ends_checkpoint_killed(&self, tag: &str) -> bool {
        let mut evs: Vec<(SimTime, &WorkloadEvent)> = self
            .events
            .iter()
            .filter_map(|(trigger, ev)| match trigger {
                Trigger::At(at) if ev.tag() == tag => Some((*at, ev)),
                _ => None,
            })
            .collect();
        evs.sort_by_key(|(at, _)| *at);
        let mut ends_migrated = false;
        for (_, ev) in evs {
            if ev.is_spawn() {
                ends_migrated = false;
            } else if matches!(ev, WorkloadEvent::CheckpointKill { .. }) {
                ends_migrated = true;
            } else if matches!(ev, WorkloadEvent::Kill { .. }) {
                ends_migrated = false;
            }
        }
        ends_migrated
    }

    /// Remove and return every dependency-triggered entry, in declaration
    /// order — the cluster layer lifts them into its cross-machine
    /// dependency registry and resolves them centrally.
    pub(crate) fn drain_deferred(&mut self) -> Vec<(String, SimDuration, WorkloadEvent)> {
        let mut deferred = Vec::new();
        let mut rest = Vec::with_capacity(self.events.len());
        for (trigger, ev) in self.events.drain(..) {
            match trigger {
                Trigger::AfterExit { tag, delay } => deferred.push((tag, delay, ev)),
                Trigger::At(at) => rest.push((Trigger::At(at), ev)),
            }
        }
        self.events = rest;
        deferred
    }

    /// Validate the schedule and build the live [`Session`]. Events at t=0
    /// are applied immediately, so their pids are resolvable right away.
    pub fn build(mut self) -> Result<Session, SessionError> {
        // Split the schedule into its timed half and its dependency edges.
        let mut deferred: Vec<(String, SimDuration, WorkloadEvent)> = Vec::new();
        let mut timed: Vec<(SimTime, WorkloadEvent)> = Vec::new();
        for (trigger, ev) in self.events.drain(..) {
            match trigger {
                Trigger::At(at) => timed.push((at, ev)),
                Trigger::AfterExit { tag, delay } => deferred.push((tag, delay, ev)),
            }
        }

        // Stable by time: same-instant events keep their declaration order.
        timed.sort_by_key(|(at, _)| *at);

        // Dependency edges first: known deps, acyclic spawn-after graph, no
        // timed event against a dependency-spawned tag, no dependency that
        // is migrated away for good. Running this before the timed walk
        // means a timed event on a dependency-spawned tag surfaces as the
        // typed DAG error, not as the walk's "unknown tag". (No dependency
        // edges — every pre-existing scenario — makes this a no-op.)
        let decls: Vec<DeferredDecl<'_>> = deferred
            .iter()
            .map(|(dep, _, ev)| DeferredDecl { dep, ev })
            .collect();
        validation::validate_dag(&timed, &decls)?;
        drop(decls);

        // First spawn instant per tag, for the "precedes its spawn" message.
        let mut first_spawn: BTreeMap<&str, SimTime> = BTreeMap::new();
        for (at, ev) in &timed {
            if ev.is_spawn() {
                first_spawn.entry(ev.tag()).or_insert(*at);
            }
        }
        // Walk in final apply order (sorted is stable, so same-instant
        // events keep declaration order), tracking each tag's incarnation
        // state. A tag may be spawned again once its previous incarnation
        // is killed — that is what lets a migrated job return to a machine
        // it already ran on — but two incarnations of one tag must never be
        // live at once, and every kill/renice/pin must land inside a live
        // incarnation. The feasibility question itself is the shared
        // checker in [`validation`]; this walk only supplies the facts.
        #[derive(Clone, Copy)]
        enum TagState {
            Live,
            Dead(SimTime),
        }
        let mut state: BTreeMap<&str, TagState> = BTreeMap::new();
        for (at, ev) in &timed {
            let tag = ev.tag();
            let facts = TagFacts {
                live: matches!(state.get(tag), Some(TagState::Live)),
                // The walk sees events in apply order: a first spawn not
                // yet walked always applies *after* this event. (A spawn's
                // own first_spawn entry is itself, not an alias.)
                pending_spawn: if ev.is_spawn() || state.contains_key(tag) {
                    None
                } else {
                    first_spawn.get(tag).map(|s| (*s, false))
                },
                pending_kill: None,
                ever_spawned: state.contains_key(tag),
                dead_at: match state.get(tag) {
                    Some(TagState::Dead(k)) => Some(*k),
                    _ => None,
                },
            };
            validation::check_event(&facts, ev, *at).map_err(|i| i.build_error(tag, *at))?;
            if ev.is_spawn() {
                state.insert(tag, TagState::Live);
            } else if ev.is_kill() {
                state.insert(tag, TagState::Dead(*at));
            }
        }

        // Affinity masks are validated here, not at apply time: a pin (or a
        // spawn affinity) that no PU of this machine satisfies would
        // otherwise surface as a mid-run sched_setaffinity EINVAL — a
        // scripting mistake, so reject it before the kernel boots. (The
        // `CpuSet` constructors still assert internally; scripts that build
        // masks from untrusted input use `CpuSet::try_of`/`try_single`.)
        let num_pus = self.machine.topology.num_pus();
        for (at, ev) in &timed {
            let (tag, cpus, what) = match ev {
                WorkloadEvent::Pin { tag, cpus } => (tag, cpus, "pin"),
                WorkloadEvent::Spawn { tag, spec } | WorkloadEvent::ResumeSpawn { tag, spec } => {
                    (tag, &spec.affinity, "spawn affinity")
                }
                _ => continue,
            };
            if !(0..num_pus).any(|pu| cpus.allows(PuId(pu))) {
                return Err(SessionError::InvalidScenario(format!(
                    "{what} for '{tag}' at {at:?} allows none of the machine's \
                     {num_pus} PUs"
                )));
            }
        }
        for (dep, _, ev) in &deferred {
            let (tag, cpus, what) = match ev {
                WorkloadEvent::Pin { tag, cpus } => (tag, cpus, "pin"),
                WorkloadEvent::Spawn { tag, spec } | WorkloadEvent::ResumeSpawn { tag, spec } => {
                    (tag, &spec.affinity, "spawn affinity")
                }
                _ => continue,
            };
            if !(0..num_pus).any(|pu| cpus.allows(PuId(pu))) {
                return Err(SessionError::InvalidScenario(format!(
                    "{what} for '{tag}' (triggered after '{dep}' exits) allows none of \
                     the machine's {num_pus} PUs"
                )));
            }
        }

        let mut cfg = KernelConfig::new(self.machine).seed(self.seed);
        if let Some(epoch) = self.epoch {
            cfg = cfg.epoch(epoch);
        }
        if let Some(scheduler) = self.scheduler {
            cfg = cfg.scheduler(scheduler);
        }
        let mut kernel = Kernel::new(cfg);
        for (uid, name) in self.users {
            kernel.add_user(uid, name);
        }
        // Retain every job spec by tag: a live migration decided mid-run
        // (see `ClusterSession::run_reactive`) re-spawns the job on its
        // destination machine from this copy.
        let mut specs: BTreeMap<String, SpawnSpec> = BTreeMap::new();
        for ev in timed
            .iter()
            .map(|(_, ev)| ev)
            .chain(deferred.iter().map(|(_, _, ev)| ev))
        {
            if let WorkloadEvent::Spawn { tag, spec } | WorkloadEvent::ResumeSpawn { tag, spec } =
                ev
            {
                specs.insert(tag.clone(), spec.clone());
            }
        }

        // A dependency edge fires on its dep's *completion*: the exit of
        // the last incarnation this schedule creates for it.
        let mut spawn_counts: BTreeMap<String, usize> = BTreeMap::new();
        for ev in timed
            .iter()
            .map(|(_, ev)| ev)
            .chain(deferred.iter().map(|(_, _, ev)| ev))
        {
            if ev.is_spawn() {
                *spawn_counts.entry(ev.tag().to_string()).or_default() += 1;
            }
        }
        let deferred: Vec<DeferredEvent> = deferred
            .into_iter()
            .map(|(dep, delay, ev)| {
                let min_incarnations = spawn_counts.get(dep.as_str()).copied().unwrap_or(1).max(1);
                DeferredEvent {
                    dep,
                    min_incarnations,
                    delay,
                    ev,
                }
            })
            .collect();

        let mut session = Session::from_parts(kernel, timed.into(), deferred, specs);
        session.settle_now()?;
        Ok(session)
    }
}
