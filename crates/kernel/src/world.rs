//! A thread-safe handle around the kernel for multi-threaded drivers.
//!
//! Most experiments drive the kernel single-threaded (`&mut Kernel`), which
//! is simplest and fully deterministic. Some examples want a *monitor
//! thread* and a *driver thread* (like a human watching a live screen while
//! the machine churns); [`World`] wraps the kernel in an `Arc<RwLock>` for
//! that shape.

use std::sync::Arc;

use parking_lot::RwLock;

use tiptop_machine::time::{SimDuration, SimTime};

use crate::kernel::{Kernel, KernelConfig};
use crate::task::{Pid, SpawnSpec};

/// Shared, clonable handle to a [`Kernel`].
#[derive(Clone)]
pub struct World {
    inner: Arc<RwLock<Kernel>>,
}

impl World {
    pub fn new(cfg: KernelConfig) -> Self {
        World {
            inner: Arc::new(RwLock::new(Kernel::new(cfg))),
        }
    }

    pub fn from_kernel(kernel: Kernel) -> Self {
        World {
            inner: Arc::new(RwLock::new(kernel)),
        }
    }

    /// Run `f` with exclusive access to the kernel.
    pub fn with<R>(&self, f: impl FnOnce(&mut Kernel) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Run `f` with shared (read-only) access.
    pub fn read<R>(&self, f: impl FnOnce(&Kernel) -> R) -> R {
        f(&self.inner.read())
    }

    pub fn now(&self) -> SimTime {
        self.inner.read().now()
    }

    pub fn advance(&self, dur: SimDuration) {
        self.inner.write().advance(dur);
    }

    pub fn spawn(&self, spec: SpawnSpec) -> Pid {
        self.inner.write().spawn(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::task::Uid;
    use tiptop_machine::config::MachineConfig;
    use tiptop_machine::exec::ExecProfile;

    #[test]
    fn world_shares_kernel_across_clones() {
        let w = World::new(KernelConfig::new(MachineConfig::nehalem_w3550()));
        let w2 = w.clone();
        let pid = w.spawn(SpawnSpec::new(
            "t",
            Uid(1),
            Program::endless(ExecProfile::builder("x").build()),
        ));
        w2.advance(SimDuration::from_millis(100));
        assert_eq!(w.now(), SimTime(100_000_000));
        assert!(w.read(|k| k.is_alive(pid)));
    }

    #[test]
    fn world_is_send_and_usable_from_threads() {
        let w = World::new(KernelConfig::new(MachineConfig::nehalem_w3550()));
        let w2 = w.clone();
        let handle = std::thread::spawn(move || {
            w2.advance(SimDuration::from_millis(50));
            w2.now()
        });
        let t = handle.join().unwrap();
        assert_eq!(t, SimTime(50_000_000));
        assert_eq!(w.now(), t);
    }
}
