//! Cluster-session contract tests: the merged frame stream is
//! deterministic at any worker-thread count, shard failures surface as
//! typed errors without poisoning the pool, per-machine stop predicates
//! behave like `Session::run_until`, cross-machine migrations hand a job
//! over at one exact instant, fleet-scale `run_all` interleaves monitor
//! sets deterministically, and the window sink bounds buffered frames.

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::baseline::TopView;
use tiptop_core::cluster::{
    ClusterCollectSink, ClusterFrame, ClusterScenario, ClusterWindowSink, MachineRef,
};
use tiptop_core::config::ScreenConfig;
use tiptop_core::monitor::Monitor;
use tiptop_core::reactive::{MigrationDecision, MigrationMode, SchedulerPolicy};
use tiptop_core::render::Frame;
use tiptop_core::scenario::{DagError, Scenario, SessionError};
use tiptop_kernel::kernel::Kernel;
use tiptop_kernel::program::Program;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::access::MemoryBehavior;
use tiptop_machine::config::MachineConfig;
use tiptop_machine::exec::ExecProfile;
use tiptop_machine::time::{SimDuration, SimTime};

fn spin(cpi: f64) -> Program {
    Program::endless(
        ExecProfile::builder("spin")
            .base_cpi(cpi)
            .branches(0.18, 0.0)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .build(),
    )
}

/// A small heterogeneous cluster: three Nehalem nodes with different seeds
/// and workloads, plus one PPC970 node.
fn cluster() -> ClusterScenario {
    let nehalem = |seed: u64, cpi: f64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin(cpi)).seed(seed))
    };
    let ppc = Scenario::new(MachineConfig::ppc970_machine().noiseless())
        .seed(77)
        .user(Uid(1), "u1")
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin(1.1)).seed(77));
    ClusterScenario::new()
        .machine("node-0", nehalem(1, 0.8))
        .machine("node-1", nehalem(2, 0.9))
        .machine("node-2", nehalem(3, 1.0))
        .machine("ppc", ppc)
}

fn tool(delay_s: u64) -> Box<Tiptop> {
    Box::new(Tiptop::new(
        TiptopOptions::default()
            .observer(Uid::ROOT)
            .delay(SimDuration::from_secs(delay_s)),
        ScreenConfig::default_screen(),
    ))
}

/// Render the merged stream to bytes: the byte-identity artifact.
fn rendered(frames: &[ClusterFrame]) -> String {
    frames
        .iter()
        .map(|cf| {
            format!(
                "[{} #{} {}]\n{}",
                cf.machine,
                cf.seq,
                cf.source,
                cf.frame.render()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn merged_stream_is_byte_identical_at_1_2_8_and_16_threads() {
    let run_at = |threads: usize| {
        let mut session = cluster().build().unwrap();
        let frames = session
            .run_collect(threads, 5, |m: MachineRef<'_>| {
                // Different refresh rates per machine exercise the merge.
                tool(if m.index.is_multiple_of(2) { 1 } else { 2 })
            })
            .unwrap();
        rendered(&frames)
    };
    let single = run_at(1);
    assert_eq!(single, run_at(2), "2 workers must not change one byte");
    assert_eq!(single, run_at(8), "8 workers must not change one byte");
    // 16 lanes into a 4-machine cluster: more lanes than shards, so some
    // lanes stay empty for the whole run — the loser tree must keep
    // treating them as +∞ without ever stalling or reordering the merge.
    assert_eq!(single, run_at(16), "16 workers must not change one byte");
    assert!(single.contains("[ppc #4 tiptop]"), "every machine finished");
}

#[test]
fn merge_orders_frames_by_time_then_machine_index() {
    let mut session = cluster().build().unwrap();
    let frames = session.run_collect(3, 4, |_| tool(1)).unwrap();
    assert_eq!(frames.len(), 16);
    for w in frames.windows(2) {
        let a = (w[0].frame.time, w[0].machine_index);
        let b = (w[1].frame.time, w[1].machine_index);
        assert!(a <= b, "merge key must be non-decreasing: {a:?} vs {b:?}");
    }
    // Same-instant frames (all monitors tick at 1 s) follow machine order.
    let first_second: Vec<usize> = frames
        .iter()
        .filter(|f| f.frame.time == SimTime::from_secs(1))
        .map(|f| f.machine_index)
        .collect();
    assert_eq!(first_second, vec![0, 1, 2, 3]);
}

#[test]
fn per_machine_until_stops_that_machine_only() {
    let mut session = cluster().build().unwrap();
    let mut sink = ClusterCollectSink::new();
    session
        .run_each(
            2,
            6,
            |_| tool(1),
            |m: MachineRef<'_>| {
                // node-1 stops after its second frame; everyone else runs out
                // the refresh budget.
                let stop_early = m.id == "node-1";
                let mut seen = 0usize;
                Box::new(move |_f: &Frame| {
                    seen += 1;
                    stop_early && seen >= 2
                })
            },
            &mut sink,
        )
        .unwrap();
    let count = |id: &str| sink.frames().iter().filter(|f| f.machine == id).count();
    assert_eq!(count("node-1"), 2, "stopping frame is still delivered");
    assert_eq!(count("node-0"), 6);
    assert_eq!(count("ppc"), 6);
}

/// A monitor that panics on its n-th observation.
struct PanicMonitor {
    inner: Tiptop,
    observations: usize,
    panic_on: usize,
}

impl Monitor for PanicMonitor {
    fn name(&self) -> &str {
        "panic-monitor"
    }

    fn interval(&self) -> SimDuration {
        Monitor::interval(&self.inner)
    }

    fn prime(&mut self, k: &mut Kernel) {
        self.inner.prime(k);
    }

    fn observe(&mut self, k: &mut Kernel) -> Frame {
        self.observations += 1;
        if self.observations == self.panic_on {
            panic!("injected shard failure");
        }
        Monitor::observe(&mut self.inner, k)
    }
}

#[test]
fn panicking_shard_surfaces_as_typed_error_without_poisoning_the_pool() {
    let mut session = cluster().build().unwrap();
    let mut sink = ClusterCollectSink::new();
    let err = session
        .run_each(
            2,
            4,
            |m: MachineRef<'_>| {
                if m.id == "node-1" {
                    Box::new(PanicMonitor {
                        inner: *tool(1),
                        observations: 0,
                        panic_on: 2,
                    })
                } else {
                    tool(1)
                }
            },
            |_| Box::new(|_| false),
            &mut sink,
        )
        .unwrap_err();
    match &err {
        SessionError::ShardPanicked { machine, message } => {
            assert_eq!(machine, "node-1");
            assert!(message.contains("injected shard failure"), "{message}");
        }
        other => panic!("expected ShardPanicked, got {other:?}"),
    }
    // The pool survived: every other machine delivered all four frames, and
    // node-1's pre-panic frame still reached the sink.
    let count = |id: &str| sink.frames().iter().filter(|f| f.machine == id).count();
    assert_eq!(count("node-0"), 4);
    assert_eq!(count("node-2"), 4);
    assert_eq!(count("ppc"), 4);
    assert_eq!(
        count("node-1"),
        1,
        "frames observed before the panic stream"
    );
    // The torn shard's session is withheld; the healthy ones are back.
    assert!(session.session("node-1").is_none());
    assert!(session.session("node-0").is_some());
}

#[test]
fn shard_session_error_is_labelled_with_its_machine() {
    // node-1 schedules a kill of a task that exits on its own first: the
    // ESRCH surfaces as Shard{machine: node-1, Syscall}.
    let healthy = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(1)
        .user(Uid(1), "u1")
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin(0.8)));
    let doomed = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(2)
        .user(Uid(1), "u1")
        .spawn(
            "short",
            SpawnSpec::new(
                "short",
                Uid(1),
                Program::single(ExecProfile::builder("s").base_cpi(0.8).build(), 1_000_000),
            ),
        )
        .kill_at(SimTime::from_secs(2), "short");
    let mut session = ClusterScenario::new()
        .machine("ok", healthy)
        .machine("doomed", doomed)
        .build()
        .unwrap();
    let mut sink = ClusterCollectSink::new();
    let err = session.run(2, 4, |_| tool(1), &mut sink).unwrap_err();
    match &err {
        SessionError::Shard { machine, error } => {
            assert_eq!(machine, "doomed");
            assert!(
                matches!(**error, SessionError::Syscall { call: "kill", .. }),
                "{error:?}"
            );
        }
        other => panic!("expected Shard, got {other:?}"),
    }
    // A clean SessionError (no panic) hands the session back.
    assert!(session.session("doomed").is_some());
    assert_eq!(
        sink.frames().iter().filter(|f| f.machine == "ok").count(),
        4,
        "healthy machine unaffected"
    );
}

#[test]
fn zero_interval_monitor_is_rejected_without_losing_any_shard() {
    let mut session = cluster().build().unwrap();
    let mut sink = ClusterCollectSink::new();
    // node-2's monitor has a zero refresh interval; the error must leave
    // every shard in place (nothing taken, nothing lost).
    let err = session
        .run(
            2,
            3,
            |m: MachineRef<'_>| tool(if m.id == "node-2" { 0 } else { 1 }),
            &mut sink,
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("zero refresh interval"),
        "got {err}"
    );
    assert!(sink.frames().is_empty(), "nothing ran");
    for id in ["node-0", "node-1", "node-2", "ppc"] {
        assert!(session.session(id).is_some(), "{id} must survive the error");
    }
    // And the cluster is still fully runnable afterwards.
    let frames = session.run_collect(2, 2, |_| tool(1)).unwrap();
    assert_eq!(frames.len(), 8);
}

/// A three-node cluster with one migrating job: `job` starts on node-a,
/// the grid scheduler moves it to node-b at t=3 and onward to node-c at
/// t=6.
fn migration_cluster() -> ClusterScenario {
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8)).seed(5)),
        )
        .machine("node-b", node(2))
        .machine("node-c", node(3))
        .migrate_at(SimTime::from_secs(3), "job", "node-a", "node-b")
        .migrate_at(SimTime::from_secs(6), "job", "node-b", "node-c")
}

#[test]
fn migration_hands_over_at_one_instant_and_is_byte_identical_at_1_2_and_8_threads() {
    let run_at = |threads: usize| {
        let mut session = migration_cluster().build().unwrap();
        let frames = session.run_collect(threads, 8, |_| tool(1)).unwrap();
        (rendered(&frames), frames, session)
    };
    let (golden, frames, session) = run_at(1);

    // Where the job is visible, refresh by refresh: on the source right up
    // to the handover frame (its final row — it ran until the kill), on
    // the destination from the handover frame on.
    let on = |t: u64, machine: &str| {
        frames
            .iter()
            .find(|cf| cf.machine == machine && cf.frame.time == SimTime::from_secs(t))
            .expect("frame exists")
            .frame
            .row_for_comm("job")
            .is_some()
    };
    for t in 1..=8 {
        assert_eq!(on(t, "node-a"), t <= 3, "node-a at t={t}");
        assert_eq!(on(t, "node-b"), (3..=6).contains(&t), "node-b at t={t}");
        assert_eq!(on(t, "node-c"), t >= 6, "node-c at t={t}");
    }

    // Kernel-level: each hop's exit on the source and spawn on the
    // destination carry the same sim-time.
    let a = session.session("node-a").unwrap();
    let b = session.session("node-b").unwrap();
    let c = session.session("node-c").unwrap();
    let exit_a = a
        .kernel()
        .exit_record(a.pid("job").expect("spawned on a"))
        .expect("killed by the migration")
        .clone();
    let exit_b = b
        .kernel()
        .exit_record(b.pid("job").expect("respawned on b"))
        .expect("killed by the second hop")
        .clone();
    let live_c = c
        .kernel()
        .stat(c.pid("job").expect("respawned on c"))
        .expect("still running on c");
    assert_eq!(exit_a.end_time, SimTime::from_secs(3));
    assert_eq!(exit_b.start_time, SimTime::from_secs(3), "same instant");
    assert_eq!(exit_b.end_time, SimTime::from_secs(6));
    assert_eq!(live_c.start_time, SimTime::from_secs(6), "same instant");

    // The golden artifact: byte-identical at any worker-thread count.
    assert_eq!(golden, run_at(2).0, "2 workers must not change one byte");
    assert_eq!(golden, run_at(8).0, "8 workers must not change one byte");
}

#[test]
fn migrate_at_is_validated_across_machines_at_build_time() {
    let err = |sc: ClusterScenario| sc.build().unwrap_err().to_string();

    let base = || {
        let node = |seed: u64| {
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .seed(seed)
                .user(Uid(1), "u1")
        };
        ClusterScenario::new()
            .machine(
                "a",
                node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8))),
            )
            .machine(
                "b",
                node(2).spawn("resident", SpawnSpec::new("resident", Uid(1), spin(0.9))),
            )
    };
    let at = SimTime::from_secs(2);

    let e = err(base().migrate_at(at, "job", "a", "a"));
    assert!(e.contains("same machine"), "{e}");

    let e = err(base().migrate_at(at, "job", "a", "ghost"));
    assert!(e.contains("unknown machine 'ghost'"), "{e}");

    let e = err(base().migrate_at(at, "nosuch", "a", "b"));
    assert!(e.contains("no machine spawns 'nosuch'"), "{e}");

    // The tag exists — on a different machine; the error says where.
    let e = err(base().migrate_at(at, "job", "b", "a"));
    assert!(e.contains("lives on machine 'a'"), "{e}");

    // Migrating before the job exists, or after it was killed.
    let early = base()
        .machine(
            "c",
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .user(Uid(1), "u1")
                .spawn_at(
                    SimTime::from_secs(5),
                    "late",
                    SpawnSpec::new("late", Uid(1), spin(1.0)),
                ),
        )
        .migrate_at(at, "late", "c", "b");
    let e = err(early);
    assert!(e.contains("precedes the job's spawn"), "{e}");

    let killed = ClusterScenario::new()
        .machine(
            "a",
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .user(Uid(1), "u1")
                .spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8)))
                .kill_at(SimTime::from_secs(1), "job"),
        )
        .machine(
            "b",
            Scenario::new(MachineConfig::nehalem_w3550().noiseless()).user(Uid(1), "u1"),
        )
        .migrate_at(at, "job", "a", "b");
    let e = err(killed);
    assert!(e.contains("already gone"), "{e}");

    // Destination already carries the tag (two machines legitimately run
    // jobs under the same tag until a migration tries to collide them).
    let onto_occupied = base()
        .machine(
            "c",
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .user(Uid(1), "u1")
                .spawn("job", SpawnSpec::new("job", Uid(1), spin(1.0))),
        )
        .migrate_at(at, "job", "a", "c");
    let e = err(onto_occupied);
    assert!(e.contains("destination already carries"), "{e}");

    // Round trips validate: a tag resolves to a (machine, incarnation)
    // pair, so after a->b the job can come back to a as a fresh
    // incarnation — but only once its previous stay on a is over, which
    // the chronological walk checks per hop.
    assert!(base()
        .migrate_at(at, "job", "a", "b")
        .migrate_at(SimTime::from_secs(4), "job", "b", "a")
        .build()
        .is_ok());

    // The incarnation-aware walk still rejects a hop whose source stay is
    // already over: after a->b->a the job is gone from b.
    let e = err(base()
        .migrate_at(at, "job", "a", "b")
        .migrate_at(SimTime::from_secs(4), "job", "b", "a")
        .migrate_at(SimTime::from_secs(6), "job", "b", "a"));
    assert!(e.contains("already gone"), "{e}");

    // And a well-formed migration builds.
    assert!(base().migrate_at(at, "job", "a", "b").build().is_ok());
}

#[test]
fn cluster_run_all_interleaves_monitor_sets_deterministically() {
    let run_at = |threads: usize| {
        let mut session = cluster().build().unwrap();
        let mut sink = ClusterCollectSink::new();
        session
            .run_all(
                threads,
                4,
                |_: MachineRef<'_>| {
                    vec![
                        tool(1) as Box<dyn Monitor + Send>,
                        Box::new(TopView::new().delay(SimDuration::from_secs(2))),
                    ]
                },
                &mut sink,
            )
            .unwrap();
        (rendered(sink.frames()), sink.into_frames())
    };
    let (golden, frames) = run_at(1);

    // Every machine contributes both monitors' streams: 4 frames each.
    for m in ["node-0", "node-1", "node-2", "ppc"] {
        for source in ["tiptop", "top"] {
            let n = frames
                .iter()
                .filter(|f| f.machine == m && f.source == source)
                .count();
            assert_eq!(n, 4, "{m}/{source} must deliver its 4 refreshes");
        }
    }
    // Merge order: (time, machine_index), and within one machine's
    // same-instant frames the monitor-set order (tiptop before top at t=2).
    for w in frames.windows(2) {
        let a = (w[0].frame.time, w[0].machine_index);
        let b = (w[1].frame.time, w[1].machine_index);
        assert!(a <= b, "merge key must be non-decreasing: {a:?} vs {b:?}");
    }
    let node0_at_2: Vec<&str> = frames
        .iter()
        .filter(|f| f.machine == "node-0" && f.frame.time == SimTime::from_secs(2))
        .map(|f| f.source.as_str())
        .collect();
    assert_eq!(
        node0_at_2,
        vec!["tiptop", "top"],
        "set order at one instant"
    );

    // Distinct intervals: tiptop observed t=1..=4, top t=2,4,6,8.
    let times = |m: &str, source: &str| -> Vec<u64> {
        frames
            .iter()
            .filter(|f| f.machine == m && f.source == source)
            .map(|f| f.frame.time.as_secs_f64() as u64)
            .collect()
    };
    assert_eq!(times("node-0", "tiptop"), vec![1, 2, 3, 4]);
    assert_eq!(times("node-0", "top"), vec![2, 4, 6, 8]);

    assert_eq!(golden, run_at(2).0, "2 workers must not change one byte");
    assert_eq!(golden, run_at(8).0, "8 workers must not change one byte");
}

#[test]
fn window_sink_bounds_buffered_frames_on_a_10k_frame_run() {
    // Two machines x 5000 refreshes at 100 ms = 10_000 merged frames.
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin(0.8)).seed(seed))
    };
    let mut session = ClusterScenario::new()
        .machine("m0", node(1))
        .machine("m1", node(2))
        .build()
        .unwrap();
    const WINDOW: usize = 64;
    let mut sink = ClusterWindowSink::new(WINDOW);
    session
        .run(
            2,
            5000,
            |_| {
                Box::new(Tiptop::new(
                    TiptopOptions::default()
                        .observer(Uid::ROOT)
                        .delay(SimDuration::from_millis(100)),
                    ScreenConfig::default_screen(),
                ))
            },
            &mut sink,
        )
        .unwrap();

    // The memory bound: never more than one window of frames buffered.
    assert!(
        sink.peak_buffered() <= WINDOW,
        "peak {} must stay within the window {WINDOW}",
        sink.peak_buffered()
    );
    let windows = sink.finish();
    assert_eq!(
        windows.iter().map(|w| w.frames).sum::<usize>(),
        10_000,
        "every frame is aggregated exactly once"
    );
    assert_eq!(windows.len(), 10_000usize.div_ceil(WINDOW));
    // Windows tile the run in time order and carry usable aggregates.
    for w in windows.windows(2) {
        assert!(w[0].end <= w[1].start, "windows must tile in time order");
    }
    for w in &windows {
        for m in ["m0", "m1"] {
            let stats = w
                .sources
                .get(&(m.to_string(), "tiptop".to_string()))
                .expect("both machines in every window");
            let ipc = stats.mean("IPC").expect("IPC aggregated");
            assert!(ipc > 0.5, "healthy spin IPC, got {ipc}");
        }
    }
}

#[test]
fn multi_shard_failure_delivers_healthy_frames_then_lowest_index_error() {
    // node-1 panics on its 3rd observation, node-2 on its 1st: node-2
    // fails *earlier in sim-time*, but the contract returns the first
    // failure by machine index — node-1 — at any thread count.
    let run_at = |threads: usize| {
        let mut session = cluster().build().unwrap();
        let mut sink = ClusterCollectSink::new();
        let err = session
            .run_each(
                threads,
                4,
                |m: MachineRef<'_>| {
                    let panic_on = match m.id {
                        "node-1" => 3,
                        "node-2" => 1,
                        _ => usize::MAX,
                    };
                    Box::new(PanicMonitor {
                        inner: *tool(1),
                        observations: 0,
                        panic_on,
                    })
                },
                |_| Box::new(|_| false),
                &mut sink,
            )
            .unwrap_err();
        (err, sink.into_frames())
    };
    let (err, frames) = run_at(2);
    match &err {
        SessionError::ShardPanicked { machine, .. } => assert_eq!(machine, "node-1"),
        other => panic!("expected ShardPanicked, got {other:?}"),
    }

    // Deliver-then-error: the healthy machines' *full* runs reached the
    // sink — including frames after both failures' sim-times.
    let count = |id: &str| frames.iter().filter(|f| f.machine == id).count();
    assert_eq!(count("node-0"), 4);
    assert_eq!(count("ppc"), 4);
    // The failed shards' pre-failure frames are all there...
    assert_eq!(count("node-1"), 2, "two frames before the 3rd observation");
    assert_eq!(count("node-2"), 0, "panicked before its first frame");
    // ...and merged at their proper (time, machine) position.
    for w in frames.windows(2) {
        let a = (w[0].frame.time, w[0].machine_index);
        let b = (w[1].frame.time, w[1].machine_index);
        assert!(a <= b, "failure must not reorder the stream: {a:?} {b:?}");
    }

    // The whole outcome — frames and error — is thread-count independent.
    let (err1, frames1) = run_at(1);
    let (err8, frames8) = run_at(8);
    assert_eq!(rendered(&frames), rendered(&frames1));
    assert_eq!(rendered(&frames), rendered(&frames8));
    for e in [&err1, &err8] {
        assert!(
            matches!(e, SessionError::ShardPanicked { machine, .. } if machine == "node-1"),
            "got {e:?}"
        );
    }
}

#[test]
fn run_collect_preserves_the_partial_stream_on_shard_failure() {
    let healthy = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(1)
        .user(Uid(1), "u1")
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin(0.8)));
    let doomed = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(2)
        .user(Uid(1), "u1")
        .spawn(
            "short",
            SpawnSpec::new(
                "short",
                Uid(1),
                Program::single(ExecProfile::builder("s").base_cpi(0.8).build(), 1_000_000),
            ),
        )
        .kill_at(SimTime::from_secs(2), "short");
    let mut session = ClusterScenario::new()
        .machine("ok", healthy)
        .machine("doomed", doomed)
        .build()
        .unwrap();
    let e = session.run_collect(2, 4, |_| tool(1)).unwrap_err();
    assert!(
        matches!(&e.error, SessionError::Shard { machine, .. } if machine == "doomed"),
        "got {:?}",
        e.error
    );
    // The two-hour-run-not-lost guarantee: the healthy machine's full
    // stream (and the failed one's pre-failure frames) survive the error.
    assert_eq!(
        e.partial.iter().filter(|f| f.machine == "ok").count(),
        4,
        "healthy machine's frames preserved"
    );
    assert!(
        e.partial.iter().filter(|f| f.machine == "doomed").count() >= 1,
        "pre-failure frames preserved"
    );
    assert!(e.to_string().contains("merged frames preserved"), "{e}");
}

#[test]
fn run_all_rejects_an_empty_monitor_set() {
    // An unobserved machine would stay frozen at its current sim-time (its
    // events never applying), so an empty set is a typed error — and the
    // error leaves every shard intact and the cluster re-runnable.
    let mut session = cluster().build().unwrap();
    let mut sink = ClusterCollectSink::new();
    let err = session
        .run_all(
            2,
            3,
            |m: MachineRef<'_>| {
                if m.id == "node-2" {
                    Vec::new()
                } else {
                    vec![tool(1) as Box<dyn Monitor + Send>]
                }
            },
            &mut sink,
        )
        .unwrap_err();
    assert!(
        matches!(&err, SessionError::InvalidScenario(msg) if msg.contains("empty monitor set")),
        "got {err:?}"
    );
    assert!(sink.frames().is_empty(), "nothing ran");
    for id in ["node-0", "node-1", "node-2", "ppc"] {
        assert!(session.session(id).is_some(), "{id} must survive the error");
    }
    let frames = session.run_collect(2, 2, |_| tool(1)).unwrap();
    assert_eq!(frames.len(), 8, "cluster still fully runnable");
}

#[test]
fn window_sink_dedupes_registered_handover_rows_from_the_aggregates() {
    // The raw stream keeps both handover rows (source's final row,
    // destination's first) — that is the observable migration artifact. A
    // fleet-wide aggregate must not double-count the job at those instants:
    // registering the session's handovers excludes the destination-side
    // row and reports it in WindowStats::handover_rows instead.
    let raw = {
        let mut session = migration_cluster().build().unwrap();
        session.run_collect(2, 8, |_| tool(1)).unwrap()
    };
    let job_rows_at = |t: u64| {
        raw.iter()
            .filter(|cf| cf.frame.time == SimTime::from_secs(t))
            .filter(|cf| cf.frame.row_for_comm("job").is_some())
            .count()
    };
    assert_eq!(job_rows_at(3), 2, "handover frame shows the job twice");
    assert_eq!(job_rows_at(6), 2, "second hop too");
    let raw_rows: usize = raw.iter().map(|cf| cf.frame.rows.len()).sum();

    let mut session = migration_cluster().build().unwrap();
    let handovers: Vec<_> = session.handovers().to_vec();
    assert_eq!(handovers.len(), 2);
    assert_eq!(handovers[0].at, SimTime::from_secs(3));
    assert_eq!(handovers[0].comm, "job");
    assert_eq!(handovers[1].to, "node-c");
    let mut sink = ClusterWindowSink::new(1000).dedupe_handovers(handovers);
    session.run(2, 8, |_| tool(1), &mut sink).unwrap();
    let windows = sink.finish();
    let aggregated: usize = windows
        .iter()
        .flat_map(|w| w.sources.values())
        .map(|s| s.rows)
        .sum();
    let deduped: usize = windows
        .iter()
        .flat_map(|w| w.sources.values())
        .map(|s| s.handover_rows)
        .sum();
    assert_eq!(deduped, 2, "one destination row per hop is excluded");
    assert_eq!(
        aggregated,
        raw_rows - 2,
        "aggregates count the migrating job once per instant"
    );
    // The excluded rows are attributed to the destinations.
    let stats_for = |machine: &str| {
        windows
            .iter()
            .flat_map(|w| w.sources.iter())
            .filter(|((m, _), _)| m == machine)
            .map(|(_, s)| s.handover_rows)
            .sum::<usize>()
    };
    assert_eq!(stats_for("node-a"), 0);
    assert_eq!(stats_for("node-b"), 1);
    assert_eq!(stats_for("node-c"), 1);
}

#[test]
fn window_sink_keeps_the_final_partial_window_on_the_deliver_then_error_path() {
    // One shard fails mid-run; the deliver-then-error contract still
    // streams the healthy machine's whole run into the sink, and finish()
    // must fold the buffered tail — including post-failure frames — into a
    // final partial window instead of dropping it.
    let build = || {
        let healthy = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(1)
            .user(Uid(1), "u1")
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin(0.8)));
        let doomed = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(2)
            .user(Uid(1), "u1")
            .spawn(
                "short",
                SpawnSpec::new(
                    "short",
                    Uid(1),
                    Program::single(ExecProfile::builder("s").base_cpi(0.8).build(), 1_000_000),
                ),
            )
            .kill_at(SimTime::from_secs(2), "short");
        ClusterScenario::new()
            .machine("ok", healthy)
            .machine("doomed", doomed)
            .build()
            .unwrap()
    };

    // Reference: how many frames does the deliver-then-error path stream?
    let mut reference = build();
    let e = reference.run_collect(2, 4, |_| tool(1)).unwrap_err();
    let delivered = e.partial.len();
    assert!(
        matches!(&e.error, SessionError::Shard { machine, .. } if machine == "doomed"),
        "got {:?}",
        e.error
    );
    assert_eq!(
        delivered, 5,
        "healthy 4 frames + doomed's pre-failure frame"
    );

    // Same run into a window sink whose window does not divide the stream:
    // the tail must survive as a partial window.
    let mut session = build();
    let mut sink = ClusterWindowSink::new(3);
    let err = session.run(2, 4, |_| tool(1), &mut sink).unwrap_err();
    assert!(matches!(err, SessionError::Shard { .. }));
    let windows = sink.finish();
    assert_eq!(
        windows.iter().map(|w| w.frames).sum::<usize>(),
        delivered,
        "every delivered frame is aggregated exactly once"
    );
    let tail = windows.last().expect("at least one window");
    assert_eq!(
        tail.frames,
        delivered % 3,
        "final window is the partial one"
    );
    assert_eq!(
        tail.end,
        SimTime::from_secs(4),
        "the tail window covers the healthy machine's post-failure frames"
    );
}

/// A test policy: on the `on_seq`-th tiptop frame of one machine, migrate
/// a fixed tag — the minimal deterministic closed loop.
struct MigrateOnSeq {
    machine: &'static str,
    on_seq: usize,
    decision: MigrationDecision,
    fired: bool,
}

impl SchedulerPolicy for MigrateOnSeq {
    fn name(&self) -> &str {
        "migrate-on-seq"
    }

    fn observe(&mut self, cf: &ClusterFrame) -> Vec<MigrationDecision> {
        if !self.fired && cf.machine == self.machine && cf.seq == self.on_seq {
            self.fired = true;
            vec![self.decision.clone()]
        } else {
            Vec::new()
        }
    }
}

fn reactive_pair() -> ClusterScenario {
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8)).seed(5)),
        )
        .machine("node-b", node(2))
}

#[test]
fn reactive_migration_is_byte_identical_at_1_2_and_8_threads() {
    let run_at = |threads: usize| {
        let mut session = reactive_pair().build().unwrap();
        let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
            machine: "node-a",
            on_seq: 2,
            decision: MigrationDecision {
                tag: "job".to_string(),
                from: "node-a".to_string(),
                to: "node-b".to_string(),
                mode: MigrationMode::Restart,
            },
            fired: false,
        })];
        let mut sink = ClusterCollectSink::new();
        let applied = session
            .run_reactive(threads, 8, |_| vec![tool(1)], &mut policies, &mut sink)
            .unwrap();
        (
            rendered(sink.frames()),
            sink.into_frames(),
            applied,
            session,
        )
    };
    let (golden, frames, applied, session) = run_at(1);

    // The decision fired on node-a's third frame (t=3) and applied at the
    // next 20 ms epoch boundary — strictly between observation instants,
    // so reactive streams have no double-visibility handover frame.
    assert_eq!(applied.len(), 1);
    let d = &applied[0];
    assert_eq!(
        (d.policy.as_str(), d.tag.as_str()),
        ("migrate-on-seq", "job")
    );
    assert_eq!(d.decided_at, SimTime::from_secs(3));
    assert_eq!(
        d.applied_at.as_nanos(),
        3_020_000_000,
        "next epoch boundary"
    );
    // The session records the live handover like a scripted one.
    assert_eq!(session.handovers().len(), 1);
    assert_eq!(session.handovers()[0].at, d.applied_at);
    assert_eq!(session.handovers()[0].comm, "job");

    let on = |t: u64, machine: &str| {
        frames
            .iter()
            .find(|cf| cf.machine == machine && cf.frame.time == SimTime::from_secs(t))
            .expect("frame exists")
            .frame
            .row_for_comm("job")
            .is_some()
    };
    for t in 1..=8 {
        assert_eq!(on(t, "node-a"), t <= 3, "node-a at t={t}");
        assert_eq!(on(t, "node-b"), t >= 4, "node-b at t={t}");
    }

    // Kernel-level handover: the exit on the source and the spawn on the
    // destination carry the same sim-time, the applied instant.
    let a = session.session("node-a").unwrap();
    let b = session.session("node-b").unwrap();
    let exit_a = a
        .kernel()
        .exit_record(a.pid("job").expect("spawned on a"))
        .expect("killed by the live migration");
    let live_b = b
        .kernel()
        .stat(b.pid("job").expect("respawned on b"))
        .expect("still running on b");
    assert_eq!(exit_a.end_time, d.applied_at);
    assert_eq!(live_b.start_time, d.applied_at, "same instant");

    // The whole outcome — stream, decisions, instants — is thread-count
    // independent.
    for threads in [2, 8] {
        let (stream, _, applied_n, _) = run_at(threads);
        assert_eq!(golden, stream, "{threads} workers must not change one byte");
        assert_eq!(applied_n.len(), 1);
        assert_eq!(applied_n[0].decided_at, d.decided_at);
        assert_eq!(applied_n[0].applied_at, d.applied_at);
    }
}

#[test]
fn infeasible_live_decisions_are_typed_errors_and_leave_the_cluster_runnable() {
    let attempt = |decision: MigrationDecision| {
        let node = |seed: u64| {
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .seed(seed)
                .user(Uid(1), "u1")
        };
        // "short" retires 1M instructions in well under the first refresh:
        // by the time any policy can see a frame, it has already exited.
        let mut session = ClusterScenario::new()
            .machine(
                "node-a",
                node(1)
                    .spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8)))
                    .spawn(
                        "short",
                        SpawnSpec::new(
                            "short",
                            Uid(1),
                            Program::single(
                                ExecProfile::builder("s").base_cpi(0.8).build(),
                                1_000_000,
                            ),
                        ),
                    ),
            )
            .machine("node-b", node(2))
            .build()
            .unwrap();
        let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
            machine: "node-a",
            on_seq: 0,
            decision,
            fired: false,
        })];
        let mut sink = ClusterCollectSink::new();
        let err = session
            .run_reactive(2, 4, |_| vec![tool(1)], &mut policies, &mut sink)
            .unwrap_err();
        // The halt is clean: every session is handed back and runnable.
        assert!(session.session("node-a").is_some());
        assert!(session.session("node-b").is_some());
        assert!(session.run_collect(2, 1, |_| tool(1)).is_ok());
        err
    };
    let migrate = |tag: &str, from: &str, to: &str| MigrationDecision {
        tag: tag.to_string(),
        from: from.to_string(),
        to: to.to_string(),
        mode: MigrationMode::Restart,
    };

    // The headline case: migrating a tag that just exited.
    let err = attempt(migrate("short", "node-a", "node-b"));
    assert!(
        matches!(&err, SessionError::InvalidDecision(msg) if msg.contains("already exited")),
        "got {err:?}"
    );
    assert!(err.to_string().contains("migrate-on-seq"), "{err}");

    // Even on the halt-with-error path the monitors were torn down: the
    // handed-back sessions carry no leaked counter fds.
    {
        let node = |seed: u64| {
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .seed(seed)
                .user(Uid(1), "u1")
        };
        let mut session = ClusterScenario::new()
            .machine(
                "node-a",
                node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8))),
            )
            .machine("node-b", node(2))
            .build()
            .unwrap();
        let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
            machine: "node-a",
            on_seq: 0,
            decision: migrate("ghost", "node-a", "node-b"),
            fired: false,
        })];
        let mut sink = ClusterCollectSink::new();
        session
            .run_reactive(2, 4, |_| vec![tool(1)], &mut policies, &mut sink)
            .unwrap_err();
        for id in ["node-a", "node-b"] {
            assert_eq!(
                session.session(id).unwrap().kernel().open_fds(Uid::ROOT),
                0,
                "{id}: teardown must close counter fds on the error path too"
            );
        }
    }

    let err = attempt(migrate("ghost", "node-a", "node-b"));
    assert!(
        matches!(&err, SessionError::InvalidDecision(msg) if msg.contains("no task tagged")),
        "got {err:?}"
    );

    let err = attempt(migrate("job", "node-a", "nowhere"));
    assert!(
        matches!(&err, SessionError::InvalidDecision(msg) if msg.contains("unknown machine")),
        "got {err:?}"
    );

    let err = attempt(migrate("job", "node-a", "node-a"));
    assert!(
        matches!(&err, SessionError::InvalidDecision(msg) if msg.contains("same machine")),
        "got {err:?}"
    );

    // A feasible decision on the same cast goes through: migrating the
    // live job works and its frames land on node-b.
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    let mut session = ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8))),
        )
        .machine("node-b", node(2))
        .build()
        .unwrap();
    let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
        machine: "node-a",
        on_seq: 0,
        decision: migrate("job", "node-a", "node-b"),
        fired: false,
    })];
    let mut sink = ClusterCollectSink::new();
    let applied = session
        .run_reactive(2, 3, |_| vec![tool(1)], &mut policies, &mut sink)
        .unwrap();
    assert_eq!(applied.len(), 1);
    assert!(sink
        .frames()
        .iter()
        .any(|cf| cf.machine == "node-b" && cf.frame.row_for_comm("job").is_some()));
}

#[test]
fn conflicting_same_round_decisions_cannot_both_claim_one_job() {
    // Two policies fire on the same frame, migrating the same tag to two
    // different destinations. The first claim wins; the second must be a
    // typed error — otherwise the job would be cloned onto both machines.
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    let mut session = ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8))),
        )
        .machine("node-b", node(2))
        .machine("node-c", node(3))
        .build()
        .unwrap();
    let claim = |to: &str| {
        Box::new(MigrateOnSeq {
            machine: "node-a",
            on_seq: 0,
            decision: MigrationDecision {
                tag: "job".to_string(),
                from: "node-a".to_string(),
                to: to.to_string(),
                mode: MigrationMode::Restart,
            },
            fired: false,
        }) as Box<dyn SchedulerPolicy>
    };
    let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![claim("node-b"), claim("node-c")];
    let mut sink = ClusterCollectSink::new();
    let err = session
        .run_reactive(2, 4, |_| vec![tool(1)], &mut policies, &mut sink)
        .unwrap_err();
    assert!(
        matches!(&err, SessionError::InvalidDecision(msg) if msg.contains("already claimed")),
        "got {err:?}"
    );
    // The rejected claim left no stray spawn behind on its destination —
    // and the *accepted* claim, whose kill/spawn never got to apply before
    // the halt, was rolled back too: no handed-back session carries a
    // pending event that would silently migrate the job on a later run.
    for id in ["node-a", "node-b", "node-c"] {
        assert_eq!(
            session.session(id).unwrap().pending_events(),
            0,
            "{id}: no stray decision events after the halt"
        );
    }
    assert!(session.session("node-b").unwrap().pid("job").is_none());
    assert!(session.handovers().is_empty(), "nothing migrated");
    // The job still runs, untouched, on its original machine...
    let a = session.session("node-a").unwrap();
    let pid = a.pid("job").unwrap();
    assert!(a.kernel().is_alive(pid));
    // ...and a re-run does not resurrect the cancelled migration.
    let frames = session.run_collect(2, 2, |_| tool(1)).unwrap();
    assert!(frames
        .iter()
        .all(|cf| cf.machine != "node-b" || cf.frame.row_for_comm("job").is_none()));
}

#[test]
fn decision_on_the_final_round_still_applies() {
    // The policy fires on the very last frame; the kill/spawn land past
    // the final observation, so the driver must flush them before
    // returning — every reported AppliedDecision really happened.
    let mut session = reactive_pair().build().unwrap();
    let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
        machine: "node-a",
        on_seq: 3,
        decision: MigrationDecision {
            tag: "job".to_string(),
            from: "node-a".to_string(),
            to: "node-b".to_string(),
            mode: MigrationMode::Restart,
        },
        fired: false,
    })];
    let mut sink = ClusterCollectSink::new();
    let applied = session
        .run_reactive(2, 4, |_| vec![tool(1)], &mut policies, &mut sink)
        .unwrap();
    assert_eq!(applied.len(), 1);
    let d = &applied[0];
    assert_eq!(
        d.decided_at,
        SimTime::from_secs(4),
        "fired on the last frame"
    );
    assert_eq!(d.applied_at.as_nanos(), 4_020_000_000);
    // No frame ever observed the handover — but it happened: the job
    // exited on the source and lives on the destination, both at the
    // applied instant.
    let a = session.session("node-a").unwrap();
    let b = session.session("node-b").unwrap();
    let exit_a = a
        .kernel()
        .exit_record(a.pid("job").expect("spawned on a"))
        .expect("killed by the flushed migration");
    assert_eq!(exit_a.end_time, d.applied_at);
    let live_b = b
        .kernel()
        .stat(b.pid("job").expect("respawned on b"))
        .expect("alive on b after the run");
    assert_eq!(live_b.start_time, d.applied_at);
    assert_eq!(session.handovers().len(), 1);
    assert!(
        sink.frames()
            .iter()
            .all(|cf| cf.machine != "node-b" || cf.frame.row_for_comm("job").is_none()),
        "the stream ended before the handover could be observed"
    );
}

#[test]
fn half_applied_decision_on_error_is_completed_and_recorded() {
    // node-a observes every 10 ms and node-b every second; the policy
    // fires on node-a's first frame (t=10ms), scheduling the kill/spawn at
    // the 20 ms epoch boundary. node-c's monitor panics in the t=20ms
    // round — node-a applies its kill that round while node-b (still at
    // t=0) has not applied the spawn yet. The driver must not leave that
    // half-migration dangling: the lagging side is completed before the
    // error returns, so the fleet is consistent, the handover is recorded,
    // and no pending event can fire silently on a later run.
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    let mut session = ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin(0.8))),
        )
        .machine("node-b", node(2))
        .machine("node-c", node(3))
        .build()
        .unwrap();
    let fast = || {
        Tiptop::new(
            TiptopOptions::default()
                .observer(Uid::ROOT)
                .delay(SimDuration::from_millis(10)),
            ScreenConfig::default_screen(),
        )
    };
    let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
        machine: "node-a",
        on_seq: 0,
        decision: MigrationDecision {
            tag: "job".to_string(),
            from: "node-a".to_string(),
            to: "node-b".to_string(),
            mode: MigrationMode::Restart,
        },
        fired: false,
    })];
    let mut sink = ClusterCollectSink::new();
    let err = session
        .run_reactive(
            2,
            5,
            |m: MachineRef<'_>| match m.id {
                "node-b" => vec![tool(1)],
                "node-c" => vec![Box::new(PanicMonitor {
                    inner: fast(),
                    observations: 0,
                    panic_on: 2,
                })],
                _ => vec![Box::new(fast())],
            },
            &mut policies,
            &mut sink,
        )
        .unwrap_err();
    assert!(
        matches!(&err, SessionError::ShardPanicked { machine, .. } if machine == "node-c"),
        "got {err:?}"
    );
    // The half-applied migration was completed: the job really moved, at
    // the decision's application instant, and the handover is recorded.
    let at = SimTime(20_000_000);
    assert_eq!(session.handovers().len(), 1);
    assert_eq!(session.handovers()[0].at, at);
    let a = session.session("node-a").unwrap();
    let b = session.session("node-b").unwrap();
    let exited = a
        .kernel()
        .exit_record(a.pid("job").unwrap())
        .expect("kill applied and reaped");
    assert_eq!(exited.end_time, at);
    let live = b
        .kernel()
        .stat(b.pid("job").expect("spawn completed on the lagging side"))
        .expect("job lives on node-b");
    assert_eq!(live.start_time, at);
    // Nothing is left pending: a later run performs no silent migration.
    assert_eq!(a.pending_events(), 0);
    assert_eq!(b.pending_events(), 0);
}

#[test]
fn misfired_kill_racing_a_natural_exit_reverts_the_destination_clone() {
    // A 500 ms scheduler epoch widens the decision-to-boundary window: the
    // policy fires at t=1s (the job is alive), scheduling kill+spawn at
    // the 1.5s boundary — but the job retires its last instruction at
    // ~1.14s and is reaped, so the kill hits a tombstone (Syscall/ESRCH)
    // and the run errors. The spawn on node-b applies regardless; the
    // driver must revert that clone: a job that finished on its own must
    // not be silently restarted elsewhere, and no handover recorded.
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .epoch(SimDuration::from_millis(500))
            .user(Uid(1), "u1")
    };
    // 1e9 instructions retire at ≈ 1.14 s on the W3550 — inside the
    // decision→boundary window.
    let near_done = Program::single(
        ExecProfile::builder("spin")
            .base_cpi(0.8)
            .branches(0.18, 0.0)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .build(),
        1_000_000_000,
    );
    let mut session = ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), near_done)),
        )
        .machine("node-b", node(2))
        .build()
        .unwrap();
    let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
        machine: "node-a",
        on_seq: 0,
        decision: MigrationDecision {
            tag: "job".to_string(),
            from: "node-a".to_string(),
            to: "node-b".to_string(),
            mode: MigrationMode::Restart,
        },
        fired: false,
    })];
    let mut sink = ClusterCollectSink::new();
    let err = session
        .run_reactive(2, 4, |_| vec![tool(1)], &mut policies, &mut sink)
        .unwrap_err();
    assert!(
        matches!(&err, SessionError::Shard { machine, error }
            if machine == "node-a" && matches!(**error, SessionError::Syscall { call: "kill", .. })),
        "got {err:?}"
    );
    // The job finished on its own, before the boundary.
    let a = session.session("node-a").unwrap();
    let exited = a.kernel().exit_record(a.pid("job").unwrap()).unwrap();
    assert!(exited.end_time < SimTime(1_500_000_000), "natural exit");
    // The decision did not happen: no record, and the destination carries
    // no running clone of the finished job.
    assert!(session.handovers().is_empty());
    let b = session.session("node-b").unwrap();
    if let Some(pid) = b.pid("job") {
        assert!(
            !b.kernel().is_alive(pid)
                || b.kernel()
                    .stat(pid)
                    .is_some_and(|st| st.state.code() == 'Z'),
            "the restarted clone must be reverted"
        );
    }
    // A later run shows no resurrected job anywhere.
    let frames = session.run_collect(2, 2, |_| tool(1)).unwrap();
    assert!(frames
        .iter()
        .all(|cf| cf.frame.row_for_comm("job").is_none()));
}

#[test]
fn misfired_resume_kill_is_a_typed_invalid_decision_and_reverts_the_clone() {
    // The resume-mode twin of the misfired-kill race above: the policy
    // fires at t=1s while the job is alive, scheduling CheckpointKill +
    // ResumeSpawn at the 1.5s boundary — but the job retires its last
    // instruction at ~1.14s, so there is nothing left to checkpoint. That
    // must surface as a *typed* InvalidDecision (not a zombie ESRCH, and
    // never a zero-length resumed clone on the destination).
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .epoch(SimDuration::from_millis(500))
            .user(Uid(1), "u1")
    };
    let near_done = Program::single(
        ExecProfile::builder("spin")
            .base_cpi(0.8)
            .branches(0.18, 0.0)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .build(),
        1_000_000_000,
    );
    let mut session = ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), near_done)),
        )
        .machine("node-b", node(2))
        .build()
        .unwrap();
    let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
        machine: "node-a",
        on_seq: 0,
        decision: MigrationDecision {
            tag: "job".to_string(),
            from: "node-a".to_string(),
            to: "node-b".to_string(),
            mode: MigrationMode::Resume,
        },
        fired: false,
    })];
    let mut sink = ClusterCollectSink::new();
    let err = session
        .run_reactive(2, 4, |_| vec![tool(1)], &mut policies, &mut sink)
        .unwrap_err();
    assert!(
        matches!(&err, SessionError::InvalidDecision(msg)
            if msg.contains("already ran to completion")),
        "got {err:?}"
    );
    // The job finished on its own, before the boundary; no handover is
    // recorded and the destination carries no resumed clone.
    let a = session.session("node-a").unwrap();
    let exited = a.kernel().exit_record(a.pid("job").unwrap()).unwrap();
    assert!(exited.end_time < SimTime(1_500_000_000), "natural exit");
    assert!(session.handovers().is_empty());
    let b = session.session("node-b").unwrap();
    if let Some(pid) = b.pid("job") {
        assert!(
            !b.kernel().is_alive(pid),
            "a zero-length resumed clone must never appear"
        );
    }
    // A later run shows no resurrected job anywhere.
    let frames = session.run_collect(2, 2, |_| tool(1)).unwrap();
    assert!(frames
        .iter()
        .all(|cf| cf.frame.row_for_comm("job").is_none()));
}

#[test]
fn reactive_resume_migration_conserves_instructions_and_is_byte_identical() {
    // A finite 20e9-instruction job: unmigrated it retires its last
    // instruction at ~5.3s on the W3550. A resume-mode decision fires on
    // node-a's third frame (t=3s) and applies at the 3.02s boundary; the
    // job continues *mid-program* on node-b and must end with exactly the
    // whole job's totals — restart-from-zero would never finish inside
    // this run.
    let finite = || {
        Program::single(
            ExecProfile::builder("job")
                .base_cpi(0.8)
                .branches(0.18, 0.0)
                .memory(MemoryBehavior::uniform(16 * 1024))
                .build(),
            20_000_000_000,
        )
    };
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    let run_at = |threads: usize| {
        let mut session = ClusterScenario::new()
            .machine(
                "node-a",
                node(1).spawn("job", SpawnSpec::new("job", Uid(1), finite()).seed(5)),
            )
            .machine("node-b", node(2))
            .build()
            .unwrap();
        let mut policies: Vec<Box<dyn SchedulerPolicy>> = vec![Box::new(MigrateOnSeq {
            machine: "node-a",
            on_seq: 2,
            decision: MigrationDecision {
                tag: "job".to_string(),
                from: "node-a".to_string(),
                to: "node-b".to_string(),
                mode: MigrationMode::Resume,
            },
            fired: false,
        })];
        let mut sink = ClusterCollectSink::new();
        let applied = session
            .run_reactive(threads, 8, |_| vec![tool(1)], &mut policies, &mut sink)
            .unwrap();
        (rendered(sink.frames()), applied, session)
    };
    let (golden, applied, session) = run_at(1);

    assert_eq!(applied.len(), 1);
    assert_eq!(applied[0].mode, MigrationMode::Resume);
    assert_eq!(applied[0].applied_at.as_nanos(), 3_020_000_000);
    assert_eq!(session.handovers().len(), 1);
    assert_eq!(session.handovers()[0].mode, MigrationMode::Resume);

    // Conservation: the resumed incarnation's exit record reports the
    // *whole job's* retired instructions, and node-b only ran the
    // remainder (well under the from-zero ~6.9s).
    let b = session.session("node-b").unwrap();
    let exit = b
        .kernel()
        .exit_record(b.pid("job").expect("resumed on b"))
        .expect("finished on b inside the run");
    assert_eq!(exit.total_instructions, 20_000_000_000);
    assert_eq!(exit.start_time, applied[0].applied_at);
    assert!(
        exit.end_time.as_nanos() - exit.start_time.as_nanos() < 5_000_000_000,
        "resumed mid-program, not restarted: ran {}ns on b",
        exit.end_time.as_nanos() - exit.start_time.as_nanos()
    );
    // The source incarnation was checkpoint-killed exactly at the handover.
    let a = session.session("node-a").unwrap();
    let cut = a.kernel().exit_record(a.pid("job").unwrap()).unwrap();
    assert_eq!(cut.end_time, applied[0].applied_at);

    // Byte-identical merged streams at 1/2/8 worker threads.
    for threads in [2, 8] {
        let (stream, applied_n, _) = run_at(threads);
        assert_eq!(golden, stream, "{threads} workers must not change one byte");
        assert_eq!(applied_n.len(), 1);
        assert_eq!(applied_n[0].applied_at, applied[0].applied_at);
    }
}

#[test]
fn build_rejects_duplicate_ids_and_labels_scenario_errors() {
    let sc = || {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .user(Uid(1), "u1")
            .spawn("a", SpawnSpec::new("a", Uid(1), spin(0.8)))
    };
    let err = ClusterScenario::new()
        .machine("x", sc())
        .machine("x", sc())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("duplicate machine id"));

    let bad = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .kill_at(SimTime::from_secs(1), "ghost");
    let err = ClusterScenario::new()
        .machine("ok", sc())
        .machine("broken", bad)
        .build()
        .unwrap_err();
    match err {
        SessionError::Shard { machine, error } => {
            assert_eq!(machine, "broken");
            assert!(error.to_string().contains("unknown tag"));
        }
        other => panic!("expected Shard, got {other:?}"),
    }

    assert!(ClusterScenario::new().build().is_err(), "empty cluster");
}

#[test]
fn batched_and_per_frame_transports_are_byte_identical() {
    // `run` ships columnar batches; `run_per_frame` is the legacy
    // one-message-per-frame transport kept as a differential baseline.
    // Both must produce the same merged stream, byte for byte.
    let run = |threads: usize, per_frame: bool| {
        let mut session = cluster().build().unwrap();
        let mut sink = ClusterCollectSink::new();
        let monitor = |m: MachineRef<'_>| -> Box<dyn Monitor + Send> {
            tool(if m.index.is_multiple_of(2) { 1 } else { 2 })
        };
        if per_frame {
            session
                .run_per_frame(threads, 5, monitor, &mut sink)
                .unwrap();
        } else {
            session.run(threads, 5, monitor, &mut sink).unwrap();
        }
        (rendered(sink.frames()), session.last_run_stats())
    };
    let (golden, batched) = run(1, false);
    let (legacy, per_frame) = run(1, true);
    assert_eq!(golden, legacy, "transports must agree frame for frame");
    assert_eq!(batched.frames, per_frame.frames, "same frames delivered");
    assert!(
        batched.batches < batched.frames,
        "batched path must coalesce sends: {} messages for {} frames",
        batched.batches,
        batched.frames
    );
    assert_eq!(
        per_frame.batches, per_frame.frames,
        "legacy path is one message per frame"
    );
    assert_eq!(golden, run(8, false).0, "8 batched workers agree");
    assert_eq!(golden, run(8, true).0, "8 per-frame workers agree");
    assert_eq!(golden, run(16, false).0, "16 batched workers agree");
    assert_eq!(golden, run(16, true).0, "16 per-frame workers agree");
}

#[test]
fn shards_share_immutable_state_across_the_fleet() {
    use std::sync::Arc;

    // A fleet of identical machines built from one shared config: every
    // shard's kernel must point at the *same* allocation, not a copy —
    // the per-machine memory diet at 1000 machines depends on it.
    let cfg = Arc::new(MachineConfig::nehalem_w3550().noiseless());
    let mut cluster = ClusterScenario::new();
    for i in 0..6u64 {
        cluster = cluster.machine(
            format!("m{i}"),
            Scenario::new(Arc::clone(&cfg))
                .seed(i + 1)
                .user(Uid(1), "u1")
                .spawn(
                    "spin",
                    SpawnSpec::new("spin", Uid(1), spin(0.9)).seed(i + 1),
                ),
        );
    }
    let mut session = cluster.build().unwrap();
    session.run_collect(2, 1, |_| tool(1)).unwrap();
    let ids: Vec<String> = session.machines().map(|m| m.id.to_string()).collect();
    assert_eq!(ids.len(), 6);
    for id in &ids {
        let shard = session.session(id).expect("shard session exists");
        assert!(
            Arc::ptr_eq(&cfg, &shard.kernel().machine().shared_config()),
            "shard '{id}' must share the fleet's config allocation"
        );
    }

    // Cloning a program (a spawn spec fanned out, a checkpoint taken) is a
    // refcount bump on the shared phase list, not a deep copy.
    let program = spin(0.9);
    let cloned = program.clone();
    assert!(
        std::ptr::eq(program.phases().as_ptr(), cloned.phases().as_ptr()),
        "cloned programs must share one phase allocation"
    );

    // Two monitors on the same screen share one compiled cell plan.
    let a = Tiptop::new(TiptopOptions::default(), ScreenConfig::default_screen());
    let b = Tiptop::new(TiptopOptions::default(), ScreenConfig::default_screen());
    assert!(
        Arc::ptr_eq(&a.cell_plan(), &b.cell_plan()),
        "identical screens must share one plan allocation"
    );
}

#[test]
fn window_sink_stays_bounded_on_a_hundred_machine_run() {
    // The scaling property: peak buffered frames in the window sink is
    // bounded by the window size even when 100 machines feed the merge.
    let mut cluster = ClusterScenario::new();
    for i in 0..100u64 {
        cluster = cluster.machine(
            format!("m{i:03}"),
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .seed(i + 1)
                .user(Uid(1), "u1")
                .spawn(
                    "spin",
                    SpawnSpec::new("spin", Uid(1), spin(0.9)).seed(i + 1),
                ),
        );
    }
    let mut session = cluster.build().unwrap();
    const WINDOW: usize = 256;
    const REFRESHES: usize = 6;
    let mut sink = ClusterWindowSink::new(WINDOW);
    session.run(4, REFRESHES, |_| tool(1), &mut sink).unwrap();

    assert!(
        sink.peak_buffered() <= WINDOW,
        "peak {} must stay within the window {WINDOW}",
        sink.peak_buffered()
    );
    let stats = session.last_run_stats();
    assert_eq!(stats.frames, 100 * REFRESHES, "every frame delivered");
    assert!(
        stats.batches < stats.frames,
        "100-machine run must batch: {} messages for {} frames",
        stats.batches,
        stats.frames
    );
    let windows = sink.finish();
    assert_eq!(
        windows.iter().map(|w| w.frames).sum::<usize>(),
        100 * REFRESHES,
        "every frame aggregated exactly once"
    );
}

#[test]
fn handover_dedupe_entries_are_pruned_as_the_stream_advances() {
    use tiptop_core::cluster::{ClusterFrameSink, HandoverRecord};
    // Regression: the dedupe map used to keep every registered instant for
    // the life of the sink. Entries must drop once the merged stream
    // advances past their instant.
    let handovers = (1..=5u64).map(|s| HandoverRecord {
        at: SimTime::from_secs(s),
        tag: format!("job-{s}"),
        comm: format!("job-{s}"),
        from: "a".into(),
        to: "b".into(),
        mode: MigrationMode::Restart,
    });
    let mut sink = ClusterWindowSink::new(4).dedupe_handovers(handovers);
    assert_eq!(sink.pending_dedupe_instants(), 5);
    let frame_at = |t: u64| ClusterFrame {
        machine: "b".into(),
        machine_index: 0,
        source: "tiptop".into(),
        seq: 0,
        frame: Frame {
            time: SimTime::from_secs(t),
            headers: Vec::new().into(),
            rows: Vec::new(),
            unobservable: 0,
        },
    };
    sink.on_frame(frame_at(1));
    assert_eq!(
        sink.pending_dedupe_instants(),
        5,
        "entries at or ahead of the stream stay live"
    );
    sink.on_frame(frame_at(3));
    assert_eq!(
        sink.pending_dedupe_instants(),
        3,
        "instants strictly behind the stream are pruned"
    );
    sink.on_frame(frame_at(100));
    assert_eq!(sink.pending_dedupe_instants(), 0, "map drains completely");
}

/// Satellite goldens for the pluggable in-kernel scheduler: the default
/// selection reproduces the explicit CFS-like stream byte-for-byte (the
/// pre-refactor behaviour), and each alternative planner is deterministic
/// at any worker-thread count.
#[test]
fn scheduler_selection_default_matches_cfs_and_alternatives_are_deterministic() {
    use tiptop_kernel::sched::SchedulerSelect;

    // Two nodes, one of them oversubscribed (ten runnables on eight PUs)
    // so the planners genuinely disagree about who runs each epoch.
    let run_with = |scheduler: Option<SchedulerSelect>, threads: usize| {
        let mut busy = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(11)
            .user(Uid(1), "u1");
        for i in 0..10u64 {
            busy = busy.spawn(
                format!("spin-{i}"),
                SpawnSpec::new(format!("spin-{i}"), Uid(1), spin(0.8 + 0.03 * i as f64))
                    .seed(100 + i),
            );
        }
        let calm = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(12)
            .user(Uid(1), "u1")
            .spawn("spin", SpawnSpec::new("spin", Uid(1), spin(0.9)).seed(12));
        let mut cluster = ClusterScenario::new()
            .machine("busy", busy)
            .machine("calm", calm);
        if let Some(scheduler) = scheduler {
            cluster = cluster.scheduler(scheduler);
        }
        let mut session = cluster.build().unwrap();
        let frames = session
            .run_collect(threads, 4, |_m: MachineRef<'_>| tool(1))
            .unwrap();
        rendered(&frames)
    };

    // Byte-identity golden: leaving the knob alone is exactly CFS-like —
    // the pre-refactor stream — at 1, 2 and 8 workers.
    let default_stream = run_with(None, 1);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            default_stream,
            run_with(None, threads),
            "default scheduler: {threads} workers must not change one byte"
        );
        assert_eq!(
            default_stream,
            run_with(Some(SchedulerSelect::cfs_like()), threads),
            "explicit cfs_like at {threads} workers must reproduce the default stream"
        );
    }

    // Each alternative planner: deterministic across worker-thread counts.
    let fifo = run_with(Some(SchedulerSelect::fifo()), 1);
    let round_robin = run_with(Some(SchedulerSelect::round_robin()), 1);
    for threads in [2usize, 8] {
        assert_eq!(
            fifo,
            run_with(Some(SchedulerSelect::fifo()), threads),
            "fifo: {threads} workers must not change one byte"
        );
        assert_eq!(
            round_robin,
            run_with(Some(SchedulerSelect::round_robin()), threads),
            "round-robin: {threads} workers must not change one byte"
        );
    }

    // And the knob is real: under oversubscription the three planners
    // produce three different streams.
    assert_ne!(default_stream, fifo, "fifo must differ from cfs");
    assert_ne!(
        default_stream, round_robin,
        "round-robin must differ from cfs"
    );
    assert_ne!(fifo, round_robin, "fifo must differ from round-robin");
}

// ---------------------------------------------------------------------------
// Cross-machine dependency edges: a machine's scenario keys events on tags
// that complete on other machines; the lockstep driver resolves them with
// exact firing instants and a byte-identical merged stream.

fn work(comm: &str, cpi: f64, insns: u64, seed: u64) -> SpawnSpec {
    SpawnSpec::new(
        comm,
        Uid(1),
        Program::single(
            ExecProfile::builder(comm)
                .base_cpi(cpi)
                .branches(0.18, 0.0)
                .memory(MemoryBehavior::uniform(16 * 1024))
                .build(),
            insns,
        ),
    )
    .seed(seed)
}

/// A three-machine pipeline wired entirely by dependency edges: `extract`
/// on node-0 fans out to `map-a` (node-1) and `map-b` (node-2), which fan
/// back in as `sort-a`/`sort-b` on node-0.
fn pipeline_cluster() -> ClusterScenario {
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    ClusterScenario::new()
        .machine(
            "node-0",
            node(11)
                .spawn("extract", work("extract", 0.8, 1_500_000_000, 1))
                .spawn_after(
                    "map-a",
                    SimDuration::from_millis(60),
                    "sort-a",
                    work("sort-a", 0.9, 800_000_000, 4),
                )
                .spawn_after(
                    "map-b",
                    SimDuration::from_millis(80),
                    "sort-b",
                    work("sort-b", 0.9, 800_000_000, 5),
                ),
        )
        .machine(
            "node-1",
            node(22).spawn_after(
                "extract",
                SimDuration::from_millis(100),
                "map-a",
                work("map-a", 1.0, 1_000_000_000, 2),
            ),
        )
        .machine(
            "node-2",
            node(33).spawn_after(
                "extract",
                SimDuration::from_millis(250),
                "map-b",
                work("map-b", 1.0, 1_000_000_000, 3),
            ),
        )
}

#[test]
fn cross_machine_fan_out_fan_in_is_byte_identical_at_1_2_and_8_threads() {
    let run_at = |threads: usize| {
        let mut session = pipeline_cluster().build().unwrap();
        let frames = session.run_collect(threads, 5, |_| tool(1)).unwrap();
        (rendered(&frames), session)
    };
    let (golden, session) = run_at(1);
    assert_eq!(golden, run_at(2).0, "2 workers must not change one byte");
    assert_eq!(golden, run_at(8).0, "8 workers must not change one byte");

    // Every stage ran and exited on its machine.
    let exit = |machine: &str, tag: &str| {
        let s = session.session(machine).unwrap();
        let pid = s.pid(tag).unwrap_or_else(|| panic!("{tag} never spawned"));
        s.kernel()
            .exit_record(pid)
            .unwrap_or_else(|| panic!("{tag} never exited"))
            .clone()
    };
    let extract = exit("node-0", "extract");
    let map_a = exit("node-1", "map-a");
    let map_b = exit("node-2", "map-b");
    let sort_a = exit("node-0", "sort-a");
    let sort_b = exit("node-0", "sort-b");

    // Fan-out: each map stage starts exactly `delay` after extract's exit
    // — on a different machine than the one extract ran on.
    assert_eq!(
        map_a.start_time,
        extract.end_time + SimDuration::from_millis(100),
        "map-a must start exactly 100ms after extract exits"
    );
    assert_eq!(
        map_b.start_time,
        extract.end_time + SimDuration::from_millis(250),
        "map-b must start exactly 250ms after extract exits"
    );
    // Fan-in: the sort stages land back on node-0, keyed on the remote
    // map exits.
    assert_eq!(
        sort_a.start_time,
        map_a.end_time + SimDuration::from_millis(60),
        "sort-a must start exactly 60ms after map-a exits"
    );
    assert_eq!(
        sort_b.start_time,
        map_b.end_time + SimDuration::from_millis(80),
        "sort-b must start exactly 80ms after map-b exits"
    );
}

#[test]
fn cross_machine_kill_after_lands_exactly() {
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    let mut session = ClusterScenario::new()
        .machine(
            "node-0",
            node(1)
                .spawn(
                    "victim",
                    SpawnSpec::new("victim", Uid(1), spin(0.9)).seed(9),
                )
                .kill_after("trigger", SimDuration::from_millis(120), "victim"),
        )
        .machine(
            "node-1",
            node(2).spawn("trigger", work("trigger", 0.8, 1_200_000_000, 7)),
        )
        .machine(
            "node-2",
            node(3).spawn("spin", SpawnSpec::new("spin", Uid(1), spin(1.0)).seed(5)),
        )
        .build()
        .unwrap();
    session
        .run_collect(2, 4, |_| tool(1))
        .expect("run must succeed");
    let trigger = {
        let s = session.session("node-1").unwrap();
        let pid = s.pid("trigger").unwrap();
        s.kernel().exit_record(pid).unwrap().clone()
    };
    let victim = {
        let s = session.session("node-0").unwrap();
        let pid = s.pid("victim").unwrap();
        s.kernel().exit_record(pid).unwrap().clone()
    };
    assert_eq!(
        victim.end_time,
        trigger.end_time + SimDuration::from_millis(120),
        "the cross-machine kill must land exactly 120ms after the trigger exits"
    );
}

#[test]
fn cluster_dependency_cycle_is_a_typed_error() {
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    let err = ClusterScenario::new()
        .machine(
            "node-a",
            node(1)
                .spawn("seed", work("seed", 0.8, 100_000_000, 1))
                .spawn_after("x", SimDuration::ZERO, "y", work("y", 1.0, 1_000_000, 2)),
        )
        .machine(
            "node-b",
            node(2).spawn_after("y", SimDuration::ZERO, "x", work("x", 1.0, 1_000_000, 3)),
        )
        .build()
        .unwrap_err();
    match err {
        SessionError::InvalidDag(DagError::Cycle { tags }) => {
            assert_eq!(tags, vec!["x".to_string(), "y".to_string()]);
        }
        other => panic!("expected a typed cross-machine cycle error, got: {other}"),
    }
}

#[test]
fn cluster_unknown_dependency_is_a_typed_error() {
    let node = |seed: u64| {
        Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(seed)
            .user(Uid(1), "u1")
    };
    let err = ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("seed", work("seed", 0.8, 100_000_000, 1)),
        )
        .machine(
            "node-b",
            node(2).spawn_after(
                "ghost",
                SimDuration::ZERO,
                "y",
                work("y", 1.0, 1_000_000, 2),
            ),
        )
        .build()
        .unwrap_err();
    match err {
        SessionError::InvalidDag(DagError::UnknownDependency {
            event_tag,
            dependency,
        }) => {
            assert_eq!(event_tag, "y");
            assert_eq!(dependency, "ghost");
        }
        other => panic!("expected a typed unknown-dependency error, got: {other}"),
    }
}

#[test]
fn run_reactive_rejects_clusters_with_cross_machine_edges() {
    let mut session = pipeline_cluster().build().unwrap();
    let mut sink = ClusterCollectSink::new();
    let err = session
        .run_reactive(
            2,
            3,
            |_| vec![tool(1) as Box<dyn Monitor + Send>],
            &mut [],
            &mut sink,
        )
        .unwrap_err();
    match err {
        SessionError::InvalidScenario(msg) => {
            assert!(
                msg.contains("not supported by run_reactive"),
                "unexpected message: {msg}"
            );
        }
        other => panic!("expected a typed rejection, got: {other}"),
    }
}
