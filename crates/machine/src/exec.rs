//! Task execution profiles and slice outcomes.
//!
//! An [`ExecProfile`] is the machine-facing description of *what kind of
//! code* a task is currently executing: instruction mix, branch behaviour,
//! floating-point operand classes, and memory behaviour. Workload crates
//! build programs as sequences of profiles (phases); the machine turns a
//! profile plus a cycle budget into retired instructions and event counts.

use serde::{Deserialize, Serialize};

use crate::access::MemoryBehavior;
use crate::pmu::EventCounts;

/// Which FP instruction unit the code uses — on Nehalem this decides whether
/// non-finite operands trigger the micro-code assist (x87 does, SSE does
/// not), the crux of the paper's §3.1 / Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpUnit {
    X87,
    Sse,
    /// Non-x86 or mixed FP code (PowerPC, generic): behaves like SSE with
    /// respect to assists.
    Generic,
}

/// Machine-facing description of a task's current code behaviour.
///
/// All `*_per_insn` rates are fractions of retired instructions; operand
/// class fractions (`nonfinite_frac`, `denormal_frac`) are fractions of FP
/// operations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExecProfile {
    pub name: String,
    /// CPI with a perfect memory system and no mispredictions/assists.
    /// Clamped below at the machine's `1/issue_width`.
    pub base_cpi: f64,
    pub mem: MemoryBehavior,
    pub loads_per_insn: f64,
    pub stores_per_insn: f64,
    pub branches_per_insn: f64,
    /// Misprediction probability per branch.
    pub branch_miss_rate: f64,
    pub fp_per_insn: f64,
    pub fp_unit: FpUnit,
    /// Fraction of FP operations whose operands are Inf/NaN.
    pub nonfinite_frac: f64,
    /// Fraction of FP operations on denormal operands.
    pub denormal_frac: f64,
    /// Memory-level parallelism: how many misses overlap. Penalties are
    /// divided by this (1.0 = fully serialized pointer chasing, 4+ =
    /// streaming prefetch-friendly code).
    pub mlp: f64,
}

impl ExecProfile {
    pub fn builder(name: impl Into<String>) -> ExecProfileBuilder {
        ExecProfileBuilder::new(name)
    }

    /// Memory accesses (loads + stores) per instruction.
    pub fn accesses_per_insn(&self) -> f64 {
        self.loads_per_insn + self.stores_per_insn
    }

    /// Check all rates are sane probabilities/rates.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("base_cpi", self.base_cpi, 0.01, 1000.0),
            ("loads_per_insn", self.loads_per_insn, 0.0, 1.0),
            ("stores_per_insn", self.stores_per_insn, 0.0, 1.0),
            ("branches_per_insn", self.branches_per_insn, 0.0, 1.0),
            ("branch_miss_rate", self.branch_miss_rate, 0.0, 1.0),
            ("fp_per_insn", self.fp_per_insn, 0.0, 1.0),
            ("nonfinite_frac", self.nonfinite_frac, 0.0, 1.0),
            ("denormal_frac", self.denormal_frac, 0.0, 1.0),
            ("mlp", self.mlp, 0.25, 64.0),
        ];
        for (what, v, lo, hi) in checks {
            if !(lo..=hi).contains(&v) || !v.is_finite() {
                return Err(format!("{what} = {v} outside [{lo}, {hi}]"));
            }
        }
        if self.nonfinite_frac + self.denormal_frac > 1.0 {
            return Err("operand class fractions exceed 1".to_string());
        }
        Ok(())
    }
}

/// Builder for [`ExecProfile`] with sensible integer-code defaults.
#[derive(Clone, Debug)]
pub struct ExecProfileBuilder {
    p: ExecProfile,
}

impl ExecProfileBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ExecProfileBuilder {
            p: ExecProfile {
                name: name.into(),
                base_cpi: 0.7,
                mem: MemoryBehavior::uniform(64 * 1024),
                loads_per_insn: 0.25,
                stores_per_insn: 0.1,
                branches_per_insn: 0.18,
                branch_miss_rate: 0.02,
                fp_per_insn: 0.0,
                fp_unit: FpUnit::Generic,
                nonfinite_frac: 0.0,
                denormal_frac: 0.0,
                mlp: 2.0,
            },
        }
    }

    pub fn base_cpi(mut self, v: f64) -> Self {
        self.p.base_cpi = v;
        self
    }

    pub fn memory(mut self, mem: MemoryBehavior) -> Self {
        self.p.mem = mem;
        self
    }

    pub fn loads_per_insn(mut self, v: f64) -> Self {
        self.p.loads_per_insn = v;
        self
    }

    pub fn stores_per_insn(mut self, v: f64) -> Self {
        self.p.stores_per_insn = v;
        self
    }

    pub fn branches(mut self, per_insn: f64, miss_rate: f64) -> Self {
        self.p.branches_per_insn = per_insn;
        self.p.branch_miss_rate = miss_rate;
        self
    }

    pub fn fp(mut self, per_insn: f64, unit: FpUnit) -> Self {
        self.p.fp_per_insn = per_insn;
        self.p.fp_unit = unit;
        self
    }

    pub fn operand_classes(mut self, nonfinite: f64, denormal: f64) -> Self {
        self.p.nonfinite_frac = nonfinite;
        self.p.denormal_frac = denormal;
        self
    }

    pub fn mlp(mut self, v: f64) -> Self {
        self.p.mlp = v;
        self
    }

    /// Finish; panics if the profile is invalid (programming error in a
    /// workload definition).
    pub fn build(self) -> ExecProfile {
        if let Err(e) = self.p.validate() {
            panic!("invalid ExecProfile '{}': {e}", self.p.name);
        }
        self.p
    }
}

/// What one scheduling slice actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Cycles consumed (≤ the requested budget; less only if the slice hit
    /// its `max_instructions` cap).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// All hardware events incremented by this slice (includes `cycles` and
    /// `instructions` under their event indices).
    pub events: EventCounts,
}

impl ExecOutcome {
    /// Instantaneous IPC of the slice.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let p = ExecProfile::builder("x").build();
        assert!(p.validate().is_ok());
        assert!((p.accesses_per_insn() - 0.35).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid ExecProfile")]
    fn builder_rejects_nonsense_rates() {
        ExecProfile::builder("bad").loads_per_insn(1.5).build();
    }

    #[test]
    fn validate_catches_operand_class_overflow() {
        let p = ExecProfile::builder("fp")
            .fp(0.3, FpUnit::X87)
            .operand_classes(0.7, 0.6)
            .p;
        assert!(p.validate().is_err());
    }

    #[test]
    fn outcome_ipc() {
        let o = ExecOutcome {
            cycles: 200,
            instructions: 300,
            events: EventCounts::ZERO,
        };
        assert!((o.ipc() - 1.5).abs() < 1e-12);
        let z = ExecOutcome::default();
        assert_eq!(z.ipc(), 0.0);
    }
}
