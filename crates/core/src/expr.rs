//! The metric expression language.
//!
//! Tiptop's displayed columns are "fully customizable" ratios over counter
//! deltas (§2.2). This module implements a small arithmetic language over
//! named counter values:
//!
//! ```text
//! IPC   = INSTRUCTIONS / CYCLES
//! DMIS  = 100 * CACHE_MISSES / INSTRUCTIONS
//! %ASS  = 100 * FP_ASSIST / INSTRUCTIONS
//! MIPS  = INSTRUCTIONS / DELTA_T / 1e6
//! ```
//!
//! Identifiers resolve against an environment supplied at evaluation time:
//! per-refresh event deltas plus the builtins `DELTA_T` (seconds since the
//! previous refresh), `CPU_PCT`, and `TIME` (seconds since boot). Division
//! by zero yields NaN, which the renderer prints as `-` — exactly what a
//! fresh tiptop screen shows before the first full interval.
//!
//! Grammar (standard precedence, left-associative):
//!
//! ```text
//! expr  := term  (('+' | '-') term)*
//! term  := unary (('*' | '/') unary)*
//! unary := '-' unary | atom
//! atom  := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//! ```

use std::fmt;

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Built-in functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Func {
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `ratio(a, b)`: `a / b`, but 0 when `b` is 0 (instead of NaN).
    Ratio,
    /// `abs(a)`
    Abs,
}

impl Func {
    fn arity(self) -> usize {
        match self {
            Func::Min | Func::Max | Func::Ratio => 2,
            Func::Abs => 1,
        }
    }

    fn parse(name: &str) -> Option<(Func, usize)> {
        match name {
            "min" => Some((Func::Min, 2)),
            "max" => Some((Func::Max, 2)),
            "ratio" => Some((Func::Ratio, 2)),
            "abs" => Some((Func::Abs, 1)),
            _ => None,
        }
    }
}

/// Parsed expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Num(f64),
    Var(String),
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Call(Func, Vec<Expr>),
}

/// One step of a compiled expression program (postfix order).
#[derive(Clone, Debug, PartialEq)]
pub enum Op<S> {
    Push(f64),
    Load(S),
    Neg,
    Bin(BinOp),
    Call(Func),
}

/// Operand-stack capacity of [`Compiled::eval`]; expressions that would
/// nest deeper fail to compile (and evaluate through the AST instead).
pub const MAX_COMPILED_DEPTH: usize = 16;

/// An [`Expr`] flattened by [`Expr::compile`]: variables are resolved to
/// caller-defined slots once, and evaluation runs the postfix program on a
/// fixed-size stack — the per-row hot path of the cluster bench spends no
/// time on identifier parsing and makes no heap allocation.
#[derive(Clone, Debug)]
pub struct Compiled<S> {
    ops: Vec<Op<S>>,
}

impl<S> Compiled<S> {
    /// Run the program; `load` supplies the value of each resolved slot.
    /// Matches [`Expr::eval`] bit-for-bit on the same inputs (same ops in
    /// the same order), so deferred cell text stays byte-identical.
    pub fn eval(&self, load: &mut dyn FnMut(&S) -> f64) -> f64 {
        let mut stack = [0.0f64; MAX_COMPILED_DEPTH];
        let mut top = 0usize;
        for op in &self.ops {
            match op {
                Op::Push(n) => {
                    stack[top] = *n;
                    top += 1;
                }
                Op::Load(s) => {
                    stack[top] = load(s);
                    top += 1;
                }
                Op::Neg => stack[top - 1] = -stack[top - 1],
                Op::Bin(op) => {
                    let (a, b) = (stack[top - 2], stack[top - 1]);
                    top -= 1;
                    stack[top - 1] = match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => a / b,
                    };
                }
                Op::Call(f) => match f {
                    Func::Abs => stack[top - 1] = stack[top - 1].abs(),
                    Func::Min => {
                        top -= 1;
                        stack[top - 1] = stack[top - 1].min(stack[top]);
                    }
                    Func::Max => {
                        top -= 1;
                        stack[top - 1] = stack[top - 1].max(stack[top]);
                    }
                    Func::Ratio => {
                        top -= 1;
                        let (a, b) = (stack[top - 1], stack[top]);
                        stack[top - 1] = if b == 0.0 { 0.0 } else { a / b };
                    }
                },
            }
        }
        stack[top - 1]
    }
}

/// A parse failure, with byte position in the source.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push((i, Tok::Plus));
                i += 1;
            }
            '-' => {
                out.push((i, Tok::Minus));
                i += 1;
            }
            '*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            '/' => {
                out.push((i, Tok::Slash));
                i += 1;
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E') {
                    // Allow exponent signs: 1e-6.
                    if matches!(bytes[i] as char, 'e' | 'E')
                        && i + 1 < bytes.len()
                        && matches!(bytes[i + 1] as char, '+' | '-')
                    {
                        i += 1;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| ParseError {
                    pos: start,
                    message: format!("bad number '{text}'"),
                })?;
                out.push((start, Tok::Num(n)));
            }
            'a'..='z' | 'A'..='Z' | '_' | '%' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char,
                        'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '%')
                {
                    i += 1;
                }
                out.push((start, Tok::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(ParseError {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    at: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.at).map(|(p, _)| *p).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|(_, t)| t.clone());
        self.at += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.at += 1;
            Ok(())
        } else {
            Err(ParseError {
                pos: self.pos(),
                message: format!("expected {what}"),
            })
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.at += 1;
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.at += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Tok::Minus) {
            self.at += 1;
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    let (func, arity) = Func::parse(&name).ok_or_else(|| ParseError {
                        pos,
                        message: format!("unknown function '{name}'"),
                    })?;
                    self.at += 1; // '('
                    let mut args = vec![self.expr()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.at += 1;
                        args.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    if args.len() != arity {
                        return Err(ParseError {
                            pos,
                            message: format!(
                                "{name} takes {arity} argument(s), got {}",
                                args.len()
                            ),
                        });
                    }
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            _ => Err(ParseError {
                pos,
                message: "expected expression".to_string(),
            }),
        }
    }
}

impl Expr {
    /// Parse an expression from source text.
    pub fn parse(src: &str) -> Result<Expr, ParseError> {
        let toks = tokenize(src)?;
        let mut p = Parser {
            toks,
            at: 0,
            len: src.len(),
        };
        let e = p.expr()?;
        if p.peek().is_some() {
            return Err(ParseError {
                pos: p.pos(),
                message: "trailing input after expression".to_string(),
            });
        }
        Ok(e)
    }

    /// Evaluate with a variable environment. Unknown variables are an error;
    /// division by zero yields NaN (rendered as `-`).
    pub fn eval(&self, env: &dyn Fn(&str) -> Option<f64>) -> Result<f64, String> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Var(name) => env(name).ok_or_else(|| format!("unknown identifier '{name}'")),
            Expr::Neg(e) => Ok(-e.eval(env)?),
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(env)?, b.eval(env)?);
                Ok(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b, // 0/0 and x/0 become NaN/inf → '-'
                })
            }
            Expr::Call(f, args) => {
                let vals: Result<Vec<f64>, String> = args.iter().map(|a| a.eval(env)).collect();
                let v = vals?;
                Ok(match f {
                    Func::Min => v[0].min(v[1]),
                    Func::Max => v[0].max(v[1]),
                    Func::Ratio => {
                        if v[1] == 0.0 {
                            0.0
                        } else {
                            v[0] / v[1]
                        }
                    }
                    Func::Abs => v[0].abs(),
                })
            }
        }
    }

    /// Flatten to a postfix program with every variable resolved through
    /// `resolve` exactly once, so per-row evaluation does no name parsing,
    /// no boxed-node chasing, and no allocation (see [`Compiled::eval`]).
    /// Returns `None` when an identifier fails to resolve or the operand
    /// stack would exceed [`MAX_COMPILED_DEPTH`]; callers keep the AST and
    /// fall back to [`Expr::eval`] for those (rare) screens.
    pub fn compile<S>(&self, resolve: &mut dyn FnMut(&str) -> Option<S>) -> Option<Compiled<S>> {
        let mut ops = Vec::new();
        self.flatten(resolve, &mut ops)?;
        let (mut depth, mut max) = (0usize, 0usize);
        for op in &ops {
            match op {
                Op::Push(_) | Op::Load(_) => depth += 1,
                Op::Neg => {}
                Op::Bin(_) => depth -= 1,
                Op::Call(f) => depth -= f.arity() - 1,
            }
            max = max.max(depth);
        }
        (max <= MAX_COMPILED_DEPTH).then_some(Compiled { ops })
    }

    fn flatten<S>(
        &self,
        resolve: &mut dyn FnMut(&str) -> Option<S>,
        out: &mut Vec<Op<S>>,
    ) -> Option<()> {
        match self {
            Expr::Num(n) => out.push(Op::Push(*n)),
            Expr::Var(name) => out.push(Op::Load(resolve(name)?)),
            Expr::Neg(e) => {
                e.flatten(resolve, out)?;
                out.push(Op::Neg);
            }
            Expr::Bin(op, a, b) => {
                a.flatten(resolve, out)?;
                b.flatten(resolve, out)?;
                out.push(Op::Bin(*op));
            }
            Expr::Call(f, args) => {
                for a in args {
                    a.flatten(resolve, out)?;
                }
                out.push(Op::Call(*f));
            }
        }
        Some(())
    }

    /// All identifiers the expression references (for planning which
    /// counters to open).
    pub fn idents(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_idents(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(n) => out.push(n.clone()),
            Expr::Neg(e) => e.collect_idents(out),
            Expr::Bin(_, a, b) => {
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_idents(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str, vars: &[(&str, f64)]) -> f64 {
        let e = Expr::parse(src).unwrap();
        e.eval(&|name| vars.iter().find(|(n, _)| *n == name).map(|(_, v)| *v))
            .unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval("1 + 2 * 3", &[]), 7.0);
        assert_eq!(eval("(1 + 2) * 3", &[]), 9.0);
        assert_eq!(eval("10 - 4 - 3", &[]), 3.0, "left associative");
        assert_eq!(eval("8 / 4 / 2", &[]), 1.0);
        assert_eq!(eval("-2 * 3", &[]), -6.0);
        assert_eq!(eval("--2", &[]), 2.0);
        assert_eq!(eval("1.5e2 + 1e-1", &[]), 150.1);
    }

    #[test]
    fn the_paper_metrics_evaluate() {
        let vars = [
            ("INSTRUCTIONS", 52125e6),
            ("CYCLES", 26456e6),
            ("CACHE_MISSES", 0.0),
        ];
        let ipc = eval("INSTRUCTIONS / CYCLES", &vars);
        assert!(
            (ipc - 1.97).abs() < 0.01,
            "Fig 1, process1: IPC 1.97, got {ipc}"
        );
        assert_eq!(eval("100 * CACHE_MISSES / INSTRUCTIONS", &vars), 0.0);
    }

    #[test]
    fn functions() {
        assert_eq!(eval("min(3, 5)", &[]), 3.0);
        assert_eq!(eval("max(3, 5)", &[]), 5.0);
        assert_eq!(eval("abs(0 - 4)", &[]), 4.0);
        assert_eq!(eval("ratio(10, 0)", &[]), 0.0, "guarded division");
        assert_eq!(eval("ratio(10, 4)", &[]), 2.5);
    }

    #[test]
    fn division_by_zero_is_nan_or_inf() {
        assert!(eval("0 / 0", &[]).is_nan());
        assert!(eval("1 / 0", &[]).is_infinite());
    }

    #[test]
    fn identifiers_with_percent_prefix() {
        assert_eq!(eval("%CPU * 2", &[("%CPU", 50.0)]), 100.0);
    }

    #[test]
    fn idents_are_collected_for_planning() {
        let e = Expr::parse("100 * FP_ASSIST / max(INSTRUCTIONS, 1)").unwrap();
        assert_eq!(
            e.idents(),
            vec!["FP_ASSIST".to_string(), "INSTRUCTIONS".to_string()]
        );
    }

    #[test]
    fn unknown_identifier_is_an_eval_error() {
        let e = Expr::parse("BOGUS + 1").unwrap();
        assert!(e.eval(&|_| None).is_err());
    }

    #[test]
    fn compiled_programs_match_ast_evaluation() {
        let vars = [
            ("INSTRUCTIONS", 52125e6),
            ("CYCLES", 26456e6),
            ("CACHE_MISSES", 3.0),
            ("DELTA_T", 2.0),
        ];
        for src in [
            "INSTRUCTIONS / CYCLES",
            "100 * CACHE_MISSES / INSTRUCTIONS",
            "INSTRUCTIONS / DELTA_T / 1e6",
            "min(CYCLES, INSTRUCTIONS) + max(1, 2) - abs(0 - 4)",
            "ratio(CACHE_MISSES, 0) + ratio(10, 4)",
            "-CYCLES * 2",
        ] {
            let e = Expr::parse(src).unwrap();
            let ast = e
                .eval(&|n| vars.iter().find(|(v, _)| *v == n).map(|(_, x)| *x))
                .unwrap();
            // Resolve each var to its index; load by index at eval time.
            let c = e
                .compile(&mut |n| vars.iter().position(|(v, _)| *v == n))
                .unwrap_or_else(|| panic!("{src} should compile"));
            let fast = c.eval(&mut |i: &usize| vars[*i].1);
            assert_eq!(ast.to_bits(), fast.to_bits(), "{src}");
        }
    }

    #[test]
    fn compile_fails_safe_on_unknown_idents_and_deep_nesting() {
        let e = Expr::parse("BOGUS + 1").unwrap();
        assert!(e.compile::<usize>(&mut |_| None).is_none());
        // Right-nested parens grow the operand stack past the fixed limit.
        let deep = "1+(".repeat(MAX_COMPILED_DEPTH + 1) + "1" + &")".repeat(MAX_COMPILED_DEPTH + 1);
        let e = Expr::parse(&deep).unwrap();
        assert!(e.compile(&mut |_| Some(0usize)).is_none());
        // ...while the same shape within the limit compiles fine.
        let ok = "1+(".repeat(4) + "1" + &")".repeat(4);
        let e = Expr::parse(&ok).unwrap();
        assert_eq!(
            e.compile(&mut |_| Some(0usize)).unwrap().eval(&mut |_| 0.0),
            5.0
        );
    }

    #[test]
    fn parse_errors_carry_positions() {
        let err = Expr::parse("1 + $").unwrap_err();
        assert_eq!(err.pos, 4);
        assert!(Expr::parse("foo(1)").is_err(), "unknown function");
        assert!(Expr::parse("min(1)").is_err(), "wrong arity");
        assert!(Expr::parse("1 2").is_err(), "trailing input");
        assert!(Expr::parse("").is_err(), "empty");
        assert!(Expr::parse("(1").is_err(), "unclosed paren");
    }
}
