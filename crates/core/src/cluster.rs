//! Multi-machine (cluster) sessions: N independent [`Session`]s — one per
//! machine — sharded across a worker-thread pool behind one observer-facing
//! API, with their frame streams merged **deterministically** by
//! `(sim-time, machine)` into a streaming [`ClusterFrameSink`].
//!
//! The paper evaluates tiptop across *three* physical machines (Figs 3,
//! 6–8) and a data-center co-run node (Fig 10); those machines are
//! physically independent, so simulating them serially wastes every core
//! but one. A [`ClusterScenario`] declares one [`Scenario`] per machine;
//! building it yields a [`ClusterSession`] whose `run*` methods drive every
//! machine concurrently. Because each shard owns its whole stack (machine,
//! kernel, monitor) and the merge orders frames by `(time, machine-index)`
//! with per-machine streams already time-ordered, **the merged stream is
//! byte-identical at any worker-thread count** — `threads: 1` and
//! `threads: 8` produce the same frames in the same order.
//!
//! Failure is contained per shard: a [`SessionError`] inside one machine
//! surfaces as [`SessionError::Shard`], a panic as
//! [`SessionError::ShardPanicked`]; the rest of the pool keeps running and
//! their frames still reach the sink.
//!
//! ```
//! use tiptop_core::prelude::*;
//! use tiptop_kernel::prelude::*;
//! use tiptop_machine::prelude::*;
//!
//! let spin = || Program::endless(ExecProfile::builder("spin").build());
//! let node = |seed: u64| {
//!     Scenario::new(MachineConfig::nehalem_w3550().noiseless())
//!         .seed(seed)
//!         .user(Uid(1), "u1")
//!         .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
//! };
//! let mut cluster = ClusterScenario::new()
//!     .machine("node-a", node(1))
//!     .machine("node-b", node(2))
//!     .build()
//!     .unwrap();
//! let frames = cluster
//!     .run_collect(2, 3, |_m| {
//!         Box::new(Tiptop::new(
//!             TiptopOptions::default().delay(SimDuration::from_secs(1)),
//!             ScreenConfig::default_screen(),
//!         ))
//!     })
//!     .unwrap();
//! // 2 machines x 3 refreshes, merged by (time, machine).
//! assert_eq!(frames.len(), 6);
//! assert_eq!(frames[0].machine, "node-a");
//! assert_eq!(frames[1].machine, "node-b");
//! assert!(frames[0].frame.time <= frames[1].frame.time);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

use tiptop_machine::time::SimTime;

use crate::monitor::Monitor;
use crate::render::Frame;
use crate::scenario::{Scenario, Session, SessionError};

/// Identity of one machine of the cluster, handed to the per-machine
/// factories (monitor, stop predicate).
#[derive(Clone, Copy, Debug)]
pub struct MachineRef<'a> {
    pub id: &'a str,
    /// Declaration index; the merge tie-breaker for same-instant frames.
    pub index: usize,
}

/// One frame of the merged cluster stream, labelled with its origin.
#[derive(Clone, Debug)]
pub struct ClusterFrame {
    /// Machine id as declared on the [`ClusterScenario`].
    pub machine: String,
    /// Machine declaration index (the merge tie-breaker).
    pub machine_index: usize,
    /// Producing monitor's [`Monitor::name`].
    pub source: String,
    /// Per-machine frame number (0-based).
    pub seq: usize,
    pub frame: Frame,
}

/// Streaming consumer of the merged cluster stream. Frames arrive in
/// `(time, machine_index)` order regardless of the worker-thread count.
pub trait ClusterFrameSink {
    fn on_frame(&mut self, frame: ClusterFrame);
}

/// Any closure can be a sink.
impl<F: FnMut(ClusterFrame)> ClusterFrameSink for F {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self(frame)
    }
}

/// The simplest sink: keep the whole merged stream.
#[derive(Debug, Default)]
pub struct ClusterCollectSink {
    frames: Vec<ClusterFrame>,
}

impl ClusterCollectSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn frames(&self) -> &[ClusterFrame] {
        &self.frames
    }

    pub fn into_frames(self) -> Vec<ClusterFrame> {
        self.frames
    }
}

impl ClusterFrameSink for ClusterCollectSink {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self.frames.push(frame);
    }
}

/// Declarative description of a multi-machine experiment: one [`Scenario`]
/// per machine, each with its own machine config, seed, users, and timed
/// workload events.
#[derive(Debug, Default)]
pub struct ClusterScenario {
    machines: Vec<(String, Scenario)>,
}

impl ClusterScenario {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one machine. `id` labels its frames in the merged stream and
    /// must be unique; declaration order fixes the merge tie-breaker.
    pub fn machine(mut self, id: impl Into<String>, scenario: Scenario) -> Self {
        self.machines.push((id.into(), scenario));
        self
    }

    /// Validate every per-machine scenario and build the live
    /// [`ClusterSession`]. A scenario error is labelled with its machine.
    pub fn build(self) -> Result<ClusterSession, SessionError> {
        if self.machines.is_empty() {
            return Err(SessionError::InvalidScenario(
                "cluster has no machines".into(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        let mut shards = Vec::with_capacity(self.machines.len());
        for (id, scenario) in self.machines {
            if !seen.insert(id.clone()) {
                return Err(SessionError::InvalidScenario(format!(
                    "duplicate machine id '{id}'"
                )));
            }
            let session = scenario.build().map_err(|e| SessionError::Shard {
                machine: id.clone(),
                error: Box::new(e),
            })?;
            shards.push(ShardSlot {
                id,
                session: Some(session),
            });
        }
        Ok(ClusterSession { shards })
    }
}

struct ShardSlot {
    id: String,
    /// `None` only while a run borrows it, or after a panic tore the shard
    /// mid-epoch (the torn session is never handed back).
    session: Option<Session>,
}

/// A live cluster: every machine's [`Session`], runnable on a worker pool.
pub struct ClusterSession {
    shards: Vec<ShardSlot>,
}

impl std::fmt::Debug for ClusterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSession")
            .field(
                "machines",
                &self.shards.iter().map(|s| &s.id).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ClusterSession {
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Machine ids in declaration (= merge tie-break) order.
    pub fn machines(&self) -> impl Iterator<Item = MachineRef<'_>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, s)| MachineRef { id: &s.id, index })
    }

    /// One machine's session, for pid lookups and exit records after a run.
    /// `None` for unknown ids — or for a shard whose session was lost to a
    /// panic (a torn session is never handed back).
    pub fn session(&self, id: &str) -> Option<&Session> {
        self.shards
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| s.session.as_ref())
    }

    /// Drive every machine for up to `max_refreshes` frames of its own
    /// monitor, stopping a machine early when its `until` predicate says so
    /// (the stopping frame is still delivered). Work is sharded over
    /// `threads` workers (clamped to `1..=machines`); frames stream into
    /// `sink` merged by `(time, machine_index)` — deterministically, at any
    /// thread count.
    ///
    /// On shard failure the other machines keep running; the first failure
    /// (by machine index, for determinism) is returned after the pool
    /// drains.
    pub fn run_each(
        &mut self,
        threads: usize,
        max_refreshes: usize,
        mut monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
        mut until: impl FnMut(MachineRef<'_>) -> Box<dyn FnMut(&Frame) -> bool + Send>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        let n = self.shards.len();
        for slot in &self.shards {
            if slot.session.is_none() {
                return Err(SessionError::ShardPanicked {
                    machine: slot.id.clone(),
                    message: "session was lost to a panic in an earlier run".into(),
                });
            }
        }
        // Build and validate every machine's monitor and stop predicate
        // *before* taking any session out of its slot, so an error here
        // leaves the cluster untouched and re-runnable.
        type Tools = (
            Box<dyn Monitor + Send>,
            Box<dyn FnMut(&Frame) -> bool + Send>,
        );
        let mut tools: Vec<Tools> = Vec::with_capacity(n);
        for (index, slot) in self.shards.iter().enumerate() {
            let mref = MachineRef {
                id: &slot.id,
                index,
            };
            let m = monitor(mref);
            if m.interval().is_zero() {
                return Err(SessionError::InvalidScenario(format!(
                    "machine '{}': monitor '{}' has a zero refresh interval",
                    slot.id,
                    m.name()
                )));
            }
            tools.push((m, until(mref)));
        }
        let mut units: Vec<WorkUnit> = Vec::with_capacity(n);
        for ((index, slot), (m, u)) in self.shards.iter_mut().enumerate().zip(tools) {
            units.push(WorkUnit {
                index,
                id: slot.id.clone(),
                session: slot.session.take().expect("checked above"),
                monitor: m,
                until: u,
            });
        }

        let threads = threads.clamp(1, n);
        let mut parts: Vec<Vec<WorkUnit>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, u) in units.into_iter().enumerate() {
            parts[i % threads].push(u);
        }

        let (tx, rx) = mpsc::channel::<Msg>();
        let mut queues: Vec<MergeQueue> = (0..n).map(|_| MergeQueue::default()).collect();
        let mut first_err: Option<(usize, SessionError)> = None;
        let mut returned: Vec<(usize, Option<Session>)> = Vec::with_capacity(n);

        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    let tx = tx.clone();
                    scope.spawn(move || run_worker(part, max_refreshes, tx))
                })
                .collect();
            drop(tx);

            // The deterministic k-way merge: emit the globally smallest
            // (time, machine_index) head as soon as every still-producing
            // machine has a frame buffered (per-machine streams are
            // time-ordered, so nothing smaller can arrive later).
            for msg in rx {
                match msg {
                    Msg::Frame { index, frame } => queues[index].buf.push_back(frame),
                    Msg::Done { index } => queues[index].open = false,
                    Msg::Failed { index, error } => {
                        queues[index].open = false;
                        if first_err.as_ref().is_none_or(|(i, _)| index < *i) {
                            first_err = Some((index, error));
                        }
                    }
                }
                drain_merged(&mut queues, sink);
            }
            drain_merged(&mut queues, sink);

            for h in handles {
                // Workers never unwind (shard panics are caught inside);
                // a join error here would be a bug in the pool itself.
                returned.extend(h.join().expect("worker thread panicked"));
            }
        });

        for (index, session) in returned {
            self.shards[index].session = session;
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// [`ClusterSession::run_each`] without early stopping: every machine
    /// produces exactly `refreshes` frames.
    pub fn run(
        &mut self,
        threads: usize,
        refreshes: usize,
        monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_each(threads, refreshes, monitor, |_| Box::new(|_| false), sink)
    }

    /// [`ClusterSession::run`] into a [`ClusterCollectSink`], returning the
    /// merged stream.
    pub fn run_collect(
        &mut self,
        threads: usize,
        refreshes: usize,
        monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
    ) -> Result<Vec<ClusterFrame>, SessionError> {
        let mut sink = ClusterCollectSink::new();
        self.run(threads, refreshes, monitor, &mut sink)?;
        Ok(sink.into_frames())
    }
}

struct WorkUnit {
    index: usize,
    id: String,
    session: Session,
    monitor: Box<dyn Monitor + Send>,
    until: Box<dyn FnMut(&Frame) -> bool + Send>,
}

enum Msg {
    Frame { index: usize, frame: ClusterFrame },
    Done { index: usize },
    Failed { index: usize, error: SessionError },
}

struct MergeQueue {
    buf: VecDeque<ClusterFrame>,
    /// Still producing: its head bounds what may still arrive.
    open: bool,
}

impl Default for MergeQueue {
    fn default() -> Self {
        MergeQueue {
            buf: VecDeque::new(),
            open: true,
        }
    }
}

fn drain_merged(queues: &mut [MergeQueue], sink: &mut dyn ClusterFrameSink) {
    loop {
        // A still-producing machine with nothing buffered could still emit
        // a frame earlier than every buffered head — wait for it.
        if queues.iter().any(|q| q.open && q.buf.is_empty()) {
            return;
        }
        let mut best: Option<(SimTime, usize)> = None;
        for (i, q) in queues.iter().enumerate() {
            if let Some(head) = q.buf.front() {
                let key = (head.frame.time, i);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        match best {
            Some((_, i)) => sink.on_frame(queues[i].buf.pop_front().expect("head exists")),
            None => return,
        }
    }
}

/// One worker: owns a set of shards and always advances the one whose next
/// observation is earliest (ties by machine index), so the global merge
/// frontier keeps moving and the merger buffers as little as possible.
fn run_worker(
    units: Vec<WorkUnit>,
    max_refreshes: usize,
    tx: mpsc::Sender<Msg>,
) -> Vec<(usize, Option<Session>)> {
    struct Active {
        unit: WorkUnit,
        next_at: SimTime,
        taken: usize,
    }

    let mut finished: Vec<(usize, Option<Session>)> = Vec::new();
    let mut active: Vec<Active> = Vec::new();

    for mut unit in units {
        if max_refreshes == 0 {
            let _ = tx.send(Msg::Done { index: unit.index });
            finished.push((unit.index, Some(unit.session)));
            continue;
        }
        let primed = guard(&unit.id, || {
            unit.monitor.prime(unit.session.kernel_mut());
            Ok(())
        });
        match primed {
            Ok(()) => {
                let next_at = unit.session.now() + unit.monitor.interval();
                active.push(Active {
                    unit,
                    next_at,
                    taken: 0,
                });
            }
            Err(e) => {
                let _ = tx.send(Msg::Failed {
                    index: unit.index,
                    error: e,
                });
                finished.push((unit.index, None));
            }
        }
    }

    while !active.is_empty() {
        let pos = active
            .iter()
            .enumerate()
            .min_by_key(|(_, a)| (a.next_at, a.unit.index))
            .map(|(p, _)| p)
            .expect("non-empty");
        let a = &mut active[pos];
        let step = guard(&a.unit.id, || {
            a.unit.session.advance_to(a.next_at)?;
            let frame = a.unit.monitor.observe(a.unit.session.kernel_mut());
            let stop = (a.unit.until)(&frame);
            Ok((frame, stop))
        });
        match step {
            Ok((frame, stop)) => {
                a.taken += 1;
                let _ = tx.send(Msg::Frame {
                    index: a.unit.index,
                    frame: ClusterFrame {
                        machine: a.unit.id.clone(),
                        machine_index: a.unit.index,
                        source: a.unit.monitor.name().to_string(),
                        seq: a.taken - 1,
                        frame,
                    },
                });
                if stop || a.taken >= max_refreshes {
                    let mut done = active.swap_remove(pos);
                    // A teardown panic tears the shard like an observe
                    // panic would: surface it and withhold the session.
                    let torn_down = guard(&done.unit.id, || {
                        done.unit.monitor.teardown(done.unit.session.kernel_mut());
                        Ok(())
                    });
                    match torn_down {
                        Ok(()) => {
                            let _ = tx.send(Msg::Done {
                                index: done.unit.index,
                            });
                            finished.push((done.unit.index, Some(done.unit.session)));
                        }
                        Err(error) => {
                            let _ = tx.send(Msg::Failed {
                                index: done.unit.index,
                                error,
                            });
                            finished.push((done.unit.index, None));
                        }
                    }
                } else {
                    a.next_at += a.unit.monitor.interval();
                }
            }
            Err(e) => {
                let failed = active.swap_remove(pos);
                // A panic may have torn the shard mid-epoch; only a clean
                // SessionError hands the session back.
                let torn = matches!(e, SessionError::ShardPanicked { .. });
                let error = match e {
                    e @ SessionError::ShardPanicked { .. } => e,
                    other => SessionError::Shard {
                        machine: failed.unit.id.clone(),
                        error: Box::new(other),
                    },
                };
                let _ = tx.send(Msg::Failed {
                    index: failed.unit.index,
                    error,
                });
                finished.push((failed.unit.index, (!torn).then_some(failed.unit.session)));
            }
        }
    }
    finished
}

/// Run `f`, converting an unwind into a typed [`SessionError::ShardPanicked`]
/// so one shard's panic never poisons the pool.
fn guard<T>(machine: &str, f: impl FnOnce() -> Result<T, SessionError>) -> Result<T, SessionError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(SessionError::ShardPanicked {
            machine: machine.to_string(),
            message: panic_message(payload),
        }),
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compile-time proof that a whole shard (session + stack below it) can
/// move to a worker thread.
#[allow(dead_code)]
fn assert_shard_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Session>();
}
