//! Event naming and selection for the tool.
//!
//! Tiptop's configuration names events symbolically; this module maps those
//! names onto the kernel's perf interface, preferring *generic* (portable)
//! events where the Linux header defines one and falling back to *raw*
//! target-specific events otherwise (§2.2: "The default configuration
//! collects these generic and portable events. But the tool is very flexible
//! and lets users monitor any target-specific event supported by the
//! underlying architecture").

use tiptop_kernel::perf::{EventSel, GenericEvent};
use tiptop_machine::pmu::HwEvent;

/// The portable subset: events the generic perf interface names.
const GENERIC: [(HwEvent, GenericEvent); 6] = [
    (HwEvent::Cycles, GenericEvent::CpuCycles),
    (HwEvent::Instructions, GenericEvent::Instructions),
    (HwEvent::CacheReferences, GenericEvent::CacheReferences),
    (HwEvent::CacheMisses, GenericEvent::CacheMisses),
    (
        HwEvent::BranchInstructions,
        GenericEvent::BranchInstructions,
    ),
    (HwEvent::BranchMisses, GenericEvent::BranchMisses),
];

/// Build the perf selector for a hardware event: generic when portable,
/// raw otherwise.
pub fn selector_for(hw: HwEvent) -> EventSel {
    GENERIC
        .iter()
        .find(|(h, _)| *h == hw)
        .map(|(_, g)| EventSel::Generic(*g))
        .unwrap_or(EventSel::Raw(hw))
}

/// Is this event portable across architectures?
pub fn is_generic(hw: HwEvent) -> bool {
    GENERIC.iter().any(|(h, _)| *h == hw)
}

/// Parse a symbolic event name (the DSL identifiers). Accepts the canonical
/// [`HwEvent::name`]s plus a few familiar aliases.
pub fn parse_event(name: &str) -> Option<HwEvent> {
    match name {
        "LLC_MISSES" => Some(HwEvent::CacheMisses),
        "LLC_REFERENCES" => Some(HwEvent::CacheReferences),
        "CYCLE" | "MCYCLE" => Some(HwEvent::Cycles),
        "INSN" | "INST" => Some(HwEvent::Instructions),
        other => HwEvent::from_name(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_events_use_generic_selectors() {
        assert!(matches!(
            selector_for(HwEvent::Cycles),
            EventSel::Generic(_)
        ));
        assert!(matches!(
            selector_for(HwEvent::CacheMisses),
            EventSel::Generic(_)
        ));
    }

    #[test]
    fn target_specific_events_are_raw() {
        assert!(matches!(selector_for(HwEvent::FpAssists), EventSel::Raw(_)));
        assert!(matches!(selector_for(HwEvent::L2Misses), EventSel::Raw(_)));
        assert!(!is_generic(HwEvent::FpAssists));
    }

    #[test]
    fn parse_accepts_canonical_and_aliases() {
        assert_eq!(parse_event("CYCLES"), Some(HwEvent::Cycles));
        assert_eq!(parse_event("LLC_MISSES"), Some(HwEvent::CacheMisses));
        assert_eq!(parse_event("FP_ASSIST"), Some(HwEvent::FpAssists));
        assert_eq!(parse_event("NOT_AN_EVENT"), None);
    }

    #[test]
    fn selector_roundtrips_to_same_hw_event() {
        for e in tiptop_machine::pmu::ALL_EVENTS {
            assert_eq!(selector_for(e).to_hw(), e);
        }
    }
}
