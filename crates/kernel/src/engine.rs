//! The epoch engine: the scheduler + execution loop that advances simulated
//! time, extracted from [`Kernel`](crate::kernel::Kernel) so that it is a
//! self-contained unit of work.
//!
//! The kernel keeps the syscall surface (`/proc`, `perf_event`, signals);
//! the engine owns the machine, the clock, and the epoch loop: wake
//! sleepers, plan placement, execute all concurrent slices jointly on the
//! machine, charge CPU time and fairness, and reap exited tasks. Each epoch
//! reports per-task [`PerfCharge`]s back to the caller, which folds them
//! into whatever counter bookkeeping it maintains — this split is what lets
//! a cluster driver run many independent engines on worker threads while
//! every kernel keeps its own fd table.

use std::collections::{BTreeMap, BTreeSet};

use tiptop_machine::machine::{Machine, SliceRequest};
use tiptop_machine::pmu::EventCounts;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_machine::topology::PuId;

use crate::kernel::ExitRecord;
use crate::program::NextWork;
use crate::sched::{weight_for_nice, CfsLike, SchedCtx, SchedEntity, Scheduler};
use crate::task::{Pid, Task, TaskState};

/// What one task was charged for one epoch: how long it ran and what the
/// hardware observed while it did. The kernel folds these into its perf
/// counters (multiplexing included) after every epoch.
#[derive(Clone, Copy, Debug)]
pub struct PerfCharge {
    pub pid: Pid,
    pub run_dur: SimDuration,
    pub delta: EventCounts,
}

/// The time-advancement core: machine + clock + epoch loop, independent of
/// any syscall bookkeeping.
pub struct EpochEngine {
    machine: Machine,
    epoch: SimDuration,
    now: SimTime,
    epoch_index: u64,
    scheduler: Box<dyn Scheduler>,
}

impl EpochEngine {
    /// Engine with the default CFS-like planner.
    pub fn new(machine: Machine, epoch: SimDuration) -> Self {
        Self::with_scheduler(machine, epoch, Box::new(CfsLike))
    }

    /// Engine planning epochs with `scheduler` (see `KernelConfig`).
    pub fn with_scheduler(
        machine: Machine,
        epoch: SimDuration,
        scheduler: Box<dyn Scheduler>,
    ) -> Self {
        assert!(!epoch.is_zero(), "epoch must be positive");
        EpochEngine {
            machine,
            epoch,
            now: SimTime::ZERO,
            epoch_index: 0,
            scheduler,
        }
    }

    /// Name of the active epoch planner.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of whole epochs executed since boot (drives counter
    /// multiplexing rotation in the kernel).
    pub fn epoch_index(&self) -> u64 {
        self.epoch_index
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Advance simulated time by `dur`, running whole epochs (the final
    /// epoch is shortened to land exactly on `now + dur`). After each epoch
    /// `on_epoch` receives the epoch's index (as it was *during* the epoch)
    /// and the per-task charges, so the caller can update its counters with
    /// the same rotation the hardware would have used.
    pub fn advance(
        &mut self,
        dur: SimDuration,
        tasks: &mut BTreeMap<Pid, Task>,
        exited: &mut BTreeMap<Pid, ExitRecord>,
        mut on_epoch: impl FnMut(u64, &[PerfCharge]),
    ) {
        let target = self.now + dur;
        while self.now < target {
            let e = self.epoch.min(target - self.now);
            let index = self.epoch_index;
            let charges = self.run_epoch(e, tasks, exited);
            on_epoch(index, &charges);
        }
    }

    /// One scheduler epoch: plan placement, execute slices in rounds so
    /// phase boundaries inside the epoch are honored, charge CPU time and
    /// fairness, and reap zombies (tombstones keep pids reserved).
    fn run_epoch(
        &mut self,
        epoch_len: SimDuration,
        tasks: &mut BTreeMap<Pid, Task>,
        exited: &mut BTreeMap<Pid, ExitRecord>,
    ) -> Vec<PerfCharge> {
        let epoch_end = self.now + epoch_len;
        let clock = self.machine.config().uarch.clock;
        let budget_cycles = clock.cycles_in(epoch_len);

        wake_and_settle(tasks, self.now);

        // Plan placement for this epoch.
        let entities: Vec<SchedEntity> = tasks
            .values()
            .filter(|t| t.state == TaskState::Runnable)
            .map(|t| SchedEntity {
                pid: t.pid,
                vruntime: t.vruntime,
                weight: weight_for_nice(t.nice),
                affinity: t.affinity,
                last_pu: t.last_pu,
            })
            .collect();
        let plan = self.scheduler.plan(&SchedCtx {
            topo: self.machine.topology(),
            runnable: &entities,
            epoch_index: self.epoch_index,
        });

        // Per-task epoch bookkeeping. `remaining` tracks unspent cycle
        // budget (used = budget - remaining); `blocked` marks tasks that
        // slept or exited mid-epoch and must not run again this epoch.
        let mut blocked: BTreeSet<Pid> = BTreeSet::new();
        let mut remaining: BTreeMap<Pid, u64> = BTreeMap::new();
        let mut pu_of: BTreeMap<Pid, PuId> = BTreeMap::new();
        let mut epoch_delta: BTreeMap<Pid, EventCounts> = BTreeMap::new();
        for (pu, pid) in plan.running_pairs() {
            remaining.insert(pid, budget_cycles);
            pu_of.insert(pid, pu);
        }

        // Execute in rounds so phase boundaries inside the epoch are honored.
        for _round in 0..8 {
            // Collect (pid, remaining_phase_instructions) of tasks that still
            // have cycles and compute work.
            let mut runnable_now: Vec<(Pid, u64)> = Vec::new();
            let mut to_sleep: Vec<(Pid, SimTime)> = Vec::new();
            let mut to_exit: Vec<Pid> = Vec::new();
            for (&pid, &rem) in remaining.iter() {
                if rem == 0 || blocked.contains(&pid) {
                    continue;
                }
                let task = tasks.get_mut(&pid).expect("planned task exists");
                match task.cursor.step(&task.program) {
                    NextWork::Compute {
                        remaining: insns, ..
                    } => {
                        runnable_now.push((pid, insns));
                    }
                    NextWork::Sleep { duration } => {
                        // Sleep begins at the point in the epoch where the
                        // task stopped computing.
                        let used = budget_cycles - rem;
                        let start = self.now + clock.duration_of(used);
                        to_sleep.push((pid, start + duration));
                    }
                    NextWork::Exit => to_exit.push(pid),
                }
            }
            for (pid, until) in to_sleep {
                let t = tasks.get_mut(&pid).unwrap();
                t.state = TaskState::Sleeping;
                t.sleep_until = Some(until);
                blocked.insert(pid);
            }
            for pid in to_exit {
                let t = tasks.get_mut(&pid).unwrap();
                t.state = TaskState::Zombie;
                let used = budget_cycles - remaining[&pid];
                t.end_time = Some(self.now + clock.duration_of(used));
                blocked.insert(pid);
            }
            if runnable_now.is_empty() {
                break;
            }

            // Build joint slice requests. Split borrows: take tasks out of
            // the map temporarily.
            let mut borrowed: Vec<(Pid, Task)> = runnable_now
                .iter()
                .map(|(pid, _)| (*pid, tasks.remove(pid).unwrap()))
                .collect();
            {
                let mut requests: Vec<SliceRequest<'_>> = Vec::with_capacity(borrowed.len());
                for ((pid, task), (_, phase_insns)) in borrowed.iter_mut().zip(runnable_now.iter())
                {
                    // Destructure to borrow disjoint fields: the profile
                    // borrows `program` (via the cursor), the stream is a
                    // separate field.
                    let Task {
                        program,
                        cursor,
                        stream,
                        cpi_hint,
                        ..
                    } = task;
                    let profile = match cursor.step(program) {
                        NextWork::Compute { profile, .. } => profile,
                        _ => unreachable!("filtered to compute work above"),
                    };
                    let mut req = SliceRequest::new(pu_of[&*pid], profile, stream)
                        .cycles(remaining[&*pid])
                        .max_instructions(*phase_insns);
                    if *cpi_hint > 0.0 {
                        req = req.cpi_hint(*cpi_hint);
                    }
                    requests.push(req);
                }
                let outcomes = self.machine.execute_epoch(&mut requests);

                for ((pid, task), outcome) in borrowed.iter_mut().zip(outcomes) {
                    task.cursor.retire(outcome.instructions);
                    task.total_instructions += outcome.instructions;
                    task.ground_truth.accumulate(&outcome.events);
                    if outcome.instructions > 0 {
                        task.cpi_hint = outcome.cycles as f64 / outcome.instructions as f64;
                    }
                    task.last_pu = Some(pu_of[&*pid]);
                    let rem = remaining.get_mut(pid).unwrap();
                    *rem = rem.saturating_sub(outcome.cycles.max(1));
                    epoch_delta
                        .entry(*pid)
                        .or_default()
                        .accumulate(&outcome.events);
                }
            }
            for (pid, task) in borrowed {
                tasks.insert(pid, task);
            }
        }

        // Charge CPU time, fairness, and collect the perf charges.
        let mut charges: Vec<PerfCharge> = Vec::with_capacity(pu_of.len());
        for (&pid, &pu) in pu_of.iter() {
            let used_cycles = budget_cycles - remaining.get(&pid).copied().unwrap_or(0);
            if used_cycles == 0 {
                continue;
            }
            let run_dur = clock.duration_of(used_cycles);
            let delta = epoch_delta.get(&pid).copied().unwrap_or(EventCounts::ZERO);
            if let Some(task) = tasks.get_mut(&pid) {
                task.utime += run_dur;
                task.vruntime += run_dur.as_nanos() as f64 / weight_for_nice(task.nice);
                task.last_pu = Some(pu);
            }
            charges.push(PerfCharge {
                pid,
                run_dur,
                delta,
            });
        }

        // Reap zombies (tombstones keep the pid reserved).
        let dead: Vec<Pid> = tasks
            .iter()
            .filter(|(_, t)| t.state == TaskState::Zombie)
            .map(|(&p, _)| p)
            .collect();
        for pid in dead {
            let t = tasks.remove(&pid).unwrap();
            exited.insert(
                pid,
                ExitRecord {
                    pid,
                    comm: t.comm,
                    uid: t.uid,
                    start_time: t.start_time,
                    end_time: t.end_time.unwrap_or(epoch_end),
                    utime: t.utime,
                    total_instructions: t.total_instructions,
                    ground_truth: t.ground_truth,
                },
            );
        }

        self.now = epoch_end;
        self.epoch_index += 1;
        charges
    }
}

/// Wake expired sleepers.
fn wake_and_settle(tasks: &mut BTreeMap<Pid, Task>, now: SimTime) {
    for t in tasks.values_mut() {
        if t.state == TaskState::Sleeping {
            if let Some(until) = t.sleep_until {
                if until <= now {
                    t.state = TaskState::Runnable;
                    t.sleep_until = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptop_machine::access::MemoryBehavior;
    use tiptop_machine::config::MachineConfig;
    use tiptop_machine::exec::ExecProfile;
    use tiptop_machine::pmu::HwEvent;

    use crate::program::Program;
    use crate::task::{SpawnSpec, Uid};

    fn engine() -> EpochEngine {
        let cfg = MachineConfig::nehalem_w3550().noiseless();
        EpochEngine::new(Machine::new(cfg, 5), SimDuration::from_millis(20))
    }

    fn spin_task(pid: u32) -> (Pid, Task) {
        let spec = SpawnSpec::new(
            "spin",
            Uid(1),
            Program::endless(
                ExecProfile::builder("spin")
                    .base_cpi(0.8)
                    .branches(0.18, 0.0)
                    .memory(MemoryBehavior::uniform(16 * 1024))
                    .build(),
            ),
        );
        (Pid(pid), Task::new(Pid(pid), spec, SimTime::ZERO))
    }

    #[test]
    fn advance_runs_whole_and_partial_epochs() {
        let mut e = engine();
        let mut tasks = BTreeMap::new();
        let mut exited = BTreeMap::new();
        let (pid, task) = spin_task(100);
        tasks.insert(pid, task);

        let mut epochs = 0u64;
        e.advance(
            SimDuration::from_millis(50),
            &mut tasks,
            &mut exited,
            |_, _| epochs += 1,
        );
        // 20 + 20 + 10 ms.
        assert_eq!(epochs, 3);
        assert_eq!(e.now(), SimTime(50_000_000));
        assert_eq!(e.epoch_index(), 3);
    }

    #[test]
    fn charges_report_what_the_task_ran() {
        let mut e = engine();
        let mut tasks = BTreeMap::new();
        let mut exited = BTreeMap::new();
        let (pid, task) = spin_task(100);
        tasks.insert(pid, task);

        let mut total = EventCounts::ZERO;
        let mut run = SimDuration::ZERO;
        e.advance(
            SimDuration::from_secs(1),
            &mut tasks,
            &mut exited,
            |_, charges| {
                for c in charges {
                    assert_eq!(c.pid, pid);
                    total.accumulate(&c.delta);
                    run += c.run_dur;
                }
            },
        );
        // A CPU-bound task ran the whole second; the charges must match the
        // task's own ground-truth accounting exactly.
        assert!((run.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(total, tasks[&pid].ground_truth);
        assert!(total.get(HwEvent::Cycles) > 3_000_000_000);
    }

    #[test]
    fn exited_tasks_are_reaped_into_tombstones() {
        let mut e = engine();
        let mut tasks = BTreeMap::new();
        let mut exited = BTreeMap::new();
        let spec = SpawnSpec::new(
            "short",
            Uid(1),
            Program::single(
                ExecProfile::builder("short").base_cpi(0.8).build(),
                1_000_000,
            ),
        );
        tasks.insert(Pid(7), Task::new(Pid(7), spec, SimTime::ZERO));
        e.advance(
            SimDuration::from_secs(1),
            &mut tasks,
            &mut exited,
            |_, _| {},
        );
        assert!(tasks.is_empty(), "task ran to completion and was reaped");
        let rec = &exited[&Pid(7)];
        assert_eq!(rec.total_instructions, 1_000_000);
        assert!(rec.end_time < SimTime::from_secs(1));
    }
}
