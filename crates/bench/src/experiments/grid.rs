//! **Grid** — the distributed-scenario headline, one step beyond Figure
//! 10: the same victim/aggressor cast on the bi-Xeon E5640, but the five
//! batch jobs are *endless* — left alone the burst never ends. Relief
//! comes from the grid scheduler instead: at `relief` every aggressor is
//! migrated ([`ClusterScenario::migrate_at`]) to a spare node, landing as
//! an exit on the victims' node and a spawn on the spare at the same
//! sim-time. The victims' IPC, depressed through shared-L3 contention the
//! whole dwell, recovers the moment the aggressors leave — while `top`
//! (watching the same node as a second monitor of the fleet-scale
//! [`ClusterSession::run_all`]) still shows every `%CPU` pegged at ~100
//! throughout.
//!
//! [`ClusterScenario::migrate_at`]: tiptop_core::cluster::ClusterScenario::migrate_at
//! [`ClusterSession::run_all`]: tiptop_core::cluster::ClusterSession::run_all

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::baseline::TopView;
use tiptop_core::cluster::{ClusterCollectSink, ClusterFrame, ClusterScenario, MachineRef};
use tiptop_core::config::ScreenConfig;
use tiptop_core::monitor::Monitor;
use tiptop_core::scenario::Scenario;
use tiptop_core::session::cluster_series_for_comm;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_workloads::datacenter::{grid_script, users, GridScript, Job};

use crate::experiments::default_threads;
use crate::report::{ascii_plot, Series, TableReport};

/// The contended node the victims live on.
pub const VICTIM_NODE: &str = "node-victim";
/// The idle node the scheduler migrates the aggressors to.
pub const SPARE_NODE: &str = "node-spare";

/// Tiptop/top refresh interval (simulated seconds). Shared with the
/// `reactive` experiment so its "within one refresh" comparison against
/// this scripted baseline is apples to apples.
pub(crate) const DELAY_S: f64 = 2.0;
/// Frames observed after the migration to watch the victims recover.
pub(crate) const RECOVERY_FRAMES: usize = 8;

/// The two-node cast shared by `grid` (scripted relief) and `reactive`
/// (policy-decided relief): the contended node carrying the victims and
/// the endless aggressors, the idle spare, and the aggressor tags.
pub(crate) fn nodes(seed: u64, script: &GridScript) -> (Scenario, Scenario, Vec<String>) {
    // The warm working sets are large; oversample the cache hierarchy so
    // the victims' tiers settle into the L3 well before the burst arrives
    // (same knob as fig10).
    let machine = || {
        MachineConfig::datacenter_e5640()
            .noiseless()
            .with_samples(4096)
    };
    let node = |seed: u64| {
        let mut sc = Scenario::new(machine()).seed(seed);
        for (uid, name) in users() {
            sc = sc.user(uid, name);
        }
        sc
    };
    let spawn = |mut sc: Scenario, job: Job| {
        let tag = job.comm.clone();
        sc = sc.spawn_at(
            SimTime::ZERO + job.start,
            tag,
            SpawnSpec::new(job.comm, job.uid, job.program).seed(job.seed),
        );
        sc
    };
    let mut victim_node = node(seed);
    for job in script.victims.iter().cloned() {
        victim_node = spawn(victim_node, job);
    }
    let aggressor_tags: Vec<String> = script.aggressors.iter().map(|j| j.comm.clone()).collect();
    for job in script.aggressors.iter().cloned() {
        victim_node = spawn(victim_node, job);
    }
    (victim_node, node(seed + 1), aggressor_tags)
}

/// The fleet observer set shared by `grid` and `reactive`: tiptop on every
/// node, plus a co-running `top` on the contended node — the §2.5 shape at
/// cluster scale.
pub(crate) fn fleet_monitors(
    delay: SimDuration,
) -> impl FnMut(MachineRef<'_>) -> Vec<Box<dyn Monitor + Send>> {
    move |m: MachineRef<'_>| {
        let tip: Box<dyn Monitor + Send> = Box::new(Tiptop::new(
            TiptopOptions::default().observer(Uid::ROOT).delay(delay),
            ScreenConfig::default_screen(),
        ));
        if m.id == VICTIM_NODE {
            vec![tip, Box::new(TopView::new().delay(delay))]
        } else {
            vec![tip]
        }
    }
}

/// One victim's view of the dwell and the relief.
pub struct VictimSeries {
    pub comm: String,
    /// IPC as tiptop on the victims' node sees it.
    pub ipc: Series,
    /// `%CPU` as the co-running `top` monitor sees it (nothing).
    pub cpu: Series,
}

/// Both victims' tiptop-IPC and top-%CPU series out of a merged fleet
/// stream; `ipc_label` names the IPC curve per victim (the `reactive`
/// experiment labels its curves distinctly for the side-by-side plot).
pub(crate) fn victim_views(
    merged: &[ClusterFrame],
    ipc_label: impl Fn(&str) -> String,
) -> Vec<VictimSeries> {
    ["sim-fluid", "sim-grid"]
        .into_iter()
        .map(|comm| VictimSeries {
            comm: comm.to_string(),
            ipc: Series::new(
                ipc_label(comm),
                cluster_series_for_comm(merged, VICTIM_NODE, Some("tiptop"), comm, "IPC"),
            ),
            cpu: Series::new(
                format!("{comm} %CPU (top)"),
                cluster_series_for_comm(merged, VICTIM_NODE, Some("top"), comm, "%CPU"),
            ),
        })
        .collect()
}

/// The victim series labelled `comm` (panics on unknown names).
pub(crate) fn victim_in<'a>(victims: &'a [VictimSeries], comm: &str) -> &'a VictimSeries {
    victims
        .iter()
        .find(|v| v.comm == comm)
        .expect("known victim")
}

/// Frames of one machine carrying a tiptop row for `comm` inside `(lo, hi]`
/// — shared by the `grid` and `reactive` results so their placement
/// assertions filter the stream identically.
pub(crate) fn frames_showing_in(
    merged: &[ClusterFrame],
    machine: &str,
    comm: &str,
    lo: f64,
    hi: f64,
) -> usize {
    merged
        .iter()
        .filter(|cf| {
            let t = cf.frame.time.as_secs_f64();
            cf.machine == machine
                && cf.source == "tiptop"
                && t > lo
                && t <= hi
                && cf.frame.row_for_comm(comm).is_some()
        })
        .count()
}

/// One migrated aggressor's handover instants (simulated seconds).
pub struct Handover {
    pub comm: String,
    /// Exit on the victims' node.
    pub exit_at: f64,
    /// Spawn on the spare node.
    pub start_at: f64,
}

pub struct GridResult {
    /// When the aggressors arrived on the victims' node.
    pub arrival: f64,
    /// When the scheduler migrated them to the spare node.
    pub relief: f64,
    /// Last observed instant.
    pub end: f64,
    /// The merged fleet stream, labelled `(machine, monitor)`.
    pub merged: Vec<ClusterFrame>,
    pub victims: Vec<VictimSeries>,
    pub handovers: Vec<Handover>,
    pub scale: f64,
}

/// Run the grid-relief scenario on the default worker pool.
pub fn run(seed: u64, scale: f64) -> GridResult {
    run_on(seed, scale, default_threads())
}

/// [`run`] with an explicit worker-thread count; the merged stream is
/// byte-identical at any count.
pub fn run_on(seed: u64, scale: f64, threads: usize) -> GridResult {
    let script = grid_script(scale);
    let arrival = script.arrival.as_secs_f64();
    let relief = script.relief.as_secs_f64();
    let (victim_node, spare_node, aggressor_tags) = nodes(seed, &script);

    let mut cluster = ClusterScenario::new()
        .machine(VICTIM_NODE, victim_node)
        .machine(SPARE_NODE, spare_node);
    for tag in &aggressor_tags {
        cluster = cluster.migrate_at(
            SimTime::ZERO + script.relief,
            tag.clone(),
            VICTIM_NODE,
            SPARE_NODE,
        );
    }
    let mut session = cluster.build().expect("migrations validated at build");

    // Fleet-scale run_all: tiptop everywhere, plus a second observer
    // (`top`) on the contended node — the §2.5 shape at cluster scale.
    let refreshes = ((relief + RECOVERY_FRAMES as f64 * DELAY_S) / DELAY_S).ceil() as usize;
    let delay = SimDuration::from_secs_f64(DELAY_S);
    let mut sink = ClusterCollectSink::new();
    session
        .run_all(threads, refreshes, fleet_monitors(delay), &mut sink)
        .expect("grid run");
    let merged = sink.into_frames();

    let victims = victim_views(&merged, |comm| format!("{comm} IPC"));

    let victim_shard = session.session(VICTIM_NODE).expect("shard survived");
    let spare_shard = session.session(SPARE_NODE).expect("shard survived");
    let handovers = aggressor_tags
        .iter()
        .map(|tag| {
            let exited = victim_shard
                .kernel()
                .exit_record(victim_shard.pid(tag).expect("spawned on the victim node"))
                .expect("killed by the migration");
            let started = spare_shard
                .kernel()
                .stat(spare_shard.pid(tag).expect("respawned on the spare node"))
                .expect("endless aggressor still runs");
            Handover {
                comm: tag.clone(),
                exit_at: exited.end_time.as_secs_f64(),
                start_at: started.start_time.as_secs_f64(),
            }
        })
        .collect();

    let end = merged
        .last()
        .map(|cf| cf.frame.time.as_secs_f64())
        .unwrap_or(relief);
    GridResult {
        arrival,
        relief,
        end,
        merged,
        victims,
        handovers,
        scale,
    }
}

impl GridResult {
    pub fn victim(&self, comm: &str) -> &VictimSeries {
        victim_in(&self.victims, comm)
    }

    /// The three measurement windows, each placed where its phase is fully
    /// developed (the victims' working sets take a few refreshes to warm
    /// into the L3, the aggressors' a few more to start thrashing it, and
    /// the recovery ramps as the tiers re-warm): the last stretch before
    /// the aggressors arrive, the last stretch of the dwell, and the last
    /// stretch after the migration.
    pub fn windows(&self) -> [(f64, f64); 3] {
        [
            (self.arrival - 6.0, self.arrival + 1.0),
            (self.relief - 8.0, self.relief + 1.0),
            (self.end - 6.0, self.end + 1.0),
        ]
    }

    /// Frames of one machine carrying a row for `comm` inside `(lo, hi]`.
    pub fn frames_showing(&self, machine: &str, comm: &str, lo: f64, hi: f64) -> usize {
        frames_showing_in(&self.merged, machine, comm, lo, hi)
    }

    pub fn report(&self) -> String {
        let curves: Vec<Series> = self.victims.iter().map(|v| v.ipc.clone()).collect();
        let mut out = ascii_plot(
            &format!(
                "Grid: victim IPC (aggressors arrive t={:.0}s, migrated away t={:.0}s)",
                self.arrival, self.relief
            ),
            &curves,
            72,
            12,
        );
        let [before, during, after] = self.windows();
        let mut t = TableReport::new(
            "victim means per phase (dwell ends by migration, not completion)",
            &[
                "job",
                "IPC before",
                "IPC dwell",
                "IPC after",
                "%CPU dwell (top)",
            ],
        );
        for v in &self.victims {
            t.row(vec![
                v.comm.clone(),
                format!("{:.2}", v.ipc.mean_in(before.0, before.1)),
                format!("{:.2}", v.ipc.mean_in(during.0, during.1)),
                format!("{:.2}", v.ipc.mean_in(after.0, after.1)),
                format!("{:.1}", v.cpu.mean_in(during.0, during.1)),
            ]);
        }
        out.push_str(&t.render());
        let mut h = TableReport::new(
            "aggressor handovers (exit on victim node == spawn on spare)",
            &["job", "exit (s)", "spawn (s)"],
        );
        for ho in &self.handovers {
            h.row(vec![
                ho.comm.clone(),
                format!("{:.1}", ho.exit_at),
                format!("{:.1}", ho.start_at),
            ]);
        }
        out.push_str(&h.render());
        out
    }
}
