//! `/proc`-style task information.
//!
//! Tiptop learns which tasks exist, who owns them, and how much CPU they got
//! from `/proc` (paper §2.3: "Additional information such as %CPU, processor
//! on which a task is running, etc. is retrieved from the /proc
//! filesystem"). This module defines the structures that read returns; the
//! [`crate::kernel::Kernel`] implements the reads.

use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_machine::topology::PuId;

use crate::task::{Pid, TaskState, Uid};

/// What a read of `/proc/<pid>/stat` (+ `status`) yields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcStat {
    pub pid: Pid,
    pub tgid: Pid,
    pub comm: String,
    pub uid: Uid,
    pub state: TaskState,
    pub nice: i32,
    /// User-mode CPU time consumed since task start.
    pub utime: SimDuration,
    /// Kernel-mode CPU time.
    pub stime: SimDuration,
    pub start_time: SimTime,
    /// PU the task last ran on.
    pub processor: Option<PuId>,
    /// Lifetime retired instructions — NOT part of real /proc; exposed for
    /// the validation harness (§2.4) as the Pin-like ground truth.
    pub ground_truth_instructions: u64,
}

impl ProcStat {
    /// Total CPU time, as `top` sums it.
    pub fn cpu_time(&self) -> SimDuration {
        self.utime + self.stime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_sums_user_and_system() {
        let s = ProcStat {
            pid: Pid(1),
            tgid: Pid(1),
            comm: "x".into(),
            uid: Uid(1000),
            state: TaskState::Runnable,
            nice: 0,
            utime: SimDuration::from_millis(700),
            stime: SimDuration::from_millis(50),
            start_time: SimTime::ZERO,
            processor: None,
            ground_truth_instructions: 0,
        };
        assert_eq!(s.cpu_time(), SimDuration::from_millis(750));
    }
}
