//! Dependency-driven pipeline workloads: multi-stage job scripts wired by
//! *after-exit* edges instead of wall-clock instants.
//!
//! The paper's data-center node (Figs 1, 10) runs jobs submitted through a
//! grid scheduler; real grid submissions are rarely independent — an ETL
//! load waits for its transform, a build farm's compile units wait for
//! `configure`, a shuffle stage waits for its mapper. This module describes
//! such workloads as [`PipelineScript`]s: a list of [`Stage`]s, each either
//! a *root* (submitted at a scripted instant) or *dependent* (submitted a
//! fixed delay after another stage's exit). The bench layer turns a script
//! into a cluster scenario by mapping roots to `spawn_at` and edges to
//! `spawn_after` — which machine resolves each edge (locally or through the
//! cluster's lockstep driver) is decided there, not here.
//!
//! Three fixed shapes cover the classic topologies — [`etl_chain`] (a
//! linear chain), [`build_farm`] (fan-out), [`map_shuffle`] (fan-out then
//! fan-in) — and [`random_dag`] generates seeded random DAGs for property
//! tests: same seed, same script, byte for byte.

use tiptop_kernel::program::Program;
use tiptop_kernel::task::Uid;
use tiptop_machine::access::MemoryBehavior;
use tiptop_machine::exec::ExecProfile;
use tiptop_machine::time::SimDuration;

/// The grid user submitting the pipelines.
pub const PIPELINE_USER: Uid = Uid(1004);

/// One pipeline stage: a finite job plus how it is submitted — at a
/// scripted instant (root) or a delay after another stage exits.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Unique tag (also the comm).
    pub tag: String,
    /// Index of the machine the stage runs on.
    pub machine: usize,
    /// `Some((dep, delay))` submits the stage `delay` after `dep` exits;
    /// `None` submits it at [`Stage::start`].
    pub dep: Option<(String, SimDuration)>,
    /// Submission instant for roots (ignored for dependent stages).
    pub start: SimDuration,
    pub program: Program,
    pub seed: u64,
}

/// A dependency-driven workload: stages spanning `machines` machines.
#[derive(Clone, Debug)]
pub struct PipelineScript {
    pub name: &'static str,
    /// How many machines the stages span (stage `machine` indices are all
    /// below this).
    pub machines: usize,
    /// Stages in declaration order. Dependencies always point to earlier
    /// stages, so the script is acyclic by construction.
    pub stages: Vec<Stage>,
}

impl PipelineScript {
    /// The stages with no dependency, in declaration order.
    pub fn roots(&self) -> impl Iterator<Item = &Stage> {
        self.stages.iter().filter(|s| s.dep.is_none())
    }

    /// The length of the longest dependency chain, in stages.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.stages.len()];
        for i in 0..self.stages.len() {
            depth[i] = match &self.stages[i].dep {
                None => 1,
                Some((dep, _)) => {
                    let d = self
                        .stages
                        .iter()
                        .position(|s| &s.tag == dep)
                        .expect("dependencies point to earlier stages");
                    depth[d] + 1
                }
            };
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

/// A compute-bound stage profile; `cpi` sets how hard the stage works per
/// instruction so stages of one pipeline finish at different rates.
fn stage_profile(name: &str, cpi: f64) -> ExecProfile {
    ExecProfile::builder(name)
        .base_cpi(cpi)
        .branches(0.16, 0.01)
        .memory(MemoryBehavior::uniform(24 * 1024))
        .build()
}

fn stage(
    tag: impl Into<String>,
    machine: usize,
    dep: Option<(&str, SimDuration)>,
    cpi: f64,
    insns: u64,
    seed: u64,
) -> Stage {
    let tag = tag.into();
    Stage {
        program: Program::single(stage_profile(&tag, cpi), insns),
        tag,
        machine,
        dep: dep.map(|(d, delay)| (d.to_string(), delay)),
        start: SimDuration::ZERO,
        seed,
    }
}

/// Instructions for a stage meant to run roughly `seconds` (scaled) on a
/// ~3 GHz machine at the given CPI.
fn insns_for(seconds: f64, cpi: f64, scale: f64) -> u64 {
    ((seconds * scale.max(0.01) * 3.0e9) / cpi).max(1.0) as u64
}

/// A linear ETL chain across three machines: `extract` → `transform` →
/// `load` → `report`, each stage submitted 50 ms after its predecessor
/// exits. `scale` compresses the stages' work, not the submission gaps —
/// those stay above the 20 ms scheduler epoch so every firing instant is
/// exact at any scale. The wall-clock of the whole chain *is* its critical
/// path — there is no parallelism to hide behind.
pub fn etl_chain(scale: f64) -> PipelineScript {
    let gap = SimDuration::from_millis(50);
    PipelineScript {
        name: "etl-chain",
        machines: 3,
        stages: vec![
            stage("extract", 0, None, 0.8, insns_for(0.5, 0.8, scale), 41),
            stage(
                "transform",
                1,
                Some(("extract", gap)),
                1.0,
                insns_for(0.7, 1.0, scale),
                42,
            ),
            stage(
                "load",
                2,
                Some(("transform", gap)),
                0.9,
                insns_for(0.4, 0.9, scale),
                43,
            ),
            stage(
                "report",
                0,
                Some(("load", gap)),
                1.1,
                insns_for(0.2, 1.1, scale),
                44,
            ),
        ],
    }
}

/// A build farm: one `configure` root fans out to `units` compile stages,
/// round-robined across three machines, each submitted a staggered delay
/// after `configure` exits. Wall-clock is configure plus the slowest
/// compile — the fan-out runs concurrently.
pub fn build_farm(scale: f64, units: usize) -> PipelineScript {
    let mut stages = vec![stage(
        "configure",
        0,
        None,
        0.9,
        insns_for(0.3, 0.9, scale),
        50,
    )];
    for i in 0..units {
        let delay = SimDuration::from_millis(30 + 10 * i as u64);
        // Uneven unit sizes: the slowest compile sets the farm's wall-clock.
        let work = 0.4 + 0.15 * (i % 3) as f64;
        stages.push(Stage {
            tag: format!("compile-{i}"),
            machine: i % 3,
            dep: Some(("configure".to_string(), delay)),
            start: SimDuration::ZERO,
            program: Program::single(
                stage_profile(&format!("compile-{i}"), 1.0),
                insns_for(work, 1.0, scale),
            ),
            seed: 60 + i as u64,
        });
    }
    PipelineScript {
        name: "build-farm",
        machines: 3,
        stages,
    }
}

/// A map-shuffle round across three machines: `extract` on machine 0 fans
/// out to one mapper per other machine, and each mapper's output shuffles
/// *back* to machine 0 as a sort stage — fan-out then fan-in, every edge
/// crossing machines.
pub fn map_shuffle(scale: f64) -> PipelineScript {
    let scale = scale.max(0.01);
    let d = |ms: u64| SimDuration::from_millis(ms);
    let mut stages = vec![stage(
        "extract",
        0,
        None,
        0.8,
        insns_for(0.5, 0.8, scale),
        70,
    )];
    for (i, (work, delay)) in [(0.6, 40u64), (0.8, 60u64)].into_iter().enumerate() {
        stages.push(Stage {
            tag: format!("map-{i}"),
            machine: 1 + i,
            dep: Some(("extract".to_string(), d(delay))),
            start: SimDuration::ZERO,
            program: Program::single(
                stage_profile(&format!("map-{i}"), 1.0),
                insns_for(work, 1.0, scale),
            ),
            seed: 80 + i as u64,
        });
        stages.push(Stage {
            tag: format!("sort-{i}"),
            machine: 0,
            dep: Some((format!("map-{i}"), d(30))),
            start: SimDuration::ZERO,
            program: Program::single(
                stage_profile(&format!("sort-{i}"), 0.9),
                insns_for(0.3, 0.9, scale),
            ),
            seed: 90 + i as u64,
        });
    }
    PipelineScript {
        name: "map-shuffle",
        machines: 3,
        stages,
    }
}

/// A tiny deterministic xorshift64* stream for [`random_dag`]: no external
/// RNG crates, identical sequences on every platform.
#[derive(Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A seeded random pipeline DAG: `stages` stages across `machines`
/// machines. Stage 0 is always a root; each later stage flips between
/// being another root (staggered start) and depending on a uniformly
/// random earlier stage — so dependencies always point backwards and the
/// script is acyclic by construction. Delays are at least 25 ms (above the
/// 20 ms scheduler epoch, so firing instants are exact) and everything —
/// topology, delays, sizes, placements — is a pure function of `seed`.
pub fn random_dag(seed: u64, stages: usize, machines: usize) -> PipelineScript {
    assert!(stages > 0, "a DAG needs at least one stage");
    assert!(machines > 0, "a DAG needs at least one machine");
    let mut rng = Rng::new(seed);
    let mut out: Vec<Stage> = Vec::with_capacity(stages);
    for i in 0..stages {
        let tag = format!("stage-{i}");
        let machine = rng.below(machines as u64) as usize;
        // ~1 in 4 later stages are extra roots; the rest hang off an
        // earlier stage.
        let dep = if i > 0 && rng.below(4) != 0 {
            let d = rng.below(i as u64) as usize;
            let delay = SimDuration::from_millis(25 + rng.below(200));
            Some((format!("stage-{d}"), delay))
        } else {
            None
        };
        let start = SimDuration::from_millis(rng.below(300));
        let cpi = 0.7 + 0.1 * rng.below(7) as f64;
        let insns = 5_000_000 + rng.below(60) * 1_000_000;
        out.push(Stage {
            program: Program::single(stage_profile(&tag, cpi), insns),
            tag,
            machine,
            dep,
            start,
            seed: seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        });
    }
    PipelineScript {
        name: "random-dag",
        machines,
        stages: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etl_chain_is_linear_across_three_machines() {
        let s = etl_chain(0.1);
        assert_eq!(s.stages.len(), 4);
        assert_eq!(s.depth(), 4, "a chain's depth is its length");
        assert_eq!(s.roots().count(), 1);
        // Every dependency points at the previous stage.
        for w in s.stages.windows(2) {
            assert_eq!(w[1].dep.as_ref().unwrap().0, w[0].tag);
        }
        assert!(s.stages.iter().any(|st| st.machine == 1));
        assert!(s.stages.iter().any(|st| st.machine == 2));
    }

    #[test]
    fn build_farm_fans_out_from_configure() {
        let s = build_farm(0.1, 6);
        assert_eq!(s.stages.len(), 7);
        assert_eq!(s.depth(), 2, "fan-out is one level deep");
        for unit in &s.stages[1..] {
            assert_eq!(unit.dep.as_ref().unwrap().0, "configure");
        }
        // The fan-out spans all three machines.
        let mut machines: Vec<usize> = s.stages[1..].iter().map(|st| st.machine).collect();
        machines.sort_unstable();
        machines.dedup();
        assert_eq!(machines, vec![0, 1, 2]);
    }

    #[test]
    fn map_shuffle_fans_out_and_back_in() {
        let s = map_shuffle(0.1);
        assert_eq!(s.depth(), 3, "extract → map → sort");
        // The mappers run off machine 0; every sort lands back on it.
        for st in s.stages.iter().filter(|st| st.tag.starts_with("map-")) {
            assert_ne!(st.machine, 0);
            assert_eq!(st.dep.as_ref().unwrap().0, "extract");
        }
        for st in s.stages.iter().filter(|st| st.tag.starts_with("sort-")) {
            assert_eq!(st.machine, 0);
            assert!(st.dep.as_ref().unwrap().0.starts_with("map-"));
        }
    }

    #[test]
    fn random_dag_is_a_pure_function_of_its_seed() {
        let a = random_dag(12345, 12, 4);
        let b = random_dag(12345, 12, 4);
        assert_eq!(a.stages.len(), b.stages.len());
        for (x, y) in a.stages.iter().zip(&b.stages) {
            assert_eq!(x.tag, y.tag);
            assert_eq!(x.machine, y.machine);
            assert_eq!(x.dep, y.dep);
            assert_eq!(x.start, y.start);
            assert_eq!(x.seed, y.seed);
        }
        let c = random_dag(54321, 12, 4);
        assert!(
            a.stages
                .iter()
                .zip(&c.stages)
                .any(|(x, y)| x.machine != y.machine || x.dep != y.dep || x.start != y.start),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn random_dag_edges_point_backwards_with_epoch_safe_delays() {
        for seed in 0..50 {
            let s = random_dag(seed, 10, 3);
            for (i, st) in s.stages.iter().enumerate() {
                assert!(st.machine < s.machines);
                if let Some((dep, delay)) = &st.dep {
                    let d: usize = dep
                        .strip_prefix("stage-")
                        .and_then(|n| n.parse().ok())
                        .unwrap();
                    assert!(d < i, "dependencies must point backwards");
                    assert!(
                        *delay >= SimDuration::from_millis(25),
                        "delays stay above the scheduler epoch"
                    );
                }
            }
            assert!(s.roots().count() >= 1);
        }
    }
}
