//! The live [`Session`]: the kernel plus the not-yet-due workload events —
//! timed events in a sorted queue, dependency-triggered events in a
//! deferred list resolved when their dependency's exit lands.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use tiptop_kernel::kernel::Kernel;
use tiptop_kernel::task::{Pid, SpawnSpec};
use tiptop_machine::time::{SimDuration, SimTime};

use crate::monitor::{CollectSink, FrameSink, Monitor};
use crate::render::Frame;

use super::errors::{DagError, SessionError};
use super::events::{DeferredEvent, HandoffBoard, Trigger, WorkloadEvent};
use super::validation::{self, TagFacts};

/// A live experiment: the kernel plus the not-yet-due workload events. The
/// session owns the clock — all time advancement goes through it so events
/// land at their exact instants.
pub struct Session {
    kernel: Kernel,
    /// Sorted by time (stable); front is next due.
    pending: VecDeque<(SimTime, WorkloadEvent)>,
    /// Dependency-triggered events, waiting for their dep's completion; in
    /// declaration order (which is also their resolution order).
    deferred: Vec<DeferredEvent>,
    /// Every incarnation a tag resolved to on this machine, in spawn order;
    /// the last entry is the current one. A tag gets a new incarnation each
    /// time it is (re-)spawned here — a job migrated away and back is the
    /// same tag, a fresh pid.
    pids: BTreeMap<String, Vec<Pid>>,
    /// Every tag's job spec (scripted and runtime-scheduled spawns alike),
    /// kept so a live migration can clone the job onto another machine.
    specs: BTreeMap<String, SpawnSpec>,
    /// Kill instants per tag: a scripted/live SIGKILL ends the tag at an
    /// exact known instant before the kernel has even reaped the zombie, so
    /// dependency edges resolve without waiting for the reap. Cleared when
    /// the tag respawns.
    kill_instants: BTreeMap<String, SimTime>,
    /// Pids ended by a checkpoint-kill: migrated away, *not* completed —
    /// their exit records must never fire dependency edges here.
    checkpoint_killed: BTreeSet<Pid>,
    /// Checkpoint transport shared with the other sessions of a cluster;
    /// `None` outside cluster runs (resume events then fail cleanly).
    handoff: Option<Arc<HandoffBoard>>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("now", &self.kernel.now())
            .field("tasks", &self.kernel.num_alive())
            .field("pending_events", &self.pending.len())
            .field("deferred_events", &self.deferred.len())
            .field("tags", &self.pids)
            .finish()
    }
}

impl Session {
    /// Assemble a session from its validated parts ([`Scenario::build`]'s
    /// tail — the builder lives in a sibling module).
    pub(crate) fn from_parts(
        kernel: Kernel,
        pending: VecDeque<(SimTime, WorkloadEvent)>,
        deferred: Vec<DeferredEvent>,
        specs: BTreeMap<String, SpawnSpec>,
    ) -> Self {
        Session {
            kernel,
            pending,
            deferred,
            pids: BTreeMap::new(),
            specs,
            kill_instants: BTreeMap::new(),
            checkpoint_killed: BTreeSet::new(),
            handoff: None,
        }
    }

    /// The pid of the tag's *current* (latest) incarnation on this machine
    /// (`None` until its first spawn time).
    pub fn pid(&self, tag: &str) -> Option<Pid> {
        self.pids.get(tag).and_then(|v| v.last()).copied()
    }

    /// Every pid the tag has resolved to on this machine, in spawn order —
    /// one entry per incarnation. A job that migrated away and came back
    /// has two entries here.
    pub fn incarnations(&self, tag: &str) -> &[Pid] {
        self.pids.get(tag).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Attach the cluster's shared checkpoint transport (resume-mode
    /// migrations publish/take through it).
    pub(crate) fn attach_handoff(&mut self, board: Arc<HandoffBoard>) {
        self.handoff = Some(board);
    }

    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Escape hatch for direct syscalls mid-experiment. Advancing the
    /// kernel directly skips scheduled events — use [`Session::advance`].
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Dissolve the session into its kernel (pending events are dropped).
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// Workload events not yet applied (timed and dependency-triggered).
    pub fn pending_events(&self) -> usize {
        self.pending.len() + self.deferred.len()
    }

    /// Dependency-triggered events still waiting for their dep's exit.
    pub fn deferred_events(&self) -> usize {
        self.deferred.len()
    }

    /// The job spec a tag was (or will be) spawned from — scripted spawns
    /// and runtime-scheduled ones alike. The reactive scheduling layer
    /// clones this onto a migration's destination machine.
    pub fn job_spec(&self, tag: &str) -> Option<&SpawnSpec> {
        self.specs.get(tag)
    }

    /// Time of the earliest not-yet-applied spawn (or resume-spawn) of
    /// `tag`, if any.
    pub(crate) fn pending_spawn(&self, tag: &str) -> Option<SimTime> {
        self.pending
            .iter()
            .find_map(|(at, ev)| (ev.is_spawn() && ev.tag() == tag).then_some(*at))
    }

    /// Time of the earliest not-yet-applied kill (plain or checkpointing)
    /// of `tag`, if any — the reactive layer checks this so two live
    /// decisions cannot both claim the same job.
    pub(crate) fn pending_kill(&self, tag: &str) -> Option<SimTime> {
        self.pending
            .iter()
            .find_map(|(at, ev)| (ev.is_kill() && ev.tag() == tag).then_some(*at))
    }

    /// Is `tag` spawned by a not-yet-resolved dependency edge?
    pub(crate) fn deferred_spawn(&self, tag: &str) -> bool {
        self.deferred
            .iter()
            .any(|d| d.ev.is_spawn() && d.ev.tag() == tag)
    }

    /// Remove every not-yet-applied event targeting `tag` at exactly `at`
    /// — the reactive layer rolls a decision's kill/spawn back when the
    /// run errors before they could apply, so a handed-back session never
    /// performs an unrecorded migration on a later run. A cancelled spawn
    /// frees its tag (and retained spec) again.
    pub(crate) fn cancel_scheduled(&mut self, at: SimTime, tag: &str) {
        let mut i = 0;
        while i < self.pending.len() {
            let (at_i, ev) = &self.pending[i];
            if *at_i == at && ev.tag() == tag {
                if ev.is_spawn() && !self.pids.contains_key(tag) {
                    self.specs.remove(tag);
                }
                self.pending.remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// The instant the tag's *completion* — the exit of its final
    /// incarnation — became known, if it has. `min_incarnations` is how
    /// many incarnations the schedule creates for the tag; earlier
    /// incarnations' exits are migrations-in-progress, not completions. A
    /// checkpoint-killed final incarnation migrated away and never
    /// completes here.
    ///
    /// The returned instant is the exact exit time
    /// ([`ExitRecord::end_time`](tiptop_kernel::kernel::ExitRecord), or the
    /// kill instant for jobs ended by a plain SIGKILL). Natural exits only
    /// become observable when the kernel reaps the zombie at the end of an
    /// epoch, so callers clamp derived instants forward to *now*.
    pub(crate) fn completion_of(&self, tag: &str, min_incarnations: usize) -> Option<SimTime> {
        let pids = self.pids.get(tag)?;
        if pids.len() < min_incarnations {
            return None;
        }
        let last = *pids.last()?;
        if self.checkpoint_killed.contains(&last) {
            return None;
        }
        if let Some(at) = self.kill_instants.get(tag) {
            return Some(*at);
        }
        self.kernel.exit_record(last).map(|rec| rec.end_time)
    }

    /// Schedule a workload event **at run time** — the per-run event queue
    /// behind live scheduling decisions. Scripted schedules are fully
    /// validated by [`Scenario::build`](super::Scenario::build); an event
    /// injected mid-run gets the *run-time half* of that validation here
    /// (the same shared checker — see [`validation`]), with infeasible
    /// requests surfacing as typed [`SessionError::InvalidDecision`]s:
    ///
    /// * `at` must not lie in the past (an event at exactly the current
    ///   instant is applied before this returns);
    /// * a `Spawn` (or `ResumeSpawn`) starts a *new incarnation* of its
    ///   tag — allowed once the previous incarnation is dead (or has a kill
    ///   pending no later than `at`), rejected while it is live:
    ///   incarnation addressing never aliases two live tasks;
    /// * a `Kill`/`Renice`/`Pin` must target a tag whose current
    ///   incarnation is spawned (or has a pending spawn no later than `at`)
    ///   and has not already exited;
    /// * a `Kill` is rejected while another kill of the same tag is still
    ///   pending (two live decisions cannot both claim one job).
    ///
    /// A task can still exit *between* scheduling and `at`; that surfaces
    /// as [`SessionError::Syscall`] when the event applies, exactly like a
    /// scripted kill racing a natural exit.
    pub fn schedule_at(&mut self, at: SimTime, ev: WorkloadEvent) -> Result<(), SessionError> {
        let now = self.kernel.now();
        if at < now {
            return Err(SessionError::InvalidDecision(format!(
                "event scheduled at {at:?} lies in the past (now {now:?})"
            )));
        }
        let tag = ev.tag().to_string();
        let facts = TagFacts {
            live: self.pid(&tag).is_some_and(|pid| self.kernel.is_alive(pid)),
            pending_spawn: self.pending_spawn(&tag).map(|s| (s, s <= at)),
            pending_kill: self.pending_kill(&tag),
            ever_spawned: self.pids.contains_key(tag.as_str()),
            dead_at: None,
        };
        validation::check_event(&facts, &ev, at).map_err(|i| i.decision_error(&tag, at))?;
        if let WorkloadEvent::Spawn { tag, spec } | WorkloadEvent::ResumeSpawn { tag, spec } = &ev {
            self.specs.insert(tag.clone(), spec.clone());
        }
        // Keep `pending` sorted by time, stable: an event lands after every
        // already-queued event of the same instant.
        let pos = self
            .pending
            .iter()
            .position(|(t, _)| *t > at)
            .unwrap_or(self.pending.len());
        self.pending.insert(pos, (at, ev));
        if at == now {
            self.settle_now()?;
        }
        Ok(())
    }

    /// Schedule an event to fire `delay` after `dep`'s completion — the
    /// run-time counterpart of the `*_after` builder methods, validated
    /// with the same typed [`DagError`]s as
    /// [`Scenario::build`](super::Scenario::build): the dependency must be
    /// spawned (live, pending, or itself dependency-triggered), and a
    /// dependency-triggered spawn must not close a cycle with the edges
    /// already waiting. If the dependency already completed, the event is
    /// scheduled (and possibly applied) before this returns.
    pub fn schedule_after(
        &mut self,
        dep: impl Into<String>,
        delay: SimDuration,
        ev: WorkloadEvent,
    ) -> Result<(), SessionError> {
        let dep = dep.into();
        let spawned_incarnations = self.pids.get(dep.as_str()).map_or(0, |v| v.len());
        let scheduled_spawns = self
            .pending
            .iter()
            .filter(|(_, e)| e.is_spawn() && e.tag() == dep)
            .count()
            + self
                .deferred
                .iter()
                .filter(|d| d.ev.is_spawn() && d.ev.tag() == dep)
                .count();
        if spawned_incarnations + scheduled_spawns == 0 {
            return Err(SessionError::InvalidDag(DagError::UnknownDependency {
                event_tag: ev.tag().to_string(),
                dependency: dep,
            }));
        }
        if ev.is_spawn() {
            if self.deferred_spawn(ev.tag()) {
                return Err(SessionError::InvalidDecision(format!(
                    "tag '{}' already has a dependency-triggered spawn waiting \
                     (incarnation addressing never aliases two live tasks)",
                    ev.tag()
                )));
            }
            let mut edges: Vec<(&str, &str)> = self
                .deferred
                .iter()
                .filter(|d| d.ev.is_spawn())
                .map(|d| (d.dep.as_str(), d.ev.tag()))
                .collect();
            edges.push((dep.as_str(), ev.tag()));
            if let Some(tags) = validation::spawn_edge_cycle(&edges) {
                return Err(SessionError::InvalidDag(DagError::Cycle { tags }));
            }
        }
        if let WorkloadEvent::Spawn { tag, spec } | WorkloadEvent::ResumeSpawn { tag, spec } = &ev {
            self.specs.insert(tag.clone(), spec.clone());
        }
        self.deferred.push(DeferredEvent {
            dep,
            min_incarnations: (spawned_incarnations + scheduled_spawns).max(1),
            delay,
            ev,
        });
        self.settle_now()
    }

    /// Schedule an event at run time by [`Trigger`] — timed triggers go
    /// through [`Session::schedule_at`], dependency triggers through
    /// [`Session::schedule_after`].
    pub fn schedule(&mut self, trigger: Trigger, ev: WorkloadEvent) -> Result<(), SessionError> {
        match trigger {
            Trigger::At(at) => self.schedule_at(at, ev),
            Trigger::AfterExit { tag, delay } => self.schedule_after(tag, delay, ev),
        }
    }

    fn apply_due(&mut self) -> Result<(), SessionError> {
        while let Some((at, _)) = self.pending.front() {
            if *at > self.kernel.now() {
                break;
            }
            let (_, ev) = self.pending.pop_front().expect("front exists");
            self.apply(ev)?;
        }
        Ok(())
    }

    /// Move every deferred event whose dependency has completed into the
    /// timed queue. The dependent fires at `exit + delay`, clamped forward
    /// to *now* when the exit only became observable later (natural exits
    /// surface when the kernel reaps at an epoch end); resolved events
    /// insert after already-queued events of the same instant, so they
    /// order deterministically against same-instant timed events (timed
    /// first, then resolved events in declaration order). Returns whether
    /// anything resolved.
    fn resolve_deferred(&mut self) -> bool {
        let mut any = false;
        let mut i = 0;
        while i < self.deferred.len() {
            let d = &self.deferred[i];
            match self.completion_of(&d.dep, d.min_incarnations) {
                Some(exit) => {
                    let d = self.deferred.remove(i);
                    let due = (exit + d.delay).max(self.kernel.now());
                    let pos = self
                        .pending
                        .iter()
                        .position(|(t, _)| *t > due)
                        .unwrap_or(self.pending.len());
                    self.pending.insert(pos, (due, d.ev));
                    any = true;
                }
                None => i += 1,
            }
        }
        any
    }

    /// Apply everything due now and resolve any dependency edges whose dep
    /// has completed, repeating until neither makes progress (a kill
    /// applied now can complete a dependency whose zero-delay dependent is
    /// then due now too).
    pub(crate) fn settle_now(&mut self) -> Result<(), SessionError> {
        loop {
            self.apply_due()?;
            if !self.resolve_deferred() {
                return Ok(());
            }
        }
    }

    fn resolved(&self, tag: &str) -> Result<Pid, SessionError> {
        self.pid(tag).ok_or_else(|| {
            SessionError::InvalidScenario(format!(
                "event against '{tag}' applied before its spawn (declare the spawn first \
                 when scheduling same-instant events)"
            ))
        })
    }

    fn apply(&mut self, ev: WorkloadEvent) -> Result<(), SessionError> {
        match ev {
            WorkloadEvent::Spawn { tag, spec } => {
                let pid = self.kernel.spawn(spec);
                self.kill_instants.remove(&tag);
                self.pids.entry(tag).or_default().push(pid);
            }
            WorkloadEvent::CheckpointKill { tag } => {
                let pid = self.resolved(&tag)?;
                let now = self.kernel.now();
                let cp = self.kernel.checkpoint(pid).map_err(|_| {
                    // ESRCH from checkpoint() means the program already ran
                    // to completion — there is nothing to resume, which a
                    // resume-mode decision must surface as a typed error,
                    // never as a zero-length resumed clone.
                    SessionError::InvalidDecision(format!(
                        "resume-mode kill of '{tag}' (pid {}) at {now:?}: the program \
                         already ran to completion; nothing to checkpoint",
                        pid.0
                    ))
                })?;
                self.kernel
                    .kill(pid)
                    .map_err(|errno| SessionError::Syscall {
                        call: "kill",
                        pid,
                        errno,
                    })?;
                // Migrated away, not completed: this pid must never fire a
                // dependency edge.
                self.checkpoint_killed.insert(pid);
                match &self.handoff {
                    Some(board) => board.publish(&tag, now, cp),
                    None => {
                        return Err(SessionError::InvalidDecision(format!(
                            "checkpoint of '{tag}' has no handoff board to publish to \
                             (resume migrations only run inside a cluster)"
                        )))
                    }
                }
            }
            WorkloadEvent::ResumeSpawn { tag, spec: _ } => {
                let now = self.kernel.now();
                let cp = self
                    .handoff
                    .as_ref()
                    .and_then(|board| board.take(&tag, now))
                    .ok_or_else(|| {
                        SessionError::InvalidDecision(format!(
                            "no checkpoint published for '{tag}' at {now:?} (the source \
                             machine did not produce one, or the handoff was misordered)"
                        ))
                    })?;
                let pid = self.kernel.spawn_from_checkpoint(cp);
                self.kill_instants.remove(&tag);
                self.pids.entry(tag).or_default().push(pid);
            }
            WorkloadEvent::Kill { tag } => {
                let pid = self.resolved(&tag)?;
                self.kernel
                    .kill(pid)
                    .map_err(|errno| SessionError::Syscall {
                        call: "kill",
                        pid,
                        errno,
                    })?;
                // The kill instant is exact and known before the kernel
                // reaps the zombie — dependency edges resolve from it
                // without epoch-granularity slack.
                self.kill_instants.insert(tag, self.kernel.now());
            }
            WorkloadEvent::Renice { tag, nice } => {
                let pid = self.resolved(&tag)?;
                self.kernel
                    .renice(pid, nice)
                    .map_err(|errno| SessionError::Syscall {
                        call: "renice",
                        pid,
                        errno,
                    })?;
            }
            WorkloadEvent::Pin { tag, cpus } => {
                let pid = self.resolved(&tag)?;
                self.kernel
                    .set_affinity(pid, cpus)
                    .map_err(|errno| SessionError::Syscall {
                        call: "sched_setaffinity",
                        pid,
                        errno,
                    })?;
            }
        }
        Ok(())
    }

    /// Advance simulated time to an absolute instant, applying every
    /// scheduled event at its exact time along the way (events at `t`
    /// itself apply before this returns). No-op if `t` is in the past.
    ///
    /// While dependency edges are unresolved, time advances at most one
    /// scheduler-epoch boundary per hop — exits only become observable
    /// when the kernel reaps at an epoch end, and a dependent event must
    /// fire as soon as its dependency's exit can be known.
    pub fn advance_to(&mut self, t: SimTime) -> Result<(), SessionError> {
        loop {
            self.settle_now()?;
            let next_due = self
                .pending
                .front()
                .map(|(at, _)| *at)
                .filter(|at| *at <= t);
            if self.deferred.is_empty() {
                // Timed-only: hop straight to the next event instant.
                match next_due {
                    Some(at) => {
                        self.kernel.advance_until(at);
                        self.apply_due()?;
                    }
                    None => {
                        self.kernel.advance_until(t);
                        return Ok(());
                    }
                }
            } else {
                let step = next_due
                    .unwrap_or(t)
                    .min(self.kernel.epoch_boundary_after(self.kernel.now()))
                    .min(t);
                self.kernel.advance_until(step);
                if self.kernel.now() >= t {
                    self.settle_now()?;
                    return Ok(());
                }
            }
        }
    }

    /// Advance simulated time by a span (see [`Session::advance_to`]).
    pub fn advance(&mut self, dur: SimDuration) -> Result<(), SessionError> {
        self.advance_to(self.kernel.now() + dur)
    }

    /// Reject zero-interval monitors (they would never let time advance)
    /// and prime the rest at the current instant.
    fn check_and_prime(&mut self, monitors: &mut [&mut dyn Monitor]) -> Result<(), SessionError> {
        for m in monitors.iter() {
            if m.interval().is_zero() {
                return Err(SessionError::InvalidScenario(format!(
                    "monitor '{}' has a zero refresh interval",
                    m.name()
                )));
            }
        }
        for m in monitors.iter_mut() {
            m.prime(&mut self.kernel);
        }
        Ok(())
    }

    /// Advance one interval of a primed monitor (applying due events) and
    /// take its observation.
    fn observe_next(&mut self, monitor: &mut dyn Monitor) -> Result<Frame, SessionError> {
        self.advance_to(self.kernel.now() + monitor.interval())?;
        Ok(monitor.observe(&mut self.kernel))
    }

    /// Drive several monitors concurrently — the §2.5 interference shape.
    /// Every monitor is primed now, then observed on its own interval until
    /// it has produced `refreshes` frames; frames go to `sink` labelled
    /// with [`Monitor::name`]. Monitors due at the same instant observe in
    /// slice order.
    pub fn run_all(
        &mut self,
        monitors: &mut [&mut dyn Monitor],
        refreshes: usize,
        sink: &mut dyn FrameSink,
    ) -> Result<(), SessionError> {
        self.check_and_prime(monitors)?;
        let start = self.kernel.now();
        let mut next: Vec<SimTime> = monitors.iter().map(|m| start + m.interval()).collect();
        let mut taken = vec![0usize; monitors.len()];
        loop {
            let due = next
                .iter()
                .zip(&taken)
                .filter(|(_, &n)| n < refreshes)
                .map(|(&t, _)| t)
                .min();
            let Some(t) = due else { break };
            self.advance_to(t)?;
            for (i, m) in monitors.iter_mut().enumerate() {
                if taken[i] < refreshes && next[i] == t {
                    let frame = m.observe(&mut self.kernel);
                    sink.on_frame(m.name(), frame);
                    taken[i] += 1;
                    next[i] = t + m.interval();
                }
            }
        }
        Ok(())
    }

    /// Drive one monitor for `refreshes` intervals and collect its frames.
    ///
    /// Each iteration advances simulated time by the monitor's interval,
    /// then takes a frame — so frame *i* covers interval *i*. An initial
    /// priming refresh attaches counters at the current instant without
    /// recording a frame, like starting the real tool:
    ///
    /// ```
    /// use tiptop_core::prelude::*;
    /// use tiptop_kernel::prelude::*;
    /// use tiptop_machine::prelude::*;
    ///
    /// let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
    ///     .user(Uid(1), "u1")
    ///     .spawn(
    ///         "spin",
    ///         SpawnSpec::new("spin", Uid(1), Program::endless(ExecProfile::builder("spin").build())),
    ///     )
    ///     .build()
    ///     .unwrap();
    /// let mut tool = Tiptop::new(
    ///     TiptopOptions::default().delay(SimDuration::from_secs(1)),
    ///     ScreenConfig::default_screen(),
    /// );
    /// let frames = session.run(&mut tool, 3).unwrap();
    /// assert_eq!(frames.len(), 3);
    /// assert_eq!(frames[0].time.as_secs_f64(), 1.0, "frame 0 covers interval 0");
    /// assert_eq!(frames[2].time.as_secs_f64(), 3.0);
    /// ```
    pub fn run(
        &mut self,
        monitor: &mut dyn Monitor,
        refreshes: usize,
    ) -> Result<Vec<Frame>, SessionError> {
        let mut sink = CollectSink::new();
        self.run_all(&mut [monitor], refreshes, &mut sink)?;
        Ok(sink.into_frames())
    }

    /// Like [`Session::run`] but stops early when `until` says so (given
    /// the latest frame). Returns the frames recorded so far.
    pub fn run_until(
        &mut self,
        monitor: &mut dyn Monitor,
        max_refreshes: usize,
        until: impl Fn(&Frame) -> bool,
    ) -> Result<Vec<Frame>, SessionError> {
        self.check_and_prime(&mut [&mut *monitor])?;
        let mut frames = Vec::new();
        for _ in 0..max_refreshes {
            let frame = self.observe_next(monitor)?;
            let done = until(&frame);
            frames.push(frame);
            if done {
                break;
            }
        }
        Ok(frames)
    }

    /// Tear a monitor down (close its counter fds etc.) against this
    /// session's kernel.
    pub fn teardown(&mut self, monitor: &mut dyn Monitor) {
        monitor.teardown(&mut self.kernel);
    }
}
