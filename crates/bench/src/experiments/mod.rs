//! One module per paper artifact. Every module exposes `run(...)` returning
//! structured data plus a `report()` rendering the same rows or series the
//! paper shows.
//!
//! Implemented so far: Figure 1 (the data-center snapshot) and Table 1 (the
//! x87/SSE FP micro-benchmark). The remaining figures (3, 6–11, and the
//! §2.4 validation) are tracked as open items in `ROADMAP.md`.

pub mod fig01_snapshot;
pub mod table1_fp_micro;

use tiptop_machine::config::MachineConfig;

/// The three evaluation machines of Figs 3/6/7/8, labelled as the paper
/// labels them.
///
/// Currently unused: its consumers are the figure experiments still listed
/// as ROADMAP open items; it is kept so those modules can come back against
/// the same machine set.
pub fn evaluation_machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("Nehalem", MachineConfig::nehalem_w3550()),
        ("Core", MachineConfig::core2_machine()),
        ("PPC970", MachineConfig::ppc970_machine()),
    ]
}
