//! The tiptop application: options, the refresh loop, row building.
//!
//! Mirrors the real tool's shape: `tiptop [-b] [-d delay] [-n iters]
//! [-u user] [-H]` — live mode periodically refreshes a screen; batch mode
//! streams the same rows as text. Each refresh: scan `/proc`, attach to
//! newcomers, read counter deltas, evaluate the screen's metric
//! expressions, sort, render.

use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex};

use tiptop_kernel::kernel::Kernel;
use tiptop_kernel::program::{Phase, Program};
use tiptop_kernel::task::{Pid, SpawnSpec, Uid};
use tiptop_machine::access::MemoryBehavior;
use tiptop_machine::exec::ExecProfile;
use tiptop_machine::pmu::{EventCounts, HwEvent};
use tiptop_machine::time::SimDuration;

use crate::collector::Collector;
use crate::config::{ColumnKind, ScreenConfig};
use crate::events::parse_event;
use crate::expr::Compiled;
use crate::procinfo::CpuTracker;
use crate::render::{CellSpec, Frame, Row};
use crate::symbols::{self, SymId};

/// A metric expression variable resolved at screen-build time, so the
/// per-row hot path never parses identifier names (see [`Expr::compile`]).
///
/// [`Expr::compile`]: crate::expr::Expr::compile
#[derive(Clone, Copy, Debug)]
enum VarSlot {
    Event(HwEvent),
    CpuPct,
    DeltaT,
    Time,
}

/// Per-metric-column evaluation plan: compiled when every identifier
/// resolves (the common case), else the AST — whose per-row eval errors
/// reproduce the historical NaN-cell behavior for unknown identifiers.
enum MetricProg {
    Fast(Compiled<VarSlot>),
    Slow,
}

/// Row ordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SortKey {
    /// By `%CPU`, descending — the `top` default and Figure 1's order.
    CpuPct,
    /// By a metric column's value, descending.
    Column(String),
    /// By pid, ascending.
    Pid,
}

/// Tool options (the command line).
#[derive(Clone, Debug)]
pub struct TiptopOptions {
    /// Refresh interval (`-d`); the paper typically samples every few
    /// seconds.
    pub delay: SimDuration,
    /// Batch mode (`-b`).
    pub batch: bool,
    /// Stop after this many refreshes (`-n`).
    pub iterations: Option<usize>,
    /// Who is running the tool (decides which tasks are observable).
    pub observer: Uid,
    /// Show only this user's tasks (`-u`).
    pub user_filter: Option<Uid>,
    /// Per-thread rows (`-H`) instead of per-process aggregation.
    pub per_thread: bool,
    pub sort: SortKey,
    /// Model the monitor's own (tiny) CPU cost as a real task in the kernel
    /// — used by the §2.5 perturbation experiment. The paper measures
    /// tiptop's self-load below 0.06% at a 5 s refresh.
    pub model_self_load: bool,
}

impl Default for TiptopOptions {
    fn default() -> Self {
        TiptopOptions {
            delay: SimDuration::from_secs(2),
            batch: false,
            iterations: None,
            observer: Uid::ROOT,
            user_filter: None,
            per_thread: false,
            sort: SortKey::CpuPct,
            model_self_load: false,
        }
    }
}

impl TiptopOptions {
    pub fn delay(mut self, d: SimDuration) -> Self {
        self.delay = d;
        self
    }

    pub fn batch(mut self, b: bool) -> Self {
        self.batch = b;
        self
    }

    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = Some(n);
        self
    }

    pub fn observer(mut self, uid: Uid) -> Self {
        self.observer = uid;
        self
    }

    pub fn user_filter(mut self, uid: Uid) -> Self {
        self.user_filter = Some(uid);
        self
    }

    pub fn per_thread(mut self, h: bool) -> Self {
        self.per_thread = h;
        self
    }

    pub fn sort(mut self, s: SortKey) -> Self {
        self.sort = s;
        self
    }

    pub fn model_self_load(mut self, m: bool) -> Self {
        self.model_self_load = m;
        self
    }
}

/// Everything [`Tiptop`] derives from its screen at construction time and
/// never mutates: headers, interned metric ids, compiled metric programs,
/// and the deferred-formatting cell plan.
///
/// Built once per *distinct screen* per process and shared via
/// [`ScreenPlan::shared`]: a 1000-machine fleet where every shard runs the
/// default screen holds one plan allocation, not a thousand compiled
/// copies.
struct ScreenPlan {
    /// Header slice shared by every frame (the screen never changes
    /// mid-run); one refcount bump per refresh instead of a `String` per
    /// column per frame.
    headers: Arc<[(String, usize)]>,
    /// Interned header id per column, metric columns only — the typed row
    /// values are keyed by these.
    metric_syms: Vec<Option<SymId>>,
    /// Compiled metric programs, one per metric column in screen order.
    metric_progs: Vec<MetricProg>,
    cpu_sym: SymId,
    /// Deferred-formatting recipe shared by every row (see
    /// [`CellSpec`]): cell text is only rendered if a consumer asks.
    cell_plan: Arc<[CellSpec]>,
    /// Whether any column needs a per-row kernel-state text capture
    /// (`State`/`Processor`), so rows without them skip the vector.
    has_texts: bool,
}

impl ScreenPlan {
    /// The process-wide plan for `screen`, building it on first sight.
    /// Keyed by the screen's full structural fingerprint, so two screens
    /// agreeing on name *and* columns share one plan and any difference
    /// gets its own.
    fn shared(screen: &ScreenConfig) -> Arc<ScreenPlan> {
        static CACHE: LazyLock<Mutex<HashMap<String, Arc<ScreenPlan>>>> =
            LazyLock::new(|| Mutex::new(HashMap::new()));
        let key = format!("{:?}|{:?}", screen.name, screen.columns);
        Arc::clone(
            CACHE
                .lock()
                .expect("screen plan cache poisoned")
                .entry(key)
                .or_insert_with(|| Arc::new(ScreenPlan::build(screen))),
        )
    }

    fn build(screen: &ScreenConfig) -> ScreenPlan {
        let headers: Arc<[(String, usize)]> = screen
            .columns
            .iter()
            .map(|c| (c.header.clone(), c.width))
            .collect::<Vec<_>>()
            .into();
        let metric_syms: Vec<Option<SymId>> = screen
            .columns
            .iter()
            .map(|c| {
                matches!(c.kind, ColumnKind::Metric { .. }).then(|| symbols::intern(&c.header))
            })
            .collect();
        let metric_progs: Vec<MetricProg> = screen
            .columns
            .iter()
            .filter_map(|c| match &c.kind {
                ColumnKind::Metric { expr, .. } => Some(
                    expr.compile(&mut |name| {
                        if let Some(ev) = parse_event(name) {
                            return Some(VarSlot::Event(ev));
                        }
                        match name {
                            "%CPU" | "CPU_PCT" => Some(VarSlot::CpuPct),
                            "DELTA_T" => Some(VarSlot::DeltaT),
                            "TIME" => Some(VarSlot::Time),
                            _ => None,
                        }
                    })
                    .map(MetricProg::Fast)
                    .unwrap_or(MetricProg::Slow),
                ),
                _ => None,
            })
            .collect();
        let mut metric_i = 0usize;
        let mut text_i = 0usize;
        let cell_plan: Arc<[CellSpec]> = screen
            .columns
            .iter()
            .map(|c| match &c.kind {
                ColumnKind::Pid => CellSpec::Pid,
                ColumnKind::User => CellSpec::User,
                ColumnKind::CpuPct => CellSpec::CpuPct,
                ColumnKind::Comm => CellSpec::Comm,
                ColumnKind::State | ColumnKind::Processor => {
                    text_i += 1;
                    CellSpec::Text(text_i - 1)
                }
                ColumnKind::Metric { format, .. } => {
                    metric_i += 1;
                    CellSpec::Metric(metric_i - 1, *format)
                }
            })
            .collect();
        ScreenPlan {
            headers,
            metric_syms,
            metric_progs,
            cpu_sym: symbols::intern("%CPU"),
            cell_plan,
            has_texts: text_i > 0,
        }
    }
}

/// The tool.
pub struct Tiptop {
    options: TiptopOptions,
    screen: ScreenConfig,
    collector: Collector,
    cpu: CpuTracker,
    self_pid: Option<Pid>,
    /// Derived screen state, shared process-wide per distinct screen.
    plan: Arc<ScreenPlan>,
}

impl Tiptop {
    pub fn new(options: TiptopOptions, screen: ScreenConfig) -> Self {
        let collector = Collector::new(options.observer, screen.required_events());
        let plan = ScreenPlan::shared(&screen);
        Tiptop {
            options,
            screen,
            collector,
            cpu: CpuTracker::new(),
            self_pid: None,
            plan,
        }
    }

    /// The shared deferred-formatting recipe — exposed so tests can assert
    /// that identical screens share one plan allocation across instances.
    pub fn cell_plan(&self) -> Arc<[CellSpec]> {
        self.plan.cell_plan.clone()
    }

    /// Tool with default options and the Figure 1 screen, run as root.
    pub fn with_defaults() -> Self {
        Self::new(TiptopOptions::default(), ScreenConfig::default_screen())
    }

    pub fn options(&self) -> &TiptopOptions {
        &self.options
    }

    pub fn screen(&self) -> &ScreenConfig {
        &self.screen
    }

    /// The monitor's own task pid, when self-load modelling is on.
    pub fn self_pid(&self) -> Option<Pid> {
        self.self_pid
    }

    /// Ensure the self-load task exists (idempotent).
    fn ensure_self_task(&mut self, k: &mut Kernel) {
        if !self.options.model_self_load || self.self_pid.is_some() {
            return;
        }
        // Per refresh: read /proc + a few hundred counter fds + redraw.
        // Modelled as ~2.5 ms of CPU per refresh, then sleep until the next
        // one: 2.5 ms / 5 s = 0.05% CPU, matching the paper's "below 0.06%".
        let clock = k.config().machine.uarch.clock.hz() as f64;
        let work_insns = (0.0025 * clock * 0.9) as u64; // IPC ~0.9 bookkeeping code
        let profile = ExecProfile::builder("tiptop-self")
            .base_cpi(1.1)
            .loads_per_insn(0.3)
            .stores_per_insn(0.12)
            .branches(0.2, 0.03)
            .memory(MemoryBehavior::uniform(64 * 1024))
            .build();
        let prog = Program::looping(vec![
            Phase::compute(profile, work_insns.max(1)),
            Phase::sleep(self.options.delay),
        ]);
        let pid = k.spawn(
            SpawnSpec::new("tiptop", self.options.observer, prog)
                .nice(0)
                .seed(0xF1F),
        );
        self.self_pid = Some(pid);
    }

    /// One refresh: returns the new frame. Does *not* advance time — the
    /// session loop owns the clock (see [`crate::session`]).
    pub fn refresh(&mut self, k: &mut Kernel) -> Frame {
        self.ensure_self_task(k);
        let now = k.now();
        self.collector.refresh(k);

        // Scan /proc.
        let pids = k.pids();
        self.cpu.retain_pids(&|p| pids.contains(&p));
        // Borrowed (not moved) so the refresh makes no per-frame map copy;
        // `cpu` and `collector` are disjoint fields, so the borrows coexist.
        let deltas = self.collector.deltas();
        let mut entries: Vec<(Pid, tiptop_kernel::procfs::ProcStat, f64)> = Vec::new();
        let mut unobservable = 0usize;
        for pid in pids {
            let Some(stat) = k.stat(pid) else { continue };
            let pct = self.cpu.update(&stat, now);
            if let Some(filter) = self.options.user_filter {
                if stat.uid != filter {
                    continue;
                }
            }
            if !deltas.contains_key(&pid) {
                unobservable += 1;
                continue;
            }
            entries.push((pid, stat, pct));
        }

        // Aggregate threads into processes unless -H.
        let mut rows: Vec<Row> = if self.options.per_thread {
            entries
                .iter()
                .map(|(pid, stat, pct)| {
                    self.build_row(k, *pid, stat, *pct, deltas[pid].counts, now)
                })
                .collect()
        } else if entries.iter().all(|(pid, stat, _)| stat.tgid == *pid) {
            // No multi-threaded process in sight (the cluster-shard common
            // case): every task is its own group — skip the group map.
            entries
                .iter()
                .map(|(pid, stat, pct)| {
                    self.build_row(k, *pid, stat, *pct, deltas[pid].counts, now)
                })
                .collect()
        } else {
            // Representative stat: the main thread if present, else the
            // first member seen.
            let mut groups: HashMap<Pid, (usize, f64, EventCounts)> =
                HashMap::with_capacity(entries.len());
            for (i, (pid, stat, pct)) in entries.iter().enumerate() {
                let g = groups
                    .entry(stat.tgid)
                    .or_insert((i, 0.0, EventCounts::ZERO));
                if *pid == stat.tgid {
                    g.0 = i;
                }
                g.1 += pct;
                g.2.accumulate(&deltas[pid].counts);
            }
            let mut rows = Vec::with_capacity(groups.len());
            for (tgid, (rep, pct, counts)) in groups {
                rows.push(self.build_row(k, tgid, &entries[rep].1, pct, counts, now));
            }
            rows
        };

        // Sort.
        match &self.options.sort {
            SortKey::CpuPct => rows.sort_by(|a, b| {
                b.cpu_pct
                    .partial_cmp(&a.cpu_pct)
                    .unwrap()
                    .then_with(|| a.pid.cmp(&b.pid))
            }),
            SortKey::Pid => rows.sort_by_key(|r| r.pid),
            SortKey::Column(h) => rows.sort_by(|a, b| {
                let av = a.value(h).unwrap_or(f64::NEG_INFINITY);
                let bv = b.value(h).unwrap_or(f64::NEG_INFINITY);
                bv.partial_cmp(&av).unwrap().then_with(|| a.pid.cmp(&b.pid))
            }),
        }

        Frame {
            time: now,
            headers: self.plan.headers.clone(),
            rows,
            unobservable,
        }
    }

    fn build_row(
        &self,
        k: &Kernel,
        display_pid: Pid,
        stat: &tiptop_kernel::procfs::ProcStat,
        cpu_pct: f64,
        counts: EventCounts,
        now: tiptop_machine::time::SimTime,
    ) -> Row {
        let delta_t = self.options.delay.as_secs_f64();
        let user = k.username(stat.uid);
        // Kernel-state cells (task state, last PU) must be captured now —
        // the kernel has moved on by the time anyone renders — but cell
        // *formatting* is deferred to first access via the shared plan, so
        // aggregating consumers never pay for it.
        let mut texts: Vec<String> = Vec::new();
        if self.plan.has_texts {
            for col in &self.screen.columns {
                match col.kind {
                    ColumnKind::State => texts.push(stat.state.code().to_string()),
                    ColumnKind::Processor => texts.push(
                        stat.processor
                            .map(|p| p.0.to_string())
                            .unwrap_or_else(|| "-".into()),
                    ),
                    _ => {}
                }
            }
        }
        let mut values: Vec<(SymId, f64)> = Vec::with_capacity(self.screen.columns.len() + 1);
        let mut metric_i = 0usize;
        for (col, sym) in self.screen.columns.iter().zip(&self.plan.metric_syms) {
            if let ColumnKind::Metric { expr, .. } = &col.kind {
                let v = match &self.plan.metric_progs[metric_i] {
                    MetricProg::Fast(prog) => prog.eval(&mut |slot| match slot {
                        VarSlot::Event(ev) => counts.get(*ev) as f64,
                        VarSlot::CpuPct => cpu_pct,
                        VarSlot::DeltaT => delta_t,
                        VarSlot::Time => now.as_secs_f64(),
                    }),
                    MetricProg::Slow => expr
                        .eval(&|name: &str| {
                            if let Some(ev) = parse_event(name) {
                                return Some(counts.get(ev) as f64);
                            }
                            match name {
                                "%CPU" | "CPU_PCT" => Some(cpu_pct),
                                "DELTA_T" => Some(delta_t),
                                "TIME" => Some(now.as_secs_f64()),
                                _ => None,
                            }
                        })
                        .unwrap_or(f64::NAN),
                };
                metric_i += 1;
                values.push((sym.expect("metric columns carry a sym"), v));
            }
        }
        // A metric column named "%CPU" (if a screen defines one) shadows
        // the built-in entry, matching the old map-overwrite behavior.
        if !values.iter().any(|(c, _)| *c == self.plan.cpu_sym) {
            values.push((self.plan.cpu_sym, cpu_pct));
        }
        Row::deferred(
            display_pid,
            user,
            stat.comm.clone(),
            cpu_pct,
            values,
            self.plan.cell_plan.clone(),
            texts,
        )
    }

    /// Tear down all counters (end of run).
    pub fn shutdown(&mut self, k: &mut Kernel) {
        self.collector.detach_all(k);
        if let Some(pid) = self.self_pid.take() {
            let _ = k.kill(pid);
        }
    }
}
