//! `cargo bench`-style timing harness for the experiment suite: runs every
//! paper artifact at its regression-test scale, times each one, and writes
//! `BENCH_experiments.json` so consecutive PRs accumulate a perf
//! trajectory.
//!
//! ```sh
//! cargo run --release -p tiptop-bench --bin bench_timing [-- out.json]
//! ```
//!
//! The JSON is written by hand (the offline `serde` stub has no
//! serializer): a flat object of per-experiment wall seconds plus totals —
//! trivially diffable between commits.

use std::time::Instant;

use tiptop_bench::experiments::{
    fig01_snapshot, fig03_evolution, fig06_07_phases, fig08_ipc_vs_instructions, fig09_compilers,
    fig10_datacenter, fig11_interference, fleet, table1_fp_micro, validation,
};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_experiments.json".to_string());

    let mut entries: Vec<(&'static str, f64)> = Vec::new();
    let mut time = |name: &'static str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        eprintln!("{name:>24}  {dt:7.2}s");
        entries.push((name, dt));
    };

    // Same seeds/scales as the regression tests, so these timings track
    // exactly what CI pays for.
    time("fig01_snapshot", &mut || {
        fig01_snapshot::run(3, 30, 5);
    });
    time("table1_fp_micro", &mut || {
        table1_fp_micro::run(5);
    });
    time("fig03_evolution", &mut || {
        fig03_evolution::run(7, 0.001);
    });
    time("fig06_07_phases", &mut || {
        fig06_07_phases::run(11, 0.02);
    });
    time("fig08_ipc_vs_insns", &mut || {
        fig08_ipc_vs_instructions::run(13, 0.02);
    });
    time("fig09_compilers", &mut || {
        fig09_compilers::run(17, 0.02);
    });
    time("fig10_datacenter", &mut || {
        fig10_datacenter::run(19, 0.01);
    });
    time("fig11_interference", &mut || {
        fig11_interference::run(23);
    });
    time("fleet", &mut || {
        fleet::run(31, 0.02);
    });
    time("validation", &mut || {
        validation::run(29);
    });

    let total: f64 = entries.iter().map(|(_, t)| t).sum();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"schema\": \"tiptop-bench-timing/1\",\n  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    json.push_str("  \"experiments\": {\n");
    for (i, (name, t)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {t:.3}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_seconds\": {total:.3}\n}}\n"));

    std::fs::write(&out_path, &json).expect("write timing json");
    eprintln!("{:>24}  {total:7.2}s", "total");
    println!("wrote {out_path}");
}
