//! Offline stub for `serde_derive`: emits empty trait impls that lean on
//! the default (panicking) methods of the stub `serde` traits. Supports
//! non-generic structs and enums only — generic types fail loudly rather
//! than silently mis-deriving.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("stub derive emits valid tokens")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("stub derive emits valid tokens")
}

/// Extract the type name following `struct`/`enum`, rejecting generics.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde stub derive: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = iter.next() {
                    if p.as_char() == '<' {
                        panic!("serde stub derive: generic type {name} is unsupported");
                    }
                }
                return name;
            }
        }
    }
    panic!("serde stub derive: no struct/enum found in input")
}
