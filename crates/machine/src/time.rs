//! Simulated time.
//!
//! Everything in the simulation is timestamped in integer nanoseconds since
//! machine boot. Using integers (rather than `f64` seconds) keeps arithmetic
//! associative and the simulation bit-for-bit reproducible regardless of the
//! order in which durations are accumulated.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

/// A clock frequency in hertz.
///
/// Converts between cycle counts and [`SimDuration`]s; all CPU models carry
/// one (e.g. the paper's Xeon W3550 runs at 3.07 GHz, the PPC970 at 1.8 GHz).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Freq(pub u64);

impl SimTime {
    /// The boot instant.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since boot.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since boot as a float (for display and plotting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from float seconds; rounds to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "durations are non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Freq {
    /// Gigahertz helper: `Freq::ghz(3.07)` is the W3550 clock.
    pub fn ghz(g: f64) -> Self {
        Freq((g * 1e9).round() as u64)
    }

    pub fn mhz(m: f64) -> Self {
        Freq((m * 1e6).round() as u64)
    }

    pub fn hz(self) -> u64 {
        self.0
    }

    /// Number of whole cycles elapsing in `d`.
    pub fn cycles_in(self, d: SimDuration) -> u64 {
        // (ns * hz) / 1e9 with 128-bit intermediate so multi-hour spans at
        // multi-GHz clocks cannot overflow.
        ((d.0 as u128 * self.0 as u128) / 1_000_000_000u128) as u64
    }

    /// Duration taken by `cycles` cycles, rounded to the nearest nanosecond.
    pub fn duration_of(self, cycles: u64) -> SimDuration {
        let ns = (cycles as u128 * 1_000_000_000u128 + self.0 as u128 / 2) / self.0 as u128;
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(
            t.since(SimTime::from_secs(3)),
            SimDuration::from_millis(250)
        );
        assert_eq!(t - SimTime::from_secs(1), SimDuration(2_250_000_000));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn freq_cycle_conversions() {
        let f = Freq::ghz(3.07);
        assert_eq!(f.hz(), 3_070_000_000);
        // One second holds exactly `hz` cycles.
        assert_eq!(f.cycles_in(SimDuration::from_secs(1)), 3_070_000_000);
        // Round trip within a nanosecond of rounding error.
        let d = f.duration_of(3_070_000);
        assert_eq!(d, SimDuration::from_millis(1));
    }

    #[test]
    fn freq_no_overflow_on_long_spans() {
        let f = Freq::ghz(3.4);
        // 10 simulated hours at 3.4 GHz.
        let cycles = f.cycles_in(SimDuration::from_secs(36_000));
        assert_eq!(cycles, 122_400_000_000_000);
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_secs_f64(2.5);
        assert_eq!(d, SimDuration::from_millis(2500));
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-12);
    }
}
