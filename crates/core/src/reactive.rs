//! Reactive fleet scheduling: policies that watch the merged cluster
//! stream and issue migrations **live**.
//!
//! The paper's thesis is that live performance monitoring should *inform
//! decisions*. The scripted
//! [`ClusterScenario::migrate_at`](crate::cluster::ClusterScenario::migrate_at)
//! replays a grid scheduler's decision; this module lets the decision be
//! *made* during the run: a [`SchedulerPolicy`] observes every frame of the
//! merged stream (the same frames the sink sees) and returns
//! [`MigrationDecision`]s, which
//! [`ClusterSession::run_reactive`](crate::cluster::ClusterSession::run_reactive)
//! validates at run time and injects into the affected machines' event
//! queues at the next scheduler-epoch boundary after the deciding frame.
//! Decisions are keyed to sim-time, so a reactive run is byte-identical at
//! any worker-thread count.
//!
//! The built-in policy is [`IpcFloor`] — threshold detection on a monitored
//! IPC series (the simplest online change-point detector): when a watched
//! job's IPC stays below a floor for a sustained breach window, every
//! co-running job matching an eviction rule is migrated to a relief
//! machine.

use std::collections::HashSet;

use tiptop_machine::time::{SimDuration, SimTime};

use crate::cluster::ClusterFrame;
use crate::render::Row;

/// One live scheduling decision: move the job tagged `tag` from machine
/// `from` to machine `to`. The run-time counterpart of
/// [`ClusterScenario::migrate_at`](crate::cluster::ClusterScenario::migrate_at);
/// the driver validates it against the live sessions (typed
/// [`SessionError::InvalidDecision`](crate::scenario::SessionError) on an
/// infeasible request) and applies it at the next epoch boundary.
///
/// By the convention every workload script in this repository follows, a
/// job's scenario *tag* equals its command name — which is what a policy
/// reads off a frame row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationDecision {
    pub tag: String,
    pub from: String,
    pub to: String,
}

/// A decision that was validated and injected during a reactive run:
/// what moved, who decided, and the two instants that matter — the merged
/// frame that triggered it and the epoch boundary where it applied.
#[derive(Clone, Debug)]
pub struct AppliedDecision {
    /// [`SchedulerPolicy::name`] of the deciding policy.
    pub policy: String,
    pub tag: String,
    pub from: String,
    pub to: String,
    /// Sim-time of the frame the policy fired on.
    pub decided_at: SimTime,
    /// The next epoch boundary after `decided_at`: where the kill lands on
    /// the source and the spawn on the destination (same instant on both).
    pub applied_at: SimTime,
}

/// A scheduler that closes the monitor→migration loop: it observes the
/// merged cluster stream frame by frame — in merge order, exactly as a
/// [`ClusterFrameSink`](crate::cluster::ClusterFrameSink) would — and
/// returns migration decisions.
///
/// Policies run on the driving thread between observation rounds, so they
/// need no `Send`; their state may be arbitrary, but `observe` must be a
/// deterministic function of the frames seen so far — that is what keeps
/// reactive runs byte-identical at any worker-thread count.
pub trait SchedulerPolicy {
    /// Short identifier, used to label applied decisions and errors.
    fn name(&self) -> &str;

    /// Observe one frame of the merged stream; return any migrations this
    /// frame triggers (usually none).
    fn observe(&mut self, frame: &ClusterFrame) -> Vec<MigrationDecision>;
}

/// A custom eviction rule over a triggering frame's rows.
type EvictRule = Box<dyn FnMut(&Row) -> bool>;

/// Threshold detection on a monitored IPC series: watch one job (`comm`)
/// on one machine; once its IPC has been seen healthy (at or above
/// `threshold`) and then stays below the floor for a sustained breach of
/// at least `cooldown`, evict co-running jobs to the relief machine `to`.
///
/// * **Arming** — the policy only reacts to a *drop*: it must first see
///   the watched IPC at or above the floor (so a cold-start ramp below the
///   floor never fires it).
/// * **`cooldown`** — the breach must persist this long before the policy
///   pays a migration: a debounce against transient dips, and, because the
///   breach clock resets on firing, a refire throttle too. Zero means
///   "fire on the first breached frame".
/// * **Eviction rule** — which rows of the triggering frame to move. The
///   default evicts every job owned by a different **non-root** user than
///   the watched victim (the grid-scheduler story: protect the interactive
///   user, move the batch arrivals — root-owned rows are monitoring/system
///   plumbing such as tiptop's own modelled self-load task, not grid
///   jobs); [`IpcFloor::evicting`] installs a custom rule. Each tag is
///   evicted at most once.
pub struct IpcFloor {
    machine: String,
    comm: String,
    threshold: f64,
    cooldown: SimDuration,
    to: String,
    /// Only frames of this monitor are considered (`None`: any frame whose
    /// watched row carries a finite IPC).
    source: Option<String>,
    evict: Option<EvictRule>,
    armed: bool,
    breach_since: Option<SimTime>,
    moved: HashSet<String>,
}

impl IpcFloor {
    pub fn new(
        machine: impl Into<String>,
        comm: impl Into<String>,
        threshold: f64,
        cooldown: SimDuration,
        to: impl Into<String>,
    ) -> Self {
        IpcFloor {
            machine: machine.into(),
            comm: comm.into(),
            threshold,
            cooldown,
            to: to.into(),
            source: None,
            evict: None,
            armed: false,
            breach_since: None,
            moved: HashSet::new(),
        }
    }

    /// Restrict the watched frames to one monitor's (e.g. `"tiptop"` when
    /// a `top` runs alongside it on the same machine).
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Install a custom eviction rule over the triggering frame's rows
    /// (the watched victim itself is never evicted).
    pub fn evicting(mut self, rule: impl FnMut(&Row) -> bool + 'static) -> Self {
        self.evict = Some(Box::new(rule));
        self
    }
}

impl SchedulerPolicy for IpcFloor {
    fn name(&self) -> &str {
        "ipc-floor"
    }

    fn observe(&mut self, cf: &ClusterFrame) -> Vec<MigrationDecision> {
        if cf.machine != self.machine || self.source.as_ref().is_some_and(|s| *s != cf.source) {
            return Vec::new();
        }
        let Some(victim) = cf.frame.row_for_comm(&self.comm) else {
            return Vec::new();
        };
        let Some(ipc) = victim.value("IPC").filter(|v| v.is_finite()) else {
            return Vec::new();
        };
        if ipc >= self.threshold {
            self.armed = true;
            self.breach_since = None;
            return Vec::new();
        }
        if !self.armed {
            return Vec::new();
        }
        let t = cf.frame.time;
        let since = *self.breach_since.get_or_insert(t);
        if t - since < self.cooldown {
            return Vec::new();
        }
        // Fire: evict matching co-runners (each tag at most once) and reset
        // the breach clock so a continued breach must re-accumulate a full
        // cooldown before firing again.
        self.breach_since = None;
        let victim_pid = victim.pid;
        let victim_user = victim.user.clone();
        let mut out = Vec::new();
        for row in &cf.frame.rows {
            if row.pid == victim_pid {
                continue;
            }
            let evict = match &mut self.evict {
                Some(rule) => rule(row),
                None => row.user != victim_user && row.user != "root",
            };
            if evict && self.moved.insert(row.comm.clone()) {
                out.push(MigrationDecision {
                    tag: row.comm.clone(),
                    from: self.machine.clone(),
                    to: self.to.clone(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::Frame;
    use tiptop_kernel::task::Pid;

    fn frame_at(t: u64, rows: Vec<(&str, &str, f64)>) -> ClusterFrame {
        let rows = rows
            .into_iter()
            .enumerate()
            .map(|(i, (comm, user, ipc))| Row {
                pid: Pid(100 + i as u32),
                user: user.to_string(),
                comm: comm.to_string(),
                cpu_pct: 100.0,
                cells: Vec::new(),
                values: [("IPC".to_string(), ipc)].into(),
            })
            .collect();
        ClusterFrame {
            machine: "node".to_string(),
            machine_index: 0,
            source: "tiptop".to_string(),
            seq: t as usize,
            frame: Frame {
                time: SimTime::from_secs(t),
                headers: Vec::new(),
                rows,
                unobservable: 0,
            },
        }
    }

    #[test]
    fn fires_only_after_arming_and_a_sustained_breach() {
        let mut p = IpcFloor::new("node", "victim", 1.0, SimDuration::from_secs(2), "spare");
        // Cold start below the floor: not armed, never fires.
        assert!(p
            .observe(&frame_at(1, vec![("victim", "u1", 0.5)]))
            .is_empty());
        // Healthy sample arms it.
        assert!(p
            .observe(&frame_at(2, vec![("victim", "u1", 1.4)]))
            .is_empty());
        // Breach starts at t=3; cooldown 2 s means t=5 is the first firing
        // instant — and a recovery in between resets the clock.
        assert!(p
            .observe(&frame_at(
                3,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        assert!(p
            .observe(&frame_at(
                4,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        let fired = p.observe(&frame_at(
            5,
            vec![
                ("victim", "u1", 0.8),
                ("batch", "u2", 1.2),
                ("peer", "u1", 1.0),
            ],
        ));
        // Default rule: evict other users' jobs, never the victim's user's.
        assert_eq!(
            fired,
            vec![MigrationDecision {
                tag: "batch".to_string(),
                from: "node".to_string(),
                to: "spare".to_string(),
            }]
        );
        // A continued breach must re-accumulate the cooldown, and an
        // already-moved tag is never re-evicted.
        assert!(p
            .observe(&frame_at(
                6,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        assert!(p
            .observe(&frame_at(
                8,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
    }

    #[test]
    fn custom_eviction_rule_and_source_filter() {
        let mut p = IpcFloor::new("node", "victim", 1.0, SimDuration::ZERO, "spare")
            .source("tiptop")
            .evicting(|row: &Row| row.comm.starts_with("batch"));
        let mut other = frame_at(1, vec![("victim", "u1", 1.4)]);
        other.source = "top".to_string();
        assert!(p.observe(&other).is_empty(), "wrong monitor is ignored");
        assert!(p
            .observe(&frame_at(1, vec![("victim", "u1", 1.4)]))
            .is_empty());
        let fired = p.observe(&frame_at(
            2,
            vec![
                ("victim", "u1", 0.5),
                ("batch0", "u1", 1.0),
                ("other", "u2", 1.0),
            ],
        ));
        assert_eq!(fired.len(), 1, "only the rule's matches are evicted");
        assert_eq!(fired[0].tag, "batch0");
    }
}
