//! **Fleet** — one workload, every machine, one merged report: the same
//! SPEC phase benchmark (473.astar, the strongest phase alternator of
//! Fig 6) runs *concurrently* on all three evaluation machines, observed by
//! one tiptop per node, and the per-node frame streams merge into a single
//! deterministically ordered timeline.
//!
//! This is the experiment the single-machine session API could never
//! express: it is not twelve independent runs stitched together afterwards,
//! but one live observation of a heterogeneous fleet on a shared wall
//! clock — the operator's view of "the same job submitted to every box in
//! the lab at t=0". The merged stream shows the Nehalem pulling ahead
//! phase-by-phase, the Core trailing, the PPC970 still in its build phase
//! when the Nehalem has finished, and each node dropping out of the
//! timeline at its own completion instant.

use tiptop_core::cluster::{ClusterFrame, ClusterScenario, MachineRef};
use tiptop_core::render::Frame;
use tiptop_core::scenario::Scenario;
use tiptop_core::session::cluster_series_for_comm;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_workloads::spec::{Compiler, SpecBenchmark};

use crate::experiments::{
    default_threads, evaluation_machines, isa_for, spec_delay, spec_monitor_factory,
};
use crate::report::{PanelSet, Series, TableReport};

/// The fleet's common workload.
pub const BENCHMARK: SpecBenchmark = SpecBenchmark::Astar;

pub struct FleetResult {
    /// Machine ids in merge tie-break order (Nehalem, Core, PPC970).
    pub machines: Vec<String>,
    /// The merged stream, exactly as the sink received it: ordered by
    /// (sim-time, machine).
    pub merged: Vec<ClusterFrame>,
    /// Per-machine IPC over the shared wall clock.
    pub ipc: Vec<Series>,
    /// Per-machine completion time in simulated seconds.
    pub walls: Vec<(String, f64)>,
    pub scale: f64,
}

/// Run the fleet on the default worker pool.
pub fn run(seed: u64, scale: f64) -> FleetResult {
    run_on(seed, scale, default_threads())
}

/// [`run`] with an explicit worker-thread count; the merged stream is
/// byte-identical at any count.
pub fn run_on(seed: u64, scale: f64, threads: usize) -> FleetResult {
    let delay = spec_delay(scale);
    let comm = BENCHMARK.comm();

    let mut cluster = ClusterScenario::new();
    let mut machines = Vec::new();
    for (mi, (mname, machine)) in evaluation_machines().into_iter().enumerate() {
        let isa = isa_for(&machine);
        let node_seed = seed + mi as u64;
        cluster = cluster.machine(
            mname,
            Scenario::new(machine.noiseless())
                .seed(node_seed)
                .user(Uid(1), "user1")
                .spawn(
                    comm,
                    SpawnSpec::new(comm, Uid(1), BENCHMARK.program(Compiler::Gcc, isa, scale))
                        .seed(node_seed ^ 0x5bec),
                ),
        );
        machines.push(mname.to_string());
    }
    let mut session = cluster.build().expect("unique machine names");

    let mut merged: Vec<ClusterFrame> = Vec::new();
    {
        let mut sink = |cf: ClusterFrame| merged.push(cf);
        session
            .run_each(
                threads,
                1_000_000,
                spec_monitor_factory(delay),
                |_: MachineRef<'_>| Box::new(move |f: &Frame| f.row_for_comm(comm).is_none()),
                &mut sink,
            )
            .expect("fleet run");
    }

    let ipc = machines
        .iter()
        .map(|m| {
            Series::new(
                format!("{m} IPC"),
                cluster_series_for_comm(&merged, m, None, comm, "IPC"),
            )
        })
        .collect();
    let walls = machines
        .iter()
        .map(|m| {
            let shard = session.session(m).expect("shard survived");
            let pid = shard.pid(comm).expect("spawned at t=0");
            let rec = shard.kernel().exit_record(pid).expect("ran to completion");
            (m.clone(), (rec.end_time - rec.start_time).as_secs_f64())
        })
        .collect();

    FleetResult {
        machines,
        merged,
        ipc,
        walls,
        scale,
    }
}

impl FleetResult {
    pub fn wall_for(&self, machine: &str) -> f64 {
        self.walls
            .iter()
            .find(|(m, _)| m == machine)
            .map(|(_, w)| *w)
            .expect("known machine")
    }

    /// The merged stream rendered to text — the byte-identity artifact the
    /// determinism tests compare across thread counts.
    pub fn rendered_stream(&self) -> String {
        self.merged
            .iter()
            .map(|cf| {
                format!(
                    "[{} #{} {}]\n{}",
                    cf.machine,
                    cf.seq,
                    cf.source,
                    cf.frame.render()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    pub fn report(&self) -> String {
        let mut fig = PanelSet::new(format!(
            "Fleet: {} on every machine at t=0 (scale {})",
            BENCHMARK.name(),
            self.scale
        ));
        for (m, s) in self.machines.iter().zip(self.ipc.iter()) {
            fig.panel(m, vec![s.clone()]);
        }
        let mut out = fig.render(72, 10);

        let mut t = TableReport::new(
            "fleet completion (one merged timeline)",
            &["machine", "wall (s)", "frames", "mean IPC"],
        );
        for (m, s) in self.machines.iter().zip(self.ipc.iter()) {
            t.row(vec![
                m.clone(),
                format!("{:.1}", self.wall_for(m)),
                self.merged
                    .iter()
                    .filter(|cf| &cf.machine == m)
                    .count()
                    .to_string(),
                format!("{:.2}", s.mean()),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}
