//! Seeded, per-task memory address-stream generators.
//!
//! Each task's memory behaviour is a mixture of *working-set tiers*: e.g.
//! 429.mcf touches a small hot region almost every access, a multi-megabyte
//! warm region often, and a gigabyte-scale cold arena rarely. The tier sizes
//! relative to the (shared) cache capacities are what make the paper's
//! contention experiments work: one mcf's warm tier fits the 8 MB L3, three
//! don't.
//!
//! Streams are deterministic: a task's addresses depend only on its stream
//! seed and the number of addresses drawn so far.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// How addresses are drawn within one tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Consecutive lines, wrapping at the tier end (streaming).
    Sequential,
    /// Fixed stride in bytes, wrapping at the tier end.
    Strided(u64),
    /// Uniformly random byte offsets (pointer-chasing-like footprints).
    Random,
}

/// One tier of a task's working set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkingSetTier {
    /// Tier size in bytes (≥ one cache line).
    pub bytes: u64,
    /// Relative probability an access lands in this tier.
    pub weight: f64,
    pub pattern: AccessPattern,
}

impl WorkingSetTier {
    pub fn new(bytes: u64, weight: f64, pattern: AccessPattern) -> Self {
        assert!(bytes >= 64, "tier smaller than a cache line");
        assert!(weight > 0.0, "tier weight must be positive");
        WorkingSetTier {
            bytes,
            weight,
            pattern,
        }
    }
}

/// A task's complete memory behaviour: its working-set tiers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    tiers: Vec<WorkingSetTier>,
    /// Cumulative normalized weights, same length as `tiers`.
    cdf: Vec<f64>,
    /// Byte offset of each tier in the task's virtual address space.
    bases: Vec<u64>,
}

impl MemoryBehavior {
    /// Build from tiers. Tiers are laid out contiguously from address 0.
    ///
    /// # Panics
    /// Panics if `tiers` is empty.
    pub fn new(tiers: Vec<WorkingSetTier>) -> Self {
        assert!(!tiers.is_empty(), "at least one working-set tier required");
        let total: f64 = tiers.iter().map(|t| t.weight).sum();
        let mut acc = 0.0;
        let cdf = tiers
            .iter()
            .map(|t| {
                acc += t.weight / total;
                acc
            })
            .collect();
        let mut base = 0u64;
        let bases = tiers
            .iter()
            .map(|t| {
                let b = base;
                // Page-align tier starts so strides never straddle tiers.
                base += (t.bytes + 4095) & !4095;
                b
            })
            .collect();
        MemoryBehavior { tiers, cdf, bases }
    }

    /// Single uniformly-random working set of `bytes` — the simplest model.
    pub fn uniform(bytes: u64) -> Self {
        MemoryBehavior::new(vec![WorkingSetTier::new(bytes, 1.0, AccessPattern::Random)])
    }

    /// Pure streaming over `bytes`.
    pub fn streaming(bytes: u64) -> Self {
        MemoryBehavior::new(vec![WorkingSetTier::new(
            bytes,
            1.0,
            AccessPattern::Sequential,
        )])
    }

    pub fn tiers(&self) -> &[WorkingSetTier] {
        &self.tiers
    }

    /// Total footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.tiers.iter().map(|t| t.bytes).sum()
    }

    fn pick_tier(&self, u: f64) -> usize {
        self.cdf
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.tiers.len() - 1)
    }
}

/// Per-task mutable stream state: RNG + per-tier cursors + the address-space
/// id that namespaces this task's lines in the shared caches.
#[derive(Clone, Debug)]
pub struct TaskStream {
    asid: u64,
    rng: SmallRng,
    cursors: Vec<u64>,
    drawn: u64,
}

impl TaskStream {
    /// `asid` must be unique per task (the kernel uses the pid); `seed`
    /// determines the random tier/offset choices.
    pub fn new(asid: u64, seed: u64) -> Self {
        TaskStream {
            asid,
            rng: SmallRng::seed_from_u64(seed ^ 0x7469_7074_6f70_5f73), // "tiptop_s"
            cursors: Vec::new(),
            drawn: 0,
        }
    }

    pub fn asid(&self) -> u64 {
        self.asid
    }

    /// Re-namespace the stream under a new address-space id, preserving the
    /// RNG state, tier cursors, and draw count. Used when a checkpointed task
    /// is resumed under a fresh pid: the access *sequence* continues exactly
    /// where it left off, but its lines must not alias another task's.
    pub fn with_asid(mut self, asid: u64) -> Self {
        self.asid = asid;
        self
    }

    /// Number of addresses drawn so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }

    /// Draw the next byte address, qualified with the address-space id in the
    /// high bits (bit 40 upward), ready to feed to the cache hierarchy.
    pub fn next_addr(&mut self, mem: &MemoryBehavior) -> u64 {
        if self.cursors.len() != mem.tiers.len() {
            self.cursors = vec![0; mem.tiers.len()];
        }
        self.drawn += 1;
        let u: f64 = self.rng.random();
        let ti = mem.pick_tier(u);
        let tier = &mem.tiers[ti];
        let offset = match tier.pattern {
            AccessPattern::Sequential => {
                let o = self.cursors[ti];
                self.cursors[ti] = (o + 64) % tier.bytes;
                o
            }
            AccessPattern::Strided(stride) => {
                let o = self.cursors[ti];
                self.cursors[ti] = (o + stride) % tier.bytes;
                o
            }
            AccessPattern::Random => self.rng.random_range(0..tier.bytes),
        };
        (self.asid << 40) | (mem.bases[ti] + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_addresses_stay_in_footprint() {
        let mem = MemoryBehavior::uniform(1 << 20);
        let mut s = TaskStream::new(3, 99);
        for _ in 0..1000 {
            let a = s.next_addr(&mem);
            assert_eq!(a >> 40, 3, "asid in high bits");
            assert!((a & ((1 << 40) - 1)) < (1 << 20));
        }
        assert_eq!(s.drawn(), 1000);
    }

    #[test]
    fn sequential_walks_lines_in_order() {
        let mem = MemoryBehavior::streaming(64 * 10);
        let mut s = TaskStream::new(0, 1);
        let addrs: Vec<u64> = (0..12).map(|_| s.next_addr(&mem)).collect();
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[1], 64);
        assert_eq!(addrs[9], 64 * 9);
        assert_eq!(addrs[10], 0, "wraps at tier end");
    }

    #[test]
    fn strided_wraps() {
        let mem = MemoryBehavior::new(vec![WorkingSetTier::new(
            4096,
            1.0,
            AccessPattern::Strided(1024),
        )]);
        let mut s = TaskStream::new(0, 1);
        let offs: Vec<u64> = (0..5).map(|_| s.next_addr(&mem)).collect();
        assert_eq!(offs, vec![0, 1024, 2048, 3072, 0]);
    }

    #[test]
    fn tiers_are_disjoint_in_address_space() {
        let mem = MemoryBehavior::new(vec![
            WorkingSetTier::new(128 * 1024, 0.8, AccessPattern::Random),
            WorkingSetTier::new(5 << 20, 0.2, AccessPattern::Random),
        ]);
        let mut s = TaskStream::new(1, 7);
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            let a = s.next_addr(&mem) & ((1 << 40) - 1);
            if a < 128 * 1024 {
                hot += 1;
            } else {
                assert!(a >= 128 * 1024, "cold tier starts after hot tier");
                assert!(a < mem.footprint() + 8192);
            }
        }
        // ~80% of accesses hit the hot tier.
        let frac = hot as f64 / n as f64;
        assert!((0.77..0.83).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mem = MemoryBehavior::uniform(1 << 24);
        let mut a = TaskStream::new(1, 42);
        let mut b = TaskStream::new(1, 42);
        let mut c = TaskStream::new(1, 43);
        let va: Vec<u64> = (0..100).map(|_| a.next_addr(&mem)).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_addr(&mem)).collect();
        let vc: Vec<u64> = (0..100).map(|_| c.next_addr(&mem)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_tiers_panic() {
        MemoryBehavior::new(vec![]);
    }

    #[test]
    fn with_asid_preserves_sequence_under_new_namespace() {
        let mem = MemoryBehavior::uniform(1 << 24);
        let mut a = TaskStream::new(1, 42);
        let mut b = TaskStream::new(1, 42);
        // Advance both identically, then move `b` to a new address space.
        for _ in 0..50 {
            a.next_addr(&mem);
            b.next_addr(&mem);
        }
        let mut b = b.with_asid(9);
        assert_eq!(b.asid(), 9);
        assert_eq!(b.drawn(), 50);
        let va: Vec<u64> = (0..100)
            .map(|_| a.next_addr(&mem) & ((1 << 40) - 1))
            .collect();
        let vb: Vec<u64> = (0..100)
            .map(|_| {
                let addr = b.next_addr(&mem);
                assert_eq!(addr >> 40, 9, "remapped asid in high bits");
                addr & ((1 << 40) - 1)
            })
            .collect();
        assert_eq!(va, vb, "offsets continue identically after the remap");
    }
}
