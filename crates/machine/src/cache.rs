//! Set-associative cache model.
//!
//! The interference phenomena the paper studies (Section 3.4: multiple copies
//! of 429.mcf degrading each other through the shared L3, SMT siblings
//! thrashing a shared L2) require caches with real capacity and replacement
//! behaviour — a miss-rate formula per task cannot exhibit *cross-task*
//! contention. This module implements a classic set-associative LRU cache and
//! the three-level hierarchy lookup used by [`crate::Machine`].
//!
//! Tags carry the full (address-space-qualified) line address, so two tasks
//! touching the same virtual addresses still conflict only through capacity,
//! never through aliasing.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// Convenience constructor with sizes in KiB.
    pub fn kib(size_kib: u64, ways: u32, line_bytes: u32) -> Self {
        CacheGeometry {
            size_bytes: size_kib * 1024,
            ways,
            line_bytes,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// Set counts need not be powers of two (the 12 MB L3 of the Xeon E5640
    /// has 12288 sets); lines are mapped to sets by modulo.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways/line, a non-power-of-
    /// two line size, or capacity not a multiple of `ways * line_bytes`).
    pub fn num_sets(&self) -> u64 {
        assert!(
            self.ways > 0 && self.line_bytes > 0,
            "degenerate cache geometry"
        );
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let per_set = self.ways as u64 * self.line_bytes as u64;
        assert!(
            self.size_bytes.is_multiple_of(per_set),
            "capacity {} not a multiple of ways*line {}",
            self.size_bytes,
            per_set
        );
        self.size_bytes / per_set
    }

    pub fn size_kib(&self) -> u64 {
        self.size_bytes / 1024
    }
}

/// Which level of the hierarchy an access was served from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum CacheLevel {
    L1,
    L2,
    L3,
    Memory,
}

/// Result of one address walked through a [`crate::machine::Machine`]
/// hierarchy: the level that finally supplied the data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    pub served_by: CacheLevel,
}

impl AccessOutcome {
    pub fn missed_l1(&self) -> bool {
        self.served_by > CacheLevel::L1
    }
    pub fn missed_l2(&self) -> bool {
        self.served_by > CacheLevel::L2
    }
    pub fn missed_l3(&self) -> bool {
        self.served_by > CacheLevel::L3
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Stores 64-bit *line* tags (already shifted by the line size and qualified
/// with the owning task's address-space id by the caller). `u64::MAX` is
/// reserved as the invalid tag.
///
/// The tag array is allocated **lazily, on the first access**: a machine
/// whose workload never touches memory (the cluster bench's pure-compute
/// jobs, any `loads_per_insn == 0` profile) carries the geometry but none
/// of the `sets × ways × 8` bytes — at fleet scale that is hundreds of KiB
/// per simulated machine that is never paid. An untouched cache behaves
/// exactly like an all-invalid one: every probe misses, no lines resident.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    line_shift: u32,
    num_sets: u64,
    ways: usize,
    /// `sets * ways` tags, LRU-ordered within each set: index 0 is MRU.
    /// Empty until the first [`SetAssocCache::access`].
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.num_sets();
        let ways = geometry.ways as usize;
        SetAssocCache {
            geometry,
            line_shift: geometry.line_bytes.trailing_zeros(),
            num_sets: sets,
            ways,
            tags: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Translate a byte address to its line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Access the line containing `addr` (byte address); on miss, fill it.
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        debug_assert_ne!(line, INVALID, "reserved tag");
        if self.tags.is_empty() {
            // First touch: materialize the tag array.
            self.tags = vec![INVALID; self.num_sets as usize * self.ways];
        }
        let set = (line % self.num_sets) as usize;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];

        match slots.iter().position(|&t| t == line) {
            Some(0) => {
                self.hits += 1;
                true
            }
            Some(pos) => {
                // Move to MRU position; order of the others is preserved.
                slots[..=pos].rotate_right(1);
                self.hits += 1;
                true
            }
            None => {
                // Evict LRU (last slot) by shifting everything down.
                slots.rotate_right(1);
                slots[0] = line;
                self.misses += 1;
                false
            }
        }
    }

    /// Is `addr`'s line currently resident? Does not touch LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        if self.tags.is_empty() {
            return false;
        }
        let line = self.line_of(addr);
        let set = (line % self.num_sets) as usize;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&line)
    }

    /// Lifetime (hits, misses) over all accesses.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of valid (filled) lines — useful for warmup assertions.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }

    /// Drop all contents and statistics — including the tag array itself,
    /// returning the cache to its unallocated (lazy) state.
    pub fn flush(&mut self) {
        self.tags = Vec::new();
        self.hits = 0;
        self.misses = 0;
    }

    /// Heap bytes currently held by the tag array (0 until first access).
    pub fn allocated_bytes(&self) -> usize {
        self.tags.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        SetAssocCache::new(CacheGeometry {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(CacheGeometry::kib(32, 8, 64).num_sets(), 64); // Nehalem L1D
        assert_eq!(CacheGeometry::kib(256, 8, 64).num_sets(), 512); // Nehalem L2
        assert_eq!(CacheGeometry::kib(8192, 16, 64).num_sets(), 8192); // Nehalem L3
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bad_geometry_panics() {
        CacheGeometry {
            size_bytes: 1000,
            ways: 2,
            line_bytes: 64,
        }
        .num_sets();
    }

    #[test]
    fn non_power_of_two_set_count_is_allowed() {
        // The E5640's 12 MB L3: 12288 sets.
        let g = CacheGeometry::kib(12 * 1024, 16, 64);
        assert_eq!(g.num_sets(), 12288);
        let mut c = SetAssocCache::new(g);
        assert!(!c.access(0));
        assert!(c.access(0));
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    #[allow(clippy::erasing_op)] // 0 * 64 spells out the line-address arithmetic
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0: line addresses 0, 4, 8 (set = line & 3).
        let a = 0u64 * 64;
        let b = 4u64 * 64;
        let d = 8u64 * 64;
        c.access(a); // [a]
        c.access(b); // [b, a]
        c.access(a); // [a, b]  — a is MRU now
        c.access(d); // evicts b → [d, a]
        assert!(c.probe(a), "a was MRU, must survive");
        assert!(!c.probe(b), "b was LRU, must be evicted");
        assert!(c.probe(d));
    }

    #[test]
    fn capacity_working_set_fits() {
        let mut c = tiny();
        // 8 distinct lines = exactly capacity; a second sweep in the same
        // order hits only if each set holds its 2 lines (true for uniform
        // mapping 0..8 over 4 sets × 2 ways).
        for i in 0..8u64 {
            c.access(i * 64);
        }
        for i in 0..8u64 {
            assert!(c.access(i * 64), "line {i} should be resident");
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn oversized_working_set_thrashes() {
        let mut c = tiny();
        // 12 lines -> 3 lines per 2-way set, cyclic sweep = 100% miss under LRU.
        for _ in 0..4 {
            for i in 0..12u64 {
                c.access(i * 64);
            }
        }
        let (hits, misses) = c.stats();
        assert_eq!(hits, 0, "cyclic over-capacity sweep never hits under LRU");
        assert_eq!(misses, 48);
    }

    #[test]
    #[allow(clippy::identity_op)] // `asid | 0` spells out the tag composition
    fn distinct_address_spaces_conflict_not_alias() {
        let mut c = tiny();
        let asid0 = 0u64 << 40;
        let asid1 = 1u64 << 40;
        c.access(asid0 | 0);
        // Same virtual line in another address space is a different tag...
        assert!(!c.access(asid1 | 0));
        // ...but both can be resident at once (2-way set).
        assert!(c.probe(asid0 | 0));
        assert!(c.probe(asid1 | 0));
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.stats(), (0, 0));
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.probe(0));
    }

    #[test]
    fn tags_allocate_lazily_on_first_access() {
        let mut c = tiny();
        assert_eq!(c.allocated_bytes(), 0, "untouched cache owns no tags");
        assert!(!c.probe(0));
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0), "first access is a cold miss");
        assert_eq!(c.allocated_bytes(), 8 * 8, "4 sets x 2 ways x 8 bytes");
        assert!(c.probe(0));
        c.flush();
        assert_eq!(c.allocated_bytes(), 0, "flush deallocates, not just fills");
    }
}
