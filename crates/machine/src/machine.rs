//! The machine itself: topology + caches + the slice execution engine.
//!
//! The kernel drives the machine in *epochs*: it picks, per processing unit,
//! the task to run and a cycle budget, and calls [`Machine::execute_epoch`]
//! with all concurrently-running slices at once. Executing them *jointly* is
//! what makes contention real: every slice's sampled address stream is
//! interleaved — in proportion to its access rate — through the same L1/L2
//! (per physical core, shared by SMT siblings) and L3 (per socket, shared by
//! all its cores) before any CPI is computed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::access::TaskStream;
use crate::cache::{CacheLevel, SetAssocCache};
use crate::config::MachineConfig;
use crate::exec::{ExecOutcome, ExecProfile, FpUnit};
use crate::pmu::{EventCounts, HwEvent};
use crate::topology::{PuId, Topology};

/// One task's share of an epoch on one PU.
pub struct SliceRequest<'a> {
    pub pu: PuId,
    pub profile: &'a ExecProfile,
    pub stream: &'a mut TaskStream,
    /// Cycle budget for this slice.
    pub cycles: u64,
    /// Stop early after retiring this many instructions (used by the kernel
    /// to respect phase boundaries).
    pub max_instructions: Option<u64>,
    /// CPI observed for this task in its previous slice; used to estimate
    /// relative access rates for stream interleaving. `0.0` = unknown.
    pub cpi_hint: f64,
}

impl<'a> SliceRequest<'a> {
    pub fn new(pu: PuId, profile: &'a ExecProfile, stream: &'a mut TaskStream) -> Self {
        SliceRequest {
            pu,
            profile,
            stream,
            cycles: 0,
            max_instructions: None,
            cpi_hint: 0.0,
        }
    }

    pub fn cycles(mut self, c: u64) -> Self {
        self.cycles = c;
        self
    }

    pub fn max_instructions(mut self, n: u64) -> Self {
        self.max_instructions = Some(n);
        self
    }

    pub fn cpi_hint(mut self, cpi: f64) -> Self {
        self.cpi_hint = cpi;
        self
    }
}

/// Number of co-running slices beyond which the joint cache-sampling budget
/// stops growing: an epoch's total samples are
/// `cache_samples_per_slice * min(slices, JOINT_SAMPLE_SLICES)`, split
/// proportionally to each slice's estimated access rate.
pub const JOINT_SAMPLE_SLICES: usize = 4;

/// Per-slice cache sampling tallies.
#[derive(Clone, Copy, Default)]
struct SampleStats {
    sampled: u64,
    l1_miss: u64,
    l2_miss: u64,
    l3_miss: u64,
    penalty_sum: f64,
}

/// The simulated machine.
///
/// The configuration is held behind an [`Arc`]: a fleet of identical
/// simulated machines (the cluster bench instantiates 1000) shares one
/// `MachineConfig` allocation — topology tree, uarch tables and all —
/// instead of deep-copying it per machine.
pub struct Machine {
    cfg: Arc<MachineConfig>,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: Vec<SetAssocCache>,
    noise_rng: SmallRng,
    epochs_executed: u64,
}

impl Machine {
    pub fn new(cfg: impl Into<Arc<MachineConfig>>, seed: u64) -> Self {
        let cfg = cfg.into();
        let cores = cfg.topology.num_cores();
        let sockets = cfg.topology.sockets();
        Machine {
            l1: (0..cores)
                .map(|_| SetAssocCache::new(cfg.uarch.l1d))
                .collect(),
            l2: (0..cores)
                .map(|_| SetAssocCache::new(cfg.uarch.l2))
                .collect(),
            l3: (0..sockets)
                .map(|_| SetAssocCache::new(cfg.uarch.l3))
                .collect(),
            noise_rng: SmallRng::seed_from_u64(seed ^ 0x6d61_6368_696e_6531),
            cfg,
            epochs_executed: 0,
        }
    }

    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The shared configuration handle (a clone is a refcount bump).
    pub fn shared_config(&self) -> Arc<MachineConfig> {
        Arc::clone(&self.cfg)
    }

    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    /// hwloc-style rendering (the paper's Fig 11 (c)).
    pub fn render_topology(&self) -> String {
        let u = &self.cfg.uarch;
        self.cfg
            .topology
            .render(u.l1d.size_kib(), u.l2.size_kib(), u.l3.size_kib())
    }

    pub fn epochs_executed(&self) -> u64 {
        self.epochs_executed
    }

    /// Lifetime (hits, misses) of a socket's shared L3 — for tests and
    /// ablations.
    pub fn l3_stats(&self, socket: usize) -> (u64, u64) {
        self.l3[socket].stats()
    }

    /// Drop all cache contents (used between independent experiments sharing
    /// one machine).
    pub fn flush_caches(&mut self) {
        for c in self
            .l1
            .iter_mut()
            .chain(self.l2.iter_mut())
            .chain(self.l3.iter_mut())
        {
            c.flush();
        }
    }

    /// Execute one epoch: all slices run concurrently on their PUs.
    ///
    /// # Panics
    /// Panics if two slices name the same PU, or a PU is out of range.
    pub fn execute_epoch(&mut self, slices: &mut [SliceRequest<'_>]) -> Vec<ExecOutcome> {
        self.epochs_executed += 1;
        let n = slices.len();
        if n == 0 {
            return Vec::new();
        }
        // Refcount bump, not a deep copy: keeps the config borrowable
        // alongside the `&mut self` cache sampling below.
        let cfg = Arc::clone(&self.cfg);
        let topo = &cfg.topology;

        // --- sanity: one slice per PU ---
        {
            let mut seen = vec![false; topo.num_pus()];
            for s in slices.iter() {
                assert!(s.pu.0 < topo.num_pus(), "PU {} out of range", s.pu.0);
                assert!(!seen[s.pu.0], "two slices on PU {}", s.pu.0);
                seen[s.pu.0] = true;
            }
        }

        // --- which physical cores have both SMT siblings busy? ---
        let mut busy_on_core = vec![0u32; topo.num_cores()];
        for s in slices.iter() {
            busy_on_core[topo.core_of(s.pu).0] += 1;
        }

        // --- phase 1: jointly sample the cache hierarchy ---
        let stats = self.sample_caches(slices, topo);

        // --- phase 2: analytic CPI and event accounting per slice ---
        let mut out = Vec::with_capacity(n);
        for (i, s) in slices.iter_mut().enumerate() {
            let st = &stats[i];
            let u = &cfg.uarch;
            let p = s.profile;

            let smt_busy = busy_on_core[topo.core_of(s.pu).0] > 1;
            let mut base = p.base_cpi.max(u.min_cpi());
            if smt_busy {
                base /= u.smt_share;
            }

            let apc = p.accesses_per_insn();
            let avg_penalty = if st.sampled > 0 {
                st.penalty_sum / st.sampled as f64
            } else {
                0.0
            };
            let mem_cpi = apc * avg_penalty / p.mlp.max(0.25);
            let branch_cpi = p.branches_per_insn * p.branch_miss_rate * u.branch_penalty;
            let assist_frac = assist_fraction(p, &u.assists);
            let assist_cpi = p.fp_per_insn * assist_frac * u.fp_assist_cost;

            let mut cpi = base + mem_cpi + branch_cpi + assist_cpi;
            if cfg.cpi_noise > 0.0 {
                // Cheap symmetric noise: mean 0, bounded, deterministic.
                let g: f64 = self.noise_rng.random::<f64>() + self.noise_rng.random::<f64>()
                    - self.noise_rng.random::<f64>()
                    - self.noise_rng.random::<f64>();
                cpi *= (1.0 + cfg.cpi_noise * g).max(0.2);
            }

            let mut instructions = (s.cycles as f64 / cpi).floor() as u64;
            let mut cycles_used = s.cycles;
            if let Some(cap) = s.max_instructions {
                if instructions > cap {
                    instructions = cap;
                    cycles_used = ((instructions as f64 * cpi).ceil() as u64).min(s.cycles);
                }
            }

            out.push(build_outcome(
                p,
                st,
                instructions,
                cycles_used,
                assist_frac,
                mem_cpi,
            ));
        }
        out
    }

    /// Interleave every slice's sampled address stream through the shared
    /// hierarchy, in proportion to its estimated access rate, and collect
    /// per-slice hit/miss tallies.
    ///
    /// The joint sample budget grows with the number of co-running slices
    /// only up to [`JOINT_SAMPLE_SLICES`]: contention fidelity comes from
    /// *interleaving* the streams, not from the raw sample count, and past
    /// a few co-runners the per-epoch estimates are already averaged over
    /// many epochs by the seconds-scale observation granularity. Capping
    /// the budget makes heavily co-scheduled epochs (the Fig 10 data-center
    /// burst runs 7 jobs at once) proportionally cheaper instead of
    /// linearly more expensive.
    fn sample_caches(
        &mut self,
        slices: &mut [SliceRequest<'_>],
        topo: &Topology,
    ) -> Vec<SampleStats> {
        let n = slices.len();
        let k_base = self.cfg.cache_samples_per_slice as f64;
        let u = &self.cfg.uarch;

        // Expected accesses per slice, for proportional sample allocation.
        let weights: Vec<f64> = slices
            .iter()
            .map(|s| {
                let cpi = if s.cpi_hint > 0.0 {
                    s.cpi_hint
                } else {
                    s.profile.base_cpi.max(0.1)
                };
                let apc = s.profile.accesses_per_insn();
                (s.cycles as f64 / cpi * apc).max(0.0)
            })
            .collect();
        let total_w: f64 = weights.iter().sum();
        if total_w <= 0.0 {
            return vec![SampleStats::default(); n];
        }
        let k_total = k_base * (n as f64).min(JOINT_SAMPLE_SLICES as f64);
        let quotas: Vec<u64> = weights
            .iter()
            .map(|w| ((k_total * w / total_w).round() as u64).clamp(16, (k_total * 4.0) as u64))
            .collect();

        // Event-driven merge on virtual epoch time in [0, 1): slice i's j-th
        // access happens at (j + 0.5) / quota_i. BinaryHeap is a max-heap, so
        // order by Reverse of a monotone integer key derived from the time.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        struct Key(u64, usize); // (scaled virtual time, slice index)
        let scale = 1u64 << 40;
        let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::with_capacity(n);
        for (i, &q) in quotas.iter().enumerate() {
            if q > 0 {
                let t = (0.5 / q as f64 * scale as f64) as u64;
                heap.push(Reverse(Key(t, i)));
            }
        }
        let mut emitted = vec![0u64; n];
        let mut stats = vec![SampleStats::default(); n];

        while let Some(Reverse(Key(_, i))) = heap.pop() {
            let s = &mut slices[i];
            let core = topo.core_of(s.pu).0;
            let socket = topo.socket_of(s.pu).0;
            let addr = s.stream.next_addr(&s.profile.mem);

            let level = if self.l1[core].access(addr) {
                CacheLevel::L1
            } else if self.l2[core].access(addr) {
                CacheLevel::L2
            } else if self.l3[socket].access(addr) {
                CacheLevel::L3
            } else {
                CacheLevel::Memory
            };

            let st = &mut stats[i];
            st.sampled += 1;
            match level {
                CacheLevel::L1 => {}
                CacheLevel::L2 => {
                    st.l1_miss += 1;
                    st.penalty_sum += u.lat_l2;
                }
                CacheLevel::L3 => {
                    st.l1_miss += 1;
                    st.l2_miss += 1;
                    st.penalty_sum += u.lat_l3;
                }
                CacheLevel::Memory => {
                    st.l1_miss += 1;
                    st.l2_miss += 1;
                    st.l3_miss += 1;
                    st.penalty_sum += u.lat_mem;
                }
            }

            emitted[i] += 1;
            if emitted[i] < quotas[i] {
                let t = ((emitted[i] as f64 + 0.5) / quotas[i] as f64 * scale as f64) as u64;
                heap.push(Reverse(Key(t, i)));
            }
        }
        stats
    }
}

/// Fraction of this profile's FP ops that take a micro-code assist on a
/// machine with the given triggers.
fn assist_fraction(p: &ExecProfile, t: &crate::config::AssistTriggers) -> f64 {
    let nonfinite = match p.fp_unit {
        FpUnit::X87 => {
            if t.x87_nonfinite {
                p.nonfinite_frac
            } else {
                0.0
            }
        }
        FpUnit::Sse | FpUnit::Generic => {
            if t.sse_nonfinite {
                p.nonfinite_frac
            } else {
                0.0
            }
        }
    };
    let denormal = if t.denormal { p.denormal_frac } else { 0.0 };
    (nonfinite + denormal).min(1.0)
}

fn build_outcome(
    p: &ExecProfile,
    st: &SampleStats,
    instructions: u64,
    cycles: u64,
    assist_frac: f64,
    mem_cpi: f64,
) -> ExecOutcome {
    let insn_f = instructions as f64;
    let rate = |num: u64| {
        if st.sampled == 0 {
            0.0
        } else {
            num as f64 / st.sampled as f64
        }
    };
    let accesses = p.accesses_per_insn() * insn_f;

    let mut ev = EventCounts::ZERO;
    ev.set(HwEvent::Cycles, cycles);
    ev.set(HwEvent::Instructions, instructions);
    ev.set(HwEvent::RefCycles, cycles);

    let loads = (p.loads_per_insn * insn_f).round() as u64;
    let stores = (p.stores_per_insn * insn_f).round() as u64;
    ev.set(HwEvent::Loads, loads);
    ev.set(HwEvent::Stores, stores);

    // Hierarchy-consistent miss counts: L3 misses ⊆ L2 misses ⊆ L1 misses ⊆ accesses.
    let l1m = (rate(st.l1_miss) * accesses).round() as u64;
    let l2m = ((rate(st.l2_miss) * accesses).round() as u64).min(l1m);
    let l3m = ((rate(st.l3_miss) * accesses).round() as u64).min(l2m);
    ev.set(HwEvent::L1dMisses, l1m);
    ev.set(HwEvent::L2Misses, l2m);
    ev.set(HwEvent::CacheReferences, l2m); // accesses that reach the LLC
    ev.set(HwEvent::CacheMisses, l3m);

    let branches = (p.branches_per_insn * insn_f).round() as u64;
    ev.set(HwEvent::BranchInstructions, branches);
    ev.set(
        HwEvent::BranchMisses,
        ((p.branch_miss_rate * branches as f64).round() as u64).min(branches),
    );

    let fp = (p.fp_per_insn * insn_f).round() as u64;
    ev.set(HwEvent::FpOps, fp);
    ev.set(
        HwEvent::FpAssists,
        ((assist_frac * fp as f64).round() as u64).min(fp),
    );

    ev.set(
        HwEvent::StallCyclesMem,
        ((mem_cpi * insn_f).round() as u64).min(cycles),
    );

    ExecOutcome {
        cycles,
        instructions,
        events: ev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemoryBehavior;

    fn machine() -> Machine {
        Machine::new(MachineConfig::nehalem_w3550().noiseless(), 7)
    }

    fn small_profile(name: &str, footprint: u64) -> ExecProfile {
        ExecProfile::builder(name)
            .base_cpi(0.75)
            .branches(0.18, 0.0) // no mispredictions: isolate memory effects
            .memory(MemoryBehavior::uniform(footprint))
            .build()
    }

    /// Epochs needed to stream a footprint through sampled warmup, with slack.
    fn warm_epochs(m: &Machine, footprint: u64, co_runners: u64) -> u64 {
        let lines = footprint / 64;
        let per_epoch = m.config().cache_samples_per_slice as u64;
        (lines * co_runners * 8 / per_epoch).max(4)
    }

    /// Run `profile` alone on PU `pu` for `cycles`, warming first.
    fn run_alone(m: &mut Machine, pu: usize, profile: &ExecProfile, cycles: u64) -> ExecOutcome {
        let mut stream = TaskStream::new(pu as u64 + 1, 1234 + pu as u64);
        for _ in 0..warm_epochs(m, profile.mem.footprint(), 1) {
            let mut req = [SliceRequest::new(PuId(pu), profile, &mut stream).cycles(cycles)];
            m.execute_epoch(&mut req);
        }
        let mut req = [SliceRequest::new(PuId(pu), profile, &mut stream).cycles(cycles)];
        m.execute_epoch(&mut req)[0]
    }

    #[test]
    fn cache_resident_workload_hits_near_base_cpi() {
        let mut m = machine();
        let p = small_profile("tiny", 16 * 1024); // fits L1
        let o = run_alone(&mut m, 0, &p, 10_000_000);
        let ipc = o.ipc();
        assert!(
            (1.25..=1.34).contains(&ipc),
            "L1-resident workload should run at ~1/base_cpi = 1.33, got {ipc}"
        );
        // Consistency of the event vector.
        assert_eq!(o.events.get(HwEvent::Cycles), o.cycles);
        assert_eq!(o.events.get(HwEvent::Instructions), o.instructions);
        assert!(o.events.get(HwEvent::CacheMisses) <= o.events.get(HwEvent::CacheReferences));
        assert!(o.events.get(HwEvent::L1dMisses) >= o.events.get(HwEvent::L2Misses));
    }

    #[test]
    fn bigger_footprints_mean_lower_ipc() {
        let mut m = machine();
        let small = run_alone(&mut m, 0, &small_profile("s", 16 << 10), 10_000_000);
        m.flush_caches();
        let medium = run_alone(&mut m, 0, &small_profile("m", 2 << 20), 10_000_000);
        m.flush_caches();
        let huge = run_alone(&mut m, 0, &small_profile("h", 256 << 20), 10_000_000);
        assert!(
            small.ipc() > medium.ipc() && medium.ipc() > huge.ipc(),
            "IPC must degrade with footprint: {} > {} > {}",
            small.ipc(),
            medium.ipc(),
            huge.ipc()
        );
        assert!(huge.events.get(HwEvent::CacheMisses) > medium.events.get(HwEvent::CacheMisses));
    }

    #[test]
    fn max_instructions_caps_the_slice() {
        let mut m = machine();
        let p = small_profile("capped", 16 << 10);
        let mut stream = TaskStream::new(1, 5);
        let mut req = [SliceRequest::new(PuId(0), &p, &mut stream)
            .cycles(1_000_000)
            .max_instructions(1000)];
        let o = m.execute_epoch(&mut req)[0];
        assert_eq!(o.instructions, 1000);
        assert!(
            o.cycles < 1_000_000,
            "cycles {} should shrink with the cap",
            o.cycles
        );
        assert!(
            o.cycles >= 500,
            "1000 insns can't take fewer than min_cpi cycles"
        );
    }

    #[test]
    fn smt_siblings_slow_each_other_down() {
        let mut m = machine();
        let p = small_profile("smt", 16 << 10);
        let alone = run_alone(&mut m, 0, &p, 10_000_000);

        // Same workload on PUs 0 and 4 (SMT siblings on core 0).
        let mut s0 = TaskStream::new(10, 1);
        let mut s1 = TaskStream::new(11, 2);
        for _ in 0..warm_epochs(&m, 2 * p.mem.footprint(), 2) {
            let mut reqs = [
                SliceRequest::new(PuId(0), &p, &mut s0).cycles(10_000_000),
                SliceRequest::new(PuId(4), &p, &mut s1).cycles(10_000_000),
            ];
            m.execute_epoch(&mut reqs);
        }
        let mut reqs = [
            SliceRequest::new(PuId(0), &p, &mut s0).cycles(10_000_000),
            SliceRequest::new(PuId(4), &p, &mut s1).cycles(10_000_000),
        ];
        let both = m.execute_epoch(&mut reqs);
        let ratio = both[0].ipc() / alone.ipc();
        assert!(
            (0.5..0.8).contains(&ratio),
            "SMT sibling should retain ~smt_share of solo IPC, got {ratio}"
        );
    }

    #[test]
    fn different_cores_no_smt_penalty_for_small_sets() {
        let mut m = machine();
        let p = small_profile("pair", 16 << 10);
        let alone = run_alone(&mut m, 0, &p, 10_000_000);
        let mut s0 = TaskStream::new(10, 1);
        let mut s1 = TaskStream::new(11, 2);
        // PUs 0 and 1 are different physical cores; L1-resident sets don't
        // contend in L3.
        for _ in 0..8 {
            let mut reqs = [
                SliceRequest::new(PuId(0), &p, &mut s0).cycles(10_000_000),
                SliceRequest::new(PuId(1), &p, &mut s1).cycles(10_000_000),
            ];
            m.execute_epoch(&mut reqs);
        }
        let mut reqs = [
            SliceRequest::new(PuId(0), &p, &mut s0).cycles(10_000_000),
            SliceRequest::new(PuId(1), &p, &mut s1).cycles(10_000_000),
        ];
        let both = m.execute_epoch(&mut reqs);
        let ratio = both[0].ipc() / alone.ipc();
        assert!(
            ratio > 0.95,
            "no SMT penalty across cores, got ratio {ratio}"
        );
    }

    #[test]
    fn shared_l3_contention_emerges() {
        // Two tasks whose warm tier is ~60% of L3 each: alone it fits,
        // together they thrash — the paper's Fig 11 (a)/(b) mechanism.
        let cfg = MachineConfig::nehalem_w3550().noiseless();
        let warm = (cfg.uarch.l3.size_bytes as f64 * 0.6) as u64;
        let p = ExecProfile::builder("mcf-ish")
            .base_cpi(0.9)
            .loads_per_insn(0.35)
            .stores_per_insn(0.1)
            .memory(MemoryBehavior::uniform(warm))
            .mlp(1.5)
            .build();

        let mut m = Machine::new(cfg, 3);
        let alone = run_alone(&mut m, 0, &p, 50_000_000);

        m.flush_caches();
        let mut s0 = TaskStream::new(20, 1);
        let mut s1 = TaskStream::new(21, 2);
        let run_pair = |m: &mut Machine, s0: &mut TaskStream, s1: &mut TaskStream| {
            let mut reqs = [
                SliceRequest::new(PuId(0), &p, s0).cycles(50_000_000),
                SliceRequest::new(PuId(1), &p, s1).cycles(50_000_000),
            ];
            m.execute_epoch(&mut reqs)
        };
        for _ in 0..warm_epochs(&m, 2 * warm, 2) {
            run_pair(&mut m, &mut s0, &mut s1);
        }
        let both = run_pair(&mut m, &mut s0, &mut s1);

        let solo_missrate = alone.events.get(HwEvent::CacheMisses) as f64
            / alone.events.get(HwEvent::Instructions) as f64;
        let pair_missrate = both[0].events.get(HwEvent::CacheMisses) as f64
            / both[0].events.get(HwEvent::Instructions) as f64;
        assert!(
            pair_missrate > solo_missrate * 1.5,
            "shared-L3 thrash: pair LLC missrate {pair_missrate} vs solo {solo_missrate}"
        );
        assert!(
            both[0].ipc() < alone.ipc() * 0.97,
            "co-runner must cost IPC"
        );
    }

    #[test]
    fn x87_assists_collapse_ipc_but_sse_does_not() {
        let mut m = machine();
        let mk = |unit: FpUnit, nonfinite: f64| {
            ExecProfile::builder("fp")
                .base_cpi(0.75)
                .loads_per_insn(0.0)
                .stores_per_insn(0.0)
                .branches(0.25, 0.0)
                .fp(0.25, unit)
                .operand_classes(nonfinite, 0.0)
                .memory(MemoryBehavior::uniform(4096))
                .build()
        };
        let x87_fin = run_alone(&mut m, 0, &mk(FpUnit::X87, 0.0), 10_000_000);
        let x87_inf = run_alone(&mut m, 1, &mk(FpUnit::X87, 1.0), 10_000_000);
        let sse_inf = run_alone(&mut m, 2, &mk(FpUnit::Sse, 1.0), 10_000_000);
        let slowdown = x87_fin.ipc() / x87_inf.ipc();
        assert!(slowdown > 50.0, "x87 assist slowdown was only {slowdown}x");
        assert!(
            (sse_inf.ipc() / x87_fin.ipc()) > 0.95,
            "SSE must not assist on Inf/NaN (Table 1)"
        );
        assert!(x87_inf.events.get(HwEvent::FpAssists) > 0);
        assert_eq!(sse_inf.events.get(HwEvent::FpAssists), 0);
    }

    #[test]
    fn ppc970_has_no_assist_collapse() {
        let mut m = Machine::new(MachineConfig::ppc970_machine().noiseless(), 9);
        let p = ExecProfile::builder("fp")
            .base_cpi(0.9)
            .branches(0.18, 0.0)
            .fp(0.25, FpUnit::Generic)
            .operand_classes(1.0, 0.0)
            .memory(MemoryBehavior::uniform(4096))
            .build();
        let o = run_alone(&mut m, 0, &p, 10_000_000);
        assert_eq!(o.events.get(HwEvent::FpAssists), 0);
        assert!(
            o.ipc() > 0.9,
            "PPC970 IPC should be unaffected, got {}",
            o.ipc()
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = || {
            let mut m = Machine::new(MachineConfig::nehalem_w3550(), 1234);
            let p = small_profile("d", 1 << 20);
            let mut s = TaskStream::new(1, 42);
            let mut total = EventCounts::ZERO;
            for _ in 0..5 {
                let mut req = [SliceRequest::new(PuId(0), &p, &mut s).cycles(5_000_000)];
                let o = m.execute_epoch(&mut req)[0];
                total.accumulate(&o.events);
            }
            total
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "two slices on PU")]
    fn duplicate_pu_rejected() {
        let mut m = machine();
        let p = small_profile("dup", 4096);
        let mut s0 = TaskStream::new(1, 1);
        let mut s1 = TaskStream::new(2, 2);
        let mut reqs = [
            SliceRequest::new(PuId(0), &p, &mut s0).cycles(1000),
            SliceRequest::new(PuId(0), &p, &mut s1).cycles(1000),
        ];
        m.execute_epoch(&mut reqs);
    }

    #[test]
    fn zero_cycles_zero_outcome() {
        let mut m = machine();
        let p = small_profile("z", 4096);
        let mut s = TaskStream::new(1, 1);
        let mut req = [SliceRequest::new(PuId(0), &p, &mut s).cycles(0)];
        let o = m.execute_epoch(&mut req)[0];
        assert_eq!(o.instructions, 0);
        assert_eq!(o.cycles, 0);
    }
}
