//! The `perf_event` subsystem: counter attributes, file descriptors,
//! per-task virtualized counters, and time-multiplexing.
//!
//! This mirrors the Linux `perf_event_open(2)` interface tiptop is built on
//! (paper §2.3): an observer opens one fd per (event, task); the kernel
//! virtualizes hardware counters across context switches; `read` returns the
//! accumulated count together with `time_enabled`/`time_running` so that
//! user space can scale counts when the PMU had fewer hardware counters than
//! requested events and the kernel had to rotate them.
//!
//! Permission model (paper §2.2, footnote 1): a non-root observer may only
//! open counters on tasks of its own uid — "ability to monitor anybody's
//! process opens the door to side-channel attacks".

use tiptop_machine::pmu::HwEvent;
use tiptop_machine::time::SimDuration;

use crate::task::{Pid, Uid};

/// Generic, architecture-portable events, exactly the set the Linux header
/// provides (`PERF_COUNT_HW_*`) and the paper's default configuration uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GenericEvent {
    CpuCycles,
    Instructions,
    CacheReferences,
    CacheMisses,
    BranchInstructions,
    BranchMisses,
}

impl GenericEvent {
    /// Map the portable event onto this machine's hardware event.
    pub fn to_hw(self) -> HwEvent {
        match self {
            GenericEvent::CpuCycles => HwEvent::Cycles,
            GenericEvent::Instructions => HwEvent::Instructions,
            GenericEvent::CacheReferences => HwEvent::CacheReferences,
            GenericEvent::CacheMisses => HwEvent::CacheMisses,
            GenericEvent::BranchInstructions => HwEvent::BranchInstructions,
            GenericEvent::BranchMisses => HwEvent::BranchMisses,
        }
    }
}

/// Event selector: generic (portable) or raw (target-specific, looked up in
/// "the vendor's architecture manuals" — here, [`HwEvent`] directly).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventSel {
    Generic(GenericEvent),
    Raw(HwEvent),
}

impl EventSel {
    pub fn to_hw(self) -> HwEvent {
        match self {
            EventSel::Generic(g) => g.to_hw(),
            EventSel::Raw(h) => h,
        }
    }
}

/// The `perf_event_attr` struct of the simulated syscall.
#[derive(Clone, Copy, Debug)]
pub struct PerfEventAttr {
    pub event: EventSel,
    /// Open in disabled state; count only after `perf_enable`.
    pub disabled: bool,
}

impl PerfEventAttr {
    pub fn counting(event: EventSel) -> Self {
        PerfEventAttr {
            event,
            disabled: false,
        }
    }

    pub fn generic(g: GenericEvent) -> Self {
        Self::counting(EventSel::Generic(g))
    }

    pub fn raw(h: HwEvent) -> Self {
        Self::counting(EventSel::Raw(h))
    }
}

/// Counter file descriptor returned by `perf_event_open`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PerfFd(pub u64);

/// What `perf_read` returns: the raw accumulated count plus the scaling
/// times. When `time_running < time_enabled` the event was multiplexed and
/// user space should estimate `value * time_enabled / time_running`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PerfValue {
    pub value: u64,
    pub time_enabled: SimDuration,
    pub time_running: SimDuration,
}

impl PerfValue {
    /// Multiplexing-scaled estimate of the true count.
    pub fn scaled(&self) -> u64 {
        if self.time_running.is_zero() || self.time_running == self.time_enabled {
            self.value
        } else {
            ((self.value as u128 * self.time_enabled.as_nanos() as u128)
                / self.time_running.as_nanos() as u128) as u64
        }
    }
}

/// Kernel-internal counter state.
#[derive(Clone, Debug)]
pub struct PerfCounter {
    pub fd: PerfFd,
    /// Task being observed.
    pub task: Pid,
    /// Observer that opened the fd (for accounting/limits).
    pub owner: Uid,
    pub hw: HwEvent,
    pub enabled: bool,
    pub count: u64,
    pub time_enabled: SimDuration,
    pub time_running: SimDuration,
}

/// Maximum counters one observer may hold open at once (per-process fd-table
/// stand-in; exceeding it yields `EMFILE`).
pub const MAX_FDS_PER_OBSERVER: usize = 4096;

/// Given a task's distinct requested programmable (non-fixed) events in a
/// deterministic order, and the PMU's programmable counter budget, return
/// the *active window* of events for this epoch. Rotation advances one event
/// per epoch, like the kernel's multiplexing tick.
pub fn multiplex_active(events: &[HwEvent], budget: usize, epoch_index: u64) -> Vec<HwEvent> {
    let mut out = Vec::new();
    multiplex_active_into(events, budget, epoch_index, &mut out);
    out
}

/// Allocation-free variant of [`multiplex_active`]: writes the active set
/// into `out` (cleared first), so a hot caller can reuse one buffer across
/// every task and epoch.
pub fn multiplex_active_into(
    events: &[HwEvent],
    budget: usize,
    epoch_index: u64,
    out: &mut Vec<HwEvent>,
) {
    out.clear();
    if events.len() <= budget {
        out.extend_from_slice(events);
        return;
    }
    let n = events.len();
    let start = (epoch_index as usize) % n;
    out.extend((0..budget).map(|i| events[(start + i) % n]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_events_map_to_hw() {
        assert_eq!(GenericEvent::CpuCycles.to_hw(), HwEvent::Cycles);
        assert_eq!(GenericEvent::CacheMisses.to_hw(), HwEvent::CacheMisses);
        assert_eq!(
            EventSel::Raw(HwEvent::FpAssists).to_hw(),
            HwEvent::FpAssists,
            "raw events pass through"
        );
    }

    #[test]
    fn scaled_value_extrapolates_multiplexed_counts() {
        let v = PerfValue {
            value: 300,
            time_enabled: SimDuration::from_millis(100),
            time_running: SimDuration::from_millis(25),
        };
        assert_eq!(v.scaled(), 1200);
    }

    #[test]
    fn scaled_value_identity_when_fully_counted() {
        let v = PerfValue {
            value: 300,
            time_enabled: SimDuration::from_millis(100),
            time_running: SimDuration::from_millis(100),
        };
        assert_eq!(v.scaled(), 300);
    }

    #[test]
    fn scaled_value_zero_running_is_raw() {
        let v = PerfValue {
            value: 0,
            time_enabled: SimDuration::from_millis(100),
            time_running: SimDuration::ZERO,
        };
        assert_eq!(v.scaled(), 0);
    }

    #[test]
    fn multiplex_all_fit() {
        let evs = [HwEvent::CacheMisses, HwEvent::BranchMisses];
        assert_eq!(multiplex_active(&evs, 4, 17), evs.to_vec());
    }

    #[test]
    fn multiplex_rotates_fairly() {
        let evs = [
            HwEvent::CacheMisses,
            HwEvent::BranchMisses,
            HwEvent::L1dMisses,
            HwEvent::FpAssists,
        ];
        // Budget 2, 4 events: over 4 consecutive epochs every event must be
        // active exactly twice.
        let mut tally = std::collections::HashMap::new();
        for epoch in 0..4 {
            for e in multiplex_active(&evs, 2, epoch) {
                *tally.entry(e).or_insert(0u32) += 1;
            }
        }
        for e in evs {
            assert_eq!(tally[&e], 2, "{e:?} under/over-scheduled");
        }
    }
}
