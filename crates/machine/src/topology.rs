//! Machine topology: sockets → physical cores → processing units (PUs).
//!
//! A *PU* is a hardware thread (what Linux calls a logical CPU). With SMT
//! enabled, two PUs share one physical core's pipelines and private L1/L2
//! caches; all cores of a socket share that socket's L3. PU numbering follows
//! the Linux convention used in the paper's Figure 11(c): PU *n* and PU
//! *n + total_cores* are SMT siblings on the same physical core, so on a
//! quad-core machine logical CPUs 0 and 4 share core 0.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Index of a processing unit (hardware thread / logical CPU).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PuId(pub usize);

/// Index of a physical core (owns private L1/L2, hosts 1–2 PUs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Index of a socket (owns a shared L3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct SocketId(pub usize);

/// Static description of the machine's processor layout.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    sockets: usize,
    cores_per_socket: usize,
    smt: usize,
    memory_mb: u64,
}

impl Topology {
    /// Build a topology. `smt` is threads per core (1 = no hyper-threading).
    ///
    /// # Panics
    /// Panics if any dimension is zero or `smt > 2` (the models in the paper
    /// are at most 2-way SMT).
    pub fn new(sockets: usize, cores_per_socket: usize, smt: usize, memory_mb: u64) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0, "empty topology");
        assert!((1..=2).contains(&smt), "smt must be 1 or 2");
        Topology {
            sockets,
            cores_per_socket,
            smt,
            memory_mb,
        }
    }

    pub fn sockets(&self) -> usize {
        self.sockets
    }

    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Threads per physical core (1 or 2).
    pub fn smt(&self) -> usize {
        self.smt
    }

    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Total number of physical cores.
    pub fn num_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total number of PUs (logical CPUs).
    pub fn num_pus(&self) -> usize {
        self.num_cores() * self.smt
    }

    /// Physical core hosting `pu`.
    ///
    /// Linux-style numbering: the second SMT thread of core *c* is PU
    /// `c + num_cores`.
    pub fn core_of(&self, pu: PuId) -> CoreId {
        assert!(pu.0 < self.num_pus(), "PU {} out of range", pu.0);
        CoreId(pu.0 % self.num_cores())
    }

    /// Socket owning `core`.
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        assert!(core.0 < self.num_cores(), "core {} out of range", core.0);
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Socket owning `pu`.
    pub fn socket_of(&self, pu: PuId) -> SocketId {
        self.socket_of_core(self.core_of(pu))
    }

    /// All PUs hosted by `core`, in increasing order.
    pub fn pus_of_core(&self, core: CoreId) -> Vec<PuId> {
        assert!(core.0 < self.num_cores(), "core {} out of range", core.0);
        (0..self.smt)
            .map(|t| PuId(core.0 + t * self.num_cores()))
            .collect()
    }

    /// The SMT sibling of `pu`, if the machine has SMT.
    pub fn smt_sibling(&self, pu: PuId) -> Option<PuId> {
        if self.smt == 1 {
            return None;
        }
        let n = self.num_cores();
        Some(if pu.0 < n {
            PuId(pu.0 + n)
        } else {
            PuId(pu.0 - n)
        })
    }

    /// Iterate over all PU ids.
    pub fn pus(&self) -> impl Iterator<Item = PuId> {
        (0..self.num_pus()).map(PuId)
    }

    /// Iterate over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.num_cores()).map(CoreId)
    }

    /// hwloc-style ASCII rendering, in the spirit of the paper's Figure 11(c).
    ///
    /// `l1_kb`/`l2_kb`/`l3_kb` are the cache sizes to annotate (the topology
    /// itself does not own cache geometry; the [`crate::Machine`] passes its
    /// configuration in).
    pub fn render(&self, l1_kb: u64, l2_kb: u64, l3_kb: u64) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Machine ({}MB)", self.memory_mb);
        for s in 0..self.sockets {
            let _ = writeln!(out, "  Socket#{s}");
            let _ = writeln!(out, "    L3 ({l3_kb}KB)");
            for c in 0..self.cores_per_socket {
                let core = CoreId(s * self.cores_per_socket + c);
                let pus: Vec<String> = self
                    .pus_of_core(core)
                    .iter()
                    .map(|p| format!("PU#{}", p.0))
                    .collect();
                let _ = writeln!(
                    out,
                    "    L2 ({l2_kb}KB)  L1 ({l1_kb}KB)  Core#{}  {}",
                    core.0,
                    pus.join(" ")
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_ht() -> Topology {
        // The paper's quad-core Nehalem with hyper-threading (Fig 11 (c)).
        Topology::new(1, 4, 2, 5965)
    }

    #[test]
    fn pu_core_mapping_matches_linux_numbering() {
        let t = quad_ht();
        assert_eq!(t.num_pus(), 8);
        assert_eq!(t.num_cores(), 4);
        // PU#0 and PU#4 share physical core 0, as in the paper's SMT pinning
        // experiment ("logical cores 0 and 4").
        assert_eq!(t.core_of(PuId(0)), CoreId(0));
        assert_eq!(t.core_of(PuId(4)), CoreId(0));
        assert_eq!(t.smt_sibling(PuId(0)), Some(PuId(4)));
        assert_eq!(t.smt_sibling(PuId(4)), Some(PuId(0)));
        assert_eq!(t.pus_of_core(CoreId(2)), vec![PuId(2), PuId(6)]);
    }

    #[test]
    fn dual_socket_mapping() {
        // The data-center node: bi-Xeon E5640 quad-core with HT → 16 PUs.
        let t = Topology::new(2, 4, 2, 24_000);
        assert_eq!(t.num_pus(), 16);
        assert_eq!(t.socket_of(PuId(0)), SocketId(0));
        assert_eq!(t.socket_of(PuId(5)), SocketId(1)); // core 5 is socket 1
        assert_eq!(t.socket_of(PuId(13)), SocketId(1)); // sibling of PU 5
        assert_eq!(t.core_of(PuId(13)), CoreId(5));
    }

    #[test]
    fn no_smt_has_no_siblings() {
        let t = Topology::new(1, 2, 1, 2048);
        assert_eq!(t.num_pus(), 2);
        assert_eq!(t.smt_sibling(PuId(1)), None);
    }

    #[test]
    fn render_mentions_all_parts() {
        let t = quad_ht();
        let s = t.render(32, 256, 8192);
        assert!(s.contains("Machine (5965MB)"));
        assert!(s.contains("Socket#0"));
        assert!(s.contains("L3 (8192KB)"));
        assert!(s.contains("Core#3"));
        assert!(s.contains("PU#7"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pu_panics() {
        quad_ht().core_of(PuId(8));
    }
}
