//! **Scaling** — the throughput frontier of the cluster merge: frames per
//! second and peak buffered bytes against machine count at 10, 100 and
//! 1000 machines, each shard running a few synthetic light jobs (pure
//! compute, no memory traffic) so the measurement is dominated by the
//! frame/stream path rather than cache simulation.
//!
//! Every scale point runs **two arms in the same process**:
//!
//! * the *batched* arm — the production path: columnar [`FrameBatch`]
//!   transport, interned labels, the id-keyed
//!   [`ClusterWindowSink`](tiptop_core::cluster::ClusterWindowSink) folding
//!   straight from the columns;
//! * the *baseline* arm — the legacy one-message-per-frame transport
//!   ([`ClusterSession::run_per_frame`](tiptop_core::cluster::ClusterSession::run_per_frame))
//!   feeding [`LegacyRepSink`], a shim that reconstructs the seed
//!   representation's per-frame allocation profile (owned `String` labels
//!   per message, a header-table clone per frame, a `HashMap<String, f64>`
//!   per row, `String`-keyed window aggregation). The seed code itself is
//!   gone — this shim is a transparent stand-in that re-pays the same
//!   allocations on today's data, measured in the same binary and run.
//!
//! The ratio of the two is the headline speedup; the acceptance bar is
//! ≥2× at the 100-machine point. `bench_timing` writes the whole curve to
//! `BENCH_cluster.json` and `--check` fails CI if the 100-machine
//! frames/sec regresses more than 30% against the committed curve.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::cluster::{
    ClusterFrame, ClusterFrameSink, ClusterScenario, ClusterSession, ClusterWindowSink, RunStats,
};
use tiptop_core::config::{ColumnKind, ScreenConfig};
use tiptop_core::events::parse_event;
use tiptop_core::expr::Expr;
use tiptop_core::scenario::Scenario;
use tiptop_core::symbols;
use tiptop_kernel::program::Program;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::exec::ExecProfile;
use tiptop_machine::time::SimDuration;

use crate::experiments::default_threads;
use crate::report::TableReport;

/// The scale points and the refresh budget at each one, chosen so every
/// point delivers enough frames to time robustly while the whole curve
/// stays within the bench budget.
pub const POINTS: [(usize, usize); 3] = [(10, 400), (100, 200), (1000, 20)];

/// Window size for the aggregating sinks in both arms.
pub const WINDOW: usize = 256;

/// One measured scale point.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub machines: usize,
    pub refreshes: usize,
    /// Frames delivered by the batched arm (machines × refreshes).
    pub frames: usize,
    /// Channel messages on the batched arm (≪ frames when batching works).
    pub batches: usize,
    pub peak_buffered_frames: usize,
    pub peak_buffered_bytes: usize,
    /// Wall seconds of the batched arm's run (build excluded).
    pub wall_seconds: f64,
    pub frames_per_sec: f64,
    /// The legacy-representation arm, measured in the same run.
    pub baseline_wall_seconds: f64,
    pub baseline_frames_per_sec: f64,
    /// Process peak RSS (VmHWM) after this point, in bytes; 0 where
    /// `/proc/self/status` is unavailable.
    pub peak_rss_bytes: u64,
}

impl ScalePoint {
    /// Batched over baseline throughput.
    pub fn speedup(&self) -> f64 {
        if self.baseline_frames_per_sec > 0.0 {
            self.frames_per_sec / self.baseline_frames_per_sec
        } else {
            0.0
        }
    }
}

pub struct ScalingResult {
    pub points: Vec<ScalePoint>,
    pub threads: usize,
}

/// The synthetic light job: fixed CPI, no loads or stores, so
/// cache sampling short-circuits and the run measures the frame path.
fn light_job(seed: u64) -> SpawnSpec {
    SpawnSpec::new(
        "shard-job",
        Uid(1),
        Program::endless(
            ExecProfile::builder("shard-job")
                .base_cpi(0.9)
                .loads_per_insn(0.0)
                .stores_per_insn(0.0)
                .build(),
        ),
    )
    .seed(seed)
}

/// Light jobs per shard: enough rows per frame that the per-row stream
/// costs dominate the fixed per-refresh overhead, like a working node.
const JOBS_PER_SHARD: usize = 3;

/// A fresh `n`-machine cluster of light shards. The L3 is shrunk to keep
/// the 1000-machine build's tag arrays (and RSS) proportionate — the light
/// jobs never touch the caches, so the geometry does not affect timing.
fn build_cluster(n: usize, seed: u64) -> ClusterSession {
    let mut cluster = ClusterScenario::new();
    for i in 0..n {
        let s = seed + i as u64 + 1;
        let mut sc = Scenario::new(MachineConfig::nehalem_w3550().noiseless().with_l3_kib(512))
            .seed(s)
            .user(Uid(1), "u1");
        for j in 0..JOBS_PER_SHARD {
            sc = sc.spawn(format!("shard-{j}"), light_job(s * 31 + j as u64));
        }
        cluster = cluster.machine(format!("m{i:04}"), sc);
    }
    cluster.build().expect("unique machine ids")
}

/// One observation per scheduler epoch (20 ms) — the highest meaningful
/// sampling rate, so the measurement stresses the frame path rather than
/// paying several un-observed sim epochs between refreshes.
fn monitor() -> Box<Tiptop> {
    Box::new(Tiptop::new(
        TiptopOptions::default()
            .observer(Uid::ROOT)
            .delay(SimDuration::from_millis(20)),
        ScreenConfig::default_screen(),
    ))
}

/// Reconstructs the seed representation's per-frame cost on the legacy
/// per-frame transport: owned `String` labels, a cloned header table,
/// AST-walked metric evaluation with per-leaf name parsing, eagerly
/// formatted cell text, a `HashMap<String, f64>` per row, and
/// `String`-keyed window sums with per-row key clones — the cost profile
/// the columnar path and compiled metric programs removed.
struct LegacyRepSink {
    window: usize,
    open_frames: usize,
    peak: usize,
    windows: usize,
    sums: BTreeMap<(String, String), BTreeMap<String, (f64, usize)>>,
    frames: usize,
    /// The screen's metric expressions, re-evaluated per row through the
    /// AST walker with a per-leaf identifier parse — the seed-era cost the
    /// compiled metric programs removed from the shared observe path.
    exprs: Vec<Expr>,
    /// Folded into from every reconstructed value so the work can't be
    /// optimized away.
    checksum: f64,
}

impl LegacyRepSink {
    fn new(window: usize) -> Self {
        let exprs = ScreenConfig::default_screen()
            .columns
            .into_iter()
            .filter_map(|c| match c.kind {
                ColumnKind::Metric { expr, .. } => Some(expr),
                _ => None,
            })
            .collect();
        LegacyRepSink {
            window,
            open_frames: 0,
            peak: 0,
            windows: 0,
            sums: BTreeMap::new(),
            frames: 0,
            exprs,
            checksum: 0.0,
        }
    }
}

impl ClusterFrameSink for LegacyRepSink {
    fn on_frame(&mut self, cf: ClusterFrame) {
        // Seed-era message: one owned String per label per frame.
        let machine = cf.machine.as_str().to_string();
        let source = cf.source.as_str().to_string();
        // Seed-era Frame: the header table cloned per frame.
        let headers: Vec<(String, usize)> = cf.frame.headers.to_vec();
        self.checksum += headers.len() as f64;
        let per = self.sums.entry((machine, source)).or_default();
        for row in &cf.frame.rows {
            // Seed-era observe: every metric evaluated by walking the
            // boxed AST with identifier names parsed at every leaf.
            for expr in &self.exprs {
                self.checksum += expr
                    .eval(&|name| {
                        if parse_event(name).is_some() {
                            return Some(row.cpu_pct + 1.0);
                        }
                        Some(1.0)
                    })
                    .unwrap_or(f64::NAN);
            }
            // Seed-era observe: every cell's text formatted eagerly,
            // whether or not anything renders the frame.
            self.checksum += row.cells().len() as f64;
            // Seed-era Row: values materialized as a String-keyed map.
            let mut values: HashMap<String, f64> = HashMap::new();
            for (sym, v) in &row.values {
                values.insert(symbols::resolve(*sym).to_string(), *v);
            }
            for (col, v) in &values {
                // Seed-era fold: a key clone per row per column.
                let e = per.entry(col.clone()).or_insert((0.0, 0));
                e.0 += *v;
                e.1 += 1;
                self.checksum += *v;
            }
        }
        self.frames += 1;
        self.open_frames += 1;
        self.peak = self.peak.max(self.open_frames);
        if self.open_frames >= self.window {
            self.windows += 1;
            self.open_frames = 0;
            self.sums.clear();
        }
    }
}

/// Process peak RSS from `/proc/self/status` (`VmHWM`), in bytes.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Run the scaling curve on the default worker pool.
pub fn run(seed: u64) -> ScalingResult {
    run_on(seed, default_threads(), &POINTS)
}

/// [`run`] with explicit threads and scale points (tests use tiny points).
pub fn run_on(seed: u64, threads: usize, points: &[(usize, usize)]) -> ScalingResult {
    let mut out = Vec::new();
    for &(machines, refreshes) in points {
        // Baseline arm: fresh cluster, per-frame transport, legacy shim.
        let mut session = build_cluster(machines, seed);
        let mut legacy = LegacyRepSink::new(WINDOW);
        let t0 = Instant::now();
        session
            .run_per_frame(threads, refreshes, |_| monitor(), &mut legacy)
            .expect("baseline arm");
        let baseline_wall = t0.elapsed().as_secs_f64();
        let baseline_stats = session.last_run_stats();
        assert_eq!(legacy.frames, machines * refreshes);
        assert!(legacy.checksum.is_finite());

        // Batched arm: fresh cluster, columnar transport, id-keyed sink.
        let mut session = build_cluster(machines, seed);
        let mut sink = ClusterWindowSink::new(WINDOW);
        let t0 = Instant::now();
        session
            .run(threads, refreshes, |_| monitor(), &mut sink)
            .expect("batched arm");
        let wall = t0.elapsed().as_secs_f64();
        let stats: RunStats = session.last_run_stats();
        assert_eq!(stats.frames, machines * refreshes);
        assert_eq!(stats.frames, baseline_stats.frames);

        out.push(ScalePoint {
            machines,
            refreshes,
            frames: stats.frames,
            batches: stats.batches,
            peak_buffered_frames: stats.peak_buffered_frames,
            peak_buffered_bytes: stats.peak_buffered_bytes,
            wall_seconds: wall,
            frames_per_sec: stats.frames as f64 / wall.max(1e-9),
            baseline_wall_seconds: baseline_wall,
            baseline_frames_per_sec: stats.frames as f64 / baseline_wall.max(1e-9),
            peak_rss_bytes: peak_rss_bytes(),
        });
    }
    ScalingResult {
        points: out,
        threads,
    }
}

impl ScalingResult {
    /// The 100-machine point — the acceptance and regression anchor.
    pub fn anchor(&self) -> Option<&ScalePoint> {
        self.points.iter().find(|p| p.machines == 100)
    }

    /// The hand-written `BENCH_cluster.json` body (the offline serde stub
    /// has no serializer).
    pub fn to_json(&self) -> String {
        let mut json = String::from("{\n");
        json.push_str("  \"schema\": \"tiptop-bench-cluster/1\",\n");
        json.push_str(&format!(
            "  \"profile\": \"{}\",\n",
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
        ));
        json.push_str(&format!("  \"threads\": {},\n", self.threads));
        json.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"machines\": {}, \"refreshes\": {}, \"frames\": {}, \
                 \"batches\": {}, \"peak_buffered_frames\": {}, \
                 \"peak_buffered_bytes\": {}, \"wall_seconds\": {:.4}, \
                 \"frames_per_sec\": {:.0}, \"baseline_frames_per_sec\": {:.0}, \
                 \"speedup\": {:.2}, \"peak_rss_bytes\": {}}}{comma}\n",
                p.machines,
                p.refreshes,
                p.frames,
                p.batches,
                p.peak_buffered_frames,
                p.peak_buffered_bytes,
                p.wall_seconds,
                p.frames_per_sec,
                p.baseline_frames_per_sec,
                p.speedup(),
                p.peak_rss_bytes,
            ));
        }
        json.push_str("  ]\n}\n");
        json
    }

    pub fn report(&self) -> String {
        let mut t = TableReport::new(
            format!("scaling frontier ({} worker threads)", self.threads),
            &[
                "machines",
                "frames",
                "frames/s",
                "baseline f/s",
                "speedup",
                "msgs",
                "peak buf frames",
                "peak buf KiB",
                "peak RSS MiB",
            ],
        );
        for p in &self.points {
            t.row(vec![
                p.machines.to_string(),
                p.frames.to_string(),
                format!("{:.0}", p.frames_per_sec),
                format!("{:.0}", p.baseline_frames_per_sec),
                format!("{:.2}x", p.speedup()),
                p.batches.to_string(),
                p.peak_buffered_frames.to_string(),
                format!("{:.0}", p.peak_buffered_bytes as f64 / 1024.0),
                format!("{:.0}", p.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
            ]);
        }
        t.render()
    }
}
