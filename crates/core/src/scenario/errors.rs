//! Typed session and dependency-graph errors — the core crate's public
//! failure surface instead of leaked [`Errno`]s and panics.

use std::fmt;

use tiptop_kernel::errno::Errno;
use tiptop_kernel::task::Pid;
use tiptop_machine::time::{SimDuration, SimTime};

/// Typed failure of a session — the core crate's public surface instead of
/// leaked [`Errno`]s and panics.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionError {
    /// The scenario is self-contradictory (duplicate tag, event against an
    /// unknown tag, event scheduled before its task's spawn, ...).
    InvalidScenario(String),
    /// The scenario's dependency graph is rejected at build time: a cycle
    /// among spawn-after edges, an edge keyed on an unknown tag, or a
    /// dependency whose exit can never land (see [`DagError`]).
    InvalidDag(DagError),
    /// A scheduled event's syscall failed (e.g. killing a task that had
    /// already exited on its own).
    Syscall {
        call: &'static str,
        pid: Pid,
        errno: Errno,
    },
    /// A bounded wait elapsed.
    Timeout {
        limit: SimDuration,
        waiting_for: String,
    },
    /// A cluster shard failed with a session error of its own; the error is
    /// labelled with the machine it happened on and the rest of the pool
    /// keeps running (see [`crate::cluster`]).
    Shard {
        machine: String,
        error: Box<SessionError>,
    },
    /// A cluster shard panicked. The worker pool survives — the panic is
    /// contained to the shard and surfaces here with its payload.
    ShardPanicked { machine: String, message: String },
    /// A *run-time* scheduled event or live scheduling decision is
    /// infeasible — the run-time half of the validation that
    /// [`Scenario::build`](super::Scenario::build) performs up front for
    /// scripted schedules: scheduling into the past, migrating a tag that
    /// just exited, spawning a tag the machine already carries, ... Raised
    /// by [`Session::schedule_at`](super::Session::schedule_at) and by
    /// reactive policies' decisions (see `ClusterSession::run_reactive` in
    /// [`crate::cluster`]).
    InvalidDecision(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            SessionError::InvalidDag(err) => write!(f, "invalid dependency graph: {err}"),
            SessionError::Syscall { call, pid, errno } => {
                write!(f, "{call}(pid {}) failed: {errno}", pid.0)
            }
            SessionError::Timeout { limit, waiting_for } => {
                write!(
                    f,
                    "did not finish within {limit:?} (waiting for {waiting_for})"
                )
            }
            SessionError::Shard { machine, error } => {
                write!(f, "machine '{machine}': {error}")
            }
            SessionError::ShardPanicked { machine, message } => {
                write!(f, "machine '{machine}' panicked: {message}")
            }
            SessionError::InvalidDecision(msg) => {
                write!(f, "infeasible live decision: {msg}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Why a scenario's dependency graph was rejected. Raised at build time by
/// [`Scenario::build`](super::Scenario::build) (and cluster-wide by
/// `ClusterScenario::build`), and at live-injection time by
/// [`Session::schedule_after`](super::Session::schedule_after) — the same
/// typed errors in both places.
#[derive(Clone, Debug, PartialEq)]
pub enum DagError {
    /// The spawn-after edges loop: some set of jobs each wait on another
    /// member's exit, so none can ever start. Tags are sorted for stable
    /// messages.
    Cycle { tags: Vec<String> },
    /// An after-exit event is keyed on a tag no event ever spawns.
    UnknownDependency {
        event_tag: String,
        dependency: String,
    },
    /// The dependency's final incarnation is checkpoint-killed (migrated
    /// away) — its exit never lands on this schedule, so events keyed on it
    /// could never fire.
    DependencyOnKilled { dependency: String },
    /// A timed (absolute-instant) event targets a tag that is spawned by a
    /// dependency edge: the tag's timeline is unknown at build time, so the
    /// ordering cannot be validated. Use `*_after` events against such tags.
    TimedEventOnDependentTag { tag: String, at: SimTime },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Cycle { tags } => {
                write!(
                    f,
                    "dependency cycle among tags {tags:?} (spawn-after edges must form a DAG)"
                )
            }
            DagError::UnknownDependency {
                event_tag,
                dependency,
            } => {
                write!(
                    f,
                    "event against '{event_tag}' depends on unknown tag '{dependency}'"
                )
            }
            DagError::DependencyOnKilled { dependency } => {
                write!(
                    f,
                    "dependency '{dependency}' never completes: its final incarnation is \
                     checkpoint-killed (migrated away), so after-exit events keyed on it \
                     can never fire"
                )
            }
            DagError::TimedEventOnDependentTag { tag, at } => {
                write!(
                    f,
                    "timed event against '{tag}' at {at:?}: the tag is spawned by a \
                     dependency edge, so its timeline is unknown at build time (schedule \
                     events against it with *_after)"
                )
            }
        }
    }
}
