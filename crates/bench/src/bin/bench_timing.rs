//! `cargo bench`-style timing harness for the experiment suite: runs every
//! paper artifact at its regression-test scale, times each one, and writes
//! `BENCH_experiments.json` so consecutive PRs accumulate a perf
//! trajectory.
//!
//! ```sh
//! cargo run --release -p tiptop-bench --bin bench_timing [-- [--check] [out.json]]
//! ```
//!
//! With `--check` the harness also compares each experiment against its
//! per-experiment wall-time budget (the release baseline recorded by the
//! PR 3 trajectory, +30% regression allowance and a small absolute slack
//! for sub-second experiments) and exits non-zero on any breach — the CI
//! regression gate. Budgets are calibrated for the release profile; in a
//! debug build `--check` only reports, it never fails.
//!
//! The JSON is written by hand (the offline `serde` stub has no
//! serializer): a flat object of per-experiment wall seconds plus totals —
//! trivially diffable between commits.
//!
//! The harness also drives the [`scaling`] throughput curve (the full
//! worker-thread sweep at every point). A plain run refreshes the
//! committed `BENCH_cluster.json`; with `--check` the file is left
//! untouched and instead acts as the regression anchor — CI fails if the
//! fresh 100-machine frames/sec, at **either** the single-thread or the
//! 8-thread arm, falls more than 30% below the committed curve.

use std::time::Instant;

use tiptop_bench::experiments::{
    fig01_snapshot, fig03_evolution, fig06_07_phases, fig08_ipc_vs_instructions, fig09_compilers,
    fig10_datacenter, fig11_interference, fleet, grid, pipelines, policy_lab, reactive, scaling,
    table1_fp_micro, tournament, validation,
};

/// Release-profile wall-second baselines, seeded from the PR 3 trajectory
/// (`BENCH_experiments.json`; `grid`, `reactive` and `tournament` from the
/// PRs that introduced them — `reactive` pays for its run *plus* the
/// scripted grid baseline it compares against, `tournament` for its four
/// detector×mode cells). A budget breach means the experiment
/// regressed by more than [`REGRESSION_ALLOWANCE`] against this trajectory.
const BASELINE_SECONDS: [(&str, f64); 16] = [
    ("fig01_snapshot", 0.400),
    ("table1_fp_micro", 0.002),
    ("fig03_evolution", 0.206),
    ("fig06_07_phases", 0.288),
    ("fig08_ipc_vs_insns", 0.069),
    ("fig09_compilers", 0.049),
    ("fig10_datacenter", 3.454),
    ("fig11_interference", 2.088),
    ("fleet", 0.078),
    ("grid", 2.900),
    ("reactive", 5.800),
    ("tournament", 10.500),
    // Nine policy×scenario cells; the three `fleet` cells carry four
    // endless background jobs each, so the grid costs ~2.7× the
    // tournament's four cells.
    ("policy_lab", 29.240),
    // Four three-machine pipelines (chain, fan-out, shuffle, random DAG)
    // through the cluster's lockstep driver.
    ("pipelines", 0.020),
    ("validation", 0.009),
    // The thread sweep runs the batched arm four times per point (1/2/4/8
    // workers) plus one single-threaded baseline arm; the lane/loser-tree
    // merge and the per-machine memory diet still bring the whole curve in
    // under the old two-arm budget.
    ("scaling", 1.500),
];

/// The committed scaling curve; `--check` compares the fresh 100-machine
/// throughput against it and fails on a >30% regression. Refreshed by a
/// plain (non-`--check`) run, so CI never dirties the tree.
const CLUSTER_JSON: &str = "BENCH_cluster.json";

/// Allowed relative throughput loss at the 100-machine anchors.
const CLUSTER_REGRESSION_ALLOWANCE: f64 = 0.30;

/// The numeric value following `key` in `s`.
fn scan_value(s: &str, key: &str) -> Option<f64> {
    let rest = &s[s.find(key)? + key.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// The committed 100-machine `frames_per_sec` at `threads` workers out of
/// `BENCH_cluster.json` (hand-rolled scan — the offline serde stub has no
/// deserializer either). Schema `/2` carries one arm per swept thread
/// count; a legacy `/1` file only answers for `threads == 1` (its single
/// measured arm).
fn anchor_fps(json: &str, threads: usize) -> Option<f64> {
    let at = json.find("\"machines\": 100,")?;
    let rest = &json[at..];
    // Confine the scan to this point's span so an arm from the next point
    // can never answer for this one.
    let span_end = rest[1..]
        .find("\"machines\": ")
        .map(|i| i + 1)
        .unwrap_or(rest.len());
    let span = &rest[..span_end];
    if json.contains("\"schema\": \"tiptop-bench-cluster/1\"") {
        if threads != 1 {
            return None;
        }
        return scan_value(span, "\"frames_per_sec\": ");
    }
    let tkey = format!("\"threads\": {threads},");
    let arm = &span[span.find(&tkey)?..];
    scan_value(arm, "\"frames_per_sec\": ")
}

/// Budgeted relative regression before `--check` fails.
const REGRESSION_ALLOWANCE: f64 = 0.30;
/// Absolute slack so millisecond-scale experiments don't fail on noise.
const ABSOLUTE_SLACK_SECONDS: f64 = 0.25;

fn budget_for(name: &str) -> Option<f64> {
    BASELINE_SECONDS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, base)| base * (1.0 + REGRESSION_ALLOWANCE) + ABSOLUTE_SLACK_SECONDS)
}

fn main() {
    let mut check = false;
    let mut out_path = "BENCH_experiments.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }

    let mut entries: Vec<(&'static str, f64)> = Vec::new();
    let mut time = |name: &'static str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        eprintln!("{name:>24}  {dt:7.2}s");
        entries.push((name, dt));
    };

    // Same seeds/scales as the regression tests, so these timings track
    // exactly what CI pays for.
    time("fig01_snapshot", &mut || {
        fig01_snapshot::run(3, 30, 5);
    });
    time("table1_fp_micro", &mut || {
        table1_fp_micro::run(5);
    });
    time("fig03_evolution", &mut || {
        fig03_evolution::run(7, 0.001);
    });
    time("fig06_07_phases", &mut || {
        fig06_07_phases::run(11, 0.02);
    });
    time("fig08_ipc_vs_insns", &mut || {
        fig08_ipc_vs_instructions::run(13, 0.02);
    });
    time("fig09_compilers", &mut || {
        fig09_compilers::run(17, 0.02);
    });
    time("fig10_datacenter", &mut || {
        fig10_datacenter::run(19, 0.01);
    });
    time("fig11_interference", &mut || {
        fig11_interference::run(23);
    });
    time("fleet", &mut || {
        fleet::run(31, 0.02);
    });
    time("grid", &mut || {
        grid::run(37, 0.01);
    });
    time("reactive", &mut || {
        reactive::run(41, 0.01);
    });
    time("tournament", &mut || {
        tournament::run(43, 0.01);
    });
    time("policy_lab", &mut || {
        policy_lab::run(53, 0.01);
    });
    time("pipelines", &mut || {
        pipelines::run(7);
    });
    time("validation", &mut || {
        validation::run(29);
    });
    let mut scaling_result = None;
    time("scaling", &mut || {
        scaling_result = Some(scaling::run(47));
    });
    let scaling_result = scaling_result.expect("scaling ran");
    eprintln!("{}", scaling_result.report());

    let committed = std::fs::read_to_string(CLUSTER_JSON).ok();
    let prior_anchor_1t = committed.as_deref().and_then(|s| anchor_fps(s, 1));
    let prior_anchor_8t = committed.as_deref().and_then(|s| anchor_fps(s, 8));
    if !check {
        std::fs::write(CLUSTER_JSON, scaling_result.to_json()).expect("write cluster json");
        println!("wrote {CLUSTER_JSON}");
    }

    let total: f64 = entries.iter().map(|(_, t)| t).sum();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"schema\": \"tiptop-bench-timing/1\",\n  \"profile\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    json.push_str("  \"experiments\": {\n");
    for (i, (name, t)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {t:.3}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!("  \"total_seconds\": {total:.3}\n}}\n"));

    std::fs::write(&out_path, &json).expect("write timing json");
    eprintln!("{:>24}  {total:7.2}s", "total");
    println!("wrote {out_path}");

    if check {
        let enforce = !cfg!(debug_assertions);
        if !enforce {
            eprintln!("--check: budgets are calibrated for release; reporting only");
        }
        let mut breaches = 0usize;
        for (name, measured) in &entries {
            let Some(budget) = budget_for(name) else {
                eprintln!("--check: no budget for '{name}' — add it to BASELINE_SECONDS");
                breaches += 1;
                continue;
            };
            if *measured > budget {
                eprintln!(
                    "--check: {name} took {measured:.3}s, budget {budget:.3}s \
                     (baseline +{:.0}% +{ABSOLUTE_SLACK_SECONDS}s)",
                    REGRESSION_ALLOWANCE * 100.0
                );
                breaches += 1;
            }
        }
        // Cluster throughput gates: the fresh 100-machine frames/sec must
        // stay within the allowance of the committed curve at both the
        // single-thread and the 8-thread arm (the latter guards the lane +
        // merge path specifically). Throughput (like the wall-time
        // budgets) is calibrated for release. An 8-thread anchor missing
        // from a legacy `/1` committed file is reported, not failed — the
        // next plain release run upgrades the file to `/2`.
        if enforce {
            let mut gate = |threads: usize, prior: Option<f64>, required: bool| match (
                prior,
                scaling_result.anchor_fps(threads),
            ) {
                (Some(prior), Some(fresh)) => {
                    let floor = prior * (1.0 - CLUSTER_REGRESSION_ALLOWANCE);
                    if fresh < floor {
                        eprintln!(
                            "--check: scaling 100-machine {threads}-thread throughput \
                                 {fresh:.0} f/s fell below {floor:.0} f/s \
                                 (committed {prior:.0} f/s -{:.0}%)",
                            CLUSTER_REGRESSION_ALLOWANCE * 100.0
                        );
                        breaches += 1;
                    }
                }
                _ if required => {
                    eprintln!(
                        "--check: no committed 100-machine {threads}-thread anchor in \
                             {CLUSTER_JSON} — refresh it with a plain (non---check) release run"
                    );
                    breaches += 1;
                }
                _ => {
                    eprintln!(
                        "--check: 100-machine {threads}-thread anchor unavailable \
                             (legacy {CLUSTER_JSON}?); gate skipped"
                    );
                }
            };
            gate(1, prior_anchor_1t, true);
            gate(8, prior_anchor_8t, prior_anchor_8t.is_some());
        }

        if breaches == 0 {
            eprintln!("--check: all {} experiments within budget", entries.len());
        } else if enforce {
            eprintln!("--check: {breaches} budget breach(es)");
            std::process::exit(1);
        }
    }
}
