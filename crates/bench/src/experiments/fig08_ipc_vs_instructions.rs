//! **Figure 8** — the same benchmark plotted as IPC against *retired
//! instructions* instead of time. On the instruction axis the phase
//! boundaries of the two Intel machines align exactly (they execute the
//! same binary), while the PowerPC build's curve is shifted right by the
//! ~7% extra instructions its ISA retires. 473.astar is the phase-rich
//! benchmark shown here.

use tiptop_workloads::spec::{Compiler, SpecBenchmark};

use crate::experiments::{evaluation_machines, isa_for, run_spec_to_completion, spec_delay};
use crate::report::{PanelSet, Series, TableReport};

/// One machine's IPC-vs-instructions curve.
pub struct InsnCurve {
    pub machine: String,
    /// x = cumulative retired giga-instructions at the end of each refresh,
    /// y = the interval's IPC.
    pub ipc_vs_insns: Series,
    /// Exact lifetime retired instructions (kernel ground truth).
    pub total_instructions: u64,
    /// Run time in simulated seconds (differs per machine; the instruction
    /// axis is what lines up).
    pub wall: f64,
}

pub struct Fig08Result {
    pub benchmark: SpecBenchmark,
    pub curves: Vec<InsnCurve>,
}

/// Run astar on the three machines and re-plot on the instruction axis.
pub fn run(seed: u64, scale: f64) -> Fig08Result {
    let bench = SpecBenchmark::Astar;
    let delay = spec_delay(scale);
    let mut curves = Vec::new();
    for (mi, (mname, machine)) in evaluation_machines().into_iter().enumerate() {
        let isa = isa_for(&machine);
        let r = run_spec_to_completion(
            machine,
            bench,
            Compiler::Gcc,
            isa,
            scale,
            seed + mi as u64,
            delay,
        );
        // Fold the per-interval instruction deltas (the typed value behind
        // the `Minst` column) into a cumulative x axis, pairing each IPC
        // sample with the cumulative count of its own frame (an interval
        // with a non-finite IPC still advances the axis).
        let mut cum = 0.0;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for frame in &r.frames {
            let Some(row) = frame.row_for(r.pid) else {
                continue;
            };
            cum += row.value("Minst").unwrap_or(0.0);
            if let Some(ipc) = row.value("IPC").filter(|v| v.is_finite()) {
                points.push((cum / 1e9, ipc));
            }
        }
        curves.push(InsnCurve {
            machine: mname.to_string(),
            ipc_vs_insns: Series::new(format!("{mname} IPC"), points),
            total_instructions: r.exit.total_instructions,
            wall: r.wall(),
        });
    }
    Fig08Result {
        benchmark: bench,
        curves,
    }
}

impl Fig08Result {
    pub fn curve_for(&self, machine: &str) -> &InsnCurve {
        self.curves
            .iter()
            .find(|c| c.machine == machine)
            .expect("known machine label")
    }

    pub fn report(&self) -> String {
        let mut fig = PanelSet::new(format!(
            "Figure 8: {} IPC vs retired giga-instructions",
            self.benchmark.name()
        ));
        for c in &self.curves {
            fig.panel(&c.machine, vec![c.ipc_vs_insns.clone()]);
        }
        let mut out = fig.render(72, 10);
        let mut t = TableReport::new(
            "instruction-axis alignment",
            &["machine", "retired insns", "vs Nehalem", "wall (s)"],
        );
        let nehalem = self.curve_for("Nehalem").total_instructions as f64;
        for c in &self.curves {
            t.row(vec![
                c.machine.clone(),
                c.total_instructions.to_string(),
                format!("{:.3}", c.total_instructions as f64 / nehalem),
                format!("{:.1}", c.wall),
            ]);
        }
        out.push_str(&t.render());
        out
    }
}
