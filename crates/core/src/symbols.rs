//! String interning for the cluster hot path: a process-wide
//! [`SymbolTable`] mapping column headers, commands, machine ids and
//! monitor names to dense `u32` [`SymId`]s, plus [`Label`] — a cheap
//! shared string for frame labels.
//!
//! The merge/stream path used to pay a `String` per frame label and a
//! `String` per row value key, per frame, per row. Interning replaces
//! those with `Copy` ids through [`crate::render::Row`], the cluster
//! merger and [`crate::cluster::ClusterWindowSink`]; labels that must
//! stay textual ([`crate::cluster::ClusterFrame::machine`]) become
//! [`Label`]s — one refcount bump per frame instead of one heap copy.
//!
//! The table is append-only and process-global so ids resolve anywhere
//! (a [`crate::render::Row`] built by a bare [`crate::app::Tiptop`] and
//! one built inside a cluster shard agree); a
//! [`crate::cluster::ClusterScenario::build`] pre-interns its machine
//! ids so every shard shares warm ids before the worker pool starts.
//! Id *values* depend on interning order and must never be persisted —
//! resolve to text at any boundary that outlives the process.

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};

/// Interned string id. `Copy`, dense, and meaningless across processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(pub u32);

#[derive(Default)]
struct Inner {
    ids: HashMap<Arc<str>, SymId>,
    names: Vec<Arc<str>>,
}

/// An append-only, thread-safe string interner.
#[derive(Default)]
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide table used by [`intern`]/[`resolve`]/[`lookup`].
    pub fn global() -> &'static SymbolTable {
        static GLOBAL: OnceLock<SymbolTable> = OnceLock::new();
        GLOBAL.get_or_init(SymbolTable::new)
    }

    /// Id of `s`, interning it on first sight.
    pub fn intern(&self, s: &str) -> SymId {
        if let Some(&id) = self.inner.read().expect("symbol table poisoned").ids.get(s) {
            return id;
        }
        let mut inner = self.inner.write().expect("symbol table poisoned");
        if let Some(&id) = inner.ids.get(s) {
            return id; // raced with another writer
        }
        let name: Arc<str> = Arc::from(s);
        let id = SymId(inner.names.len() as u32);
        inner.names.push(name.clone());
        inner.ids.insert(name, id);
        id
    }

    /// Id of `s` if it was ever interned.
    pub fn lookup(&self, s: &str) -> Option<SymId> {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .ids
            .get(s)
            .copied()
    }

    /// The string behind `id`. Panics on an id from another table.
    pub fn resolve(&self, id: SymId) -> Arc<str> {
        self.inner.read().expect("symbol table poisoned").names[id.0 as usize].clone()
    }

    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("symbol table poisoned")
            .names
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.len())
            .finish()
    }
}

/// Intern `s` in the process-wide table.
pub fn intern(s: &str) -> SymId {
    SymbolTable::global().intern(s)
}

/// Id of `s` in the process-wide table, if ever interned.
pub fn lookup(s: &str) -> Option<SymId> {
    SymbolTable::global().lookup(s)
}

/// The string behind a process-wide id.
pub fn resolve(id: SymId) -> Arc<str> {
    SymbolTable::global().resolve(id)
}

/// A shared, immutable string label (machine id, monitor name): cloning is
/// a refcount bump, comparisons against `&str`/`String` work directly, so
/// code written against `String` labels keeps reading naturally.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    pub fn new(s: impl AsRef<str>) -> Self {
        Label(Arc::from(s.as_ref()))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// This label's id in the process-wide table (interning it if new).
    pub fn sym(&self) -> SymId {
        intern(&self.0)
    }
}

impl Deref for Label {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label(Arc::from(s))
    }
}

impl From<Arc<str>> for Label {
    fn from(s: Arc<str>) -> Self {
        Label(s)
    }
}

impl From<&Label> for Label {
    fn from(l: &Label) -> Self {
        l.clone()
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Label {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Label> for str {
    fn eq(&self, other: &Label) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Label> for &str {
    fn eq(&self, other: &Label) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Label> for String {
    fn eq(&self, other: &Label) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolves() {
        let t = SymbolTable::new();
        let a = t.intern("IPC");
        let b = t.intern("IPC");
        let c = t.intern("%CPU");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(&*t.resolve(a), "IPC");
        assert_eq!(&*t.resolve(c), "%CPU");
        assert_eq!(t.lookup("IPC"), Some(a));
        assert_eq!(t.lookup("never-seen"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn global_table_is_shared() {
        let a = intern("symbols-test-global");
        let b = intern("symbols-test-global");
        assert_eq!(a, b);
        assert_eq!(&*resolve(a), "symbols-test-global");
    }

    #[test]
    fn labels_compare_with_plain_strings() {
        let l = Label::new("node-a");
        assert_eq!(l, "node-a");
        assert_eq!("node-a", l);
        assert_eq!(l, "node-a".to_string());
        assert_eq!(l.clone(), l);
        assert_eq!(format!("{l}"), "node-a");
        assert_eq!(&l[..4], "node");
        let map: std::collections::BTreeMap<Label, u32> = [(l.clone(), 1)].into();
        assert_eq!(map.get("node-a"), Some(&1), "Borrow<str> lookup");
    }

    #[test]
    fn concurrent_interning_yields_one_id_per_string() {
        let t = Arc::new(SymbolTable::new());
        let ids: Vec<SymId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let t = t.clone();
                    s.spawn(move || t.intern("contended"))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(t.len(), 1);
    }
}
