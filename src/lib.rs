//! # tiptop
//!
//! A full reproduction of *"Tiptop: Hardware Performance Counters for the
//! Masses"* (Erven Rohou, INRIA RR-7789, 2011 / ICPP 2012) as a Rust
//! workspace — the tool **and** every substrate it needs:
//!
//! | crate | role |
//! |-------|------|
//! | [`machine`](tiptop_machine) | multicore CPU simulator: Nehalem/Core/PPC970 models, SMT topology, set-associative L1/L2/shared-L3 caches, per-hw-thread PMU events |
//! | [`kernel`](tiptop_kernel) | OS layer: tasks, a pluggable `Scheduler` trait (CFS-like default, FIFO, round-robin) with affinity, `/proc`, `perf_event_open`-style syscalls with multiplexing |
//! | [`workloads`](tiptop_workloads) | SPEC CPU2006 stand-ins, the §3.1 diverging R program, micro-benchmarks, data-center job scripts |
//! | [`core`](tiptop_core) | **tiptop itself**: collector, metric DSL, screens, live/batch rendering, baselines (`top`, Pin-style `inscount`), the `Scenario`/`Monitor` session API, and the multi-machine `ClusterScenario`/`ClusterSession` layer |
//!
//! Experiments are declared with [`tiptop_core::scenario::Scenario`]
//! (machine + users + timed spawn/kill/renice events) and driven through
//! [`tiptop_core::scenario::Session`], which runs any set of
//! [`tiptop_core::monitor::Monitor`]s — tiptop, `top`, and Pin-style
//! `inscount` all implement it — over one live kernel. Multi-machine
//! experiments declare one scenario per machine on a
//! [`tiptop_core::cluster::ClusterScenario`]; the resulting
//! [`tiptop_core::cluster::ClusterSession`] shards the machines across a
//! worker-thread pool and merges their frames deterministically by
//! (sim-time, machine) — byte-identical at any thread count. On top of
//! the shards sit the distributed affordances: cross-machine
//! [`migrate_at`](tiptop_core::cluster::ClusterScenario::migrate_at)
//! events move a job between machines at one exact instant,
//! [`run_all`](tiptop_core::cluster::ClusterSession::run_all) drives a
//! *set* of monitors per machine, and
//! [`ClusterWindowSink`](tiptop_core::cluster::ClusterWindowSink) bounds
//! memory on long runs by folding the stream into tumbling-window
//! aggregates (migration handovers deduped on request). The loop closes
//! with [`run_reactive`](tiptop_core::cluster::ClusterSession::run_reactive):
//! [`SchedulerPolicy`](tiptop_core::reactive::SchedulerPolicy)s — the
//! [`IpcFloor`](tiptop_core::reactive::IpcFloor) threshold detector, the
//! [`Cusum`](tiptop_core::reactive::Cusum) and
//! [`Population`](tiptop_core::reactive::Population) change-point
//! detectors, optionally composed with live
//! [`LeastLoaded`](tiptop_core::reactive::LeastLoaded) placement via
//! [`Balanced`](tiptop_core::reactive::Balanced) —
//! watch the merged stream *during* the run and issue live migrations,
//! applied deterministically at the next scheduler-epoch boundary.
//!
//! See `examples/quickstart.rs` for a runnable end-to-end tour, and the
//! `tiptop-bench` crate for the harnesses that regenerate the paper's
//! tables and figures.

pub use tiptop_core as core;
pub use tiptop_kernel as kernel;
pub use tiptop_machine as machine;
pub use tiptop_workloads as workloads;

/// Everything needed to build a machine, spawn workloads, and watch them.
pub mod prelude {
    pub use tiptop_core::prelude::*;
    pub use tiptop_kernel::prelude::*;
    pub use tiptop_machine::prelude::*;
    pub use tiptop_workloads::{datacenter, micro, rlang, spec};
    pub use tiptop_workloads::{Compiler, EvolutionAlgorithm, SpecBenchmark};
}
