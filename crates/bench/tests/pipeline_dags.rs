//! Property harness for dependency-driven scenario DAGs: hundreds of
//! seeded [`random_dag`] scripts driven through the live stack, each
//! checked for the three core invariants of the trigger engine:
//!
//! * **exact firing** — every dependent stage starts *exactly* `delay`
//!   after its dependency exits (the generator keeps delays above the
//!   scheduler epoch, so the ≥ of the general contract tightens to ==);
//! * **no orphans** — every declared stage spawns and runs to completion;
//! * **insertion-order shuffle invariance** — re-declaring the dependency
//!   edges in a different order produces the identical execution, stage
//!   for stage, instant for instant (whenever the baseline run has no
//!   same-instant spawns, where declaration order is the documented
//!   tie-break).
//!
//! The bulk of the sweep runs single-machine sessions (the Session's
//! native resolution); a second, smaller sweep drives three-machine
//! clusters through the lockstep driver and checks the same exactness
//! cross-machine.

use tiptop_bench::experiments::pipelines::cluster_for;
use tiptop_core::scenario::Scenario;
use tiptop_kernel::kernel::ExitRecord;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_workloads::pipelines::{random_dag, PipelineScript, Stage};

const USER: Uid = Uid(1004);

/// Build a single-machine scenario from a script, declaring the dependency
/// edges in the order given by `edge_order` (indices into `stages`; roots
/// are always declared first, in script order).
fn single_machine(script: &PipelineScript, seed: u64, edge_order: &[usize]) -> Scenario {
    let mut sc = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(seed)
        .user(USER, "grid");
    for st in script.stages.iter().filter(|st| st.dep.is_none()) {
        sc = sc.spawn_at(
            SimTime::ZERO + st.start,
            &st.tag,
            SpawnSpec::new(&st.tag, USER, st.program.clone()).seed(st.seed),
        );
    }
    for &i in edge_order {
        let st: &Stage = &script.stages[i];
        let (dep, delay) = st
            .dep
            .as_ref()
            .expect("edge_order indexes dependent stages");
        sc = sc.spawn_after(
            dep,
            *delay,
            &st.tag,
            SpawnSpec::new(&st.tag, USER, st.program.clone()).seed(st.seed),
        );
    }
    sc
}

/// Run a single-machine scenario to quiescence and return every stage's
/// exit record, in script order.
fn drive(script: &PipelineScript, seed: u64, edge_order: &[usize]) -> Vec<ExitRecord> {
    let mut session = single_machine(script, seed, edge_order)
        .build()
        .expect("random DAGs validate at build");
    // Roots start within 300 ms, chains are ≤ 6 stages of ≤ 225 ms delay
    // plus ≤ ~30 ms of work each: 4 s drains everything.
    session
        .advance_to(SimTime::from_secs(4))
        .expect("advance to quiescence");
    script
        .stages
        .iter()
        .map(|st| {
            let pid = session
                .pid(&st.tag)
                .unwrap_or_else(|| panic!("orphan: '{}' never spawned", st.tag));
            session
                .kernel()
                .exit_record(pid)
                .unwrap_or_else(|| panic!("orphan: '{}' never exited", st.tag))
                .clone()
        })
        .collect()
}

/// Check the exact-firing invariant of one run against its script.
fn assert_exact_firing(script: &PipelineScript, records: &[ExitRecord]) {
    for (i, st) in script.stages.iter().enumerate() {
        let Some((dep, delay)) = &st.dep else {
            assert_eq!(
                records[i].start_time,
                SimTime::ZERO + st.start,
                "root '{}' must start at its scripted instant",
                st.tag
            );
            continue;
        };
        let d = script
            .stages
            .iter()
            .position(|s| &s.tag == dep)
            .expect("dependencies point at script stages");
        // The general contract is start >= exit + delay; with every delay
        // above the scheduler epoch it is exact.
        assert_eq!(
            records[i].start_time,
            records[d].end_time + *delay,
            "'{}' must start exactly {delay:?} after '{dep}' exits",
            st.tag
        );
    }
}

#[test]
fn random_dags_fire_exactly_with_no_orphans_across_200_seeds() {
    for seed in 0..200u64 {
        let script = random_dag(seed, 6, 1);
        let edge_order: Vec<usize> = (0..script.stages.len())
            .filter(|&i| script.stages[i].dep.is_some())
            .collect();
        let records = drive(&script, 1000 + seed, &edge_order);
        assert_exact_firing(&script, &records);
    }
}

#[test]
fn random_dag_execution_is_invariant_under_edge_declaration_shuffles() {
    let mut checked = 0usize;
    for seed in 0..120u64 {
        let script = random_dag(seed, 6, 1);
        let edges: Vec<usize> = (0..script.stages.len())
            .filter(|&i| script.stages[i].dep.is_some())
            .collect();
        if edges.len() < 2 {
            continue;
        }
        let baseline = drive(&script, 1000 + seed, &edges);
        // Declaration order is the documented tie-break for same-instant
        // events; only runs with all-distinct spawn instants promise
        // shuffle invariance.
        let mut starts: Vec<SimTime> = baseline.iter().map(|r| r.start_time).collect();
        starts.sort();
        starts.dedup();
        if starts.len() != baseline.len() {
            continue;
        }
        checked += 1;
        // Two deterministic shuffles: reversed, and rotated by one.
        let reversed: Vec<usize> = edges.iter().rev().copied().collect();
        let mut rotated = edges.clone();
        rotated.rotate_left(1);
        for (label, order) in [("reversed", &reversed), ("rotated", &rotated)] {
            let shuffled = drive(&script, 1000 + seed, order);
            for (a, b) in baseline.iter().zip(&shuffled) {
                assert_eq!(
                    (a.start_time, a.end_time, a.total_instructions),
                    (b.start_time, b.end_time, b.total_instructions),
                    "seed {seed}: {label} edge order changed '{}'",
                    a.comm
                );
            }
        }
    }
    assert!(
        checked >= 60,
        "the sweep must actually exercise the invariant ({checked} seeds checked)"
    );
}

#[test]
fn random_dag_clusters_fire_exactly_through_the_lockstep_driver() {
    use tiptop_core::app::{Tiptop, TiptopOptions};
    use tiptop_core::config::ScreenConfig;

    for seed in 0..12u64 {
        let script = random_dag(10_000 + seed, 8, 3);
        let mut session = cluster_for(&script, 1000 + seed)
            .build()
            .expect("random DAGs validate at cluster build");
        session
            .run_collect(2, 10, |_| {
                Box::new(Tiptop::new(
                    TiptopOptions::default()
                        .observer(Uid::ROOT)
                        .delay(SimDuration::from_secs_f64(0.5)),
                    ScreenConfig::default_screen(),
                ))
            })
            .expect("cluster run");
        let records: Vec<ExitRecord> = script
            .stages
            .iter()
            .map(|st| {
                let shard = session
                    .session(&format!("node-{}", st.machine))
                    .expect("shard survived");
                let pid = shard
                    .pid(&st.tag)
                    .unwrap_or_else(|| panic!("orphan: '{}' never spawned", st.tag));
                shard
                    .kernel()
                    .exit_record(pid)
                    .unwrap_or_else(|| panic!("orphan: '{}' never exited", st.tag))
                    .clone()
            })
            .collect();
        assert_exact_firing(&script, &records);
    }
}
