//! **Pipelines** — dependency-driven scenario DAGs end to end: the
//! [`tiptop_workloads::pipelines`] scripts (a linear ETL chain, a
//! build-farm fan-out, a map-shuffle round, and a seeded random DAG) run
//! on a three-machine cluster where every stage is submitted by an
//! *after-exit* edge, not a wall-clock instant.
//!
//! Each script becomes a [`ClusterScenario`] — roots via `spawn_at`, edges
//! via [`Scenario::spawn_after`] — so cross-machine edges route the run
//! through the cluster's lockstep driver. The result records every stage's
//! exact start/end, the pipeline's wall-clock against its critical path,
//! and the merged frame stream, which is byte-identical at any
//! worker-thread count (the regression tests pin stage ordering, the
//! chain's gap arithmetic, and 1/2/8-thread identity — the random-DAG run
//! doubles as the determinism case of the byte-identity suite).

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::cluster::{ClusterFrame, ClusterScenario};
use tiptop_core::config::ScreenConfig;
use tiptop_core::scenario::Scenario;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_workloads::pipelines::{
    build_farm, etl_chain, map_shuffle, random_dag, PipelineScript, PIPELINE_USER,
};

use crate::experiments::default_threads;
use crate::report::TableReport;

/// Time compression shared by the suite's regression scale.
const SCALE: f64 = 0.1;
/// Tiptop refresh interval (simulated seconds).
const DELAY_S: f64 = 0.25;
/// Frames per machine: enough simulated time for every script to drain.
const REFRESHES: usize = 10;
/// Seed of the random-DAG determinism case.
const DAG_SEED: u64 = 2012;

/// Turn a pipeline script into a cluster scenario: one machine per index,
/// roots submitted at their scripted instants, dependent stages wired with
/// after-exit edges on their own machine.
pub fn cluster_for(script: &PipelineScript, seed: u64) -> ClusterScenario {
    let mut nodes: Vec<Scenario> = (0..script.machines)
        .map(|i| {
            Scenario::new(MachineConfig::nehalem_w3550().noiseless())
                .seed(seed + i as u64)
                .user(PIPELINE_USER, "grid")
        })
        .collect();
    for st in &script.stages {
        let spec = SpawnSpec::new(&st.tag, PIPELINE_USER, st.program.clone()).seed(st.seed);
        let node = nodes.remove(st.machine);
        let node = match &st.dep {
            None => node.spawn_at(SimTime::ZERO + st.start, &st.tag, spec),
            Some((dep, delay)) => node.spawn_after(dep, *delay, &st.tag, spec),
        };
        nodes.insert(st.machine, node);
    }
    let mut cluster = ClusterScenario::new();
    for (i, node) in nodes.into_iter().enumerate() {
        cluster = cluster.machine(format!("node-{i}"), node);
    }
    cluster
}

/// One stage's observed lifetime.
#[derive(Clone, Debug)]
pub struct StageRecord {
    pub tag: String,
    pub machine: usize,
    /// Spawn instant (simulated seconds).
    pub start: f64,
    /// Exit instant (simulated seconds).
    pub end: f64,
}

/// One script's run: exact stage records plus the byte-identity artifact.
pub struct PipelineRun {
    pub name: &'static str,
    /// Stage records in start order (ties by tag).
    pub records: Vec<StageRecord>,
    /// Last exit minus first start: the pipeline's wall-clock.
    pub wall: f64,
    /// Longest dependency chain, in stages.
    pub depth: usize,
    /// The merged frame stream rendered to bytes.
    pub stream: String,
}

pub struct PipelinesResult {
    pub runs: Vec<PipelineRun>,
}

/// Run the four pipeline shapes on the default worker pool.
pub fn run(seed: u64) -> PipelinesResult {
    run_on(seed, default_threads())
}

/// [`run`] with an explicit worker-thread count; every run's stream and
/// records are byte-identical at any count.
pub fn run_on(seed: u64, threads: usize) -> PipelinesResult {
    let scripts = [
        etl_chain(SCALE),
        build_farm(SCALE, 6),
        map_shuffle(SCALE),
        random_dag(DAG_SEED, 10, 3),
    ];
    let runs = scripts
        .into_iter()
        .map(|script| run_script(&script, seed, threads))
        .collect();
    PipelinesResult { runs }
}

fn run_script(script: &PipelineScript, seed: u64, threads: usize) -> PipelineRun {
    let mut session = cluster_for(script, seed)
        .build()
        .expect("pipeline DAGs validate at build");
    let delay = SimDuration::from_secs_f64(DELAY_S);
    let frames = session
        .run_collect(threads, REFRESHES, |_| {
            Box::new(Tiptop::new(
                TiptopOptions::default().observer(Uid::ROOT).delay(delay),
                ScreenConfig::default_screen(),
            ))
        })
        .expect("pipeline run");

    let mut records: Vec<StageRecord> = script
        .stages
        .iter()
        .map(|st| {
            let shard = session
                .session(&format!("node-{}", st.machine))
                .expect("shard survived");
            let pid = shard.pid(&st.tag).expect("every stage spawns");
            let exit = shard
                .kernel()
                .exit_record(pid)
                .expect("every stage runs to completion");
            StageRecord {
                tag: st.tag.clone(),
                machine: st.machine,
                start: exit.start_time.as_secs_f64(),
                end: exit.end_time.as_secs_f64(),
            }
        })
        .collect();
    records.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .expect("sim times are finite")
            .then_with(|| a.tag.cmp(&b.tag))
    });
    let first = records
        .iter()
        .map(|r| r.start)
        .fold(f64::INFINITY, f64::min);
    let last = records.iter().map(|r| r.end).fold(0.0, f64::max);
    PipelineRun {
        name: script.name,
        records,
        wall: last - first,
        depth: script.depth(),
        stream: rendered(&frames),
    }
}

/// The byte-identity artifact: the merged stream, labels and all.
fn rendered(frames: &[ClusterFrame]) -> String {
    frames
        .iter()
        .map(|cf| {
            format!(
                "[{} #{} {}]\n{}",
                cf.machine,
                cf.seq,
                cf.source,
                cf.frame.render()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

impl PipelinesResult {
    pub fn run_named(&self, name: &str) -> &PipelineRun {
        self.runs
            .iter()
            .find(|r| r.name == name)
            .expect("known pipeline")
    }

    pub fn report(&self) -> String {
        let mut out = String::new();
        for run in &self.runs {
            let mut t = TableReport::new(
                format!("{} (depth {}, wall {:.3}s)", run.name, run.depth, run.wall),
                &["stage", "node", "start (s)", "end (s)", "dur (s)"],
            );
            for r in &run.records {
                t.row(vec![
                    r.tag.clone(),
                    format!("node-{}", r.machine),
                    format!("{:.3}", r.start),
                    format!("{:.3}", r.end),
                    format!("{:.3}", r.end - r.start),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }
}
