//! # tiptop-core
//!
//! The paper's contribution: **tiptop**, a `top`-like monitor that attaches
//! hardware performance counters to *already-running, unmodified* tasks —
//! no root, no source code, no restart — and displays simple derived
//! metrics (IPC, last-level-cache misses per hundred instructions, branch
//! misprediction and FP-assist rates) next to the familiar `PID USER %CPU
//! ... COMMAND` columns.
//!
//! The tool is organized exactly like the original:
//!
//! * [`events`] — generic (portable) vs raw (target-specific) event
//!   selection;
//! * [`expr`] + [`config`] — fully customizable screens: every numeric
//!   column is an expression over counter deltas;
//! * [`collector`] — `/proc` discovery and `perf_event_open`-based
//!   attachment, with permission walls and task churn handled the way the
//!   real syscalls force you to;
//! * [`procinfo`] — `%CPU` computed from `/proc` deltas, like `top`;
//! * [`app`] — the refresh loop, sorting, thread aggregation, live/batch
//!   modes;
//! * [`render`] — aligned text frames (the "no graphics" philosophy);
//! * [`baseline`] — the comparators the paper measures against (`top`,
//!   Pin-style `inscount`).
//!
//! Experiments drive the tools through the **session subsystem**:
//!
//! * [`monitor`] — the [`Monitor`] trait every tool implements, plus the
//!   streaming [`FrameSink`] observer API;
//! * [`scenario`] — the declarative [`Scenario`] builder (machine, users,
//!   timed spawn/kill/renice events) and the [`Session`] loop that drives
//!   any set of monitors over one live kernel;
//! * [`session`] — per-task time-series helpers over recorded frames;
//! * [`cluster`] — the multi-machine layer: [`ClusterScenario`] builds N
//!   independent sessions (one per machine), shards them across a worker
//!   pool, and merges their frames deterministically by (time, machine)
//!   into a streaming [`ClusterFrameSink`];
//! * [`reactive`] — reactive fleet scheduling: [`SchedulerPolicy`]s
//!   ([`IpcFloor`] threshold detection, [`Cusum`] change-point detection)
//!   watch the merged stream during a
//!   [`ClusterSession::run_reactive`](cluster::ClusterSession::run_reactive)
//!   and issue live migrations — restart-from-zero or checkpoint/resume
//!   per [`MigrationMode`] — applied deterministically at the next epoch
//!   boundary.
//!
//! ## Quickstart
//!
//! ```
//! use tiptop_core::prelude::*;
//! use tiptop_kernel::prelude::*;
//! use tiptop_machine::prelude::*;
//!
//! // A Nehalem workstation with one busy task, declared as a scenario.
//! let mut session = Scenario::new(MachineConfig::nehalem_w3550())
//!     .user(Uid(1000), "alice")
//!     .spawn(
//!         "hog",
//!         SpawnSpec::new(
//!             "hog",
//!             Uid(1000),
//!             Program::endless(ExecProfile::builder("hog").build()),
//!         ),
//!     )
//!     .build()
//!     .unwrap();
//!
//! // Run tiptop for three 2-second refreshes and inspect the screen.
//! let mut tool = Tiptop::new(
//!     TiptopOptions::default().delay(SimDuration::from_secs(2)),
//!     ScreenConfig::default_screen(),
//! );
//! let frames = session.run(&mut tool, 3).unwrap();
//! let last = frames.last().unwrap();
//! let row = last.row_for_comm("hog").unwrap();
//! assert!(row.value("IPC").unwrap() > 0.5);
//! println!("{}", last.render());
//! ```

pub mod app;
pub mod baseline;
pub mod batch;
pub mod cluster;
pub mod collector;
pub mod config;
pub mod events;
pub mod expr;
pub mod monitor;
pub mod procinfo;
pub mod reactive;
pub mod render;
pub mod scenario;
pub mod session;
pub mod symbols;

pub use app::{SortKey, Tiptop, TiptopOptions};
pub use baseline::{PinInscount, PinReport, TopView};
pub use batch::FrameBatch;
pub use cluster::{
    ClusterCollectSink, ClusterFrame, ClusterFrameSink, ClusterRunError, ClusterScenario,
    ClusterSession, ClusterWindow, ClusterWindowSink, HandoverRecord, MachineRef, RunStats,
    WindowStats,
};
pub use collector::{Collector, TaskDelta};
pub use config::{ColumnKind, ColumnSpec, NumFormat, ScreenConfig};
pub use expr::Expr;
pub use monitor::{CollectSink, FrameSink, Monitor};
pub use procinfo::CpuTracker;
pub use reactive::{
    AppliedDecision, Balanced, Cusum, IpcFloor, LeastLoaded, MigrationDecision, MigrationMode,
    Population, SchedulerPolicy,
};
pub use render::{CellSpec, Frame, Row};
pub use scenario::{DagError, Scenario, Session, SessionError, Trigger, WorkloadEvent};
pub use session::{cluster_series_for_comm, machine_frames, mean, series_for_comm, series_for_pid};
pub use symbols::{Label, SymId, SymbolTable};

/// Convenient glob import.
pub mod prelude {
    pub use crate::app::{SortKey, Tiptop, TiptopOptions};
    pub use crate::baseline::{PinInscount, TopView};
    pub use crate::batch::FrameBatch;
    pub use crate::cluster::{
        ClusterCollectSink, ClusterFrame, ClusterFrameSink, ClusterRunError, ClusterScenario,
        ClusterSession, ClusterWindow, ClusterWindowSink, HandoverRecord, MachineRef, RunStats,
        WindowStats,
    };
    pub use crate::config::ScreenConfig;
    pub use crate::monitor::{CollectSink, FrameSink, Monitor};
    pub use crate::reactive::{
        AppliedDecision, Balanced, Cusum, IpcFloor, LeastLoaded, MigrationDecision, MigrationMode,
        Population, SchedulerPolicy,
    };
    pub use crate::render::Frame;
    pub use crate::scenario::{DagError, Scenario, Session, SessionError, Trigger, WorkloadEvent};
    pub use crate::session::{
        cluster_series_for_comm, machine_frames, mean, series_for_comm, series_for_pid,
    };
    pub use crate::symbols::{Label, SymId};
}
