//! The §3.1 use case: a biologists' evolutionary algorithm in R whose
//! matrices diverge to ±Inf/NaN, silently collapsing IPC through x87
//! micro-code assists.
//!
//! This module runs a *real* iterated matrix computation (no R interpreter,
//! but genuine IEEE-754 arithmetic): a population matrix is repeatedly
//! multiplied by a growth operator whose spectral radius exceeds 1 for the
//! "unstable" data set, so entries overflow to `inf` and then poison the
//! matrix with `NaN`s. The measured fraction of non-finite values in each
//! time step drives the operand-class mix of that step's interpreter
//! profile — the simulated Nehalem then takes an FP assist on exactly those
//! operations, and IPC collapses at the same time step where the arithmetic
//! diverged. With `clip` enabled (the paper's fix), values are clamped each
//! iteration and nothing collapses.

use tiptop_kernel::program::{Phase, Program};
use tiptop_machine::access::MemoryBehavior;
use tiptop_machine::exec::{ExecProfile, FpUnit};

/// Configuration of the evolutionary-algorithm model.
///
/// Timing calibration, reconciling the paper's three §3.1 measurements:
/// the collapsed IPC of 0.03 (33× the cycles per instruction), the 4.8×
/// wall-clock speedup on the faulty part alone, and the 2.3× total
/// speedup. A 33× per-instruction slowdown with only a 4.8× per-step
/// slowdown means collapsed steps retire ≈7× fewer instructions — the
/// interpreter and math library short-circuit on non-finite values while
/// every remaining x87 operation drags a ~264-cycle assist. With 1448
/// steps of 5 s each: the healthy prefix is 953 steps (1.3 h), the faulty
/// 495 steps stretch to 3.3 h (4.6 h total, ≈3330 five-second samples —
/// the paper's "3327 samples"), and the clipped run takes 2.0 h.
#[derive(Clone, Debug)]
pub struct EvolutionAlgorithm {
    /// Matrix dimension (the population grid is `n × n`).
    pub n: usize,
    /// Number of outer time steps.
    pub steps: usize,
    /// Per-step growth multiplier. >1 diverges; the default is calibrated so
    /// divergence reaches `f64::MAX` near step 953.
    pub growth: f64,
    /// Clamp values into a finite interval each iteration (the paper's fix).
    pub clip: bool,
    /// Instructions the interpreter retires per healthy time step. On the
    /// paper's machine one step took ≈5 s at IPC ≈ 1, i.e. ≈15.4 G
    /// instructions; scale down for faster experiments.
    pub instructions_per_step: u64,
    /// Factor by which a fully non-finite step's retired instructions
    /// shrink (NaN short-circuits in the interpreter's math paths).
    pub nan_work_factor: f64,
}

impl EvolutionAlgorithm {
    /// The paper's configuration, scaled: `scale = 1.0` reproduces the
    /// original ≈4.6 h run; smaller scales keep the same number of steps at
    /// proportionally shorter per-step durations.
    pub fn paper(clip: bool, scale: f64) -> Self {
        assert!(scale > 0.0, "bad scale");
        EvolutionAlgorithm {
            n: 48,
            steps: 1448,
            // Calibrated: starting magnitude ~1, f64 overflows at ~1.8e308,
            // so divergence at step S needs growth ≈ exp(ln(1e308)/S).
            growth: (709.0f64 / 953.0).exp(),
            clip,
            instructions_per_step: ((15.4e9 * scale) as u64).max(1_000_000),
            nan_work_factor: 6.9,
        }
    }

    /// Run the matrix model and return, per time step, the fraction of
    /// non-finite (Inf or NaN) matrix entries after that step.
    ///
    /// This is the actual numerics — if Rust's `f64` did not overflow the
    /// way the paper's R build did, the whole use case would vanish.
    pub fn nonfinite_trace(&self) -> Vec<f64> {
        let n = self.n;
        // Deterministic "population" and spatially varying growth field.
        let mut pop: Vec<f64> = (0..n * n)
            .map(|i| 1.0 + 0.5 * ((i as f64 * 0.7).sin()))
            .collect();
        // Growth field averaging `self.growth` with ±5% spatial variation.
        let field: Vec<f64> = (0..n * n)
            .map(|i| self.growth * (1.0 + 0.05 * ((i as f64 * 1.3).cos())))
            .collect();

        let mut trace = Vec::with_capacity(self.steps);
        let mut scratch = vec![0.0f64; n * n];
        for _step in 0..self.steps {
            // Local diffusion + growth: each cell takes a neighbourhood
            // average (migration) and multiplies by its growth factor. This
            // is the matrix-shaped computation of the paper's model.
            for r in 0..n {
                for c in 0..n {
                    let idx = r * n + c;
                    let up = pop[if r == 0 { idx } else { idx - n }];
                    let down = pop[if r == n - 1 { idx } else { idx + n }];
                    let left = pop[if c == 0 { idx } else { idx - 1 }];
                    let right = pop[if c == n - 1 { idx } else { idx + 1 }];
                    let mixed = 0.6 * pop[idx] + 0.1 * (up + down + left + right);
                    scratch[idx] = mixed * field[idx];
                }
            }
            std::mem::swap(&mut pop, &mut scratch);
            if self.clip {
                for v in pop.iter_mut() {
                    // The paper: "We clipped the values of the matrices to
                    // force them in a finite interval at each iteration."
                    *v = v.clamp(-1e6, 1e6);
                    if v.is_nan() {
                        *v = 0.0;
                    }
                }
            }
            let nonfinite = pop.iter().filter(|v| !v.is_finite()).count();
            trace.push(nonfinite as f64 / (n * n) as f64);
        }
        trace
    }

    /// Interpreter profile for one time step given the fraction of
    /// non-finite operands its FP work touches.
    fn step_profile(&self, step: usize, nonfinite_frac: f64) -> ExecProfile {
        // The R interpreter: IPC ≈ 1 with noise (paper Fig 3 (a), first 953
        // steps), pointer-heavy dispatch, modest FP density. FP ops on
        // non-finite operands assist on Nehalem x87 but not on PPC970.
        //
        // Brief "pulses" in the collapsed region (visible in Fig 3 (a)):
        // every so often a step does interpreter housekeeping (GC, I/O
        // bookkeeping) with little FP.
        let housekeeping = step.is_multiple_of(41);
        let fp = if housekeeping { 0.02 } else { 0.13 };
        ExecProfile::builder(format!("r-step{step}"))
            .base_cpi(0.86)
            .loads_per_insn(0.27)
            .stores_per_insn(0.09)
            .branches(0.19, 0.022)
            .fp(fp, FpUnit::X87)
            .operand_classes(nonfinite_frac, 0.0)
            // Mostly L1-resident (the 48×48 matrix is 36 KiB), so the
            // healthy interpreter runs at the paper's IPC ≈ 1 on Nehalem.
            .memory(MemoryBehavior::uniform(
                (self.n * self.n * 16).max(32 * 1024) as u64,
            ))
            .mlp(3.0)
            .build()
    }

    /// Build the complete program: one compute phase per time step, with
    /// operand classes taken from the real matrix trajectory. Steps whose
    /// matrices are non-finite retire fewer instructions (see the struct
    /// docs) — but each of those instructions costs vastly more cycles on a
    /// machine with x87 assists.
    pub fn program(&self) -> Program {
        let trace = self.nonfinite_trace();
        let phases: Vec<Phase> = trace
            .iter()
            .enumerate()
            .map(|(step, &frac)| {
                let shrink = (1.0 - frac) + frac / self.nan_work_factor;
                let insns = ((self.instructions_per_step as f64 * shrink) as u64).max(1000);
                Phase::compute(self.step_profile(step, frac), insns)
            })
            .collect();
        Program::run_once(phases)
    }

    /// Step index at which the matrix first contains non-finite values
    /// (`None` if it never diverges — e.g. with clipping).
    pub fn divergence_step(&self) -> Option<usize> {
        self.nonfinite_trace().iter().position(|&f| f > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(clip: bool) -> EvolutionAlgorithm {
        let mut a = EvolutionAlgorithm::paper(clip, 0.001);
        a.n = 16; // keep unit tests quick
        a
    }

    #[test]
    fn unclipped_model_diverges_near_step_953() {
        let a = small(false);
        let step = a.divergence_step().expect("must diverge");
        // The paper observes the collapse after 953 of 3327 steps. The
        // divergence step depends only on the growth calibration, not on n.
        assert!(
            (900..1010).contains(&step),
            "divergence at step {step}, expected ≈953"
        );
    }

    #[test]
    fn divergence_becomes_total() {
        let a = small(false);
        let trace = a.nonfinite_trace();
        let last = *trace.last().unwrap();
        assert!(
            last > 0.95,
            "matrix should end almost fully non-finite, got {last}"
        );
        // Monotone-ish: once diverged, never recovers.
        let d = a.divergence_step().unwrap();
        assert!(trace[d + 50] > trace[d] * 0.9);
    }

    #[test]
    fn clipped_model_never_diverges() {
        let a = small(true);
        assert_eq!(a.divergence_step(), None);
        assert!(a.nonfinite_trace().iter().all(|&f| f == 0.0));
    }

    #[test]
    fn program_has_one_phase_per_step() {
        let mut a = small(true);
        a.steps = 100;
        let p = a.program();
        assert_eq!(p.phases().len(), 100);
        assert_eq!(
            p.instructions_per_pass(),
            100 * a.instructions_per_step,
            "clipped steps all retire the full instruction budget"
        );
    }

    #[test]
    fn collapsed_steps_retire_fewer_instructions() {
        let a = small(false);
        let p = a.program();
        let healthy = p.phases()[10].instructions();
        let collapsed = p.phases()[a.steps - 10].instructions();
        let ratio = healthy as f64 / collapsed as f64;
        assert!(
            (5.5..7.5).contains(&ratio),
            "NaN steps should do ~6.9x less work, ratio {ratio}"
        );
    }

    #[test]
    fn trace_is_deterministic() {
        let a = small(false);
        assert_eq!(a.nonfinite_trace(), a.nonfinite_trace());
    }
}
