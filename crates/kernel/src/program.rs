//! Programs: what a task executes.
//!
//! A [`Program`] is a sequence of phases — compute phases described by a
//! machine-facing [`ExecProfile`] with an instruction budget, and sleep
//! phases. Phase boundaries are expressed in *retired instructions*, not
//! time: the same program takes different wall-clock time on different
//! machines (exactly the property the paper's Figure 8 exploits by plotting
//! IPC against instructions executed so the Nehalem/Core/PPC970 curves
//! align).

use std::sync::Arc;

use tiptop_machine::exec::ExecProfile;
use tiptop_machine::time::SimDuration;

/// One phase of a program.
#[derive(Clone, Debug)]
pub enum Phase {
    /// Execute `instructions` instructions behaving like `profile`.
    Compute {
        profile: ExecProfile,
        instructions: u64,
    },
    /// Block for a fixed duration (I/O, timer, idle loop in the interpreter).
    Sleep { duration: SimDuration },
}

impl Phase {
    pub fn compute(profile: ExecProfile, instructions: u64) -> Phase {
        assert!(instructions > 0, "empty compute phase");
        Phase::Compute {
            profile,
            instructions,
        }
    }

    pub fn sleep(duration: SimDuration) -> Phase {
        Phase::Sleep { duration }
    }

    /// Instructions retired by this phase (0 for sleeps).
    pub fn instructions(&self) -> u64 {
        match self {
            Phase::Compute { instructions, .. } => *instructions,
            Phase::Sleep { .. } => 0,
        }
    }
}

/// How a program continues after its last phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Continuation {
    /// The task exits.
    Exit,
    /// The phase list restarts from the beginning, forever (daemons, the
    /// monitoring tool itself).
    Loop,
}

/// A complete program: phases plus continuation behaviour.
///
/// The phase list lives behind an `Arc<[Phase]>`: cloning a `Program` — a
/// spawn spec fanned out across a fleet, a checkpoint of a running task —
/// bumps a refcount instead of deep-copying every [`ExecProfile`] in it.
#[derive(Clone, Debug)]
pub struct Program {
    phases: Arc<[Phase]>,
    continuation: Continuation,
}

impl Program {
    /// A program that runs its phases once and exits.
    pub fn run_once(phases: Vec<Phase>) -> Program {
        assert!(!phases.is_empty(), "a program needs at least one phase");
        Program {
            phases: phases.into(),
            continuation: Continuation::Exit,
        }
    }

    /// A program that repeats its phases forever.
    pub fn looping(phases: Vec<Phase>) -> Program {
        assert!(!phases.is_empty(), "a program needs at least one phase");
        Program {
            phases: phases.into(),
            continuation: Continuation::Loop,
        }
    }

    /// Single-profile convenience: run `profile` for `instructions`, then exit.
    pub fn single(profile: ExecProfile, instructions: u64) -> Program {
        Program::run_once(vec![Phase::compute(profile, instructions)])
    }

    /// Single-profile daemon: run `profile` forever.
    pub fn endless(profile: ExecProfile) -> Program {
        Program::looping(vec![Phase::compute(profile, u64::MAX / 2)])
    }

    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    pub fn continuation(&self) -> Continuation {
        self.continuation
    }

    /// Total instructions in one pass over the phases.
    pub fn instructions_per_pass(&self) -> u64 {
        self.phases.iter().map(|p| p.instructions()).sum()
    }
}

/// A task's position within its program.
#[derive(Clone, Debug, Default)]
pub struct ProgramCursor {
    pub phase_idx: usize,
    /// Instructions retired within the current compute phase.
    pub done_in_phase: u64,
    /// Completed passes over the phase list (for looping programs).
    pub passes: u64,
}

/// What the task should do next, as resolved by [`ProgramCursor::step`].
#[derive(Debug)]
pub enum NextWork<'a> {
    /// Run this profile for at most `remaining` instructions.
    Compute {
        profile: &'a ExecProfile,
        remaining: u64,
    },
    /// Sleep for this long (the cursor has already advanced past the phase).
    Sleep { duration: SimDuration },
    /// Program finished.
    Exit,
}

impl ProgramCursor {
    /// Resolve the current work item. Sleep phases are consumed by this call:
    /// the caller is expected to actually put the task to sleep, and the next
    /// `step` will look at the following phase.
    pub fn step<'a>(&mut self, program: &'a Program) -> NextWork<'a> {
        loop {
            if self.phase_idx >= program.phases.len() {
                match program.continuation {
                    Continuation::Exit => return NextWork::Exit,
                    Continuation::Loop => {
                        self.phase_idx = 0;
                        self.done_in_phase = 0;
                        self.passes += 1;
                    }
                }
            }
            match &program.phases[self.phase_idx] {
                Phase::Compute {
                    profile,
                    instructions,
                } => {
                    let remaining = instructions.saturating_sub(self.done_in_phase);
                    if remaining == 0 {
                        self.phase_idx += 1;
                        self.done_in_phase = 0;
                        continue;
                    }
                    return NextWork::Compute { profile, remaining };
                }
                Phase::Sleep { duration } => {
                    let d = *duration;
                    self.phase_idx += 1;
                    self.done_in_phase = 0;
                    return NextWork::Sleep { duration: d };
                }
            }
        }
    }

    /// Record `retired` instructions against the current compute phase.
    pub fn retire(&mut self, retired: u64) {
        self.done_in_phase += retired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptop_machine::exec::ExecProfile;

    fn prof(name: &str) -> ExecProfile {
        ExecProfile::builder(name).build()
    }

    #[test]
    fn run_once_walks_phases_then_exits() {
        let prog = Program::run_once(vec![
            Phase::compute(prof("a"), 100),
            Phase::sleep(SimDuration::from_millis(5)),
            Phase::compute(prof("b"), 50),
        ]);
        assert_eq!(prog.instructions_per_pass(), 150);
        let mut cur = ProgramCursor::default();

        match cur.step(&prog) {
            NextWork::Compute { profile, remaining } => {
                assert_eq!(profile.name, "a");
                assert_eq!(remaining, 100);
            }
            other => panic!("expected compute, got {other:?}"),
        }
        cur.retire(60);
        match cur.step(&prog) {
            NextWork::Compute { remaining, .. } => assert_eq!(remaining, 40),
            other => panic!("expected compute, got {other:?}"),
        }
        cur.retire(40);
        match cur.step(&prog) {
            NextWork::Sleep { duration } => assert_eq!(duration, SimDuration::from_millis(5)),
            other => panic!("expected sleep, got {other:?}"),
        }
        match cur.step(&prog) {
            NextWork::Compute { profile, .. } => assert_eq!(profile.name, "b"),
            other => panic!("expected compute, got {other:?}"),
        }
        cur.retire(50);
        assert!(matches!(cur.step(&prog), NextWork::Exit));
        // Exit is sticky.
        assert!(matches!(cur.step(&prog), NextWork::Exit));
    }

    #[test]
    fn looping_program_restarts_and_counts_passes() {
        let prog = Program::looping(vec![Phase::compute(prof("l"), 10)]);
        let mut cur = ProgramCursor::default();
        for pass in 0..3 {
            match cur.step(&prog) {
                NextWork::Compute { remaining, .. } => assert_eq!(remaining, 10),
                other => panic!("unexpected {other:?}"),
            }
            cur.retire(10);
            let _ = cur.step(&prog); // trigger wraparound
            assert_eq!(cur.passes, pass + 1);
        }
    }

    #[test]
    fn overshoot_retire_saturates() {
        let prog = Program::run_once(vec![Phase::compute(prof("x"), 10)]);
        let mut cur = ProgramCursor::default();
        let _ = cur.step(&prog);
        cur.retire(25); // more than the phase holds (kernel rounds up)
        assert!(matches!(cur.step(&prog), NextWork::Exit));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_program_rejected() {
        Program::run_once(vec![]);
    }
}
