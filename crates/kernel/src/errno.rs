//! Errno-style error codes for the simulated system calls.
//!
//! The perf_event and /proc interfaces fail the way Linux fails: with small
//! negative integers that callers must handle. Tiptop's robustness (tasks
//! vanishing mid-refresh, permission walls between users) is exercised
//! through these.

use std::fmt;

/// Subset of Linux errnos the simulated syscalls can return.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Errno {
    /// No such process (task exited or never existed).
    ESRCH,
    /// Permission denied (observing another user's task without privilege).
    EACCES,
    /// Invalid argument (malformed attr, bad cpu index, ...).
    EINVAL,
    /// Too many open counter fds.
    EMFILE,
    /// Bad file descriptor (closed or never opened).
    EBADF,
}

impl Errno {
    pub fn as_str(self) -> &'static str {
        match self {
            Errno::ESRCH => "ESRCH",
            Errno::EACCES => "EACCES",
            Errno::EINVAL => "EINVAL",
            Errno::EMFILE => "EMFILE",
            Errno::EBADF => "EBADF",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_names() {
        assert_eq!(Errno::ESRCH.to_string(), "ESRCH");
        assert_eq!(Errno::EACCES.to_string(), "EACCES");
    }
}
