//! The [`Monitor`] abstraction: one driver for every tool.
//!
//! The paper's evaluation runs *different monitors over the same live
//! system* — tiptop next to `top` (Fig 1), tiptop against a Pin-style
//! `inscount` (§2.4), several observers at once for the perturbation study
//! (§2.5). The seed gave each tool a bespoke driver; this module gives them
//! one contract:
//!
//! * [`Monitor::prime`] attaches at the current instant without recording
//!   (like starting the real tool);
//! * [`Monitor::interval`] is the tool's refresh period;
//! * [`Monitor::observe`] takes one [`Frame`] covering the interval since
//!   the previous call;
//! * [`Monitor::teardown`] releases kernel resources (counter fds, the
//!   modelled self-load task).
//!
//! Frames are delivered to a [`FrameSink`], so long runs can stream instead
//! of accumulating a `Vec<Frame>`. The session loop that owns the clock and
//! the timed workload events lives in [`crate::scenario`].

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use tiptop_kernel::kernel::Kernel;
use tiptop_kernel::task::Pid;
use tiptop_machine::time::SimDuration;

use crate::app::Tiptop;
use crate::baseline::{PinInscount, TopView};
use crate::render::{values_of, Frame, Row};

/// A tool that periodically observes a kernel and produces [`Frame`]s.
///
/// Implemented by [`Tiptop`], [`TopView`] and [`PinInscount`], so any of
/// them — or several concurrently — can be driven by one
/// [`crate::scenario::Session`] loop.
pub trait Monitor {
    /// Short identifier used to label frames at the sink (`"tiptop"`,
    /// `"top"`, `"pin-inscount"`).
    fn name(&self) -> &str;

    /// Refresh period. Must be positive; the session loop rejects
    /// zero-interval monitors.
    fn interval(&self) -> SimDuration;

    /// Attach to the system at the current instant without recording a
    /// frame — counters open here, so the first [`Monitor::observe`] covers
    /// exactly one interval.
    fn prime(&mut self, k: &mut Kernel);

    /// Take one observation covering the time since the previous call (or
    /// since [`Monitor::prime`]).
    fn observe(&mut self, k: &mut Kernel) -> Frame;

    /// Release any kernel resources held by the monitor. Default: nothing.
    fn teardown(&mut self, k: &mut Kernel) {
        let _ = k;
    }
}

/// Streaming consumer of frames, labelled by the producing monitor's name.
/// Frames are handed over by value — each is produced fresh per
/// observation, so the sink keeps, renders, or drops it without a copy.
pub trait FrameSink {
    fn on_frame(&mut self, source: &str, frame: Frame);
}

/// Any closure can be a sink.
impl<F: FnMut(&str, Frame)> FrameSink for F {
    fn on_frame(&mut self, source: &str, frame: Frame) {
        self(source, frame)
    }
}

/// The simplest sink: keep every frame.
#[derive(Debug, Default)]
pub struct CollectSink {
    frames: Vec<Frame>,
}

impl CollectSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    pub fn into_frames(self) -> Vec<Frame> {
        self.frames
    }
}

impl FrameSink for CollectSink {
    fn on_frame(&mut self, _source: &str, frame: Frame) {
        self.frames.push(frame);
    }
}

impl Monitor for Tiptop {
    fn name(&self) -> &str {
        "tiptop"
    }

    fn interval(&self) -> SimDuration {
        self.options().delay
    }

    fn prime(&mut self, k: &mut Kernel) {
        self.refresh(k);
    }

    fn observe(&mut self, k: &mut Kernel) -> Frame {
        self.refresh(k)
    }

    fn teardown(&mut self, k: &mut Kernel) {
        self.shutdown(k);
    }
}

impl Monitor for TopView {
    fn name(&self) -> &str {
        "top"
    }

    fn interval(&self) -> SimDuration {
        self.delay
    }

    fn prime(&mut self, k: &mut Kernel) {
        self.refresh(k);
    }

    /// `top`'s screen as a [`Frame`]: pid, user, `%CPU`, command — and
    /// nothing below the scheduler, which is the paper's point.
    fn observe(&mut self, k: &mut Kernel) -> Frame {
        let rows = self
            .refresh(k)
            .into_iter()
            .map(|r| {
                let cells = vec![
                    r.pid.0.to_string(),
                    r.user.clone(),
                    format!("{:.1}", r.cpu_pct),
                    r.comm.clone(),
                ];
                Row::new(
                    r.pid,
                    r.user,
                    r.comm,
                    r.cpu_pct,
                    cells,
                    values_of([("%CPU", r.cpu_pct)]),
                )
            })
            .collect();
        Frame {
            time: k.now(),
            headers: top_headers(),
            rows,
            unobservable: 0,
        }
    }
}

fn top_headers() -> Arc<[(String, usize)]> {
    static HEADERS: OnceLock<Arc<[(String, usize)]>> = OnceLock::new();
    HEADERS
        .get_or_init(|| {
            vec![
                ("PID".to_string(), 6),
                ("USER".to_string(), 8),
                ("%CPU".to_string(), 5),
                ("COMMAND".to_string(), 12),
            ]
            .into()
        })
        .clone()
}

impl Monitor for PinInscount {
    fn name(&self) -> &str {
        "pin-inscount"
    }

    fn interval(&self) -> SimDuration {
        self.sample_every
    }

    /// Record each live task's retired-instruction count, so subsequent
    /// observations report only what ran under instrumentation. Tasks that
    /// appear later were launched under Pin and count from their start;
    /// tasks that died *before* attach were never instrumented and are
    /// marked already-reported.
    fn prime(&mut self, k: &mut Kernel) {
        self.baselines = k
            .pids()
            .into_iter()
            .filter_map(|pid| k.stat(pid).map(|s| (pid, s.ground_truth_instructions)))
            .collect::<BTreeMap<Pid, u64>>();
        self.reported = k.exit_records().map(|rec| rec.pid).collect();
    }

    /// Pin's view: the *exact* retired instruction count per task (the
    /// instrumentation stub sees every basic block), with none of the
    /// derived rates tiptop shows. A task that exited since the previous
    /// observation — even one that spawned *and* exited entirely between
    /// two samples — gets one final row from its exit record, like real
    /// `inscount2` printing its count when the program ends.
    fn observe(&mut self, k: &mut Kernel) -> Frame {
        let pin_row = |pid: Pid, user: String, counted: u64, comm: String| {
            let cells = vec![
                pid.0.to_string(),
                user.clone(),
                counted.to_string(),
                comm.clone(),
            ];
            Row::new(
                pid,
                user,
                comm,
                0.0,
                cells,
                values_of([("INSN", counted as f64)]),
            )
        };

        let mut rows: Vec<Row> = Vec::new();

        // Final counts from tombstones not yet reported (pre-attach deaths
        // were marked reported at prime); each is emitted exactly once.
        let finals: Vec<(Pid, String, u64, String)> = k
            .exit_records()
            .filter(|rec| !self.reported.contains(&rec.pid))
            .map(|rec| {
                let baseline = self.baselines.get(&rec.pid).copied().unwrap_or(0);
                (
                    rec.pid,
                    k.username(rec.uid),
                    rec.total_instructions.saturating_sub(baseline),
                    rec.comm.clone(),
                )
            })
            .collect();
        for (pid, user, counted, comm) in finals {
            self.reported.insert(pid);
            self.baselines.remove(&pid);
            rows.push(pin_row(pid, user, counted, comm));
        }

        for pid in k.pids() {
            let Some(stat) = k.stat(pid) else { continue };
            let baseline = *self.baselines.entry(pid).or_insert(0);
            let counted = stat.ground_truth_instructions.saturating_sub(baseline);
            rows.push(pin_row(pid, k.username(stat.uid), counted, stat.comm));
        }
        rows.sort_by_key(|r| r.pid);
        static HEADERS: OnceLock<Arc<[(String, usize)]>> = OnceLock::new();
        let headers = HEADERS
            .get_or_init(|| {
                vec![
                    ("PID".to_string(), 6),
                    ("USER".to_string(), 8),
                    ("INSN".to_string(), 14),
                    ("COMMAND".to_string(), 12),
                ]
                .into()
            })
            .clone();
        Frame {
            time: k.now(),
            headers,
            rows,
            unobservable: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::TiptopOptions;
    use crate::config::ScreenConfig;
    use tiptop_kernel::kernel::{Kernel, KernelConfig};
    use tiptop_kernel::program::Program;
    use tiptop_kernel::task::{SpawnSpec, Uid};
    use tiptop_machine::access::MemoryBehavior;
    use tiptop_machine::config::MachineConfig;
    use tiptop_machine::exec::ExecProfile;

    fn world() -> (Kernel, Pid) {
        let mut k =
            Kernel::new(KernelConfig::new(MachineConfig::nehalem_w3550().noiseless()).seed(3));
        k.add_user(Uid(1), "user1");
        let pid = k.spawn(SpawnSpec::new(
            "spin",
            Uid(1),
            Program::endless(
                ExecProfile::builder("spin")
                    .base_cpi(0.8)
                    .branches(0.18, 0.0)
                    .memory(MemoryBehavior::uniform(16 * 1024))
                    .build(),
            ),
        ));
        (k, pid)
    }

    #[test]
    fn tiptop_and_top_share_the_monitor_contract() {
        let (mut k, pid) = world();
        let mut tip = Tiptop::new(
            TiptopOptions::default().delay(SimDuration::from_secs(1)),
            ScreenConfig::default_screen(),
        );
        let mut top = TopView::new().delay(SimDuration::from_secs(1));
        let monitors: &mut [&mut dyn Monitor] = &mut [&mut tip, &mut top];
        for m in monitors.iter_mut() {
            m.prime(&mut k);
        }
        k.advance(SimDuration::from_secs(1));
        for m in monitors.iter_mut() {
            let f = m.observe(&mut k);
            let row = f.row_for(pid).expect("spin visible to every monitor");
            assert!(row.value("%CPU").unwrap() > 99.0, "{}: busy task", m.name());
        }
    }

    #[test]
    fn top_frame_has_no_counter_columns() {
        let (mut k, pid) = world();
        let mut top = TopView::new();
        top.prime(&mut k);
        k.advance(SimDuration::from_secs(1));
        let f = top.observe(&mut k);
        let row = f.row_for(pid).unwrap();
        assert!(
            row.value("IPC").is_none(),
            "top sees nothing below the scheduler"
        );
        assert_eq!(f.headers.len(), 4);
        assert!(f.render().contains("COMMAND"));
    }

    #[test]
    fn pin_monitor_counts_only_from_prime() {
        let (mut k, pid) = world();
        k.advance(SimDuration::from_secs(1)); // runs uninstrumented
        let before = k.stat(pid).unwrap().ground_truth_instructions;
        assert!(before > 0);
        let mut pin = PinInscount::default();
        pin.prime(&mut k);
        k.advance(SimDuration::from_secs(1));
        let f = pin.observe(&mut k);
        let counted = f.row_for(pid).unwrap().value("INSN").unwrap() as u64;
        let lifetime = k.stat(pid).unwrap().ground_truth_instructions;
        assert_eq!(counted, lifetime - before, "exact count since attach");
    }

    #[test]
    fn pin_monitor_reports_final_count_of_exited_tasks_once() {
        let mut k =
            Kernel::new(KernelConfig::new(MachineConfig::nehalem_w3550().noiseless()).seed(3));
        k.add_user(Uid(1), "user1");
        // Retires 1e9 instructions in ~0.26 s, then exits — between the
        // t=0 prime and the t=1 sample.
        let pid = k.spawn(SpawnSpec::new(
            "short",
            Uid(1),
            Program::single(
                ExecProfile::builder("short")
                    .base_cpi(0.8)
                    .branches(0.18, 0.0)
                    .memory(MemoryBehavior::uniform(16 * 1024))
                    .build(),
                1_000_000_000,
            ),
        ));
        let mut pin = PinInscount::default();
        pin.prime(&mut k);
        k.advance(SimDuration::from_secs(1));
        assert!(!k.is_alive(pid), "program exited before the first sample");

        let f = pin.observe(&mut k);
        let row = f.row_for(pid).expect("final exact count reported");
        let counted = row.value("INSN").unwrap() as u64;
        let truth = k.exit_record(pid).unwrap().total_instructions;
        assert_eq!(counted, truth, "exit record is the exact count");
        assert_eq!(row.user, "user1", "user survives the /proc entry");

        k.advance(SimDuration::from_secs(1));
        let f2 = pin.observe(&mut k);
        assert!(
            f2.row_for(pid).is_none(),
            "final count is reported only once"
        );

        // A task that spawns AND exits entirely between two samples is
        // still reported — Pin launched it, so it sees the whole run.
        let burst = k.spawn(SpawnSpec::new(
            "burst",
            Uid(1),
            Program::single(
                ExecProfile::builder("burst")
                    .base_cpi(0.8)
                    .branches(0.18, 0.0)
                    .memory(MemoryBehavior::uniform(16 * 1024))
                    .build(),
                500_000_000,
            ),
        ));
        k.advance(SimDuration::from_secs(1));
        assert!(!k.is_alive(burst), "lived and died within the interval");
        let f3 = pin.observe(&mut k);
        let counted = f3
            .row_for(burst)
            .expect("burst reported")
            .value("INSN")
            .unwrap() as u64;
        assert_eq!(counted, k.exit_record(burst).unwrap().total_instructions);
    }

    #[test]
    fn pin_monitor_ignores_tasks_dead_before_attach() {
        let (mut k, _) = world();
        let early = k.spawn(SpawnSpec::new(
            "early",
            Uid(1),
            Program::single(ExecProfile::builder("e").base_cpi(0.8).build(), 1_000_000),
        ));
        k.advance(SimDuration::from_secs(1));
        assert!(!k.is_alive(early), "died before Pin attached");

        let mut pin = PinInscount::default();
        pin.prime(&mut k);
        k.advance(SimDuration::from_secs(1));
        let f = pin.observe(&mut k);
        assert!(
            f.row_for(early).is_none(),
            "pre-attach deaths were never instrumented"
        );
    }

    #[test]
    fn closure_is_a_sink() {
        let (mut k, _) = world();
        let mut top = TopView::new();
        top.prime(&mut k);
        k.advance(SimDuration::from_secs(1));
        let f = top.observe(&mut k);
        let mut seen = Vec::new();
        let mut sink = |source: &str, frame: Frame| {
            seen.push((source.to_string(), frame.time));
        };
        sink.on_frame("top", f);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, "top");
    }
}
