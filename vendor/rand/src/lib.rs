//! Offline stub for `rand`: a deterministic SplitMix64 generator behind the
//! small slice of the rand 0.9-style API this workspace uses
//! (`SmallRng::seed_from_u64`, `random::<f64>()`, `random_range(Range<u64>)`).

use std::ops::Range;

/// Core source of uniform 64-bit values.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable uniformly from an [`RngCore`].
pub trait Uniform: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods (the `Rng` extension trait of real rand).
pub trait RngExt: RngCore {
    fn random<T: Uniform>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw from `[start, end)`. The modulo bias is below 2⁻⁴⁰ for
    /// every range this workspace uses (working-set sizes ≪ 2²⁴ lines).
    fn random_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes BigCrush — plenty for workload noise
    /// and address-stream draws, and fully deterministic per seed.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut r = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} should be ≈0.5");
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.random_range(10..17);
            assert!((10..17).contains(&v));
        }
    }
}
