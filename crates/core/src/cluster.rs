//! Multi-machine (cluster) sessions and **distributed scenarios**: N
//! [`Session`]s — one per machine — sharded across a worker-thread pool
//! behind one observer-facing API, with their frame streams merged
//! **deterministically** by `(sim-time, machine)` into a streaming
//! [`ClusterFrameSink`].
//!
//! The paper evaluates tiptop across *three* physical machines (Figs 3,
//! 6–8) and a data-center co-run node (Fig 10); those machines are
//! physically independent, so simulating them serially wastes every core
//! but one. A [`ClusterScenario`] declares one [`Scenario`] per machine;
//! building it yields a [`ClusterSession`] whose `run*` methods drive every
//! machine concurrently. Because each shard owns its whole stack (machine,
//! kernel, monitor) and the merge orders frames by `(time, machine-index)`
//! with per-machine streams already time-ordered, **the merged stream is
//! byte-identical at any worker-thread count** — `threads: 1` and
//! `threads: 8` produce the same frames in the same order.
//!
//! On top of the independent shards sit the *distributed* affordances:
//!
//! * [`ClusterScenario::migrate_at`] — a cross-machine workload event: the
//!   grid scheduler moves a tagged job from one machine to another at an
//!   exact instant. It is validated across machines at build time and lands
//!   as a kill on the source plus a spawn of the same job spec on the
//!   destination, both at the same sim-time — so the merged stream shows
//!   the job leaving node A and appearing on node B in the same refresh.
//! * [`ClusterSession::run_all`] — the fleet-scale version of
//!   [`Session::run_all`]: every machine drives its own *set* of monitors
//!   at distinct intervals (the §2.5 perturbation story on every node at
//!   once), frames labelled `(machine, monitor)` in the merged stream.
//! * [`ClusterWindowSink`] — bounded-memory consumption for long runs:
//!   tumbling windows of the merged stream are folded into per
//!   `(machine, monitor)` column aggregates, so a fleet observed for hours
//!   never buffers more than one window of frames.
//!
//! Failure is contained per shard: a [`SessionError`] inside one machine
//! surfaces as [`SessionError::Shard`], a panic as
//! [`SessionError::ShardPanicked`]; the rest of the pool keeps running and
//! their frames still reach the sink (the exact contract is documented on
//! [`ClusterSession::run_each`]).
//!
//! ```
//! use tiptop_core::prelude::*;
//! use tiptop_kernel::prelude::*;
//! use tiptop_machine::prelude::*;
//!
//! let spin = || Program::endless(ExecProfile::builder("spin").build());
//! let node = |seed: u64| {
//!     Scenario::new(MachineConfig::nehalem_w3550().noiseless())
//!         .seed(seed)
//!         .user(Uid(1), "u1")
//! };
//! // One busy job on node-a; at t=2s the grid scheduler moves it to node-b.
//! let mut cluster = ClusterScenario::new()
//!     .machine("node-a", node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin())))
//!     .machine("node-b", node(2))
//!     .migrate_at(SimTime::from_secs(2), "job", "node-a", "node-b")
//!     .build()
//!     .unwrap();
//! let frames = cluster
//!     .run_collect(2, 3, |_m| {
//!         Box::new(Tiptop::new(
//!             TiptopOptions::default().delay(SimDuration::from_secs(1)),
//!             ScreenConfig::default_screen(),
//!         ))
//!     })
//!     .unwrap();
//! // 2 machines x 3 refreshes, merged by (time, machine).
//! assert_eq!(frames.len(), 6);
//! let on = |t: u64, machine: &str| {
//!     frames
//!         .iter()
//!         .find(|cf| cf.machine == machine && cf.frame.time == SimTime::from_secs(t))
//!         .is_some_and(|cf| cf.frame.row_for_comm("job").is_some())
//! };
//! assert!(on(1, "node-a") && !on(1, "node-b"), "before: job lives on node-a");
//! // The handover refresh at t=2 shows the job twice: its final row on the
//! // source (it ran right up to the kill instant) and its first row on the
//! // destination. One refresh later it lives only on node-b.
//! assert!(on(2, "node-a") && on(2, "node-b"), "t=2 is the handover frame");
//! assert!(!on(3, "node-a") && on(3, "node-b"), "after: only node-b");
//! ```

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

use tiptop_machine::time::SimTime;

use crate::monitor::Monitor;
use crate::render::Frame;
use crate::scenario::{Scenario, Session, SessionError, WorkloadEvent};

/// Identity of one machine of the cluster, handed to the per-machine
/// factories (monitor, stop predicate).
#[derive(Clone, Copy, Debug)]
pub struct MachineRef<'a> {
    pub id: &'a str,
    /// Declaration index; the merge tie-breaker for same-instant frames.
    pub index: usize,
}

/// One frame of the merged cluster stream, labelled with its origin.
#[derive(Clone, Debug)]
pub struct ClusterFrame {
    /// Machine id as declared on the [`ClusterScenario`].
    pub machine: String,
    /// Machine declaration index (the merge tie-breaker).
    pub machine_index: usize,
    /// Producing monitor's [`Monitor::name`].
    pub source: String,
    /// Per-(machine, monitor) observation number (0-based).
    pub seq: usize,
    pub frame: Frame,
}

/// Streaming consumer of the merged cluster stream. Frames arrive in
/// `(time, machine_index)` order regardless of the worker-thread count;
/// same-instant frames of one machine keep their monitor order.
pub trait ClusterFrameSink {
    fn on_frame(&mut self, frame: ClusterFrame);
}

/// Any closure can be a sink.
impl<F: FnMut(ClusterFrame)> ClusterFrameSink for F {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self(frame)
    }
}

/// The simplest sink: keep the whole merged stream. For runs long enough
/// that this buffer matters, use [`ClusterWindowSink`] instead.
#[derive(Debug, Default)]
pub struct ClusterCollectSink {
    frames: Vec<ClusterFrame>,
}

impl ClusterCollectSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn frames(&self) -> &[ClusterFrame] {
        &self.frames
    }

    pub fn into_frames(self) -> Vec<ClusterFrame> {
        self.frames
    }
}

impl ClusterFrameSink for ClusterCollectSink {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self.frames.push(frame);
    }
}

/// Per-`(machine, monitor)` aggregates of one [`ClusterWindow`].
#[derive(Clone, Debug, Default)]
pub struct WindowStats {
    /// Frames this source contributed to the window.
    pub frames: usize,
    /// Task rows across those frames.
    pub rows: usize,
    /// Per-column `(sum, samples)` over every finite row value.
    sums: BTreeMap<String, (f64, usize)>,
}

impl WindowStats {
    /// Mean of a typed column (e.g. `"IPC"`, `"%CPU"`) over every row of
    /// every frame in the window; `None` if the column never appeared.
    pub fn mean(&self, column: &str) -> Option<f64> {
        self.sums
            .get(column)
            .filter(|(_, n)| *n > 0)
            .map(|(sum, n)| sum / *n as f64)
    }

    /// Column names observed in this window.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.sums.keys().map(String::as_str)
    }
}

/// One tumbling window of the merged stream, folded to aggregates.
#[derive(Clone, Debug)]
pub struct ClusterWindow {
    /// 0-based window number.
    pub index: usize,
    /// Time of the first / last frame aggregated into the window.
    pub start: SimTime,
    pub end: SimTime,
    /// Total frames folded in (the window size, except for the final
    /// partial window).
    pub frames: usize,
    /// Aggregates keyed by `(machine, monitor-name)`.
    pub sources: BTreeMap<(String, String), WindowStats>,
}

/// Bounded-memory sink for long cluster runs: buffers at most `window`
/// frames, folding each full window into per-source column aggregates
/// ([`ClusterWindow`]) and dropping the raw frames. Peak memory is one
/// window of frames plus `O(total / window)` small summaries — a fleet
/// observed for hours never holds its whole stream, unlike
/// [`ClusterCollectSink`].
///
/// Callers who need the raw frames spilled elsewhere (rendered to a file,
/// forwarded downstream) can chain a closure sink in front; this sink's
/// job is the bounded aggregate view.
#[derive(Debug)]
pub struct ClusterWindowSink {
    window: usize,
    buf: Vec<ClusterFrame>,
    peak: usize,
    windows: Vec<ClusterWindow>,
}

impl ClusterWindowSink {
    /// `window` is the maximum number of frames buffered at any instant
    /// (must be ≥ 1).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one frame");
        ClusterWindowSink {
            window,
            buf: Vec::new(),
            peak: 0,
            windows: Vec::new(),
        }
    }

    /// The most frames ever buffered at once (≤ the window size, by
    /// construction — the memory-bound guarantee, asserted in tests).
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// Windows folded so far (the still-buffered tail is not included
    /// until [`ClusterWindowSink::finish`]).
    pub fn windows(&self) -> &[ClusterWindow] {
        &self.windows
    }

    /// Flush the partial final window and return every summary.
    pub fn finish(mut self) -> Vec<ClusterWindow> {
        self.flush();
        self.windows
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let start = self.buf.first().expect("non-empty").frame.time;
        let end = self.buf.last().expect("non-empty").frame.time;
        let mut sources: BTreeMap<(String, String), WindowStats> = BTreeMap::new();
        let frames = self.buf.len();
        for cf in self.buf.drain(..) {
            let stats = sources.entry((cf.machine, cf.source)).or_default();
            stats.frames += 1;
            stats.rows += cf.frame.rows.len();
            for row in &cf.frame.rows {
                for (col, v) in &row.values {
                    if v.is_finite() {
                        let (sum, n) = stats.sums.entry(col.clone()).or_insert((0.0, 0));
                        *sum += *v;
                        *n += 1;
                    }
                }
            }
        }
        self.windows.push(ClusterWindow {
            index: self.windows.len(),
            start,
            end,
            frames,
            sources,
        });
    }
}

impl ClusterFrameSink for ClusterWindowSink {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self.buf.push(frame);
        self.peak = self.peak.max(self.buf.len());
        if self.buf.len() >= self.window {
            self.flush();
        }
    }
}

/// A cross-machine workload event: the grid scheduler moves a tagged job
/// between machines at an exact instant (see
/// [`ClusterScenario::migrate_at`]).
#[derive(Debug)]
struct Migration {
    at: SimTime,
    tag: String,
    from: String,
    to: String,
}

/// Declarative description of a multi-machine experiment: one [`Scenario`]
/// per machine — each with its own machine config, seed, users, and timed
/// workload events — plus *cross-machine* events ([`migrate_at`]) that span
/// two machines and are validated against both at build time.
///
/// [`migrate_at`]: ClusterScenario::migrate_at
#[derive(Debug, Default)]
pub struct ClusterScenario {
    machines: Vec<(String, Scenario)>,
    migrations: Vec<Migration>,
}

impl ClusterScenario {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one machine. `id` labels its frames in the merged stream and
    /// must be unique; declaration order fixes the merge tie-breaker.
    pub fn machine(mut self, id: impl Into<String>, scenario: Scenario) -> Self {
        self.machines.push((id.into(), scenario));
        self
    }

    /// Move the job tagged `tag` from machine `from` to machine `to` at an
    /// absolute instant — the §fig10 grid-scheduler story, where a workload
    /// *moves* mid-run instead of merely co-running.
    ///
    /// The migration desugars into a kill of `tag` on `from` and a spawn of
    /// the *same job spec* (fresh on the new machine, as a scheduler
    /// re-submission restarts the binary) on `to`, both at exactly `at`:
    /// the source's exit record and the destination's start time carry the
    /// same sim-time. In the merged stream a refresh landing on `at` is the
    /// *handover frame* — the source still shows the job's final row (it
    /// ran right up to the kill instant; the kernel reaps the zombie at the
    /// next epoch) while the destination already shows its first row; from
    /// the next refresh the job lives only on the destination.
    ///
    /// Validated at build time across machines: both ids must exist and
    /// differ, `tag` must live on `from` at `at` (spawned before, not yet
    /// killed), and `to` must not already carry the tag. Migrations chain
    /// *forward* — a later `migrate_at` may move the job onward from its
    /// current home, but returning it to a machine it already ran on is
    /// rejected (a tag resolves to one task per machine; see the ROADMAP's
    /// checkpointing item).
    pub fn migrate_at(
        mut self,
        at: SimTime,
        tag: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> Self {
        self.migrations.push(Migration {
            at,
            tag: tag.into(),
            from: from.into(),
            to: to.into(),
        });
        self
    }

    /// Validate every per-machine scenario *and* every cross-machine
    /// migration, then build the live [`ClusterSession`]. A scenario error
    /// is labelled with its machine; a migration error names the migration.
    pub fn build(mut self) -> Result<ClusterSession, SessionError> {
        if self.machines.is_empty() {
            return Err(SessionError::InvalidScenario(
                "cluster has no machines".into(),
            ));
        }
        {
            let mut seen = std::collections::HashSet::new();
            for (id, _) in &self.machines {
                if !seen.insert(id.clone()) {
                    return Err(SessionError::InvalidScenario(format!(
                        "duplicate machine id '{id}'"
                    )));
                }
            }
        }

        // Desugar migrations in chronological order (stable: same-instant
        // migrations keep declaration order, so chained moves compose),
        // validating each against the machines' evolving schedules.
        self.migrations.sort_by_key(|m| m.at);
        for m in &self.migrations {
            let label = format!(
                "migration of '{}' {}->{} at {:?}",
                m.tag, m.from, m.to, m.at
            );
            if m.from == m.to {
                return Err(SessionError::InvalidScenario(format!(
                    "{label}: source and destination are the same machine"
                )));
            }
            let index_of = |id: &str| self.machines.iter().position(|(mid, _)| mid == id);
            let (Some(fi), Some(ti)) = (index_of(&m.from), index_of(&m.to)) else {
                let missing = if index_of(&m.from).is_none() {
                    &m.from
                } else {
                    &m.to
                };
                return Err(SessionError::InvalidScenario(format!(
                    "{label}: unknown machine '{missing}'"
                )));
            };
            let Some((spawned, spec)) = self.machines[fi].1.spawn_event(&m.tag) else {
                let home = self
                    .machines
                    .iter()
                    .find(|(_, sc)| sc.spawn_event(&m.tag).is_some())
                    .map(|(id, _)| id.clone());
                return Err(SessionError::InvalidScenario(match home {
                    Some(home) => format!("{label}: '{}' lives on machine '{home}'", m.tag),
                    None => format!("{label}: no machine spawns '{}'", m.tag),
                }));
            };
            if spawned > m.at {
                return Err(SessionError::InvalidScenario(format!(
                    "{label}: precedes the job's spawn at {spawned:?}"
                )));
            }
            if let Some(killed) = self.machines[fi].1.kill_event(&m.tag) {
                if killed <= m.at {
                    return Err(SessionError::InvalidScenario(format!(
                        "{label}: the job is already gone (killed at {killed:?})"
                    )));
                }
            }
            if self.machines[ti].1.spawn_event(&m.tag).is_some() {
                // Distinguish a live collision from a round trip: a tag
                // resolves to one task per machine, so returning a job to
                // a machine it already ran on is not expressible yet.
                let returning = self.machines[ti]
                    .1
                    .kill_event(&m.tag)
                    .is_some_and(|killed| killed <= m.at);
                return Err(SessionError::InvalidScenario(if returning {
                    format!(
                        "{label}: '{}' already ran on the destination earlier; round-trip \
                         migrations are not supported (a tag resolves to one task per machine)",
                        m.tag
                    )
                } else {
                    format!(
                        "{label}: destination already carries a task tagged '{}'",
                        m.tag
                    )
                }));
            }
            let spec = spec.clone();
            self.machines[fi]
                .1
                .schedule(m.at, WorkloadEvent::Kill { tag: m.tag.clone() });
            self.machines[ti].1.schedule(
                m.at,
                WorkloadEvent::Spawn {
                    tag: m.tag.clone(),
                    spec,
                },
            );
        }

        let mut shards = Vec::with_capacity(self.machines.len());
        for (id, scenario) in self.machines {
            let session = scenario.build().map_err(|e| SessionError::Shard {
                machine: id.clone(),
                error: Box::new(e),
            })?;
            shards.push(ShardSlot {
                id,
                session: Some(session),
            });
        }
        Ok(ClusterSession { shards })
    }
}

struct ShardSlot {
    id: String,
    /// `None` only while a run borrows it, or after a panic tore the shard
    /// mid-epoch (the torn session is never handed back).
    session: Option<Session>,
}

/// A live cluster: every machine's [`Session`], runnable on a worker pool.
pub struct ClusterSession {
    shards: Vec<ShardSlot>,
}

impl fmt::Debug for ClusterSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterSession")
            .field(
                "machines",
                &self.shards.iter().map(|s| &s.id).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// The error of [`ClusterSession::run_collect`]: the failure *plus* every
/// frame the merge delivered — per the deliver-then-error contract a
/// two-hour fleet run is not lost to one bad shard.
#[derive(Debug)]
pub struct ClusterRunError {
    pub error: SessionError,
    /// The merged stream as streamed up to pool drain, in `(time,
    /// machine)` order — the healthy machines' full runs and the failed
    /// machines' pre-failure frames.
    pub partial: Vec<ClusterFrame>,
}

impl fmt::Display for ClusterRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} merged frames preserved)",
            self.error,
            self.partial.len()
        )
    }
}

impl std::error::Error for ClusterRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

type Until = Box<dyn FnMut(&Frame) -> bool + Send>;

impl ClusterSession {
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Machine ids in declaration (= merge tie-break) order.
    pub fn machines(&self) -> impl Iterator<Item = MachineRef<'_>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, s)| MachineRef { id: &s.id, index })
    }

    /// One machine's session, for pid lookups and exit records after a run.
    /// `None` for unknown ids — or for a shard whose session was lost to a
    /// panic (a torn session is never handed back).
    pub fn session(&self, id: &str) -> Option<&Session> {
        self.shards
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| s.session.as_ref())
    }

    /// Drive every machine for up to `max_refreshes` frames of its own
    /// monitor, stopping a machine early when its `until` predicate says so
    /// (the stopping frame is still delivered). Work is sharded over
    /// `threads` workers (clamped to `1..=machines`); frames stream into
    /// `sink` merged by `(time, machine_index)` — deterministically, at any
    /// thread count.
    ///
    /// # Failure contract: deliver-then-error
    ///
    /// A shard failure does **not** tear down the run. The contract, locked
    /// by the multi-shard failure tests:
    ///
    /// * every healthy machine keeps running to completion and its frames
    ///   keep streaming into `sink` — including frames with times *after*
    ///   the failure instant (the sink sees the whole surviving fleet, then
    ///   the caller sees the error);
    /// * frames the failed machine produced *before* failing are still
    ///   merged at their proper `(time, machine)` position relative to
    ///   every other stream — never reordered around the failure;
    /// * only after the pool has drained does `run_each` return the first
    ///   failure **by machine index** (deterministic at any thread count);
    ///   when several shards fail, the later-indexed errors are dropped but
    ///   their pre-failure frames are not.
    ///
    /// Callers who need the stream on error should stream into their own
    /// sink (it is fully populated before the error returns) or use
    /// [`ClusterSession::run_collect`], whose error carries the partial
    /// merged stream.
    pub fn run_each(
        &mut self,
        threads: usize,
        max_refreshes: usize,
        mut monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
        mut until: impl FnMut(MachineRef<'_>) -> Until,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_units(
            threads,
            max_refreshes,
            |mref| vec![(monitor(mref), until(mref))],
            sink,
        )
    }

    /// Drive every machine's own *set* of monitors — [`Session::run_all`]
    /// lifted to the fleet. Each machine's `monitors(mref)` are primed
    /// together and observed on their own intervals until every one has
    /// produced `refreshes` frames; a machine with an empty set is done
    /// immediately. Frames are labelled `(machine, monitor-name)` in the
    /// merged stream; same-instant frames of one machine observe (and
    /// merge) in set order, same-instant frames of different machines in
    /// machine order — so the merged stream stays byte-identical at any
    /// worker-thread count. The failure contract is that of
    /// [`ClusterSession::run_each`].
    pub fn run_all(
        &mut self,
        threads: usize,
        refreshes: usize,
        mut monitors: impl FnMut(MachineRef<'_>) -> Vec<Box<dyn Monitor + Send>>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_units(
            threads,
            refreshes,
            |mref| {
                monitors(mref)
                    .into_iter()
                    .map(|m| {
                        let u: Until = Box::new(|_| false);
                        (m, u)
                    })
                    .collect()
            },
            sink,
        )
    }

    /// The shared driver behind [`run_each`](ClusterSession::run_each) and
    /// [`run_all`](ClusterSession::run_all).
    fn run_units(
        &mut self,
        threads: usize,
        max_refreshes: usize,
        mut tools: impl FnMut(MachineRef<'_>) -> Vec<(Box<dyn Monitor + Send>, Until)>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        let n = self.shards.len();
        for slot in &self.shards {
            if slot.session.is_none() {
                return Err(SessionError::ShardPanicked {
                    machine: slot.id.clone(),
                    message: "session was lost to a panic in an earlier run".into(),
                });
            }
        }
        // Build and validate every machine's monitors and stop predicates
        // *before* taking any session out of its slot, so an error here
        // leaves the cluster untouched and re-runnable.
        let mut per_machine: Vec<Vec<(Box<dyn Monitor + Send>, Until)>> = Vec::with_capacity(n);
        for (index, slot) in self.shards.iter().enumerate() {
            let mref = MachineRef {
                id: &slot.id,
                index,
            };
            let set = tools(mref);
            for (m, _) in &set {
                if m.interval().is_zero() {
                    return Err(SessionError::InvalidScenario(format!(
                        "machine '{}': monitor '{}' has a zero refresh interval",
                        slot.id,
                        m.name()
                    )));
                }
            }
            per_machine.push(set);
        }
        let mut units: Vec<WorkUnit> = Vec::with_capacity(n);
        for ((index, slot), set) in self.shards.iter_mut().enumerate().zip(per_machine) {
            units.push(WorkUnit {
                index,
                id: slot.id.clone(),
                session: slot.session.take().expect("checked above"),
                slots: set
                    .into_iter()
                    .map(|(monitor, until)| MonitorSlot {
                        monitor,
                        until,
                        next_at: SimTime::ZERO,
                        taken: 0,
                        done: false,
                    })
                    .collect(),
            });
        }

        let threads = threads.clamp(1, n);
        let mut parts: Vec<Vec<WorkUnit>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, u) in units.into_iter().enumerate() {
            parts[i % threads].push(u);
        }

        let (tx, rx) = mpsc::channel::<Msg>();
        let mut merger = Merger::new(n);
        let mut first_err: Option<(usize, SessionError)> = None;
        let mut returned: Vec<(usize, Option<Session>)> = Vec::with_capacity(n);

        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|part| {
                    let tx = tx.clone();
                    scope.spawn(move || run_worker(part, max_refreshes, tx))
                })
                .collect();
            drop(tx);

            for msg in rx {
                match msg {
                    Msg::Frame { index, frame } => merger.push(index, frame, sink),
                    Msg::Done { index } => merger.close(index, sink),
                    Msg::Failed { index, error } => {
                        merger.close(index, sink);
                        if first_err.as_ref().is_none_or(|(i, _)| index < *i) {
                            first_err = Some((index, error));
                        }
                    }
                }
            }

            for h in handles {
                // Workers never unwind (shard panics are caught inside);
                // a join error here would be a bug in the pool itself.
                returned.extend(h.join().expect("worker thread panicked"));
            }
        });

        for (index, session) in returned {
            self.shards[index].session = session;
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// [`ClusterSession::run_each`] without early stopping: every machine
    /// produces exactly `refreshes` frames.
    pub fn run(
        &mut self,
        threads: usize,
        refreshes: usize,
        monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_each(threads, refreshes, monitor, |_| Box::new(|_| false), sink)
    }

    /// [`ClusterSession::run`] into a [`ClusterCollectSink`], returning the
    /// merged stream. On failure the error carries every frame merged
    /// before the pool drained ([`ClusterRunError::partial`]) — the
    /// deliver-then-error contract means a long run's healthy shards are
    /// preserved, not discarded.
    pub fn run_collect(
        &mut self,
        threads: usize,
        refreshes: usize,
        monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
    ) -> Result<Vec<ClusterFrame>, ClusterRunError> {
        let mut sink = ClusterCollectSink::new();
        match self.run(threads, refreshes, monitor, &mut sink) {
            Ok(()) => Ok(sink.into_frames()),
            Err(error) => Err(ClusterRunError {
                error,
                partial: sink.into_frames(),
            }),
        }
    }
}

/// One monitor of one machine: its own interval clock, stop predicate and
/// observation count.
struct MonitorSlot {
    monitor: Box<dyn Monitor + Send>,
    until: Until,
    next_at: SimTime,
    taken: usize,
    done: bool,
}

struct WorkUnit {
    index: usize,
    id: String,
    session: Session,
    slots: Vec<MonitorSlot>,
}

enum Msg {
    Frame { index: usize, frame: ClusterFrame },
    Done { index: usize },
    Failed { index: usize, error: SessionError },
}

struct MergeQueue {
    buf: VecDeque<ClusterFrame>,
    /// Still producing: its head bounds what may still arrive.
    open: bool,
}

impl Default for MergeQueue {
    fn default() -> Self {
        MergeQueue {
            buf: VecDeque::new(),
            open: true,
        }
    }
}

/// The deterministic k-way merge, driven incrementally: a frontier heap
/// holds the head `(time, machine)` key of every non-empty queue, so
/// delivering a frame costs `O(log n)` instead of rescanning all `n`
/// queues per delivered frame. Frames may be emitted only while no
/// still-producing queue is empty — such a queue could still emit a frame
/// earlier than every buffered head.
struct Merger {
    queues: Vec<MergeQueue>,
    /// Min-heap over each non-empty queue's head key; every non-empty
    /// queue appears exactly once.
    frontier: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// How many queues are open with nothing buffered — while any exist,
    /// the merge must wait on them.
    blocked: usize,
}

impl Merger {
    fn new(n: usize) -> Self {
        Merger {
            queues: (0..n).map(|_| MergeQueue::default()).collect(),
            frontier: BinaryHeap::with_capacity(n),
            blocked: n,
        }
    }

    fn push(&mut self, index: usize, frame: ClusterFrame, sink: &mut dyn ClusterFrameSink) {
        let q = &mut self.queues[index];
        if q.buf.is_empty() {
            self.frontier.push(Reverse((frame.frame.time, index)));
            // Per-machine messages are ordered (one worker owns the
            // machine), so a frame never arrives after Done/Failed.
            if q.open {
                self.blocked -= 1;
            }
        }
        q.buf.push_back(frame);
        self.drain(sink);
    }

    fn close(&mut self, index: usize, sink: &mut dyn ClusterFrameSink) {
        let q = &mut self.queues[index];
        if q.open {
            q.open = false;
            if q.buf.is_empty() {
                self.blocked -= 1;
            }
        }
        self.drain(sink);
    }

    fn drain(&mut self, sink: &mut dyn ClusterFrameSink) {
        while self.blocked == 0 {
            let Some(Reverse((_, i))) = self.frontier.pop() else {
                return;
            };
            let q = &mut self.queues[i];
            let frame = q.buf.pop_front().expect("frontier tracks non-empty queues");
            match q.buf.front() {
                Some(head) => {
                    let key = (head.frame.time, i);
                    self.frontier.push(Reverse(key));
                }
                None => {
                    if q.open {
                        self.blocked += 1;
                    }
                }
            }
            sink.on_frame(frame);
        }
    }
}

/// One worker: owns a set of machines and always advances the (machine,
/// monitor) whose next observation is earliest (ties by machine index,
/// then monitor order), so the global merge frontier keeps moving and the
/// merger buffers as little as possible.
fn run_worker(
    units: Vec<WorkUnit>,
    max_refreshes: usize,
    tx: mpsc::Sender<Msg>,
) -> Vec<(usize, Option<Session>)> {
    let mut finished: Vec<(usize, Option<Session>)> = Vec::new();
    let mut active: Vec<WorkUnit> = Vec::new();

    for mut unit in units {
        if max_refreshes == 0 || unit.slots.is_empty() {
            let _ = tx.send(Msg::Done { index: unit.index });
            finished.push((unit.index, Some(unit.session)));
            continue;
        }
        let primed = guard(&unit.id, || {
            for slot in &mut unit.slots {
                slot.monitor.prime(unit.session.kernel_mut());
            }
            Ok(())
        });
        match primed {
            Ok(()) => {
                let now = unit.session.now();
                for slot in &mut unit.slots {
                    slot.next_at = now + slot.monitor.interval();
                }
                active.push(unit);
            }
            Err(e) => {
                let _ = tx.send(Msg::Failed {
                    index: unit.index,
                    error: e,
                });
                finished.push((unit.index, None));
            }
        }
    }

    while !active.is_empty() {
        // The earliest pending observation across every owned machine:
        // (time, machine index, monitor order) for determinism.
        let (pos, spos) = active
            .iter()
            .enumerate()
            .flat_map(|(p, u)| {
                u.slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done)
                    .map(move |(sp, s)| ((s.next_at, u.index, sp), (p, sp)))
            })
            .min_by_key(|(key, _)| *key)
            .map(|(_, at)| at)
            .expect("active units have live slots");
        let unit = &mut active[pos];
        let step = {
            let session = &mut unit.session;
            let slot = &mut unit.slots[spos];
            guard(&unit.id, || {
                session.advance_to(slot.next_at)?;
                let frame = slot.monitor.observe(session.kernel_mut());
                let stop = (slot.until)(&frame);
                Ok((frame, stop))
            })
        };
        match step {
            Ok((frame, stop)) => {
                let slot = &mut unit.slots[spos];
                slot.taken += 1;
                let _ = tx.send(Msg::Frame {
                    index: unit.index,
                    frame: ClusterFrame {
                        machine: unit.id.clone(),
                        machine_index: unit.index,
                        source: slot.monitor.name().to_string(),
                        seq: slot.taken - 1,
                        frame,
                    },
                });
                if stop || slot.taken >= max_refreshes {
                    slot.done = true;
                } else {
                    slot.next_at += slot.monitor.interval();
                }
                if unit.slots.iter().all(|s| s.done) {
                    let mut done = active.swap_remove(pos);
                    // A teardown panic tears the shard like an observe
                    // panic would: surface it and withhold the session.
                    let torn_down = guard(&done.id, || {
                        for slot in &mut done.slots {
                            slot.monitor.teardown(done.session.kernel_mut());
                        }
                        Ok(())
                    });
                    match torn_down {
                        Ok(()) => {
                            let _ = tx.send(Msg::Done { index: done.index });
                            finished.push((done.index, Some(done.session)));
                        }
                        Err(error) => {
                            let _ = tx.send(Msg::Failed {
                                index: done.index,
                                error,
                            });
                            finished.push((done.index, None));
                        }
                    }
                }
            }
            Err(e) => {
                let failed = active.swap_remove(pos);
                // A panic may have torn the shard mid-epoch; only a clean
                // SessionError hands the session back.
                let torn = matches!(e, SessionError::ShardPanicked { .. });
                let error = match e {
                    e @ SessionError::ShardPanicked { .. } => e,
                    other => SessionError::Shard {
                        machine: failed.id.clone(),
                        error: Box::new(other),
                    },
                };
                let _ = tx.send(Msg::Failed {
                    index: failed.index,
                    error,
                });
                finished.push((failed.index, (!torn).then_some(failed.session)));
            }
        }
    }
    finished
}

/// Run `f`, converting an unwind into a typed [`SessionError::ShardPanicked`]
/// so one shard's panic never poisons the pool.
fn guard<T>(machine: &str, f: impl FnOnce() -> Result<T, SessionError>) -> Result<T, SessionError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(SessionError::ShardPanicked {
            machine: machine.to_string(),
            message: panic_message(payload),
        }),
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compile-time proof that a whole shard (session + stack below it) can
/// move to a worker thread.
#[allow(dead_code)]
fn assert_shard_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Session>();
}
