//! One module per paper artifact. Every module exposes `run(...) -> Result`
//! returning structured data plus a `report()` rendering the same rows or
//! series the paper shows. The binaries in `src/bin/` are thin wrappers;
//! Criterion benches run reduced-scale versions of the same functions.

pub mod fig01_snapshot;
pub mod fig03_evolution;
pub mod fig06_07_phases;
pub mod fig08_ipc_vs_instructions;
pub mod fig09_compilers;
pub mod fig10_datacenter;
pub mod fig11_interference;
pub mod table1_fp_micro;
pub mod validation;

use tiptop_kernel::kernel::{Kernel, KernelConfig};
use tiptop_machine::config::MachineConfig;

/// Fresh deterministic kernel on the given machine.
pub fn kernel_on(machine: MachineConfig, seed: u64) -> Kernel {
    Kernel::new(KernelConfig::new(machine).seed(seed))
}

/// The three evaluation machines of Figs 3/6/7/8, labelled as the paper
/// labels them.
pub fn evaluation_machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("Nehalem", MachineConfig::nehalem_w3550()),
        ("Core", MachineConfig::core2_machine()),
        ("PPC970", MachineConfig::ppc970_machine()),
    ]
}
