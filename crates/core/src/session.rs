//! Per-task time-series extraction from recorded frames.
//!
//! The experiment driver itself is the [`crate::monitor`] /
//! [`crate::scenario`] subsystem: build a
//! [`Scenario`](crate::scenario::Scenario) and use
//! [`Session::run`](crate::scenario::Session::run), which owns the clock,
//! applies timed workload events, and can drive several monitors at once.
//! (The deprecated `run_refreshes`/`run_until` free-function shims that used
//! to live here are gone; their semantics live on in `Session::run`.)
//!
//! What remains are the series helpers ([`series_for_pid`],
//! [`series_for_comm`], [`mean`]) that the figure-regeneration experiments
//! consume to turn frame streams into `(time, value)` curves.

//! The cluster-stream variants ([`machine_frames`],
//! [`cluster_series_for_comm`]) slice one machine (and optionally one
//! monitor) out of a merged [`ClusterFrame`] stream first.

use tiptop_kernel::task::Pid;

use crate::cluster::ClusterFrame;
use crate::render::Frame;

/// Extract `(time_s, value)` samples of one column for one pid across
/// frames; frames where the task is absent are skipped.
pub fn series_for_pid(frames: &[Frame], pid: Pid, column: &str) -> Vec<(f64, f64)> {
    frames
        .iter()
        .filter_map(|f| {
            f.row_for(pid)
                .and_then(|r| r.value(column))
                .filter(|v| v.is_finite())
                .map(|v| (f.time.as_secs_f64(), v))
        })
        .collect()
}

/// Extract a column series for the first task matching a command name.
pub fn series_for_comm(frames: &[Frame], comm: &str, column: &str) -> Vec<(f64, f64)> {
    frames
        .iter()
        .filter_map(|f| {
            f.row_for_comm(comm)
                .and_then(|r| r.value(column))
                .filter(|v| v.is_finite())
                .map(|v| (f.time.as_secs_f64(), v))
        })
        .collect()
}

/// One machine's frames out of a merged cluster stream, in merge (= time)
/// order; `source` further restricts to one monitor's frames when a
/// [`ClusterSession::run_all`](crate::cluster::ClusterSession::run_all)
/// run interleaved several monitors per machine.
pub fn machine_frames(merged: &[ClusterFrame], machine: &str, source: Option<&str>) -> Vec<Frame> {
    merged
        .iter()
        .filter(|cf| cf.machine == machine && source.is_none_or(|s| cf.source == s))
        .map(|cf| cf.frame.clone())
        .collect()
}

/// [`series_for_comm`] over one machine's slice of a merged cluster
/// stream.
pub fn cluster_series_for_comm(
    merged: &[ClusterFrame],
    machine: &str,
    source: Option<&str>,
    comm: &str,
    column: &str,
) -> Vec<(f64, f64)> {
    series_for_comm(&machine_frames(merged, machine, source), comm, column)
}

/// Mean of a series' values (0 for empty).
pub fn mean(series: &[(f64, f64)]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().map(|(_, v)| v).sum::<f64>() / series.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Tiptop, TiptopOptions};
    use crate::config::ScreenConfig;
    use crate::scenario::Scenario;
    use tiptop_kernel::program::Program;
    use tiptop_kernel::task::{SpawnSpec, Uid};
    use tiptop_machine::access::MemoryBehavior;
    use tiptop_machine::config::MachineConfig;
    use tiptop_machine::exec::ExecProfile;
    use tiptop_machine::time::SimDuration;

    fn frames_and_pid() -> (Vec<Frame>, Pid) {
        let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
            .seed(9)
            .user(Uid(1), "user1")
            .spawn(
                "spin",
                SpawnSpec::new(
                    "spin",
                    Uid(1),
                    Program::endless(
                        ExecProfile::builder("spin")
                            .base_cpi(0.8)
                            .branches(0.18, 0.0)
                            .memory(MemoryBehavior::uniform(16 * 1024))
                            .build(),
                    ),
                ),
            )
            .build()
            .unwrap();
        let pid = session.pid("spin").unwrap();
        let mut t = Tiptop::new(
            TiptopOptions::default().delay(SimDuration::from_secs(1)),
            ScreenConfig::default_screen(),
        );
        let frames = session.run(&mut t, 3).unwrap();
        (frames, pid)
    }

    #[test]
    fn series_covers_consecutive_intervals() {
        let (frames, pid) = frames_and_pid();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].time.as_secs_f64(), 1.0);
        assert_eq!(frames[2].time.as_secs_f64(), 3.0);
        let s = series_for_pid(&frames, pid, "IPC");
        assert_eq!(s.len(), 3);
        for (_, ipc) in &s {
            assert!((1.1..1.4).contains(ipc), "steady IPC ≈ 1.25, got {ipc}");
        }
        assert!((mean(&s) - 1.25).abs() < 0.1);
    }

    #[test]
    fn series_for_comm_matches_series_for_pid() {
        let (frames, pid) = frames_and_pid();
        assert_eq!(
            series_for_pid(&frames, pid, "IPC"),
            series_for_comm(&frames, "spin", "IPC")
        );
    }

    #[test]
    fn mean_of_empty_series_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }
}
