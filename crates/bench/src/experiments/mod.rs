//! One module per paper artifact. Every module exposes `run(...)` returning
//! structured data plus a `report()` rendering the same rows or series the
//! paper shows, and every one drives the stack through the
//! [`Scenario`]/[`Session`](tiptop_core::scenario::Session) API.
//!
//! All nine artifacts of the evaluation are implemented: Figure 1 (the
//! data-center snapshot), Figure 3 (the R evolutionary-algorithm collapse),
//! Figures 6/7 (SPEC phase behaviour), Figure 8 (IPC against retired
//! instructions), Figure 9 (gcc vs icc), Figure 10 (the data-center
//! interference burst), Figure 11 (the SMT/shared-cache interference
//! matrix), Table 1 (the x87/SSE FP micro-benchmark), and the §2.4
//! tiptop-vs-Pin validation — plus three beyond-the-paper cluster
//! experiments: [`fleet`] (one workload on every machine, one merged
//! timeline), [`grid`] (a Fig 10-style burst relieved by migrating the
//! aggressors off the victims' node at a scripted instant), [`reactive`]
//! (the same relief *decided live* by an IPC-floor policy watching the
//! merged stream, compared against the scripted baseline) and
//! [`tournament`] (restart-vs-resume relocation crossed with the
//! IPC-floor and CUSUM detectors — the checkpoint/restore subsystem
//! measured as a 2×2 of wall-clock and recovered IPC), [`scaling`]
//! (the throughput frontier: frames/sec and peak buffered bytes at 10,
//! 100 and 1000 machines, batched columnar transport against a
//! legacy-representation baseline measured in the same run),
//! [`policy_lab`] (the pluggable-scheduling payoff: detector × placement
//! policies crossed with scenarios that also swap the *in-kernel* epoch
//! planner, ranked by payload wall-clock) and [`pipelines`]
//! (dependency-driven scenario DAGs: ETL-chain, build-farm, map-shuffle
//! and seeded random-DAG scripts whose stages are submitted by after-exit
//! edges and resolved — across machines — by the cluster's lockstep
//! driver).

pub mod fig01_snapshot;
pub mod fig03_evolution;
pub mod fig06_07_phases;
pub mod fig08_ipc_vs_instructions;
pub mod fig09_compilers;
pub mod fig10_datacenter;
pub mod fig11_interference;
pub mod fleet;
pub mod grid;
pub mod pipelines;
pub mod policy_lab;
pub mod reactive;
pub mod scaling;
pub mod table1_fp_micro;
pub mod tournament;
pub mod validation;

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::cluster::MachineRef;
use tiptop_core::config::ScreenConfig;
use tiptop_core::monitor::Monitor;
use tiptop_core::render::Frame;
use tiptop_core::scenario::Scenario;
use tiptop_core::session::series_for_pid;
use tiptop_kernel::kernel::ExitRecord;
use tiptop_kernel::program::Program;
use tiptop_kernel::task::{Pid, SpawnSpec, Uid};
use tiptop_machine::config::{CpuModelKind, MachineConfig};
use tiptop_machine::time::SimDuration;
use tiptop_workloads::spec::{Compiler, Isa, SpecBenchmark};

use crate::report::Series;

/// Worker threads for cluster-driven experiments: one per hardware thread.
/// The merged frame stream is byte-identical at any count, so this only
/// affects wall clock.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The standard SPEC observer for cluster shards: a root tiptop with the
/// default screen at the given refresh interval, one fresh instance per
/// machine.
pub(crate) fn spec_monitor_factory(
    delay: SimDuration,
) -> impl Fn(MachineRef<'_>) -> Box<dyn Monitor + Send> + Sync {
    move |_| {
        Box::new(Tiptop::new(
            TiptopOptions::default().observer(Uid::ROOT).delay(delay),
            ScreenConfig::default_screen(),
        ))
    }
}

/// The three evaluation machines of Figs 3/6/7/8, labelled as the paper
/// labels them. Consumed by [`fig03_evolution`], [`fig06_07_phases`] and
/// [`fig08_ipc_vs_instructions`].
pub fn evaluation_machines() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("Nehalem", MachineConfig::nehalem_w3550()),
        ("Core", MachineConfig::core2_machine()),
        ("PPC970", MachineConfig::ppc970_machine()),
    ]
}

/// Which binary flavour a machine executes: the Intel machines run the same
/// x86 binary, the PowerPC build retires ~7% more instructions (the small
/// rightward shift of the PPC970 curve in Fig 8).
pub fn isa_for(machine: &MachineConfig) -> Isa {
    match machine.uarch.kind {
        CpuModelKind::Ppc970 => Isa::Ppc,
        _ => Isa::X86,
    }
}

/// One SPEC stand-in driven to completion on one machine, observed by
/// tiptop at a fixed refresh interval.
pub(crate) struct SpecRun {
    pub frames: Vec<Frame>,
    pub exit: ExitRecord,
    pub pid: Pid,
}

impl SpecRun {
    /// A column of the tiptop screen as a time series (seconds → value).
    pub fn series(&self, column: &str, label: impl Into<String>) -> Series {
        Series::new(label, series_for_pid(&self.frames, self.pid, column))
    }

    /// Wall-clock run time in simulated seconds.
    pub fn wall(&self) -> f64 {
        (self.exit.end_time - self.exit.start_time).as_secs_f64()
    }
}

/// Drive one program to completion on `machine` through a `Session`,
/// observed (as root) by a tiptop with the given screen every `delay`. The
/// machine runs noiseless so regression tests see the calibrated shape,
/// not jitter.
pub(crate) fn drive_to_completion(
    machine: MachineConfig,
    seed: u64,
    comm: &str,
    program: Program,
    screen: ScreenConfig,
    delay: SimDuration,
) -> SpecRun {
    let mut session = Scenario::new(machine.noiseless())
        .seed(seed)
        .user(Uid(1), "user1")
        .spawn(
            comm,
            SpawnSpec::new(comm, Uid(1), program).seed(seed ^ 0x5bec),
        )
        .build()
        .expect("one unique tag");
    let pid = session.pid(comm).expect("spawned at t=0");
    let mut tool = Tiptop::new(
        TiptopOptions::default().observer(Uid::ROOT).delay(delay),
        screen,
    );
    let frames = session
        .run_until(&mut tool, 1_000_000, |f| f.row_for(pid).is_none())
        .expect("positive interval");
    session.teardown(&mut tool);
    let exit = session
        .kernel()
        .exit_record(pid)
        .expect("program ran to completion")
        .clone();
    SpecRun { frames, exit, pid }
}

/// Tiptop refresh interval for a SPEC run at a given scale: the paper
/// samples every ~5 s at reference run lengths, and the interval shrinks
/// with the scale so every run yields a comparable number of samples. All
/// SPEC-driving figures share this so their sampling stays comparable.
pub(crate) fn spec_delay(scale: f64) -> SimDuration {
    SimDuration::from_secs_f64((5.0 * scale).max(0.04))
}

/// [`drive_to_completion`] for a SPEC stand-in under the default screen.
pub(crate) fn run_spec_to_completion(
    machine: MachineConfig,
    bench: SpecBenchmark,
    compiler: Compiler,
    isa: Isa,
    scale: f64,
    seed: u64,
    delay: SimDuration,
) -> SpecRun {
    drive_to_completion(
        machine,
        seed,
        bench.comm(),
        bench.program(compiler, isa, scale),
        ScreenConfig::default_screen(),
        delay,
    )
}
