//! Multi-machine (cluster) sessions and **distributed scenarios**: N
//! [`Session`]s — one per machine — sharded across a worker-thread pool
//! behind one observer-facing API, with their frame streams merged
//! **deterministically** by `(sim-time, machine)` into a streaming
//! [`ClusterFrameSink`].
//!
//! The paper evaluates tiptop across *three* physical machines (Figs 3,
//! 6–8) and a data-center co-run node (Fig 10); those machines are
//! physically independent, so simulating them serially wastes every core
//! but one. A [`ClusterScenario`] declares one [`Scenario`] per machine;
//! building it yields a [`ClusterSession`] whose `run*` methods drive every
//! machine concurrently. Because each shard owns its whole stack (machine,
//! kernel, monitor) and the merge orders frames by `(time, machine-index)`
//! with per-machine streams already time-ordered, **the merged stream is
//! byte-identical at any worker-thread count** — `threads: 1` and
//! `threads: 8` produce the same frames in the same order.
//!
//! On top of the independent shards sit the *distributed* affordances:
//!
//! * [`ClusterScenario::migrate_at`] — a cross-machine workload event: the
//!   grid scheduler moves a tagged job from one machine to another at an
//!   exact instant. It is validated across machines at build time and lands
//!   as a kill on the source plus a spawn on the destination, both at the
//!   same sim-time — so the merged stream shows the job leaving node A and
//!   appearing on node B in the same refresh. Each hop creates a fresh
//!   *incarnation* of the tag on its destination, so migrations chain
//!   freely — onward (`A→B→C`) and round trips (`A→B→A`) alike. In
//!   [`MigrationMode::Restart`] the job restarts from zero (a scheduler
//!   re-submission); [`ClusterScenario::resume_at`] instead checkpoints the
//!   task at the kill instant and resumes it mid-program on the
//!   destination, conserving its total retired-instruction count.
//! * [`ClusterSession::run_all`] — the fleet-scale version of
//!   [`Session::run_all`]: every machine drives its own *set* of monitors
//!   at distinct intervals (the §2.5 perturbation story on every node at
//!   once), frames labelled `(machine, monitor)` in the merged stream.
//! * [`ClusterWindowSink`] — bounded-memory consumption for long runs:
//!   tumbling windows of the merged stream are folded into per
//!   `(machine, monitor)` column aggregates, so a fleet observed for hours
//!   never buffers more than one window of frames.
//! * [`ClusterSession::run_reactive`] — the monitor→migration loop
//!   *closed*: [`SchedulerPolicy`]s observe the merged stream during the
//!   run and issue live migrations — restart or checkpoint/resume, per the
//!   decision's [`MigrationMode`] — validated at run time and applied at
//!   the next epoch boundary (see [`crate::reactive`]).
//! * **Cross-machine dependency edges** — a machine's scenario may key an
//!   event on a tag that completes on *another* machine
//!   ([`Trigger::AfterExit`], via [`Scenario::spawn_after`] and friends):
//!   a pipeline stage on node B starts when the extract job on node A
//!   exits. [`ClusterScenario::build`] lifts every dependency edge out of
//!   the machine scenarios, validates the fleet-wide DAG (typed
//!   [`DagError`]s for cycles, unknown or migrated-away dependencies),
//!   hands same-machine chains back to their [`Session`]s, and resolves
//!   the rest centrally: scripted runs of such a cluster use a
//!   round-barrier lockstep driver that keeps the merged stream
//!   byte-identical at any thread count.
//!
//! [`Trigger::AfterExit`]: crate::scenario::Trigger::AfterExit
//! [`Scenario::spawn_after`]: crate::scenario::Scenario::spawn_after
//!
//! Failure is contained per shard: a [`SessionError`] inside one machine
//! surfaces as [`SessionError::Shard`], a panic as
//! [`SessionError::ShardPanicked`]; the rest of the pool keeps running and
//! their frames still reach the sink (the exact contract is documented on
//! [`ClusterSession::run_each`]).
//!
//! ```
//! use tiptop_core::prelude::*;
//! use tiptop_kernel::prelude::*;
//! use tiptop_machine::prelude::*;
//!
//! let spin = || Program::endless(ExecProfile::builder("spin").build());
//! let node = |seed: u64| {
//!     Scenario::new(MachineConfig::nehalem_w3550().noiseless())
//!         .seed(seed)
//!         .user(Uid(1), "u1")
//! };
//! // One busy job on node-a; at t=2s the grid scheduler moves it to node-b.
//! let mut cluster = ClusterScenario::new()
//!     .machine("node-a", node(1).spawn("job", SpawnSpec::new("job", Uid(1), spin())))
//!     .machine("node-b", node(2))
//!     .migrate_at(SimTime::from_secs(2), "job", "node-a", "node-b")
//!     .build()
//!     .unwrap();
//! let frames = cluster
//!     .run_collect(2, 3, |_m| {
//!         Box::new(Tiptop::new(
//!             TiptopOptions::default().delay(SimDuration::from_secs(1)),
//!             ScreenConfig::default_screen(),
//!         ))
//!     })
//!     .unwrap();
//! // 2 machines x 3 refreshes, merged by (time, machine).
//! assert_eq!(frames.len(), 6);
//! let on = |t: u64, machine: &str| {
//!     frames
//!         .iter()
//!         .find(|cf| cf.machine == machine && cf.frame.time == SimTime::from_secs(t))
//!         .is_some_and(|cf| cf.frame.row_for_comm("job").is_some())
//! };
//! assert!(on(1, "node-a") && !on(1, "node-b"), "before: job lives on node-a");
//! // The handover refresh at t=2 shows the job twice: its final row on the
//! // source (it ran right up to the kill instant) and its first row on the
//! // destination. One refresh later it lives only on node-b.
//! assert!(on(2, "node-a") && on(2, "node-b"), "t=2 is the handover frame");
//! assert!(!on(3, "node-a") && on(3, "node-b"), "after: only node-b");
//! ```

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use tiptop_kernel::sched::SchedulerSelect;
use tiptop_kernel::task::TaskState;
use tiptop_machine::time::{SimDuration, SimTime};

use crate::batch::{FrameBatch, ShellPool};
use crate::monitor::Monitor;
use crate::reactive::{AppliedDecision, MigrationDecision, MigrationMode, SchedulerPolicy};
use crate::render::{Frame, Row};
use crate::scenario::validation;
use crate::scenario::{DagError, HandoffBoard, Scenario, Session, SessionError, WorkloadEvent};
use crate::symbols::{self, Label, SymId};

/// Identity of one machine of the cluster, handed to the per-machine
/// factories (monitor, stop predicate).
#[derive(Clone, Copy, Debug)]
pub struct MachineRef<'a> {
    pub id: &'a str,
    /// Declaration index; the merge tie-breaker for same-instant frames.
    pub index: usize,
}

/// One frame of the merged cluster stream, labelled with its origin.
#[derive(Clone, Debug)]
pub struct ClusterFrame {
    /// Machine id as declared on the [`ClusterScenario`]. A [`Label`]
    /// compares directly against `&str`/`String`, so consumers read it like
    /// the `String` it used to be; producing one is a refcount bump.
    pub machine: Label,
    /// Machine declaration index (the merge tie-breaker).
    pub machine_index: usize,
    /// Producing monitor's [`Monitor::name`].
    pub source: Label,
    /// Per-(machine, monitor) observation number (0-based).
    pub seq: usize,
    pub frame: Frame,
}

/// Streaming consumer of the merged cluster stream. Frames arrive in
/// `(time, machine_index)` order regardless of the worker-thread count;
/// same-instant frames of one machine keep their monitor order.
pub trait ClusterFrameSink {
    fn on_frame(&mut self, frame: ClusterFrame);

    /// Deliver frames `range` of a columnar batch — the batched transport's
    /// run delivery. The frames of the range are the next frames of the
    /// merged stream, in order. The default materializes each one through
    /// [`FrameBatch::take_frame`] and hands it to
    /// [`ClusterFrameSink::on_frame`], so every existing sink keeps its
    /// exact semantics; columnar-aware sinks ([`ClusterWindowSink`])
    /// override this to fold straight from the columns.
    fn on_batch(&mut self, batch: &mut FrameBatch, range: Range<usize>) {
        for i in range {
            self.on_frame(batch.take_frame(i));
        }
    }
}

/// Any closure can be a sink.
impl<F: FnMut(ClusterFrame)> ClusterFrameSink for F {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self(frame)
    }
}

/// The simplest sink: keep the whole merged stream. For runs long enough
/// that this buffer matters, use [`ClusterWindowSink`] instead.
#[derive(Debug, Default)]
pub struct ClusterCollectSink {
    frames: Vec<ClusterFrame>,
}

impl ClusterCollectSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn frames(&self) -> &[ClusterFrame] {
        &self.frames
    }

    pub fn into_frames(self) -> Vec<ClusterFrame> {
        self.frames
    }
}

impl ClusterFrameSink for ClusterCollectSink {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self.frames.push(frame);
    }
}

/// Per-`(machine, monitor)` aggregates of one [`ClusterWindow`].
#[derive(Clone, Debug, Default)]
pub struct WindowStats {
    /// Frames this source contributed to the window.
    pub frames: usize,
    /// Task rows across those frames that entered the aggregates.
    pub rows: usize,
    /// Rows *excluded* from the aggregates because they are the
    /// destination side of a registered migration handover (see
    /// [`ClusterWindowSink::dedupe_handovers`]); 0 unless deduping.
    pub handover_rows: usize,
    /// Per-column `(sum, samples)` over every finite row value, keyed by
    /// the column's interned id — the fold allocates nothing per row.
    sums: BTreeMap<SymId, (f64, usize)>,
}

impl WindowStats {
    /// Mean of a typed column (e.g. `"IPC"`, `"%CPU"`) over every row of
    /// every frame in the window; `None` if the column never appeared.
    pub fn mean(&self, column: &str) -> Option<f64> {
        let id = symbols::lookup(column)?;
        self.sums
            .get(&id)
            .filter(|(_, n)| *n > 0)
            .map(|(sum, n)| sum / *n as f64)
    }

    /// Column names observed in this window, alphabetically.
    pub fn columns(&self) -> impl Iterator<Item = Arc<str>> {
        let mut names: Vec<Arc<str>> = self.sums.keys().map(|id| symbols::resolve(*id)).collect();
        names.sort();
        names.into_iter()
    }
}

/// One tumbling window of the merged stream, folded to aggregates.
#[derive(Clone, Debug)]
pub struct ClusterWindow {
    /// 0-based window number.
    pub index: usize,
    /// Time of the first / last frame aggregated into the window.
    pub start: SimTime,
    pub end: SimTime,
    /// Total frames folded in (the window size, except for the final
    /// partial window).
    pub frames: usize,
    /// Aggregates keyed by `(machine, monitor-name)`.
    pub sources: BTreeMap<(String, String), WindowStats>,
}

/// Bounded-memory sink for long cluster runs: folds each frame into the
/// open window's per-source column aggregates *as it arrives* — no raw
/// frame is ever buffered — closing the window ([`ClusterWindow`]) every
/// `window` frames. Peak memory is `O(sources x columns)` of open-window
/// state plus `O(total / window)` small summaries — a fleet observed for
/// hours never holds its stream, unlike [`ClusterCollectSink`]. On the
/// batched transport it folds straight from the columnar batches
/// ([`ClusterFrameSink::on_batch`]), so the merged stream's rows are
/// aggregated without ever materializing a labelled frame.
///
/// Callers who need the raw frames spilled elsewhere (rendered to a file,
/// forwarded downstream) can chain a closure sink in front; this sink's
/// job is the bounded aggregate view.
///
/// # Migration handovers
///
/// At a migration's handover frame the job is visible on *both* machines —
/// its final row on the source and its first (zero-elapsed) row on the
/// destination — so a fleet-wide aggregate naively counts it twice at that
/// one instant. The raw stream deliberately keeps both rows (the handover
/// is the observable artifact); register the run's handovers with
/// [`ClusterWindowSink::dedupe_handovers`] and the *aggregates* count the
/// job once, attributing the instant to the source (where it actually ran)
/// and reporting the skipped destination rows in
/// [`WindowStats::handover_rows`].
#[derive(Debug)]
pub struct ClusterWindowSink {
    window: usize,
    peak: usize,
    windows: Vec<ClusterWindow>,
    /// Destination-side rows to exclude from aggregates, keyed by handover
    /// instant: interned `(destination machine, command)`. Entries are
    /// dropped as soon as the stream advances past their instant (frames
    /// arrive in nondecreasing time), so a long reactive run with many
    /// migrations never accumulates stale instants.
    dedupe: BTreeMap<SimTime, Vec<(SymId, SymId)>>,
    /// The window currently being folded, if any frame has arrived since
    /// the last close.
    open: Option<OpenWindow>,
}

/// Incremental state of the window being folded.
#[derive(Debug)]
struct OpenWindow {
    start: SimTime,
    end: SimTime,
    frames: usize,
    sources: BTreeMap<(SymId, SymId), WindowStats>,
}

impl ClusterWindowSink {
    /// `window` is the number of frames folded into each summary
    /// (must be ≥ 1).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must hold at least one frame");
        ClusterWindowSink {
            window,
            peak: 0,
            windows: Vec::new(),
            dedupe: BTreeMap::new(),
            open: None,
        }
    }

    /// Register migration handovers so fleet-wide aggregates count each
    /// migrating job **once** at its handover instant: the destination-side
    /// row (the zero-elapsed first observation) is excluded from the
    /// column sums and counted in [`WindowStats::handover_rows`] instead.
    /// Feed it [`ClusterSession::handovers`] — for scripted migrations the
    /// records exist right after `build()`; a reactive run's records only
    /// exist after the run, so reactive consumers dedupe in post.
    ///
    /// Exclusion is keyed by `(instant, destination machine, command)`:
    /// keep commands unique per machine at a handover instant (the
    /// repository-wide tag == comm convention does this) or unrelated
    /// same-named rows on the destination would be skipped too. It also
    /// assumes the *source* machine observes at the handover instant —
    /// true whenever both machines' monitor intervals divide the scripted
    /// migration time (the common shared-interval fleet). If only the
    /// destination happens to observe then, there is no double-count and
    /// its row is still excluded, leaving the job unaggregated for that
    /// one instant.
    pub fn dedupe_handovers(mut self, handovers: impl IntoIterator<Item = HandoverRecord>) -> Self {
        for h in handovers {
            self.dedupe
                .entry(h.at)
                .or_default()
                .push((symbols::intern(&h.to), symbols::intern(&h.comm)));
        }
        self
    }

    /// The most frames ever folded into one open window (≤ the window
    /// size, by construction — the memory-bound guarantee, asserted in
    /// tests). No raw frame is buffered at all; this counts the frames
    /// the open aggregate currently summarizes.
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// Handover-dedupe instants still registered (not yet passed by the
    /// stream) — bounded-memory proof hook for tests.
    pub fn pending_dedupe_instants(&self) -> usize {
        self.dedupe.len()
    }

    /// Windows folded so far (the still-buffered tail is not included
    /// until [`ClusterWindowSink::finish`]).
    pub fn windows(&self) -> &[ClusterWindow] {
        &self.windows
    }

    /// Flush the partial final window and return every summary.
    pub fn finish(mut self) -> Vec<ClusterWindow> {
        self.close_window();
        self.windows
    }

    /// Fold one frame's rows into the open window. `comms` carries the
    /// rows' interned commands when the caller already has them (the
    /// batched path); otherwise each command is looked up only if this
    /// instant has registered handovers.
    fn fold(
        &mut self,
        machine: SymId,
        source: SymId,
        time: SimTime,
        rows: &[Row],
        comms: Option<&[SymId]>,
    ) {
        // Drop dedupe instants the stream has moved past — frames arrive
        // in nondecreasing time, so an earlier instant can never match
        // again. This is what keeps a long reactive run's dedupe map from
        // growing without bound.
        while self
            .dedupe
            .first_key_value()
            .is_some_and(|(at, _)| *at < time)
        {
            self.dedupe.pop_first();
        }

        let ow = self.open.get_or_insert_with(|| OpenWindow {
            start: time,
            end: time,
            frames: 0,
            sources: BTreeMap::new(),
        });
        ow.end = time;
        ow.frames += 1;
        self.peak = self.peak.max(ow.frames);

        let dedupe = self.dedupe.get(&time);
        let stats = ow.sources.entry((machine, source)).or_default();
        stats.frames += 1;
        for (i, row) in rows.iter().enumerate() {
            let is_handover = dedupe.is_some_and(|d| {
                let comm = match comms {
                    Some(c) => Some(c[i]),
                    None => symbols::lookup(&row.comm),
                };
                comm.is_some_and(|c| d.iter().any(|&(to, dc)| to == machine && dc == c))
            });
            if is_handover {
                stats.handover_rows += 1;
                continue;
            }
            stats.rows += 1;
            for &(col, v) in &row.values {
                if v.is_finite() {
                    let (sum, n) = stats.sums.entry(col).or_insert((0.0, 0));
                    *sum += v;
                    *n += 1;
                }
            }
        }

        if self
            .open
            .as_ref()
            .is_some_and(|ow| ow.frames >= self.window)
        {
            self.close_window();
        }
    }

    /// Close the open window, resolving its interned source keys to the
    /// public `(machine, monitor)` strings — once per window, not per row.
    fn close_window(&mut self) {
        let Some(ow) = self.open.take() else { return };
        let sources = ow
            .sources
            .into_iter()
            .map(|((m, s), stats)| {
                (
                    (
                        symbols::resolve(m).to_string(),
                        symbols::resolve(s).to_string(),
                    ),
                    stats,
                )
            })
            .collect();
        self.windows.push(ClusterWindow {
            index: self.windows.len(),
            start: ow.start,
            end: ow.end,
            frames: ow.frames,
            sources,
        });
    }
}

impl ClusterFrameSink for ClusterWindowSink {
    fn on_frame(&mut self, frame: ClusterFrame) {
        self.fold(
            frame.machine.sym(),
            frame.source.sym(),
            frame.frame.time,
            &frame.frame.rows,
            None,
        );
    }

    /// The columnar fast path: aggregate straight from the batch's rows —
    /// no labelled frame is materialized, no row is moved or cloned.
    fn on_batch(&mut self, batch: &mut FrameBatch, range: Range<usize>) {
        for i in range {
            let (machine, source) = batch.labels(i);
            self.fold(
                machine,
                source,
                batch.time(i),
                batch.rows_of(i),
                Some(batch.comms_of(i)),
            );
        }
    }
}

/// One migration's handover, as the merged stream can observe it: at `at`
/// the job (command `comm`, scenario tag `tag`) exits on `from` and starts
/// on `to` — the same sim-time on both machines. Scripted migrations
/// ([`ClusterScenario::migrate_at`]) record theirs at build time, reactive
/// runs ([`ClusterSession::run_reactive`]) append as decisions apply; read
/// them back with [`ClusterSession::handovers`], e.g. to feed
/// [`ClusterWindowSink::dedupe_handovers`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandoverRecord {
    pub at: SimTime,
    pub tag: String,
    /// The job's command name — what frame rows show.
    pub comm: String,
    pub from: String,
    pub to: String,
    /// Restart-from-zero or checkpoint/resume.
    pub mode: MigrationMode,
}

/// A cross-machine workload event: the grid scheduler moves a tagged job
/// between machines at an exact instant (see
/// [`ClusterScenario::migrate_at`]).
#[derive(Debug)]
struct Migration {
    at: SimTime,
    tag: String,
    from: String,
    to: String,
    mode: MigrationMode,
}

/// Declarative description of a multi-machine experiment: one [`Scenario`]
/// per machine — each with its own machine config, seed, users, and timed
/// workload events — plus *cross-machine* events ([`migrate_at`]) that span
/// two machines and are validated against both at build time.
///
/// [`migrate_at`]: ClusterScenario::migrate_at
#[derive(Debug, Default)]
pub struct ClusterScenario {
    machines: Vec<(String, Scenario)>,
    migrations: Vec<Migration>,
    scheduler: Option<SchedulerSelect>,
}

impl ClusterScenario {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one machine. `id` labels its frames in the merged stream and
    /// must be unique; declaration order fixes the merge tie-breaker.
    pub fn machine(mut self, id: impl Into<String>, scenario: Scenario) -> Self {
        self.machines.push((id.into(), scenario));
        self
    }

    /// Fleet-wide in-kernel planner: every machine that did not pick its
    /// own [`Scenario::scheduler`] boots with this one. Applies to machines
    /// declared before *or* after the call.
    pub fn scheduler(mut self, scheduler: SchedulerSelect) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Move the job tagged `tag` from machine `from` to machine `to` at an
    /// absolute instant — the §fig10 grid-scheduler story, where a workload
    /// *moves* mid-run instead of merely co-running. Restart semantics; see
    /// [`ClusterScenario::migrate_at_mode`].
    ///
    /// The migration desugars into a kill of `tag` on `from` and a spawn of
    /// the *same job spec* (fresh on the new machine, as a scheduler
    /// re-submission restarts the binary) on `to`, both at exactly `at`:
    /// the source's exit record and the destination's start time carry the
    /// same sim-time. In the merged stream a refresh landing on `at` is the
    /// *handover frame* — the source still shows the job's final row (it
    /// ran right up to the kill instant; the kernel reaps the zombie at the
    /// next epoch) while the destination already shows its first row; from
    /// the next refresh the job lives only on the destination.
    ///
    /// Validated at build time across machines: both ids must exist and
    /// differ, `tag` must live on `from` at `at` (spawned before, not yet
    /// killed), and `to` must not carry a live task with the tag at `at`.
    /// A tag resolves to a `(machine, incarnation)` pair — each hop spawns
    /// a fresh incarnation on its destination — so migrations chain freely:
    /// onward hops (`A→B→C`) and round trips (`A→B→A`) both validate, and a
    /// machine a job already ran on can receive it again.
    pub fn migrate_at(
        self,
        at: SimTime,
        tag: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> Self {
        self.migrate_at_mode(at, tag, from, to, MigrationMode::Restart)
    }

    /// [`ClusterScenario::migrate_at`] with an explicit [`MigrationMode`].
    ///
    /// In [`MigrationMode::Resume`] the kill becomes a
    /// [`WorkloadEvent::CheckpointKill`] — the source captures the task's
    /// program cursor, accumulated counters, nice and pin state at the kill
    /// instant and publishes the checkpoint on the cluster's
    /// [`HandoffBoard`] — and the spawn becomes a
    /// [`WorkloadEvent::ResumeSpawn`] that takes the checkpoint and
    /// continues the task mid-program: the resumed incarnation's exit
    /// record reports the *whole job's* totals, conserving the retired
    /// instruction count across any chain of hops.
    ///
    /// Two resume-mode hops of one tag cannot share an instant (the second
    /// would consume a checkpoint published at the same sim-time — give
    /// each hop its own instant), and same-instant resume hops must not
    /// form a machine cycle (each side would wait on the other's
    /// checkpoint); both are rejected at build time.
    pub fn migrate_at_mode(
        mut self,
        at: SimTime,
        tag: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
        mode: MigrationMode,
    ) -> Self {
        self.migrations.push(Migration {
            at,
            tag: tag.into(),
            from: from.into(),
            to: to.into(),
            mode,
        });
        self
    }

    /// Sugar for [`ClusterScenario::migrate_at_mode`] with
    /// [`MigrationMode::Resume`]: checkpoint `tag` on `from` at `at` and
    /// resume it mid-program on `to` at the same instant.
    pub fn resume_at(
        self,
        at: SimTime,
        tag: impl Into<String>,
        from: impl Into<String>,
        to: impl Into<String>,
    ) -> Self {
        self.migrate_at_mode(at, tag, from, to, MigrationMode::Resume)
    }

    /// Validate every per-machine scenario *and* every cross-machine
    /// migration, then build the live [`ClusterSession`]. A scenario error
    /// is labelled with its machine; a migration error names the migration.
    pub fn build(mut self) -> Result<ClusterSession, SessionError> {
        if self.machines.is_empty() {
            return Err(SessionError::InvalidScenario(
                "cluster has no machines".into(),
            ));
        }
        if let Some(scheduler) = &self.scheduler {
            for (_, scenario) in &mut self.machines {
                scenario.default_scheduler(scheduler);
            }
        }
        {
            let mut seen = std::collections::HashSet::new();
            for (id, _) in &self.machines {
                if !seen.insert(id.clone()) {
                    return Err(SessionError::InvalidScenario(format!(
                        "duplicate machine id '{id}'"
                    )));
                }
            }
        }
        // Warm the process-wide symbol table with every machine id, so the
        // shard workers share interned ids from their first frame on and
        // never race each other into the table's write path mid-run.
        for (id, _) in &self.machines {
            symbols::intern(id);
        }

        // Desugar migrations in chronological order (stable: same-instant
        // migrations keep declaration order, so chained moves compose),
        // validating each against the machines' evolving schedules. A tag
        // resolves to a (machine, incarnation) pair, so the walk asks the
        // incarnation-aware question — "is the tag live on the source at
        // `at`?" — rather than "did the source ever spawn it?": onward
        // chains and round trips both validate.
        self.migrations.sort_by_key(|m| m.at);
        let mut handovers: Vec<HandoverRecord> = Vec::with_capacity(self.migrations.len());
        let mut consumes: Vec<Vec<(SimTime, String, usize)>> =
            (0..self.machines.len()).map(|_| Vec::new()).collect();
        let mut resume_hops: std::collections::HashSet<(String, SimTime)> =
            std::collections::HashSet::new();
        for m in &self.migrations {
            let label = format!(
                "migration of '{}' {}->{} at {:?}",
                m.tag, m.from, m.to, m.at
            );
            if m.from == m.to {
                return Err(SessionError::InvalidScenario(format!(
                    "{label}: source and destination are the same machine"
                )));
            }
            let index_of = |id: &str| self.machines.iter().position(|(mid, _)| mid == id);
            let (Some(fi), Some(ti)) = (index_of(&m.from), index_of(&m.to)) else {
                let missing = if index_of(&m.from).is_none() {
                    &m.from
                } else {
                    &m.to
                };
                return Err(SessionError::InvalidScenario(format!(
                    "{label}: unknown machine '{missing}'"
                )));
            };
            if !self.machines[fi].1.tag_live_at(&m.tag, m.at) {
                let spawns = self.machines[fi].1.spawn_events(&m.tag);
                let msg = match spawns.first() {
                    Some(&(spawned, _)) if spawned > m.at => {
                        format!("{label}: precedes the job's spawn at {spawned:?}")
                    }
                    Some(_) => {
                        let killed = self.machines[fi]
                            .1
                            .kill_events(&m.tag)
                            .into_iter()
                            .filter(|k| *k <= m.at)
                            .max()
                            .expect("spawned but not live implies an earlier kill");
                        format!("{label}: the job is already gone (killed at {killed:?})")
                    }
                    None => {
                        // The source never hosts the tag at all; point at
                        // whichever machine does (live at `at` if any,
                        // otherwise any machine that ever spawns it).
                        let home = self
                            .machines
                            .iter()
                            .find(|(_, sc)| sc.tag_live_at(&m.tag, m.at))
                            .or_else(|| {
                                self.machines
                                    .iter()
                                    .find(|(_, sc)| !sc.spawn_events(&m.tag).is_empty())
                            })
                            .map(|(id, _)| id.clone());
                        match home {
                            Some(home) => {
                                format!("{label}: '{}' lives on machine '{home}'", m.tag)
                            }
                            None => format!("{label}: no machine spawns '{}'", m.tag),
                        }
                    }
                };
                return Err(SessionError::InvalidScenario(msg));
            }
            if self.machines[ti].1.tag_live_at(&m.tag, m.at) {
                return Err(SessionError::InvalidScenario(format!(
                    "{label}: destination already carries a task tagged '{}'",
                    m.tag
                )));
            }
            if m.mode == MigrationMode::Resume && !resume_hops.insert((m.tag.clone(), m.at)) {
                return Err(SessionError::InvalidScenario(format!(
                    "{label}: another resume-mode hop of '{}' shares this instant; \
                     checkpoints are keyed by (tag, instant), so give each hop \
                     its own instant",
                    m.tag
                )));
            }
            let spec = self.machines[fi]
                .1
                .spawn_events(&m.tag)
                .into_iter()
                .rev()
                .find(|(s, _)| *s <= m.at)
                .map(|(_, spec)| spec.clone())
                .expect("a live tag has a spawn at or before the instant");
            handovers.push(HandoverRecord {
                at: m.at,
                tag: m.tag.clone(),
                comm: spec.comm.clone(),
                from: m.from.clone(),
                to: m.to.clone(),
                mode: m.mode,
            });
            match m.mode {
                MigrationMode::Restart => {
                    self.machines[fi]
                        .1
                        .schedule(m.at, WorkloadEvent::Kill { tag: m.tag.clone() });
                    self.machines[ti].1.schedule(
                        m.at,
                        WorkloadEvent::Spawn {
                            tag: m.tag.clone(),
                            spec,
                        },
                    );
                }
                MigrationMode::Resume => {
                    self.machines[fi]
                        .1
                        .schedule(m.at, WorkloadEvent::CheckpointKill { tag: m.tag.clone() });
                    self.machines[ti].1.schedule(
                        m.at,
                        WorkloadEvent::ResumeSpawn {
                            tag: m.tag.clone(),
                            spec,
                        },
                    );
                    consumes[ti].push((m.at, m.tag.clone(), fi));
                }
            }
        }

        // Same-instant resume hops hand checkpoints across machines at one
        // sim-time; the run-time gating orders producers before consumers,
        // which only terminates if those edges are acyclic per instant.
        {
            let mut by_instant: BTreeMap<SimTime, Vec<(usize, usize)>> = BTreeMap::new();
            for m in &self.migrations {
                if m.mode == MigrationMode::Resume {
                    let index_of = |id: &str| self.machines.iter().position(|(mid, _)| mid == id);
                    let (fi, ti) = (
                        index_of(&m.from).expect("validated above"),
                        index_of(&m.to).expect("validated above"),
                    );
                    by_instant.entry(m.at).or_default().push((fi, ti));
                }
            }
            for (at, edges) in by_instant {
                if has_cycle(self.machines.len(), &edges) {
                    return Err(SessionError::InvalidScenario(format!(
                        "same-instant resume migrations at {at:?} form a machine cycle: \
                         each side would wait forever for the other's checkpoint; \
                         stagger the hops across instants"
                    )));
                }
            }
        }

        // ------------------------------------------------------------------
        // Dependency edges ([`Trigger::AfterExit`]). Lift every dependency-
        // triggered event out of the machine scenarios, validate the whole
        // fleet's DAG, then classify each edge: an edge whose dependency
        // chain is scripted entirely on its own machine goes straight back
        // (the [`Session`] resolves those natively); everything else —
        // cross-machine edges, and edges keyed on a tag that is itself
        // spawned by a cross-machine edge — stays in the cluster's registry
        // and is resolved centrally by the lockstep driver (`run_units`
        // routes to it whenever the registry is non-empty).
        let mut drained: Vec<(usize, String, SimDuration, WorkloadEvent)> = Vec::new();
        for (i, (_, scenario)) in self.machines.iter_mut().enumerate() {
            for (dep, delay, ev) in scenario.drain_deferred() {
                drained.push((i, dep, delay, ev));
            }
        }
        let mut deps: Vec<ClusterDep> = Vec::new();
        if !drained.is_empty() {
            // Where each dependency-spawned tag will live: its spawn is
            // injected on the machine that declared the edge. One spawn per
            // tag, and never also a scripted one — incarnations must not
            // overlap and a dependent tag's timeline is unknown at build
            // time.
            let mut deferred_spawn_host: BTreeMap<String, usize> = BTreeMap::new();
            for (i, _, _, ev) in &drained {
                if !ev.is_spawn() {
                    continue;
                }
                let tag = ev.tag();
                if self
                    .machines
                    .iter()
                    .any(|(_, sc)| !sc.spawn_events(tag).is_empty())
                {
                    return Err(SessionError::InvalidScenario(format!(
                        "duplicate spawn tag '{tag}': spawned both at a scripted instant \
                         and by a dependency edge (incarnations of one tag must not \
                         overlap)"
                    )));
                }
                if deferred_spawn_host.insert(tag.to_string(), *i).is_some() {
                    return Err(SessionError::InvalidScenario(format!(
                        "duplicate spawn tag '{tag}': two dependency-triggered spawns \
                         (incarnations of one tag must not overlap)"
                    )));
                }
            }
            // Scripted events must not target dependency-spawned tags.
            for tag in deferred_spawn_host.keys() {
                for (_, sc) in &self.machines {
                    if let Some(at) = sc.first_timed_event_on(tag) {
                        return Err(SessionError::InvalidDag(
                            DagError::TimedEventOnDependentTag {
                                tag: tag.clone(),
                                at,
                            },
                        ));
                    }
                }
            }
            // Cluster-wide Kahn over the spawn-after edges.
            {
                let edges: Vec<(&str, &str)> = drained
                    .iter()
                    .filter(|(_, _, _, ev)| ev.is_spawn())
                    .map(|(_, dep, _, ev)| (dep.as_str(), ev.tag()))
                    .collect();
                if let Some(tags) = validation::spawn_edge_cycle(&edges) {
                    return Err(SessionError::InvalidDag(DagError::Cycle { tags }));
                }
            }
            // Resolve each edge's dependency to the machine hosting its
            // *final* incarnation. Migrations were desugared into timed
            // spawns above, so a migrated tag resolves to its last
            // destination; its completion is that incarnation's exit.
            let mut resolved: Vec<ResolvedEdge> = Vec::new();
            for (i, dep, delay, ev) in drained {
                let host = match deferred_spawn_host.get(&dep) {
                    Some(h) => *h,
                    None => {
                        let mut best: Option<(SimTime, usize)> = None;
                        let mut tie = false;
                        for (j, (_, sc)) in self.machines.iter().enumerate() {
                            let Some(last) = sc.spawn_events(&dep).last().map(|(at, _)| *at) else {
                                continue;
                            };
                            match best {
                                Some((at, _)) if at == last => tie = true,
                                Some((at, _)) if at > last => {}
                                _ => {
                                    best = Some((last, j));
                                    tie = false;
                                }
                            }
                        }
                        match best {
                            None => {
                                return Err(SessionError::InvalidDag(DagError::UnknownDependency {
                                    event_tag: ev.tag().to_string(),
                                    dependency: dep,
                                }))
                            }
                            Some(_) if tie => {
                                return Err(SessionError::InvalidScenario(format!(
                                    "dependency '{dep}' is ambiguous: two machines spawn \
                                     its final incarnation at the same instant"
                                )))
                            }
                            Some((_, j)) => j,
                        }
                    }
                };
                // A dependency whose final incarnation is checkpoint-killed
                // (migrated away and never returned) never completes.
                if self.machines[host].1.ends_checkpoint_killed(&dep) {
                    return Err(SessionError::InvalidDag(DagError::DependencyOnKilled {
                        dependency: dep,
                    }));
                }
                // A non-spawn event applies on the machine that declared it;
                // its target must live there.
                if !ev.is_spawn() {
                    let target = ev.tag();
                    let on_consumer = !self.machines[i].1.spawn_events(target).is_empty()
                        || deferred_spawn_host.get(target) == Some(&i);
                    if !on_consumer {
                        return Err(SessionError::Shard {
                            machine: self.machines[i].0.clone(),
                            error: Box::new(SessionError::InvalidScenario(format!(
                                "event against unknown tag '{target}'"
                            ))),
                        });
                    }
                }
                let min_incarnations = if deferred_spawn_host.contains_key(&dep) {
                    1
                } else {
                    self.machines[host].1.spawn_events(&dep).len().max(1)
                };
                resolved.push(ResolvedEdge {
                    consumer: i,
                    dep,
                    delay,
                    ev,
                    host,
                    min_incarnations,
                });
            }
            // Edges whose whole dependency chain is scripted on their own
            // machine go back to the Session (fixpoint: an edge counts once
            // the edge spawning its dependency went back too).
            let mut native: Vec<bool> = resolved
                .iter()
                .map(|e| {
                    e.host == e.consumer
                        && !self.machines[e.consumer].1.spawn_events(&e.dep).is_empty()
                })
                .collect();
            {
                let spawn_edge_of: BTreeMap<&str, usize> = resolved
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.ev.is_spawn())
                    .map(|(k, e)| (e.ev.tag(), k))
                    .collect();
                loop {
                    let mut changed = false;
                    for k in 0..resolved.len() {
                        if native[k] || resolved[k].host != resolved[k].consumer {
                            continue;
                        }
                        if let Some(&se) = spawn_edge_of.get(resolved[k].dep.as_str()) {
                            if native[se] && !native[k] {
                                native[k] = true;
                                changed = true;
                            }
                        }
                    }
                    if !changed {
                        break;
                    }
                }
            }
            for (k, e) in resolved.into_iter().enumerate() {
                if native[k] {
                    self.machines[e.consumer].1.defer(e.dep, e.delay, e.ev);
                } else {
                    deps.push(ClusterDep {
                        consumer: e.consumer,
                        dep: e.dep,
                        host: e.host,
                        min_incarnations: e.min_incarnations,
                        delay: e.delay,
                        ev: Some(e.ev),
                    });
                }
            }
        }

        let board = HandoffBoard::new(self.machines.len());
        let mut shards = Vec::with_capacity(self.machines.len());
        for (id, scenario) in self.machines {
            let mut session = scenario.build().map_err(|e| SessionError::Shard {
                machine: id.clone(),
                error: Box::new(e),
            })?;
            session.attach_handoff(board.clone());
            shards.push(ShardSlot {
                id,
                session: Some(session),
            });
        }
        Ok(ClusterSession {
            shards,
            handovers,
            board,
            consumes,
            deps,
            last_stats: RunStats::default(),
        })
    }
}

/// One drained dependency edge with its dependency's host resolved — the
/// intermediate form between build-time validation and classification.
struct ResolvedEdge {
    consumer: usize,
    dep: String,
    delay: SimDuration,
    ev: WorkloadEvent,
    host: usize,
    min_incarnations: usize,
}

/// One cross-machine dependency edge held by the cluster: `ev` fires on
/// machine `consumer`, `delay` after the completion of `dep`'s final
/// incarnation (`min_incarnations` spawns) on machine `host`. Resolved by
/// the lockstep driver; `ev` is taken when the edge fires, and an edge
/// whose host or consumer shard fails is dropped so the rest of the fleet
/// keeps running.
#[derive(Debug)]
struct ClusterDep {
    consumer: usize,
    dep: String,
    host: usize,
    min_incarnations: usize,
    delay: SimDuration,
    ev: Option<WorkloadEvent>,
}

/// Transport statistics of the most recent `run*` pool run (see
/// [`ClusterSession::last_run_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Frames the merge delivered to the sink.
    pub frames: usize,
    /// Channel messages carrying frames: batches on the batched transport,
    /// frames on the per-frame one.
    pub batches: usize,
    /// Most frames the merge ever held buffered at once, waiting for
    /// slower queues.
    pub peak_buffered_frames: usize,
    /// Estimated heap bytes behind that peak. Tracked by the batched
    /// transport; the per-frame transport reports 0 (it never measures
    /// its buffers).
    pub peak_buffered_bytes: usize,
}

struct ShardSlot {
    id: String,
    /// `None` only while a run borrows it, or after a panic tore the shard
    /// mid-epoch (the torn session is never handed back).
    session: Option<Session>,
}

/// A live cluster: every machine's [`Session`], runnable on a worker pool.
pub struct ClusterSession {
    shards: Vec<ShardSlot>,
    /// Every migration handover of this cluster, in application order:
    /// scripted ones from build time, reactive ones appended as their
    /// decisions apply.
    handovers: Vec<HandoverRecord>,
    /// The checkpoint transport shared by every shard's session (resume-mode
    /// migrations publish and take through it).
    board: Arc<HandoffBoard>,
    /// Per machine index: the scripted resume handoffs it consumes, as
    /// `(instant, tag, producer machine index)` in instant order — the
    /// scripted runs' worker gating keys.
    consumes: Vec<Vec<(SimTime, String, usize)>>,
    /// Cross-machine dependency edges, in declaration order. Non-empty
    /// registries route every scripted run through the lockstep driver.
    deps: Vec<ClusterDep>,
    /// Transport statistics of the most recent pool run.
    last_stats: RunStats,
}

impl fmt::Debug for ClusterSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterSession")
            .field(
                "machines",
                &self.shards.iter().map(|s| &s.id).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// The error of [`ClusterSession::run_collect`]: the failure *plus* every
/// frame the merge delivered — per the deliver-then-error contract a
/// two-hour fleet run is not lost to one bad shard.
#[derive(Debug)]
pub struct ClusterRunError {
    pub error: SessionError,
    /// The merged stream as streamed up to pool drain, in `(time,
    /// machine)` order — the healthy machines' full runs and the failed
    /// machines' pre-failure frames.
    pub partial: Vec<ClusterFrame>,
}

impl fmt::Display for ClusterRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} merged frames preserved)",
            self.error,
            self.partial.len()
        )
    }
}

impl std::error::Error for ClusterRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

type Until = Box<dyn FnMut(&Frame) -> bool + Send>;
/// The monitor set one machine runs: each tool paired with its stop rule.
type ToolSet = Vec<(Box<dyn Monitor + Send>, Until)>;

impl ClusterSession {
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Machine ids in declaration (= merge tie-break) order.
    pub fn machines(&self) -> impl Iterator<Item = MachineRef<'_>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, s)| MachineRef { id: &s.id, index })
    }

    /// Every migration handover of this cluster so far, in application
    /// order: the scripted [`ClusterScenario::migrate_at`]s from build
    /// time, plus — after a [`ClusterSession::run_reactive`] — the
    /// handovers of every applied live decision. Feed these to
    /// [`ClusterWindowSink::dedupe_handovers`] so fleet-wide aggregates
    /// count a migrating job once at its handover instant.
    pub fn handovers(&self) -> &[HandoverRecord] {
        &self.handovers
    }

    /// Transport statistics of the most recent `run`/`run_each`/`run_all`
    /// pool run: frames delivered, channel messages, and the merge's peak
    /// buffering — the scaling bench's memory-frontier numbers.
    pub fn last_run_stats(&self) -> RunStats {
        self.last_stats
    }

    /// One machine's session, for pid lookups and exit records after a run.
    /// `None` for unknown ids — or for a shard whose session was lost to a
    /// panic (a torn session is never handed back).
    pub fn session(&self, id: &str) -> Option<&Session> {
        self.shards
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| s.session.as_ref())
    }

    /// Drive every machine for up to `max_refreshes` frames of its own
    /// monitor, stopping a machine early when its `until` predicate says so
    /// (the stopping frame is still delivered). Work is sharded over
    /// `threads` workers (clamped to `1..=machines`); frames stream into
    /// `sink` merged by `(time, machine_index)` — deterministically, at any
    /// thread count.
    ///
    /// # Failure contract: deliver-then-error
    ///
    /// A shard failure does **not** tear down the run. The contract, locked
    /// by the multi-shard failure tests:
    ///
    /// * every healthy machine keeps running to completion and its frames
    ///   keep streaming into `sink` — including frames with times *after*
    ///   the failure instant (the sink sees the whole surviving fleet, then
    ///   the caller sees the error);
    /// * frames the failed machine produced *before* failing are still
    ///   merged at their proper `(time, machine)` position relative to
    ///   every other stream — never reordered around the failure;
    /// * only after the pool has drained does `run_each` return the first
    ///   failure **by machine index** (deterministic at any thread count);
    ///   when several shards fail, the later-indexed errors are dropped but
    ///   their pre-failure frames are not.
    ///
    /// Callers who need the stream on error should stream into their own
    /// sink (it is fully populated before the error returns) or use
    /// [`ClusterSession::run_collect`], whose error carries the partial
    /// merged stream.
    pub fn run_each(
        &mut self,
        threads: usize,
        max_refreshes: usize,
        mut monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
        mut until: impl FnMut(MachineRef<'_>) -> Until,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_units(
            threads,
            max_refreshes,
            |mref| vec![(monitor(mref), until(mref))],
            Transport::Batched,
            sink,
        )
    }

    /// Drive every machine's own *set* of monitors — [`Session::run_all`]
    /// lifted to the fleet. Each machine's `monitors(mref)` are primed
    /// together and observed on their own intervals until every one has
    /// produced `refreshes` frames. An **empty monitor set is rejected**
    /// with a typed [`SessionError::InvalidScenario`] before anything runs:
    /// a machine only advances through its observations, so an unobserved
    /// machine would silently stay frozen at its current sim-time (its
    /// events — including migrations landing on it — never applying)
    /// rather than "run unobserved". The error leaves every shard intact
    /// and the cluster re-runnable. Frames are labelled
    /// `(machine, monitor-name)` in the
    /// merged stream; same-instant frames of one machine observe (and
    /// merge) in set order, same-instant frames of different machines in
    /// machine order — so the merged stream stays byte-identical at any
    /// worker-thread count. The failure contract is that of
    /// [`ClusterSession::run_each`].
    pub fn run_all(
        &mut self,
        threads: usize,
        refreshes: usize,
        mut monitors: impl FnMut(MachineRef<'_>) -> Vec<Box<dyn Monitor + Send>>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_units(
            threads,
            refreshes,
            |mref| {
                monitors(mref)
                    .into_iter()
                    .map(|m| {
                        let u: Until = Box::new(|_| false);
                        (m, u)
                    })
                    .collect()
            },
            Transport::Batched,
            sink,
        )
    }

    /// [`ClusterSession::run`] over the **per-frame transport**: one
    /// channel message per frame, one merge queue per machine, every
    /// frame's labels materialized at the worker — the transport the
    /// cluster used before columnar batching. Kept public as the
    /// differential baseline: the byte-identity tests drive both
    /// transports and assert identical merged streams, and the scaling
    /// bench measures the batched transport's win against it.
    pub fn run_per_frame(
        &mut self,
        threads: usize,
        refreshes: usize,
        mut monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_units(
            threads,
            refreshes,
            |mref| {
                let u: Until = Box::new(|_| false);
                vec![(monitor(mref), u)]
            },
            Transport::PerFrame,
            sink,
        )
    }

    /// The shared driver behind [`run_each`](ClusterSession::run_each) and
    /// [`run_all`](ClusterSession::run_all).
    fn run_units(
        &mut self,
        threads: usize,
        max_refreshes: usize,
        mut tools: impl FnMut(MachineRef<'_>) -> ToolSet,
        transport: Transport,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        // Cross-machine dependency edges need central resolution: the
        // lockstep driver marches the whole fleet in rounds, resolving
        // completions between epoch-bounded passes. (The free-running
        // worker pool below would let a consumer overrun its dependency's
        // still-unknown exit instant.)
        if self.deps.iter().any(|d| d.ev.is_some()) {
            return self.run_lockstep(threads, max_refreshes, &mut tools, sink);
        }
        let n = self.shards.len();
        for slot in &self.shards {
            if slot.session.is_none() {
                return Err(SessionError::ShardPanicked {
                    machine: slot.id.clone(),
                    message: "session was lost to a panic in an earlier run".into(),
                });
            }
        }
        // Build and validate every machine's monitors and stop predicates
        // *before* taking any session out of its slot, so an error here
        // leaves the cluster untouched and re-runnable.
        let mut per_machine: Vec<ToolSet> = Vec::with_capacity(n);
        for (index, slot) in self.shards.iter().enumerate() {
            let mref = MachineRef {
                id: &slot.id,
                index,
            };
            let set = tools(mref);
            validate_monitor_set(
                &slot.id,
                set.iter().map(|(m, _)| m.as_ref() as &dyn Monitor),
            )?;
            per_machine.push(set);
        }
        let mut units: Vec<WorkUnit> = Vec::with_capacity(n);
        for ((index, slot), set) in self.shards.iter_mut().enumerate().zip(per_machine) {
            let label = Label::new(&slot.id);
            let sym = label.sym();
            units.push(WorkUnit {
                index,
                id: slot.id.clone(),
                label,
                sym,
                session: slot.session.take().expect("checked above"),
                slots: set
                    .into_iter()
                    .map(|(monitor, until)| {
                        let source = Label::new(monitor.name());
                        let source_sym = source.sym();
                        MonitorSlot {
                            monitor,
                            until,
                            source,
                            source_sym,
                            next_at: SimTime::ZERO,
                            taken: 0,
                            done: false,
                        }
                    })
                    .collect(),
                consumes: self.consumes[index].clone(),
            });
        }

        let threads = threads.clamp(1, n);
        let mut parts: Vec<Vec<WorkUnit>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, u) in units.into_iter().enumerate() {
            parts[i % threads].push(u);
        }

        // The batched transport's per-worker queues are valid because a
        // worker always executes its globally earliest pending step —
        // resume-handoff gating breaks that (a gated earlier step can run
        // after a later free one), so runs with scripted resume handoffs
        // fall back to the per-frame transport's per-machine queues, where
        // only per-machine order matters.
        let transport = if self.consumes.iter().any(|c| !c.is_empty()) {
            Transport::PerFrame
        } else {
            transport
        };

        // One single-producer lane per worker instead of a shared channel:
        // workers never contend on one sender, and the merge thread drains
        // whole lanes per wake-up instead of paying one park/unpark per
        // message.
        let hub = LaneHub::new(threads);
        // Spent batch shells cycle back to the workers through this pool,
        // so a steady-state batched run reuses its buffers round after
        // round instead of allocating fresh ones. Bounded: each worker
        // only keeps a couple of shells in flight, so idle shells beyond
        // that are dropped rather than hoarded for the rest of the run.
        let pool = Arc::new(ShellPool::new(2 * threads + 4));
        // Batched workers interleave their machines into one ordered
        // stream each, so the merge needs one queue per *worker*; the
        // per-frame transport keeps its queue per machine.
        let mut merger = match transport {
            Transport::PerFrame => MergerKind::PerFrame(Merger::new(n)),
            Transport::Batched => MergerKind::Batched(BatchMerger::new(threads, pool.clone())),
        };
        let mut first_err: Option<(usize, SessionError)> = None;
        let mut returned: Vec<(usize, Option<Session>)> = Vec::with_capacity(n);

        std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .enumerate()
                .map(|(queue, part)| {
                    let tx = hub.sender(queue);
                    let board = self.board.clone();
                    let cfg = WorkerCfg {
                        queue,
                        transport,
                        batch_cap: BATCH_CAP,
                        pool: pool.clone(),
                    };
                    scope.spawn(move || run_worker(part, max_refreshes, tx, board, cfg))
                })
                .collect();

            let mut inbox: Vec<Msg> = Vec::new();
            while hub.recv_all(&mut inbox) {
                for msg in inbox.drain(..) {
                    match (msg, &mut merger) {
                        (Msg::Batch(b), MergerKind::Batched(m)) => m.push(b, sink),
                        (Msg::Frame { queue, frame }, MergerKind::PerFrame(m)) => {
                            m.push(queue, frame, sink)
                        }
                        (Msg::Done { queue }, MergerKind::PerFrame(m)) => m.close(queue, sink),
                        (Msg::Done { queue }, MergerKind::Batched(m)) => m.close(queue, sink),
                        (
                            Msg::Failed {
                                machine_index,
                                error,
                            },
                            _,
                        ) => {
                            if first_err.as_ref().is_none_or(|(i, _)| machine_index < *i) {
                                first_err = Some((machine_index, error));
                            }
                        }
                        // A worker only sends the message shape its
                        // transport produces.
                        (Msg::Batch(_), MergerKind::PerFrame(_))
                        | (Msg::Frame { .. }, MergerKind::Batched(_)) => {
                            unreachable!("message shape does not match the run's transport")
                        }
                    }
                }
            }

            for h in handles {
                // Workers never unwind (shard panics are caught inside);
                // a join error here would be a bug in the pool itself.
                returned.extend(h.join().expect("worker thread panicked"));
            }
        });

        self.last_stats = match &merger {
            MergerKind::PerFrame(m) => m.stats(),
            MergerKind::Batched(m) => m.stats(),
        };
        for (index, session) in returned {
            self.shards[index].session = session;
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// The round-barrier driver behind every scripted run of a cluster with
    /// cross-machine dependency edges. Rounds are keyed to t\* — the
    /// globally earliest pending observation — and between rounds the
    /// whole fleet marches to t\* in *passes*:
    ///
    /// * each pass first resolves completions: every edge whose
    ///   dependency's final incarnation has completed on its host injects
    ///   its event on the consumer at `max(exit + delay, consumer-now)`;
    /// * then every machine short of t\* advances to the pass target —
    ///   capped by its unresolved edges (an exit at or before the host's
    ///   pass-start watermark would already have resolved, so the event
    ///   cannot fire at or before `watermark + delay`), floored at one
    ///   scheduler epoch for progress, and hard-gated by unpublished
    ///   resume-handoff checkpoints.
    ///
    /// The caps make cross-machine firing instants *exact* whenever the
    /// consumer trails `exit + delay` (always, unless mutually-gated
    /// sub-epoch edges force the epoch floor, where the documented
    /// clamp-forward applies). Pass structure is a pure function of the
    /// scenario, and frames are delivered at t\* in `(machine, monitor)`
    /// order — so the merged stream is byte-identical at any thread count;
    /// threads only parallelize the advance between barriers.
    ///
    /// Unlike the free-running pool, every machine keeps pace with the
    /// fleet until the run's last observation — a machine whose own
    /// monitors finished early still advances (and its jobs still
    /// complete) so stages depending on it keep firing.
    fn run_lockstep(
        &mut self,
        threads: usize,
        max_refreshes: usize,
        tools: &mut dyn FnMut(MachineRef<'_>) -> ToolSet,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        let n = self.shards.len();
        for slot in &self.shards {
            if slot.session.is_none() {
                return Err(SessionError::ShardPanicked {
                    machine: slot.id.clone(),
                    message: "session was lost to a panic in an earlier run".into(),
                });
            }
        }
        // Build and validate every machine's monitors before taking any
        // session out of its slot (same guarantees as the pool path).
        let mut per_machine: Vec<ToolSet> = Vec::with_capacity(n);
        for (index, slot) in self.shards.iter().enumerate() {
            let mref = MachineRef {
                id: &slot.id,
                index,
            };
            let set = tools(mref);
            validate_monitor_set(
                &slot.id,
                set.iter().map(|(m, _)| m.as_ref() as &dyn Monitor),
            )?;
            per_machine.push(set);
        }
        let mut units: Vec<Option<WorkUnit>> = Vec::with_capacity(n);
        for ((index, slot), set) in self.shards.iter_mut().enumerate().zip(per_machine) {
            let label = Label::new(&slot.id);
            let sym = label.sym();
            units.push(Some(WorkUnit {
                index,
                id: slot.id.clone(),
                label,
                sym,
                session: slot.session.take().expect("checked above"),
                slots: set
                    .into_iter()
                    .map(|(monitor, until)| {
                        let source = Label::new(monitor.name());
                        let source_sym = source.sym();
                        MonitorSlot {
                            monitor,
                            until,
                            source,
                            source_sym,
                            next_at: SimTime::ZERO,
                            taken: 0,
                            done: false,
                        }
                    })
                    .collect(),
                consumes: self.consumes[index].clone(),
            }));
        }

        let mut finished: Vec<(usize, Option<Session>)> = Vec::new();
        let mut first_err: Option<(usize, SessionError)> = None;
        let mut frames = 0usize;

        // Prime every machine's monitors (serially — priming advances no
        // time). A machine with nothing to observe is handed back
        // untouched; it does not join the fleet's marching order.
        for i in 0..n {
            if max_refreshes == 0 || units[i].as_ref().is_some_and(|u| u.slots.is_empty()) {
                let unit = units[i].take().expect("just built");
                finished.push((unit.index, Some(unit.session)));
                continue;
            }
            let unit = units[i].as_mut().expect("just built");
            let primed = guard(&unit.id, || {
                for slot in &mut unit.slots {
                    slot.monitor.prime(unit.session.kernel_mut());
                }
                Ok(())
            });
            match primed {
                Ok(()) => {
                    let now = unit.session.now();
                    for slot in &mut unit.slots {
                        slot.next_at = now + slot.monitor.interval();
                    }
                }
                Err(e) => fail_unit(&mut units, &mut finished, &mut first_err, i, e),
            }
        }

        let rounds = lockstep_rounds(
            &mut units,
            &mut self.deps,
            &self.board,
            threads,
            max_refreshes,
            sink,
            &mut finished,
            &mut first_err,
            &mut frames,
        );

        // Teardown every surviving machine; a teardown panic tears the
        // shard like an observe panic would.
        for u in units.iter_mut() {
            let Some(mut unit) = u.take() else { continue };
            let torn_down = guard(&unit.id, || {
                for slot in &mut unit.slots {
                    slot.monitor.teardown(unit.session.kernel_mut());
                }
                Ok(())
            });
            match torn_down {
                Ok(()) => finished.push((unit.index, Some(unit.session))),
                Err(error) => {
                    if first_err.as_ref().is_none_or(|(i, _)| unit.index < *i) {
                        first_err = Some((unit.index, error));
                    }
                    finished.push((unit.index, None));
                }
            }
        }

        self.last_stats = RunStats {
            frames,
            batches: 0,
            peak_buffered_frames: 0,
            peak_buffered_bytes: 0,
        };
        for (index, session) in finished {
            self.shards[index].session = session;
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => rounds,
        }
    }

    /// [`ClusterSession::run_each`] without early stopping: every machine
    /// produces exactly `refreshes` frames.
    pub fn run(
        &mut self,
        threads: usize,
        refreshes: usize,
        monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<(), SessionError> {
        self.run_each(threads, refreshes, monitor, |_| Box::new(|_| false), sink)
    }

    /// [`ClusterSession::run`] into a [`ClusterCollectSink`], returning the
    /// merged stream. On failure the error carries every frame merged
    /// before the pool drained ([`ClusterRunError::partial`]) — the
    /// deliver-then-error contract means a long run's healthy shards are
    /// preserved, not discarded.
    pub fn run_collect(
        &mut self,
        threads: usize,
        refreshes: usize,
        monitor: impl FnMut(MachineRef<'_>) -> Box<dyn Monitor + Send>,
    ) -> Result<Vec<ClusterFrame>, ClusterRunError> {
        let mut sink = ClusterCollectSink::new();
        match self.run(threads, refreshes, monitor, &mut sink) {
            Ok(()) => Ok(sink.into_frames()),
            Err(error) => Err(ClusterRunError {
                error,
                partial: sink.into_frames(),
            }),
        }
    }

    /// Drive the fleet like [`ClusterSession::run_all`] — per-machine
    /// monitor sets, `refreshes` frames each, frames merged by
    /// `(time, machine)` into `sink` — while [`SchedulerPolicy`]s watch the
    /// merged stream **live** and issue migrations, closing the paper's
    /// monitor→decision loop. Returns the decisions that were applied.
    ///
    /// # How the loop stays deterministic
    ///
    /// Runtime decisions break the free-running worker model: a shard that
    /// has raced ahead of the merge frontier could already be *past* the
    /// instant a decision must land on. `run_reactive` therefore advances
    /// the fleet in **observation rounds**: each round takes the globally
    /// earliest pending observation instant `t*`, advances every machine
    /// due at `t*` concurrently on the worker pool, merges the round's
    /// frames (machine order, then set order — the same order `run_all`
    /// produces), shows each frame to every policy, and delivers it to the
    /// sink. Decisions fired on a frame at `t*` are validated and injected
    /// as pending events at the **next scheduler-epoch boundary after
    /// `t*`** ([`Kernel::epoch_boundary_after`]) — strictly ahead of every
    /// machine's clock, since no machine is ever past `t*` between rounds.
    /// Everything is keyed to sim-time, so the merged stream, the decisions
    /// and their application instants are **byte-identical at any
    /// worker-thread count**; `threads` only changes wall-clock.
    ///
    /// A decision is a kill on the source plus a spawn of the retained job
    /// spec ([`Session::job_spec`]) on the destination at the same instant,
    /// exactly like a scripted [`ClusterScenario::migrate_at`] — and, like
    /// it, mode-aware: a [`MigrationMode::Resume`] decision checkpoints the
    /// task at the kill instant and resumes it mid-program on the
    /// destination (the sources are advanced to the handoff instant ahead
    /// of the round's parallel phase, so the checkpoint is always published
    /// before the destination takes it — sequencing that changes nothing
    /// observable, since frames exist only at observation instants). When the
    /// refresh interval exceeds the scheduler epoch (the usual shape —
    /// seconds-scale refreshes over a 20 ms epoch) the boundary falls
    /// strictly between observation instants and the reactive stream has
    /// no double-visibility handover frame; if an observation lands
    /// exactly on the application instant, the handover frame appears just
    /// as in scripted runs — [`ClusterSession::handovers`] (every applied
    /// decision is appended to it) identifies those instants for post-hoc
    /// dedupe of aggregates.
    ///
    /// # Run-time validation
    ///
    /// Scripted schedules are fully validated at build time; a live
    /// decision gets the run-time half, with infeasible requests surfacing
    /// as typed [`SessionError::InvalidDecision`]s: unknown machines,
    /// source == destination, no task with the tag on the source, a tag
    /// that already exited, a destination that currently carries a live
    /// task with the tag, or a resume-mode kill of a program that already
    /// ran to completion (nothing left to checkpoint).
    ///
    /// # Failure contract
    ///
    /// Unlike [`ClusterSession::run_each`]'s deliver-then-error, a reactive
    /// run **halts at the round barrier**: on a shard error (or an
    /// infeasible decision) the current round's healthy frames are still
    /// delivered, then the run stops — continuing without the full fleet
    /// would feed the policies a partial view and silently change their
    /// decisions. The first error by machine index is returned; healthy
    /// shards' sessions are handed back (a panicked shard's is withheld,
    /// as everywhere else).
    ///
    /// [`Kernel::epoch_boundary_after`]: tiptop_kernel::kernel::Kernel::epoch_boundary_after
    pub fn run_reactive(
        &mut self,
        threads: usize,
        refreshes: usize,
        mut monitors: impl FnMut(MachineRef<'_>) -> Vec<Box<dyn Monitor + Send>>,
        policies: &mut [Box<dyn SchedulerPolicy>],
        sink: &mut dyn ClusterFrameSink,
    ) -> Result<Vec<AppliedDecision>, SessionError> {
        if self.deps.iter().any(|d| d.ev.is_some()) {
            return Err(SessionError::InvalidScenario(
                "cross-machine dependency edges are not supported by run_reactive: \
                 dependency-triggered events and live policy decisions would contend \
                 for the same injection instants; use run/run_each/run_all for \
                 scenarios with cross-machine edges"
                    .into(),
            ));
        }
        let n = self.shards.len();
        for slot in &self.shards {
            if slot.session.is_none() {
                return Err(SessionError::ShardPanicked {
                    machine: slot.id.clone(),
                    message: "session was lost to a panic in an earlier run".into(),
                });
            }
        }
        // Build and validate every machine's monitor set before taking any
        // session out of its slot (same guarantees as `run_all`).
        let mut per_machine: Vec<Vec<Box<dyn Monitor + Send>>> = Vec::with_capacity(n);
        for (index, slot) in self.shards.iter().enumerate() {
            let set = monitors(MachineRef {
                id: &slot.id,
                index,
            });
            validate_monitor_set(&slot.id, set.iter().map(|m| m.as_ref() as &dyn Monitor))?;
            per_machine.push(set);
        }
        let mut units: Vec<ReactiveUnit> = Vec::with_capacity(n);
        for ((index, slot), set) in self.shards.iter_mut().enumerate().zip(per_machine) {
            units.push(ReactiveUnit {
                index,
                id: slot.id.clone(),
                label: Label::new(&slot.id),
                session: slot.session.take().expect("checked above"),
                slots: set
                    .into_iter()
                    .map(|monitor| {
                        let source = Label::new(monitor.name());
                        ReactiveSlot {
                            monitor,
                            source,
                            next_at: SimTime::ZERO,
                            taken: 0,
                        }
                    })
                    .collect(),
                torn: false,
            });
        }

        let mut applied: Vec<AppliedDecision> = Vec::new();
        let result = reactive_loop(
            &mut units,
            threads,
            refreshes,
            policies,
            sink,
            &mut self.handovers,
            &mut applied,
        );
        for unit in units {
            if !unit.torn {
                self.shards[unit.index].session = Some(unit.session);
            }
        }
        result.map(|()| applied)
    }
}

/// Which transport a pool run uses between workers and the merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Transport {
    /// One channel message per frame, one merge queue per machine, labels
    /// materialized at the worker — the original transport, kept as the
    /// differential baseline (see [`ClusterSession::run_per_frame`]).
    PerFrame,
    /// Columnar [`FrameBatch`]es, one merge queue per worker, interned
    /// labels, shells recycled through a shared pool — the default.
    Batched,
}

/// Frames per [`FrameBatch`] before a worker flushes it to the merge. Big
/// enough to amortize the channel send and wake-up, small enough that the
/// merge's run-delivery latency (and its buffering of other queues) stays
/// a round or two.
const BATCH_CAP: usize = 32;

/// Per-worker transport configuration of one pool run.
struct WorkerCfg {
    /// This worker's merge queue (batched transport; per-frame uses the
    /// machine index instead).
    queue: usize,
    transport: Transport,
    batch_cap: usize,
    /// Spent-shell recycling pool, shared with the merge.
    pool: Arc<ShellPool>,
}

/// One monitor of one machine: its own interval clock, stop predicate and
/// observation count.
struct MonitorSlot {
    monitor: Box<dyn Monitor + Send>,
    until: Until,
    /// The monitor's name as a shared label / interned id, captured once —
    /// the hot loop never calls `name()` again.
    source: Label,
    source_sym: SymId,
    next_at: SimTime,
    taken: usize,
    done: bool,
}

struct WorkUnit {
    index: usize,
    id: String,
    /// The machine id as a shared label / interned id, captured once.
    label: Label,
    sym: SymId,
    session: Session,
    slots: Vec<MonitorSlot>,
    /// Scripted resume handoffs this machine consumes — `(instant, tag,
    /// producer machine index)` in instant order. A step may not cross an
    /// instant whose checkpoint is unpublished (see `run_worker`).
    consumes: Vec<(SimTime, String, usize)>,
}

/// One monitor of one machine in a reactive run: its own interval clock
/// and observation count (stop predicates don't apply — the policies are
/// the control surface).
struct ReactiveSlot {
    monitor: Box<dyn Monitor + Send>,
    /// The monitor's name as a shared label, captured once — each round's
    /// frames refbump it instead of allocating a `String`.
    source: Label,
    next_at: SimTime,
    taken: usize,
}

struct ReactiveUnit {
    index: usize,
    id: String,
    /// The machine id as a shared label, captured once.
    label: Label,
    session: Session,
    slots: Vec<ReactiveSlot>,
    /// A panic tore this shard mid-epoch; its session is never handed back.
    torn: bool,
}

/// The round-barrier driver behind [`ClusterSession::run_reactive`]: run
/// the observation rounds, then tear every surviving shard's monitors down
/// — on the error path too, since healthy sessions are handed back and
/// must not keep leaked counter fds attached.
fn reactive_loop(
    units: &mut [ReactiveUnit],
    threads: usize,
    refreshes: usize,
    policies: &mut [Box<dyn SchedulerPolicy>],
    sink: &mut dyn ClusterFrameSink,
    handovers: &mut Vec<HandoverRecord>,
    applied: &mut Vec<AppliedDecision>,
) -> Result<(), SessionError> {
    let mut run_handovers: Vec<HandoverRecord> = Vec::new();
    let mut injected: Vec<InjectedDecision> = Vec::new();
    let mut result = reactive_rounds(
        units,
        threads,
        refreshes,
        policies,
        sink,
        &mut run_handovers,
        applied,
        &mut injected,
    );
    // Teardown, machine by machine; a panic tears the shard like an
    // observe panic would, but never masks the rounds' own error.
    for unit in units.iter_mut().filter(|u| !u.torn) {
        let torn_down = guard(&unit.id, || {
            for slot in &mut unit.slots {
                slot.monitor.teardown(unit.session.kernel_mut());
            }
            Ok(())
        });
        if let Err(e) = torn_down {
            unit.torn = true;
            if result.is_ok() {
                result = Err(e);
            }
        }
    }
    if result.is_err() {
        // The run halted before some decisions' kill/spawn could apply.
        // Keep the fleet consistent: a decision that applied on *neither*
        // side is rolled back (both events cancelled), one that applied on
        // one side is *completed* on the other — the lagging machine is
        // advanced past the instant, producing no frames — so after any
        // run every decision either fully happened (and is recorded in
        // `handovers()`) or never did; a handed-back cluster can never
        // perform a silent, unrecorded migration on a later run.
        for inj in &injected {
            let src_applied = units[inj.src].session.now() >= inj.at;
            let dst_applied = units[inj.dst].session.now() >= inj.at;
            match (src_applied, dst_applied) {
                (false, false) => {
                    units[inj.src].session.cancel_scheduled(inj.at, &inj.tag);
                    units[inj.dst].session.cancel_scheduled(inj.at, &inj.tag);
                }
                (true, true) => {}
                _ => {
                    // Advance both sides one epoch past the instant: the
                    // lagging side applies its event, the other side reaps
                    // its zombie into the exit record.
                    for index in [inj.src, inj.dst] {
                        let unit = &mut units[index];
                        if unit.torn {
                            continue;
                        }
                        let target = unit.session.kernel().epoch_boundary_after(inj.at);
                        if unit.session.now() >= target {
                            continue;
                        }
                        let r = guard(&unit.id, || unit.session.advance_to(target));
                        if matches!(r, Err(SessionError::ShardPanicked { .. })) {
                            unit.torn = true;
                        }
                        // A clean completion failure (e.g. the kill racing
                        // a natural exit) is swallowed: the original error
                        // stands, and the ground-truth prune below keeps
                        // only records of migrations that really happened.
                    }
                }
            }
            // If the source's kill mis-fired — the job retired its last
            // instruction inside the decision-to-boundary window and the
            // kill hit a tombstone — the decision did not happen: revert
            // the destination (cancel a still-pending spawn, kill an
            // already-started clone) so the handed-back fleet carries no
            // unrecorded restarted copy of a job that finished on its own.
            let killed_at_boundary = units[inj.src].session.pid(&inj.tag).is_some_and(|pid| {
                let k = units[inj.src].session.kernel();
                match k.exit_record(pid) {
                    Some(rec) => rec.end_time == inj.at,
                    None => {
                        units[inj.src].session.now() < inj.at
                            || k.stat(pid).is_some_and(|st| st.state == TaskState::Zombie)
                    }
                }
            });
            if !killed_at_boundary {
                let dst = &mut units[inj.dst];
                dst.session.cancel_scheduled(inj.at, &inj.tag);
                if let Some(pid) = dst.session.pid(&inj.tag) {
                    if dst.session.kernel().is_alive(pid) {
                        let _ = dst.session.kernel_mut().kill(pid);
                    }
                }
            }
        }
    }
    // [`ClusterSession::handovers`] promises *applied* migrations. A run
    // that errors mid-flight may have scheduled decisions whose kill/spawn
    // never executed (or only half did); keep a record only when the
    // destination resolved the spawned tag AND the source's task ended at
    // exactly the handover instant (an earlier end time means the job
    // exited on its own and the migration's kill mis-fired). On success
    // the final flush guarantees both, so this prunes nothing.
    run_handovers.retain(|h| {
        let unit = |id: &str| units.iter().find(|u| u.id == *id);
        let spawned = unit(&h.to).is_some_and(|u| u.session.pid(&h.tag).is_some());
        let killed = unit(&h.from).is_some_and(|u| {
            u.session.pid(&h.tag).is_some_and(|pid| {
                match u.session.kernel().exit_record(pid) {
                    Some(rec) => rec.end_time == h.at,
                    // Applied but not yet reaped: the clock stopped on the
                    // application instant itself.
                    None => {
                        u.session.now() >= h.at
                            && u.session
                                .kernel()
                                .stat(pid)
                                .is_some_and(|st| st.state == TaskState::Zombie)
                    }
                }
            })
        });
        spawned && killed
    });
    handovers.extend(run_handovers);
    result
}

/// One live decision's injected event pair, for the resume-mode
/// source-before-destination ordering, the end-of-run flush and the
/// error-path rollback.
struct InjectedDecision {
    at: SimTime,
    tag: String,
    /// Source / destination positions in the units slice.
    src: usize,
    dst: usize,
    mode: MigrationMode,
}

/// Prime, then repeat: advance the machines due at the globally earliest
/// pending observation instant concurrently, merge the round's frames, let
/// the policies watch, apply their decisions at the next epoch boundary —
/// and, once the rounds are done, flush decision events scheduled past the
/// final observation so every reported [`AppliedDecision`] really applied.
#[allow(clippy::too_many_arguments)]
fn reactive_rounds(
    units: &mut [ReactiveUnit],
    threads: usize,
    refreshes: usize,
    policies: &mut [Box<dyn SchedulerPolicy>],
    sink: &mut dyn ClusterFrameSink,
    handovers: &mut Vec<HandoverRecord>,
    applied: &mut Vec<AppliedDecision>,
    injected: &mut Vec<InjectedDecision>,
) -> Result<(), SessionError> {
    // Prime every machine's monitors (serially — priming advances no time).
    for unit in units.iter_mut() {
        let primed = guard(&unit.id, || {
            for slot in &mut unit.slots {
                slot.monitor.prime(unit.session.kernel_mut());
            }
            Ok(())
        });
        if let Err(e) = primed {
            unit.torn = true;
            return Err(e);
        }
        let now = unit.session.now();
        for slot in &mut unit.slots {
            slot.next_at = now + slot.monitor.interval();
        }
    }

    let mut pre_advanced = 0usize;
    loop {
        // The globally earliest pending observation instant.
        let t_star = units
            .iter()
            .flat_map(|u| {
                u.slots
                    .iter()
                    .filter(|s| s.taken < refreshes)
                    .map(|s| s.next_at)
            })
            .min();
        let Some(t_star) = t_star else { break };

        // A resume-mode decision landing at or before this round's instant
        // must publish its checkpoint before any machine crosses the
        // handoff in the parallel phase: advance each source sequentially
        // to the handoff instant first. `advance_to` stops at every event
        // instant anyway, so splitting the source's advance changes
        // nothing observable — frames only exist at observation instants —
        // and the merged stream stays byte-identical at any thread count.
        // Injection order is application order, so the cursor only moves
        // forward. A checkpoint of a program that already ran to
        // completion surfaces here as the session's typed
        // [`SessionError::InvalidDecision`], passed through unwrapped.
        while pre_advanced < injected.len() && injected[pre_advanced].at <= t_star {
            let inj = &injected[pre_advanced];
            pre_advanced += 1;
            if inj.mode != MigrationMode::Resume {
                continue;
            }
            let unit = &mut units[inj.src];
            if unit.torn || unit.session.now() >= inj.at {
                continue;
            }
            let r = guard(&unit.id, || unit.session.advance_to(inj.at));
            match r {
                Ok(()) => {}
                Err(e @ SessionError::ShardPanicked { .. }) => {
                    unit.torn = true;
                    return Err(e);
                }
                Err(e @ SessionError::InvalidDecision(_)) => return Err(e),
                Err(e) => {
                    return Err(SessionError::Shard {
                        machine: unit.id.clone(),
                        error: Box::new(e),
                    })
                }
            }
        }

        // Advance every machine due at t* concurrently. Each worker owns a
        // disjoint set of units; results are re-ordered by machine index
        // afterwards, so the partition never shows in the output.
        let due: Vec<&mut ReactiveUnit> = units
            .iter_mut()
            .filter(|u| {
                u.slots
                    .iter()
                    .any(|s| s.taken < refreshes && s.next_at == t_star)
            })
            .collect();
        let mut round: Vec<(usize, String, Result<Vec<ClusterFrame>, SessionError>)> = Vec::new();
        if due.len() == 1 {
            // A single due machine gains nothing from the pool; advance it
            // inline instead of paying a thread spawn + join per round.
            let unit = due.into_iter().next().expect("one due machine");
            round.push(advance_due_unit(unit, t_star, refreshes));
        } else {
            let workers = threads.clamp(1, due.len());
            let mut parts: Vec<Vec<&mut ReactiveUnit>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, u) in due.into_iter().enumerate() {
                parts[i % workers].push(u);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = parts
                    .into_iter()
                    .map(|part| {
                        scope.spawn(move || {
                            part.into_iter()
                                .map(|unit| advance_due_unit(unit, t_star, refreshes))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    round.extend(h.join().expect("worker thread panicked"));
                }
            });
        }
        round.sort_by_key(|(index, _, _)| *index);

        // Merge the round (all frames share t*, so machine order then set
        // order is exactly the (time, machine) merge), let every policy
        // watch each frame, then deliver it.
        let mut first_err: Option<SessionError> = None;
        let mut decisions: Vec<(String, MigrationDecision)> = Vec::new();
        for (_, id, r) in round {
            match r {
                Ok(frames) => {
                    for frame in frames {
                        for p in policies.iter_mut() {
                            for d in p.observe(&frame) {
                                decisions.push((p.name().to_string(), d));
                            }
                        }
                        sink.on_frame(frame);
                    }
                }
                Err(e) if first_err.is_none() => {
                    first_err = Some(match e {
                        e @ SessionError::ShardPanicked { .. } => e,
                        other => SessionError::Shard {
                            machine: id,
                            error: Box::new(other),
                        },
                    });
                }
                Err(_) => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        for (policy, decision) in decisions {
            let record = apply_decision(units, policy, decision, t_star, injected)?;
            handovers.push(record.1);
            applied.push(record.0);
        }
    }

    // A decision fired on the final round scheduled its kill/spawn past
    // the last observation; land those events so every reported
    // AppliedDecision (and handover record) really happened. Two phases,
    // both keyed to sim-time (no frames are produced, so determinism is
    // unaffected): first land every injection's events in injection order
    // — the source reaches the handoff instant before its destination, so
    // a resume checkpoint is always published before the ResumeSpawn takes
    // it, and no machine moves *past* an instant while later handoffs are
    // still pending — then advance every involved machine one epoch past
    // its latest instant, reaping the source's zombie into its exit record.
    for phase in 0..2 {
        for inj in injected.iter() {
            for index in [inj.src, inj.dst] {
                let unit = &mut units[index];
                let target = if phase == 0 {
                    inj.at
                } else {
                    unit.session.kernel().epoch_boundary_after(inj.at)
                };
                if unit.session.now() >= target {
                    continue;
                }
                let r = guard(&unit.id, || unit.session.advance_to(target));
                if let Err(e) = r {
                    let torn = matches!(e, SessionError::ShardPanicked { .. });
                    unit.torn = torn;
                    return Err(match e {
                        e @ SessionError::ShardPanicked { .. } => e,
                        // A resume-mode kill that found its program already
                        // completed is the decision's fault, not the
                        // shard's: surface the typed InvalidDecision
                        // unwrapped.
                        e @ SessionError::InvalidDecision(_) => e,
                        other => SessionError::Shard {
                            machine: unit.id.clone(),
                            error: Box::new(other),
                        },
                    });
                }
            }
        }
    }
    Ok(())
}

/// Advance one due machine to the round instant and take every due slot's
/// observation, panics contained; the shared per-unit step of a round.
fn advance_due_unit(
    unit: &mut ReactiveUnit,
    t_star: SimTime,
    refreshes: usize,
) -> (usize, String, Result<Vec<ClusterFrame>, SessionError>) {
    let r = guard(&unit.id, || {
        unit.session.advance_to(t_star)?;
        let mut frames = Vec::new();
        for slot in unit
            .slots
            .iter_mut()
            .filter(|s| s.taken < refreshes && s.next_at == t_star)
        {
            let frame = slot.monitor.observe(unit.session.kernel_mut());
            slot.taken += 1;
            slot.next_at = t_star + slot.monitor.interval();
            frames.push(ClusterFrame {
                machine: unit.label.clone(),
                machine_index: unit.index,
                source: slot.source.clone(),
                seq: slot.taken - 1,
                frame,
            });
        }
        Ok(frames)
    });
    if matches!(r, Err(SessionError::ShardPanicked { .. })) {
        unit.torn = true;
    }
    (unit.index, unit.id.clone(), r)
}

/// Validate one live decision against the live sessions (the run-time half
/// of migration validation) and inject its kill + spawn at the next epoch
/// boundary after the deciding frame.
fn apply_decision(
    units: &mut [ReactiveUnit],
    policy: String,
    d: MigrationDecision,
    decided_at: SimTime,
    injected: &mut Vec<InjectedDecision>,
) -> Result<(AppliedDecision, HandoverRecord), SessionError> {
    let label = format!(
        "{policy}: migrate '{}' {}->{} decided at {decided_at:?}",
        d.tag, d.from, d.to
    );
    let infeasible = |msg: String| SessionError::InvalidDecision(format!("{label}: {msg}"));
    if d.from == d.to {
        return Err(infeasible(
            "source and destination are the same machine".into(),
        ));
    }
    let position = |id: &str| units.iter().position(|u| u.id == id);
    let (Some(fi), Some(ti)) = (position(&d.from), position(&d.to)) else {
        let missing = if position(&d.from).is_none() {
            &d.from
        } else {
            &d.to
        };
        return Err(infeasible(format!("unknown machine '{missing}'")));
    };
    let src = &units[fi].session;
    let Some(pid) = src.pid(&d.tag) else {
        return Err(infeasible(format!(
            "no task tagged '{}' on '{}'",
            d.tag, d.from
        )));
    };
    if !src.kernel().is_alive(pid) {
        return Err(infeasible(format!("'{}' already exited", d.tag)));
    }
    // Checked *before* touching the destination, so a rejected duplicate
    // claim (two same-round decisions fighting over one job) leaves no
    // stray spawn behind.
    if let Some(kill_at) = src.pending_kill(&d.tag) {
        return Err(infeasible(format!(
            "'{}' is already claimed by another decision (kill pending at {kill_at:?})",
            d.tag
        )));
    }
    let spec = src
        .job_spec(&d.tag)
        .cloned()
        .expect("a resolved tag retains its spec");
    // Between rounds no machine's clock is past the deciding frame, so the
    // next epoch boundary after it is strictly ahead of both sessions.
    let at = src.kernel().epoch_boundary_after(decided_at);
    // The run loops publish a resume checkpoint by advancing its source to
    // the handoff instant before anything else crosses it. That ordering
    // breaks if this decision's destination is itself the *source* of
    // another resume handoff at the same instant: advancing that machine
    // (to publish) would also apply this decision's ResumeSpawn, before
    // this source has published. Same-instant resume chains through one
    // machine are therefore infeasible (this also catches cycles).
    if d.mode == MigrationMode::Resume
        && injected
            .iter()
            .any(|inj| inj.at == at && inj.mode == MigrationMode::Resume && inj.src == ti)
    {
        return Err(infeasible(format!(
            "machine '{}' is already the source of a resume handoff applying at \
             {at:?}; same-instant resume chains are not supported",
            d.to
        )));
    }
    let comm = spec.comm.clone();
    // Re-label the sessions' own InvalidDecision messages with the
    // decision context before surfacing them.
    fn relabel(label: &str, e: SessionError) -> SessionError {
        match e {
            SessionError::InvalidDecision(msg) => {
                SessionError::InvalidDecision(format!("{label}: {msg}"))
            }
            other => other,
        }
    }
    let (spawn_ev, kill_ev) = match d.mode {
        MigrationMode::Restart => (
            WorkloadEvent::Spawn {
                tag: d.tag.clone(),
                spec,
            },
            WorkloadEvent::Kill { tag: d.tag.clone() },
        ),
        MigrationMode::Resume => (
            WorkloadEvent::ResumeSpawn {
                tag: d.tag.clone(),
                spec,
            },
            WorkloadEvent::CheckpointKill { tag: d.tag.clone() },
        ),
    };
    units[ti]
        .session
        .schedule_at(at, spawn_ev)
        .map_err(|e| relabel(&label, e))?;
    units[fi]
        .session
        .schedule_at(at, kill_ev)
        .map_err(|e| relabel(&label, e))?;
    injected.push(InjectedDecision {
        at,
        tag: d.tag.clone(),
        src: fi,
        dst: ti,
        mode: d.mode,
    });
    Ok((
        AppliedDecision {
            policy,
            tag: d.tag.clone(),
            from: d.from.clone(),
            to: d.to.clone(),
            decided_at,
            applied_at: at,
            mode: d.mode,
        },
        HandoverRecord {
            at,
            tag: d.tag,
            comm,
            from: d.from,
            to: d.to,
            mode: d.mode,
        },
    ))
}

/// The worker→merge fan-in: one single-producer lane per worker instead of
/// one shared [`std::sync::mpsc`] channel. A producer appends to its own
/// lane under an uncontended mutex, so workers never serialize on a shared
/// sender; the merge thread drains *every* lane per wake-up, so a busy run
/// pays one park/unpark per drained burst instead of one per message.
///
/// The sleep protocol is an eventcount: the consumer publishes `sleeping`
/// (SeqCst) *before* re-checking the lanes under the signal lock, and a
/// producer that pushed a message loads `sleeping` (SeqCst) after its push.
/// Either the producer's load observes the store — and it takes the signal
/// lock to notify, serializing with the consumer's wait — or the load ran
/// before the store in the total order, in which case the push it follows
/// is visible to the consumer's re-check. A missed wake-up is impossible.
///
/// Per-lane FIFO is all the merge needs (each merge queue is fed by exactly
/// one worker); cross-lane interleaving is as unordered as the shared
/// channel was, and the deterministic merge never depended on it.
struct LaneHub {
    lanes: Vec<Mutex<LaneState>>,
    /// True while the consumer is committing to sleep; producers that see
    /// it take the signal lock and notify.
    sleeping: AtomicBool,
    signal: Mutex<()>,
    wakeup: Condvar,
}

struct LaneState {
    buf: Vec<Msg>,
    /// Set when the lane's producer is gone (normal return or panic).
    closed: bool,
}

/// What one full sweep over the lanes yielded.
enum LanePoll {
    /// At least one message was moved into the inbox.
    Got,
    /// Nothing buffered, but producers remain.
    Empty,
    /// Every lane is closed and drained: the stream is over.
    Finished,
}

impl LaneHub {
    fn new(lanes: usize) -> Arc<Self> {
        Arc::new(LaneHub {
            lanes: (0..lanes)
                .map(|_| {
                    Mutex::new(LaneState {
                        buf: Vec::new(),
                        closed: false,
                    })
                })
                .collect(),
            sleeping: AtomicBool::new(false),
            signal: Mutex::new(()),
            wakeup: Condvar::new(),
        })
    }

    /// The single producer handle of lane `lane`. Dropping it (including
    /// by a panicking worker thread) closes the lane, like an mpsc sender
    /// disconnect.
    fn sender(self: &Arc<Self>, lane: usize) -> LaneTx {
        LaneTx {
            hub: self.clone(),
            lane,
        }
    }

    /// Wake the consumer if it is parked (or committing to park).
    fn wake(&self) {
        if self.sleeping.load(Ordering::SeqCst) {
            let _guard = self.signal.lock().expect("lane signal poisoned");
            self.wakeup.notify_one();
        }
    }

    /// Sweep every lane once, appending drained messages to `inbox`.
    fn poll(&self, inbox: &mut Vec<Msg>) -> LanePoll {
        let mut got = false;
        let mut open = false;
        for lane in &self.lanes {
            let mut state = lane.lock().expect("lane poisoned");
            if !state.buf.is_empty() {
                inbox.append(&mut state.buf);
                got = true;
            }
            if !state.closed {
                open = true;
            }
        }
        if got {
            LanePoll::Got
        } else if open {
            LanePoll::Empty
        } else {
            LanePoll::Finished
        }
    }

    /// Drain all lanes into `inbox`, blocking until at least one message
    /// arrives. Returns `false` once every lane is closed and drained.
    fn recv_all(&self, inbox: &mut Vec<Msg>) -> bool {
        loop {
            match self.poll(inbox) {
                LanePoll::Got => return true,
                LanePoll::Finished => return false,
                LanePoll::Empty => {}
            }
            let guard = self.signal.lock().expect("lane signal poisoned");
            self.sleeping.store(true, Ordering::SeqCst);
            // Re-check after publishing `sleeping`: a producer that pushed
            // before observing it is caught here, not slept through.
            let verdict = self.poll(inbox);
            match verdict {
                LanePoll::Got | LanePoll::Finished => {
                    self.sleeping.store(false, Ordering::SeqCst);
                    return matches!(verdict, LanePoll::Got);
                }
                LanePoll::Empty => {
                    // Spurious wakes loop back through the outer poll.
                    let _guard = self.wakeup.wait(guard).expect("lane signal poisoned");
                    self.sleeping.store(false, Ordering::SeqCst);
                }
            }
        }
    }
}

/// The producing end of one [`LaneHub`] lane. Not `Clone` — a lane has
/// exactly one producer, which is what keeps per-queue message order free.
struct LaneTx {
    hub: Arc<LaneHub>,
    lane: usize,
}

impl LaneTx {
    fn send(&self, msg: Msg) {
        {
            let mut state = self.hub.lanes[self.lane].lock().expect("lane poisoned");
            state.buf.push(msg);
        }
        self.hub.wake();
    }
}

impl Drop for LaneTx {
    fn drop(&mut self) {
        {
            let mut state = self.hub.lanes[self.lane].lock().expect("lane poisoned");
            state.closed = true;
        }
        self.hub.wake();
    }
}

enum Msg {
    /// A batch of consecutive frames from one batched-transport queue.
    Batch(FrameBatch),
    /// One frame of one per-frame-transport queue.
    Frame { queue: usize, frame: ClusterFrame },
    /// The queue has no more messages.
    Done { queue: usize },
    /// A machine failed; its queue still gets a `Done` when it closes.
    Failed {
        machine_index: usize,
        error: SessionError,
    },
}

/// The run's merge, matching its transport.
enum MergerKind {
    PerFrame(Merger),
    Batched(BatchMerger),
}

struct MergeQueue {
    buf: VecDeque<ClusterFrame>,
    /// Still producing: its head bounds what may still arrive.
    open: bool,
}

impl Default for MergeQueue {
    fn default() -> Self {
        MergeQueue {
            buf: VecDeque::new(),
            open: true,
        }
    }
}

/// The deterministic k-way merge, driven incrementally: a frontier heap
/// holds the head `(time, machine)` key of every non-empty queue, so
/// delivering a frame costs `O(log n)` instead of rescanning all `n`
/// queues per delivered frame. Frames may be emitted only while no
/// still-producing queue is empty — such a queue could still emit a frame
/// earlier than every buffered head.
struct Merger {
    queues: Vec<MergeQueue>,
    /// Min-heap over each non-empty queue's head key; every non-empty
    /// queue appears exactly once.
    frontier: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// How many queues are open with nothing buffered — while any exist,
    /// the merge must wait on them.
    blocked: usize,
    delivered: usize,
    messages: usize,
    buffered: usize,
    peak_buffered: usize,
}

impl Merger {
    fn new(n: usize) -> Self {
        Merger {
            queues: (0..n).map(|_| MergeQueue::default()).collect(),
            frontier: BinaryHeap::with_capacity(n),
            blocked: n,
            delivered: 0,
            messages: 0,
            buffered: 0,
            peak_buffered: 0,
        }
    }

    fn stats(&self) -> RunStats {
        RunStats {
            frames: self.delivered,
            batches: self.messages,
            peak_buffered_frames: self.peak_buffered,
            peak_buffered_bytes: 0,
        }
    }

    fn push(&mut self, index: usize, frame: ClusterFrame, sink: &mut dyn ClusterFrameSink) {
        let q = &mut self.queues[index];
        if q.buf.is_empty() {
            self.frontier.push(Reverse((frame.frame.time, index)));
            // Per-machine messages are ordered (one worker owns the
            // machine), so a frame never arrives after Done/Failed.
            if q.open {
                self.blocked -= 1;
            }
        }
        q.buf.push_back(frame);
        self.messages += 1;
        self.buffered += 1;
        self.peak_buffered = self.peak_buffered.max(self.buffered);
        self.drain(sink);
    }

    fn close(&mut self, index: usize, sink: &mut dyn ClusterFrameSink) {
        let q = &mut self.queues[index];
        if q.open {
            q.open = false;
            if q.buf.is_empty() {
                self.blocked -= 1;
            }
        }
        self.drain(sink);
    }

    fn drain(&mut self, sink: &mut dyn ClusterFrameSink) {
        while self.blocked == 0 {
            let Some(Reverse((_, i))) = self.frontier.pop() else {
                return;
            };
            let q = &mut self.queues[i];
            let frame = q.buf.pop_front().expect("frontier tracks non-empty queues");
            match q.buf.front() {
                Some(head) => {
                    let key = (head.frame.time, i);
                    self.frontier.push(Reverse(key));
                }
                None => {
                    if q.open {
                        self.blocked += 1;
                    }
                }
            }
            self.buffered -= 1;
            self.delivered += 1;
            sink.on_frame(frame);
        }
    }
}

/// One batched-transport merge queue: batches in arrival order, with a
/// cursor into the head batch marking how far it has been delivered.
struct BatchQueue {
    buf: VecDeque<FrameBatch>,
    /// Next undelivered frame of the head batch.
    cursor: usize,
    /// Still producing: its head bounds what may still arrive.
    open: bool,
}

impl Default for BatchQueue {
    fn default() -> Self {
        BatchQueue {
            buf: VecDeque::new(),
            cursor: 0,
            open: true,
        }
    }
}

/// A loser (tournament) tree over the merge queues' head keys — the
/// k-way merge's select-min structure. `tree[0]` names the winning leaf;
/// each internal node `1..k` stores the leaf that *lost* the match played
/// there. Replacing one leaf's key replays only the matches on that leaf's
/// root path — `O(log k)` with no allocation and, unlike a binary heap, no
/// pop/push pair per delivery: the winner is simply re-seeded in place.
/// The runner-up (the bound for run delivery) also lives on the winner's
/// root path, so reading it is `O(log k)` too, against the heap's
/// pop-peek-push dance.
struct LoserTree {
    k: usize,
    /// `tree[0]`: the overall winner; `tree[1..k]`: the loser per match.
    tree: Vec<usize>,
    /// Head key per leaf; `None` means exhausted (+∞).
    keys: Vec<Option<(SimTime, usize)>>,
}

impl LoserTree {
    fn new(k: usize) -> Self {
        let k = k.max(1);
        let mut t = LoserTree {
            k,
            tree: vec![0; k],
            keys: vec![None; k],
        };
        t.rebuild();
        t
    }

    /// Does leaf `a` beat leaf `b`? Exhausted leaves lose to live ones;
    /// the leaf index breaks exact ties deterministically (merge keys are
    /// unique across queues, so live ties only occur between `None`s).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.keys[a], &self.keys[b]) {
            (Some(ka), Some(kb)) => (ka, a) < (kb, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Bottom-up full rebuild: play every match, storing losers.
    fn rebuild(&mut self) {
        let k = self.k;
        if k == 1 {
            self.tree[0] = 0;
            return;
        }
        // Leaf `i` sits at external node `k + i`; internal node `n` plays
        // the winners of `2n` and `2n + 1`.
        let mut winner_at = vec![0usize; 2 * k];
        for i in 0..k {
            winner_at[k + i] = i;
        }
        for node in (1..k).rev() {
            let (a, b) = (winner_at[2 * node], winner_at[2 * node + 1]);
            let (winner, loser) = if self.beats(a, b) { (a, b) } else { (b, a) };
            winner_at[node] = winner;
            self.tree[node] = loser;
        }
        self.tree[0] = winner_at[1];
    }

    /// Replace leaf `leaf`'s key. For the reigning winner this replays
    /// only its root path: having won every match on the way up, the
    /// stored losers there are exactly its would-be opponents, so the
    /// local matches reconstruct the tournament — the classic `O(log k)`
    /// k-way-merge step, and this merge's hot path (the winner advances
    /// after every delivered run). For any *other* leaf that invariant
    /// does not hold (its own path stores the leaf itself at the match it
    /// lost, and its true opponent lives further up), so the bracket is
    /// re-seeded instead — the rare path, taken only when an empty queue
    /// receives a batch, and still just `O(k)` over the worker count.
    fn set(&mut self, leaf: usize, key: Option<(SimTime, usize)>) {
        let was_winner = self.tree[0] == leaf;
        self.keys[leaf] = key;
        if self.k == 1 {
            return;
        }
        if !was_winner {
            self.rebuild();
            return;
        }
        let mut winner = leaf;
        let mut node = (self.k + leaf) / 2;
        while node >= 1 {
            let loser = self.tree[node];
            if self.beats(loser, winner) {
                self.tree[node] = winner;
                winner = loser;
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }

    /// The leaf holding the minimum key, or `None` once every leaf is
    /// exhausted.
    fn winner(&self) -> Option<usize> {
        let w = self.tree[0];
        self.keys[w].map(|_| w)
    }

    /// The minimum key among every *other* leaf — the second-best key.
    /// The runner-up lost a match directly against the winner, so it is
    /// one of the losers stored on the winner's root path.
    fn runner_up(&self) -> Option<(SimTime, usize)> {
        if self.k == 1 {
            return None;
        }
        let w = self.tree[0];
        let mut best: Option<(SimTime, usize)> = None;
        let mut node = (self.k + w) / 2;
        while node >= 1 {
            if let Some(key) = self.keys[self.tree[node]] {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            node /= 2;
        }
        best
    }
}

/// The k-way merge over columnar batches — one queue per *worker*. Valid
/// because a worker always steps its earliest-keyed machine next, so each
/// worker's concatenated stream is `(time, machine_index)`-ordered; and
/// since machines are partitioned across workers, no key can appear in two
/// queues. That turns the per-frame heap pop into **run delivery**: the
/// head queue delivers every consecutive frame below the other queues'
/// minimum key with one `on_batch` call, so merge cost per frame drops
/// from `O(log n)` plus a channel message to amortized `O(1)`. The
/// frontier is a [`LoserTree`] over the queues' head keys, so advancing
/// the winning queue replays one root path in place of a heap pop/push.
///
/// Spent batch shells are cleared and pushed back into the shared pool for
/// the workers to refill.
struct BatchMerger {
    queues: Vec<BatchQueue>,
    /// Tournament over each queue's head `(time, machine_index)` key;
    /// exhausted queues hold `None`.
    frontier: LoserTree,
    /// Queues open with nothing undelivered — while any exist, the merge
    /// must wait on them.
    blocked: usize,
    pool: Arc<ShellPool>,
    delivered: usize,
    messages: usize,
    buffered_frames: usize,
    peak_frames: usize,
    buffered_bytes: usize,
    peak_bytes: usize,
}

impl BatchMerger {
    fn new(n: usize, pool: Arc<ShellPool>) -> Self {
        BatchMerger {
            queues: (0..n).map(|_| BatchQueue::default()).collect(),
            frontier: LoserTree::new(n),
            blocked: n,
            pool,
            delivered: 0,
            messages: 0,
            buffered_frames: 0,
            peak_frames: 0,
            buffered_bytes: 0,
            peak_bytes: 0,
        }
    }

    fn stats(&self) -> RunStats {
        RunStats {
            frames: self.delivered,
            batches: self.messages,
            peak_buffered_frames: self.peak_frames,
            peak_buffered_bytes: self.peak_bytes,
        }
    }

    fn push(&mut self, batch: FrameBatch, sink: &mut dyn ClusterFrameSink) {
        self.messages += 1;
        if batch.is_empty() {
            self.pool.put(batch);
            return;
        }
        let queue = batch.queue();
        let q = &mut self.queues[queue];
        if q.buf.is_empty() {
            let key = batch.first_key().expect("non-empty");
            self.frontier.set(queue, Some(key));
            // Per-queue messages are ordered (one worker owns the queue),
            // so a batch never arrives after Done.
            if q.open {
                self.blocked -= 1;
            }
        }
        self.buffered_frames += batch.len();
        self.buffered_bytes += batch.approx_bytes();
        self.peak_frames = self.peak_frames.max(self.buffered_frames);
        self.peak_bytes = self.peak_bytes.max(self.buffered_bytes);
        q.buf.push_back(batch);
        self.drain(sink);
    }

    fn close(&mut self, queue: usize, sink: &mut dyn ClusterFrameSink) {
        let q = &mut self.queues[queue];
        if q.open {
            q.open = false;
            if q.buf.is_empty() {
                self.blocked -= 1;
            }
        }
        self.drain(sink);
    }

    fn drain(&mut self, sink: &mut dyn ClusterFrameSink) {
        while self.blocked == 0 {
            let Some(qi) = self.frontier.winner() else {
                return;
            };
            // Keys are unique across queues (machines are partitioned), so
            // every consecutive head-batch frame strictly below the next
            // queue's minimum is deliverable in one run.
            let limit = self.frontier.runner_up();
            let q = &mut self.queues[qi];
            let batch = q.buf.front_mut().expect("frontier tracks non-empty queues");
            let start = q.cursor;
            let end = match limit {
                None => batch.len(),
                Some(lim) => {
                    let mut end = start;
                    while end < batch.len() && (batch.time(end), batch.machine_index(end)) < lim {
                        end += 1;
                    }
                    end
                }
            };
            debug_assert!(end > start, "the winning head key is the global minimum");
            sink.on_batch(batch, start..end);
            self.delivered += end - start;
            self.buffered_frames -= end - start;
            if end == batch.len() {
                let spent = q.buf.pop_front().expect("head batch exists");
                self.buffered_bytes = self.buffered_bytes.saturating_sub(spent.approx_bytes());
                self.pool.put(spent);
                q.cursor = 0;
            } else {
                q.cursor = end;
            }
            match q.buf.front() {
                Some(head) => {
                    let key = (head.time(q.cursor), head.machine_index(q.cursor));
                    self.frontier.set(qi, Some(key));
                }
                None => {
                    self.frontier.set(qi, None);
                    if q.open {
                        self.blocked += 1;
                    }
                }
            }
        }
    }
}

/// One worker: owns a set of machines and always advances the (machine,
/// monitor) whose next observation is earliest (ties by machine index,
/// then monitor order), so the global merge frontier keeps moving and the
/// merger buffers as little as possible.
///
/// Resume-mode handoffs add a gate: a step may not cross a consume instant
/// whose checkpoint is not yet on the board (the destination's
/// `ResumeSpawn` would find nothing to take). A gated worker first makes
/// whatever progress *is* safe — gated units advance to just before their
/// gate, applying every earlier event including their own publishes — and
/// only blocks on [`HandoffBoard::wait_published`] when nothing can move.
/// Build-time rejection of same-instant resume cycles makes this
/// deadlock-free, and everything stays keyed to sim-time, so the merged
/// stream is unchanged by the gating at any thread count.
fn run_worker(
    units: Vec<WorkUnit>,
    max_refreshes: usize,
    tx: LaneTx,
    board: Arc<HandoffBoard>,
    cfg: WorkerCfg,
) -> Vec<(usize, Option<Session>)> {
    let mut finished: Vec<(usize, Option<Session>)> = Vec::new();
    let mut active: Vec<WorkUnit> = Vec::new();
    // The batch being filled (batched transport). Always bound to this
    // worker's queue; flushed when full, before any blocking wait, and at
    // the end of the run.
    let mut batch = match cfg.transport {
        Transport::Batched => Some(cfg.pool.take(cfg.queue)),
        Transport::PerFrame => None,
    };

    for mut unit in units {
        if max_refreshes == 0 || unit.slots.is_empty() {
            board.mark_done(unit.index);
            if cfg.transport == Transport::PerFrame {
                tx.send(Msg::Done { queue: unit.index });
            }
            finished.push((unit.index, Some(unit.session)));
            continue;
        }
        let primed = guard(&unit.id, || {
            for slot in &mut unit.slots {
                slot.monitor.prime(unit.session.kernel_mut());
            }
            Ok(())
        });
        match primed {
            Ok(()) => {
                let now = unit.session.now();
                for slot in &mut unit.slots {
                    slot.next_at = now + slot.monitor.interval();
                }
                active.push(unit);
            }
            Err(e) => {
                board.mark_done(unit.index);
                tx.send(Msg::Failed {
                    machine_index: unit.index,
                    error: e,
                });
                if cfg.transport == Transport::PerFrame {
                    tx.send(Msg::Done { queue: unit.index });
                }
                finished.push((unit.index, None));
            }
        }
    }

    // With no resume gates anywhere on this worker — the overwhelmingly
    // common shape — step selection runs off a persistent min-heap over
    // every live slot's (next_at, machine index, monitor order) key:
    // O(log n) per step instead of an O(n) rescan of every owned slot,
    // which is what dominated the 1000-machine point. The key is the same
    // tuple the scan minimized, so the chosen order (and the merged
    // stream) is identical. Entries go stale only when their unit leaves
    // `active` (teardown or failure) or their slot finishes; `slot_of`
    // maps a popped machine index back to its `active` position, with
    // usize::MAX marking a retired unit.
    let use_heap = active.iter().all(|u| u.consumes.is_empty());
    let mut agenda: BinaryHeap<Reverse<(SimTime, usize, usize)>> = BinaryHeap::new();
    let mut slot_of: Vec<usize> = Vec::new();
    if use_heap {
        let max_index = active.iter().map(|u| u.index + 1).max().unwrap_or(0);
        slot_of = vec![usize::MAX; max_index];
        for (p, u) in active.iter().enumerate() {
            slot_of[u.index] = p;
            for (sp, s) in u.slots.iter().enumerate() {
                if !s.done {
                    agenda.push(Reverse((s.next_at, u.index, sp)));
                }
            }
        }
    }

    while !active.is_empty() {
        // The earliest pending observation across every owned machine:
        // (time, machine index, monitor order) for determinism.
        let mut chosen: Option<(usize, usize)> = None;
        let mut first_gate: Option<(usize, SimTime, String, usize)> = None;
        if use_heap {
            while let Some(&Reverse((at, index, sp))) = agenda.peek() {
                let p = slot_of.get(index).copied().unwrap_or(usize::MAX);
                if p == usize::MAX {
                    // The unit already retired; skip its leftovers.
                    agenda.pop();
                    continue;
                }
                let slot = &active[p].slots[sp];
                if slot.done || slot.next_at != at {
                    agenda.pop();
                    continue;
                }
                // Pop the winning entry now: after the step the slot's key
                // advances (or the slot finishes) and is re-pushed then.
                agenda.pop();
                chosen = Some((p, sp));
                break;
            }
        } else {
            // The pending observations across every owned machine,
            // earliest first; the earliest step whose unit has no
            // unpublished handoff to consume at or before the step target
            // runs now.
            type StepKey = (SimTime, usize, usize);
            let mut cands: Vec<(StepKey, (usize, usize))> = active
                .iter()
                .enumerate()
                .flat_map(|(p, u)| {
                    u.slots
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| !s.done)
                        .map(move |(sp, s)| ((s.next_at, u.index, sp), (p, sp)))
                })
                .collect();
            cands.sort_by_key(|(key, _)| *key);

            for (key, (p, sp)) in &cands {
                let gate = active[*p]
                    .consumes
                    .iter()
                    .filter(|(at, _, _)| *at <= key.0)
                    .find(|(at, tag, _)| !board.is_published(tag, *at))
                    .cloned();
                match gate {
                    None => {
                        chosen = Some((*p, *sp));
                        break;
                    }
                    Some((at, tag, producer)) => {
                        if first_gate.is_none() {
                            first_gate = Some((*p, at, tag, producer));
                        }
                    }
                }
            }
        }

        let Some((pos, spos)) = chosen else {
            // Every owned step is gated. Park gated units just before
            // their gate instant — events strictly earlier (including this
            // worker's own checkpoint publishes) still apply and can
            // unblock another worker or this one — then re-select; block
            // on the earliest gate's producer only when nothing moved.
            let mut progressed = false;
            let mut failures: Vec<(usize, SessionError)> = Vec::new();
            for (pos, unit) in active.iter_mut().enumerate() {
                let gate_at = match unit
                    .consumes
                    .iter()
                    .find(|(at, tag, _)| !board.is_published(tag, *at))
                {
                    Some((at, _, _)) => *at,
                    // Published since the scan above: just re-select.
                    None => {
                        progressed = true;
                        continue;
                    }
                };
                let park = SimTime(gate_at.0.saturating_sub(1));
                if unit.session.now() >= park {
                    continue;
                }
                let r = guard(&unit.id, || unit.session.advance_to(park));
                match r {
                    Ok(()) => progressed = true,
                    Err(e) => failures.push((pos, e)),
                }
            }
            let any_failures = !failures.is_empty();
            for (pos, e) in failures.into_iter().rev() {
                let failed = active.swap_remove(pos);
                let torn = matches!(e, SessionError::ShardPanicked { .. });
                let error = match e {
                    e @ SessionError::ShardPanicked { .. } => e,
                    other => SessionError::Shard {
                        machine: failed.id.clone(),
                        error: Box::new(other),
                    },
                };
                board.mark_done(failed.index);
                tx.send(Msg::Failed {
                    machine_index: failed.index,
                    error,
                });
                if cfg.transport == Transport::PerFrame {
                    tx.send(Msg::Done {
                        queue: failed.index,
                    });
                }
                finished.push((failed.index, (!torn).then_some(failed.session)));
            }
            if !progressed && !any_failures {
                let (pos, gate_at, tag, producer) =
                    first_gate.expect("a fully gated worker has a first gate");
                // About to block on another worker: flush the partial
                // batch first, or the merge (and with it every other
                // worker's delivery) would stall on this queue's
                // unsent frames for the whole wait.
                if let Some(batch) = batch.as_mut() {
                    flush_batch(batch, &tx, &cfg);
                }
                if !board.wait_published(&tag, gate_at, producer) {
                    // The producer's run is over and the checkpoint never
                    // appeared (it stopped early, or errored first): the
                    // consumer cannot proceed — a typed failure, session
                    // handed back.
                    let failed = active.swap_remove(pos);
                    let error = SessionError::Shard {
                        machine: failed.id.clone(),
                        error: Box::new(SessionError::InvalidDecision(format!(
                            "resume handoff of '{tag}' at {gate_at:?}: the source \
                             machine finished its run without publishing a checkpoint"
                        ))),
                    };
                    board.mark_done(failed.index);
                    tx.send(Msg::Failed {
                        machine_index: failed.index,
                        error,
                    });
                    if cfg.transport == Transport::PerFrame {
                        tx.send(Msg::Done {
                            queue: failed.index,
                        });
                    }
                    finished.push((failed.index, Some(failed.session)));
                }
            }
            continue;
        };
        let unit = &mut active[pos];
        let step = {
            let session = &mut unit.session;
            let slot = &mut unit.slots[spos];
            guard(&unit.id, || {
                session.advance_to(slot.next_at)?;
                let frame = slot.monitor.observe(session.kernel_mut());
                let stop = (slot.until)(&frame);
                Ok((frame, stop))
            })
        };
        match step {
            Ok((frame, stop)) => {
                let slot = &mut unit.slots[spos];
                slot.taken += 1;
                match batch.as_mut() {
                    // Batched: move the frame's rows into the columnar
                    // batch — no label allocation, no per-frame send.
                    Some(batch) => {
                        batch.push(unit.sym, unit.index, slot.source_sym, slot.taken - 1, frame);
                        if batch.len() >= cfg.batch_cap {
                            flush_batch(batch, &tx, &cfg);
                        }
                    }
                    // Per-frame: one message per frame, labels refbumped.
                    None => {
                        tx.send(Msg::Frame {
                            queue: unit.index,
                            frame: ClusterFrame {
                                machine: unit.label.clone(),
                                machine_index: unit.index,
                                source: slot.source.clone(),
                                seq: slot.taken - 1,
                                frame,
                            },
                        });
                    }
                }
                if stop || slot.taken >= max_refreshes {
                    slot.done = true;
                } else {
                    slot.next_at += slot.monitor.interval();
                    if use_heap {
                        agenda.push(Reverse((slot.next_at, unit.index, spos)));
                    }
                }
                if unit.slots.iter().all(|s| s.done) {
                    let mut done = active.swap_remove(pos);
                    if use_heap {
                        retire_slot(&mut slot_of, done.index, pos, &active);
                    }
                    // A teardown panic tears the shard like an observe
                    // panic would: surface it and withhold the session.
                    let torn_down = guard(&done.id, || {
                        for slot in &mut done.slots {
                            slot.monitor.teardown(done.session.kernel_mut());
                        }
                        Ok(())
                    });
                    board.mark_done(done.index);
                    match torn_down {
                        Ok(()) => {
                            if cfg.transport == Transport::PerFrame {
                                tx.send(Msg::Done { queue: done.index });
                            }
                            finished.push((done.index, Some(done.session)));
                        }
                        Err(error) => {
                            tx.send(Msg::Failed {
                                machine_index: done.index,
                                error,
                            });
                            if cfg.transport == Transport::PerFrame {
                                tx.send(Msg::Done { queue: done.index });
                            }
                            finished.push((done.index, None));
                        }
                    }
                }
            }
            Err(e) => {
                let failed = active.swap_remove(pos);
                if use_heap {
                    retire_slot(&mut slot_of, failed.index, pos, &active);
                }
                // A panic may have torn the shard mid-epoch; only a clean
                // SessionError hands the session back.
                let torn = matches!(e, SessionError::ShardPanicked { .. });
                let error = match e {
                    e @ SessionError::ShardPanicked { .. } => e,
                    other => SessionError::Shard {
                        machine: failed.id.clone(),
                        error: Box::new(other),
                    },
                };
                board.mark_done(failed.index);
                tx.send(Msg::Failed {
                    machine_index: failed.index,
                    error,
                });
                if cfg.transport == Transport::PerFrame {
                    tx.send(Msg::Done {
                        queue: failed.index,
                    });
                }
                finished.push((failed.index, (!torn).then_some(failed.session)));
            }
        }
    }
    if let Some(batch) = batch.as_mut() {
        // Last frames out, then close this worker's queue.
        flush_batch(batch, &tx, &cfg);
        tx.send(Msg::Done { queue: cfg.queue });
    }
    finished
}

/// Remove a failed machine from the lockstep fleet: record its error
/// (first failure by machine index wins, like the pool path), hand its
/// session back unless a panic tore it, and leave its slot `None` so the
/// passes skip it and its dependency edges get dropped.
fn fail_unit(
    units: &mut [Option<WorkUnit>],
    finished: &mut Vec<(usize, Option<Session>)>,
    first_err: &mut Option<(usize, SessionError)>,
    index: usize,
    e: SessionError,
) {
    let Some(unit) = units[index].take() else {
        return;
    };
    let torn = matches!(e, SessionError::ShardPanicked { .. });
    let error = match e {
        e @ SessionError::ShardPanicked { .. } => e,
        other => SessionError::Shard {
            machine: unit.id.clone(),
            error: Box::new(other),
        },
    };
    if first_err.as_ref().is_none_or(|(i, _)| index < *i) {
        *first_err = Some((index, error));
    }
    finished.push((index, (!torn).then_some(unit.session)));
}

/// The observation rounds of [`ClusterSession::run_lockstep`]: march the
/// fleet to each round's t\* in epoch-bounded passes, resolving
/// cross-machine dependency completions between passes, then observe every
/// due monitor in `(machine, monitor)` order straight into the sink.
#[allow(clippy::too_many_arguments)]
fn lockstep_rounds(
    units: &mut [Option<WorkUnit>],
    deps: &mut [ClusterDep],
    board: &Arc<HandoffBoard>,
    threads: usize,
    max_refreshes: usize,
    sink: &mut dyn ClusterFrameSink,
    finished: &mut Vec<(usize, Option<Session>)>,
    first_err: &mut Option<(usize, SessionError)>,
    frames: &mut usize,
) -> Result<(), SessionError> {
    let n = units.len();
    loop {
        // The globally earliest pending observation instant.
        let t_star = units
            .iter()
            .flatten()
            .flat_map(|u| u.slots.iter().filter(|s| !s.done).map(|s| s.next_at))
            .min();
        let Some(t_star) = t_star else { break };

        // March every live machine to t*.
        loop {
            // Resolve completions to fixpoint: an injected event can apply
            // immediately (its instant may be the consumer's now) and end a
            // task another edge keys on.
            loop {
                let mut any = false;
                for d in deps.iter_mut() {
                    if d.ev.is_none() {
                        continue;
                    }
                    let (host, consumer) = (d.host, d.consumer);
                    let Some(host_u) = units[host].as_ref() else {
                        // The host shard is gone: the edge can never
                        // resolve — drop it so the consumer runs free.
                        d.ev = None;
                        continue;
                    };
                    let Some(exit) = host_u.session.completion_of(&d.dep, d.min_incarnations)
                    else {
                        continue;
                    };
                    if units[consumer].is_none() {
                        d.ev = None;
                        continue;
                    }
                    let ev = d.ev.take().expect("checked above");
                    let delay = d.delay;
                    let cons_u = units[consumer].as_mut().expect("checked above");
                    let fire = (exit + delay).max(cons_u.session.now());
                    let session = &mut cons_u.session;
                    let r = guard(&cons_u.id, || session.schedule_at(fire, ev));
                    if let Err(e) = r {
                        fail_unit(units, finished, first_err, consumer, e);
                    }
                    any = true;
                }
                if !any {
                    break;
                }
            }

            if units.iter().flatten().all(|u| u.session.now() >= t_star) {
                break;
            }

            // Pass targets, from pass-start watermarks. An unresolved edge
            // caps its consumer at `host-watermark + delay`: completions at
            // or before the watermark resolved above, so the edge cannot
            // fire at or before that cap — advancing to it is safe and
            // keeps the eventual injection exact. The epoch floor keeps
            // mutually-gated machines moving; unpublished resume-handoff
            // checkpoints stay hard gates.
            let w: Vec<Option<SimTime>> = units
                .iter()
                .map(|u| u.as_ref().map(|u| u.session.now()))
                .collect();
            let mut targets: Vec<Option<SimTime>> = vec![None; n];
            for (i, u) in units.iter().enumerate() {
                let Some(u) = u else { continue };
                let now = w[i].expect("live unit has a watermark");
                if now >= t_star {
                    continue;
                }
                let mut cap = t_star;
                for d in deps.iter().filter(|d| d.ev.is_some() && d.consumer == i) {
                    if let Some(wh) = w[d.host] {
                        cap = cap.min(wh + d.delay);
                    }
                }
                let mut target = cap
                    .max(u.session.kernel().epoch_boundary_after(now))
                    .min(t_star);
                for (at, tag, _) in &u.consumes {
                    if *at <= target && now < *at && !board.is_published(tag, *at) {
                        target = target.min(SimTime(at.0.saturating_sub(1)));
                    }
                }
                if target > now {
                    targets[i] = Some(target);
                }
            }

            let mut work: Vec<(&mut WorkUnit, SimTime)> = units
                .iter_mut()
                .enumerate()
                .filter_map(|(i, u)| {
                    let t = targets[i]?;
                    u.as_mut().map(|u| (u, t))
                })
                .collect();
            if work.is_empty() {
                // Unreachable given the epoch floor and build-time
                // rejection of same-instant resume cycles; defensive.
                drop(work);
                let stuck: Vec<String> = units
                    .iter()
                    .flatten()
                    .filter(|u| u.session.now() < t_star)
                    .map(|u| u.id.clone())
                    .collect();
                return Err(SessionError::InvalidScenario(format!(
                    "cross-machine dependency stall at {t_star:?}: machines {stuck:?} \
                     cannot advance (mutually gated handoffs)"
                )));
            }
            // Advance the pass concurrently; the barrier at the end of the
            // scope keeps pass structure (and the stream) deterministic.
            let results: Vec<(usize, Result<(), SessionError>)> = if work.len() == 1 {
                let (u, t) = work.pop().expect("one mover");
                let session = &mut u.session;
                vec![(u.index, guard(&u.id, || session.advance_to(t)))]
            } else {
                let workers = threads.clamp(1, work.len());
                let mut parts: Vec<Vec<(&mut WorkUnit, SimTime)>> =
                    (0..workers).map(|_| Vec::new()).collect();
                for (k, wt) in work.into_iter().enumerate() {
                    parts[k % workers].push(wt);
                }
                let mut results = Vec::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = parts
                        .into_iter()
                        .map(|part| {
                            scope.spawn(move || {
                                part.into_iter()
                                    .map(|(u, t)| {
                                        let session = &mut u.session;
                                        (u.index, guard(&u.id, || session.advance_to(t)))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        results.extend(h.join().expect("worker thread panicked"));
                    }
                });
                results
            };
            for (i, r) in results {
                if let Err(e) = r {
                    fail_unit(units, finished, first_err, i, e);
                }
            }
        }

        // Observe every due monitor at t*, machine order then set order —
        // exactly the (time, machine) merge — straight into the sink.
        for i in 0..n {
            let mut failure: Option<SessionError> = None;
            if let Some(u) = units[i].as_mut() {
                for sp in 0..u.slots.len() {
                    let step = {
                        let session = &mut u.session;
                        let slot = &mut u.slots[sp];
                        if slot.done || slot.next_at != t_star {
                            continue;
                        }
                        guard(&u.id, || {
                            let frame = slot.monitor.observe(session.kernel_mut());
                            let stop = (slot.until)(&frame);
                            Ok((frame, stop))
                        })
                    };
                    match step {
                        Ok((frame, stop)) => {
                            let slot = &mut u.slots[sp];
                            slot.taken += 1;
                            sink.on_frame(ClusterFrame {
                                machine: u.label.clone(),
                                machine_index: u.index,
                                source: slot.source.clone(),
                                seq: slot.taken - 1,
                                frame,
                            });
                            *frames += 1;
                            if stop || slot.taken >= max_refreshes {
                                slot.done = true;
                            } else {
                                slot.next_at += slot.monitor.interval();
                            }
                        }
                        Err(e) => {
                            failure = Some(e);
                            break;
                        }
                    }
                }
            }
            if let Some(e) = failure {
                fail_unit(units, finished, first_err, i, e);
            }
        }
    }
    Ok(())
}

/// Book-keeping for the heap-selection path after `active.swap_remove(pos)`:
/// void the retired unit's map entry and re-point the unit that moved into
/// `pos` (the former tail, if any).
fn retire_slot(slot_of: &mut [usize], removed_index: usize, pos: usize, active: &[WorkUnit]) {
    slot_of[removed_index] = usize::MAX;
    if let Some(moved) = active.get(pos) {
        slot_of[moved.index] = pos;
    }
}

/// Send the filled batch to the merge, leaving a fresh (usually recycled)
/// shell in its place. No-op on an empty batch.
fn flush_batch(batch: &mut FrameBatch, tx: &LaneTx, cfg: &WorkerCfg) {
    if batch.is_empty() {
        return;
    }
    let full = std::mem::replace(batch, cfg.pool.take(cfg.queue));
    tx.send(Msg::Batch(full));
}

/// Reject monitor sets that cannot drive a machine — shared by
/// [`ClusterSession::run_all`]/[`ClusterSession::run_each`] and
/// [`ClusterSession::run_reactive`]: an empty set (the machine would stay
/// frozen at its current sim-time, since machines only advance through
/// their observations) and zero-interval monitors (which would never let
/// time advance).
fn validate_monitor_set<'a>(
    machine: &str,
    monitors: impl Iterator<Item = &'a (dyn Monitor + 'a)>,
) -> Result<(), SessionError> {
    let mut any = false;
    for m in monitors {
        any = true;
        if m.interval().is_zero() {
            return Err(SessionError::InvalidScenario(format!(
                "machine '{machine}': monitor '{}' has a zero refresh interval",
                m.name()
            )));
        }
    }
    if !any {
        return Err(SessionError::InvalidScenario(format!(
            "machine '{machine}': empty monitor set — a machine only advances through \
             its observations, so it would stay frozen at its current sim-time; \
             give every machine at least one monitor"
        )));
    }
    Ok(())
}

/// Does the directed graph over `n` machine nodes with the given edges
/// contain a cycle? (Iterative three-color DFS; `n` is a fleet size, the
/// edge list a handful of same-instant migrations.)
fn has_cycle(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        adj[from].push(to);
    }
    // 0 = unvisited, 1 = on the current path, 2 = finished.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let child = adj[node][*next];
                *next += 1;
                match color[child] {
                    0 => {
                        color[child] = 1;
                        stack.push((child, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    false
}

/// Run `f`, converting an unwind into a typed [`SessionError::ShardPanicked`]
/// so one shard's panic never poisons the pool.
fn guard<T>(machine: &str, f: impl FnOnce() -> Result<T, SessionError>) -> Result<T, SessionError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(SessionError::ShardPanicked {
            machine: machine.to_string(),
            message: panic_message(payload),
        }),
    }
}

fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compile-time proof that a whole shard (session + stack below it) can
/// move to a worker thread.
#[allow(dead_code)]
fn assert_shard_is_send() {
    fn is_send<T: Send>() {}
    is_send::<Session>();
}

#[cfg(test)]
mod loser_tree_tests {
    use super::LoserTree;
    use tiptop_machine::time::SimTime;

    fn key(t: u64, mi: usize) -> Option<(SimTime, usize)> {
        Some((SimTime(t), mi))
    }

    /// The reference answer: a linear scan for the minimum live key.
    fn naive_winner(keys: &[Option<(SimTime, usize)>]) -> Option<usize> {
        keys.iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|k| (k, i)))
            .min()
            .map(|(_, i)| i)
    }

    fn naive_runner_up(
        keys: &[Option<(SimTime, usize)>],
        winner: usize,
    ) -> Option<(SimTime, usize)> {
        keys.iter()
            .enumerate()
            .filter(|(i, _)| *i != winner)
            .filter_map(|(_, k)| *k)
            .min()
    }

    fn check(t: &LoserTree, keys: &[Option<(SimTime, usize)>]) {
        assert_eq!(t.winner(), naive_winner(keys));
        if let Some(w) = t.winner() {
            assert_eq!(t.runner_up(), naive_runner_up(keys, w));
        }
    }

    #[test]
    fn non_winner_update_does_not_clobber_the_champion() {
        // The regression that motivated re-seeding on non-winner updates:
        // leaf 0 holds the minimum, leaf 1 (exhausted, stored as the loser
        // of its own match) receives a *larger* key. A naive root-path
        // replay meets only itself on the way up and overwrites tree[0].
        let mut t = LoserTree::new(2);
        t.set(0, key(5, 0));
        t.set(1, key(7, 1));
        let keys = [key(5, 0), key(7, 1)];
        check(&t, &keys);
        assert_eq!(t.winner(), Some(0));
    }

    #[test]
    fn tracks_min_through_mixed_updates() {
        // Odd width, winner advances, queues empty out and refill — every
        // state checked against a linear scan.
        for k in 1..=9usize {
            let mut t = LoserTree::new(k);
            let mut keys: Vec<Option<(SimTime, usize)>> = vec![None; k];
            // Deterministic pseudo-random walk (LCG); no rand dependency.
            let mut state: u64 = 0x2545_f491_4f6c_dd1d;
            let mut step = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for round in 0..200 {
                let r = step();
                let leaf = (r as usize) % k;
                // Merge keys are unique across queues: embed the leaf in
                // the machine-index tie-breaker like the real merge does.
                let next = if r % 5 == 0 {
                    None
                } else {
                    key(1 + round as u64 * 10 + (r % 7), leaf)
                };
                keys[leaf] = next;
                t.set(leaf, next);
                check(&t, &keys);
                // Advance the winner (the hot path) every other round.
                if round % 2 == 1 {
                    if let Some(w) = t.winner() {
                        let bumped = key(1000 + round as u64 * 3, w);
                        keys[w] = bumped;
                        t.set(w, bumped);
                        check(&t, &keys);
                    }
                }
            }
        }
    }

    #[test]
    fn exhausting_every_leaf_empties_the_tree() {
        let mut t = LoserTree::new(4);
        for i in 0..4 {
            t.set(i, key(10 + i as u64, i));
        }
        for _ in 0..4 {
            let w = t.winner().expect("live leaves remain");
            t.set(w, None);
        }
        assert_eq!(t.winner(), None);
        assert_eq!(t.runner_up(), None);
    }
}
