//! Baseline comparators.
//!
//! * [`TopView`] — what plain `top` shows (pid, user, `%CPU`, command): the
//!   paper's motivating blind spot. It needs no counters and no privilege,
//!   but also sees nothing below the scheduler.
//! * [`PinInscount`] — a Pin-style `inscount2` run: instrument the program,
//!   run it to completion ~1.7× slower, and report the *exact* retired
//!   instruction count. §2.4 validates tiptop against this (within 0.06%);
//!   §2.5 contrasts its 1.7× overhead with tiptop's ~0.7%.

use tiptop_kernel::kernel::{Kernel, KernelConfig};
use tiptop_kernel::program::Program;
use tiptop_kernel::task::{Pid, SpawnSpec, Uid};
use tiptop_machine::time::{SimDuration, SimTime};

use crate::procinfo::CpuTracker;

/// One row of the `top` baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct TopRow {
    pub pid: Pid,
    pub user: String,
    pub cpu_pct: f64,
    pub comm: String,
}

/// The CPU%-only view.
#[derive(Debug, Default)]
pub struct TopView {
    cpu: CpuTracker,
}

impl TopView {
    pub fn new() -> Self {
        Self::default()
    }

    /// One refresh: all tasks, sorted by `%CPU` descending.
    pub fn refresh(&mut self, k: &Kernel) -> Vec<TopRow> {
        let now = k.now();
        let pids = k.pids();
        self.cpu.retain_pids(&|p| pids.contains(&p));
        let mut rows: Vec<TopRow> = pids
            .into_iter()
            .filter_map(|pid| {
                let stat = k.stat(pid)?;
                let pct = self.cpu.update(&stat, now);
                Some(TopRow {
                    pid,
                    user: k.username(stat.uid),
                    cpu_pct: pct,
                    comm: stat.comm,
                })
            })
            .collect();
        rows.sort_by(|a, b| {
            b.cpu_pct.partial_cmp(&a.cpu_pct).unwrap().then_with(|| a.pid.cmp(&b.pid))
        });
        rows
    }
}

/// Report of a Pin-style instrumented run.
#[derive(Clone, Debug, PartialEq)]
pub struct PinReport {
    /// Exact retired instruction count (what `inscount2` prints).
    pub instructions: u64,
    /// Wall time of the *uninstrumented* program.
    pub native_wall: SimDuration,
    /// Wall time with instrumentation (≈1.7× slower, §2.5).
    pub instrumented_wall: SimDuration,
}

impl PinReport {
    pub fn slowdown(&self) -> f64 {
        self.instrumented_wall.as_secs_f64() / self.native_wall.as_secs_f64().max(1e-12)
    }
}

/// Pin-style exact instruction counting.
///
/// Instrumentation inserts a counting stub at every basic block: the
/// instrumented binary retires more instructions and runs ~1.7× slower, but
/// the reported count is of *original* instructions — exact by
/// construction. Modelled by running the unmodified program to completion
/// in a dedicated kernel (the count is the machine's ground truth) and
/// charging the measured 1.7× on wall time.
pub struct PinInscount {
    /// The §2.5 measurement: "The suite run with inscount2 ... is 1.7×
    /// slower."
    pub slowdown_factor: f64,
}

impl Default for PinInscount {
    fn default() -> Self {
        PinInscount { slowdown_factor: 1.7 }
    }
}

impl PinInscount {
    /// Run `program` to completion under instrumentation and report the
    /// exact instruction count.
    ///
    /// # Panics
    /// Panics if the program does not finish within `timeout` of simulated
    /// time (looping programs never finish).
    pub fn run(
        &self,
        kcfg: KernelConfig,
        program: Program,
        seed: u64,
        timeout: SimDuration,
    ) -> PinReport {
        let mut k = Kernel::new(kcfg);
        let pid = k.spawn(SpawnSpec::new("inscount-target", Uid(1), program).seed(seed));
        let step = SimDuration::from_millis(200);
        let deadline = SimTime::ZERO + timeout;
        while k.is_alive(pid) {
            assert!(k.now() < deadline, "instrumented program did not finish in {timeout:?}");
            k.advance(step);
        }
        let rec = k.exit_record(pid).expect("exited task has a record");
        let native = rec.end_time - rec.start_time;
        PinReport {
            instructions: rec.total_instructions,
            native_wall: native,
            instrumented_wall: SimDuration::from_secs_f64(
                native.as_secs_f64() * self.slowdown_factor,
            ),
        }
    }
}

/// Convenience: run a program natively (no instrumentation) and return its
/// exit record — used by experiments measuring wall times.
pub fn run_to_completion(
    kcfg: KernelConfig,
    program: Program,
    seed: u64,
    timeout: SimDuration,
) -> tiptop_kernel::kernel::ExitRecord {
    let mut k = Kernel::new(kcfg);
    let pid = k.spawn(SpawnSpec::new("native-run", Uid(1), program).seed(seed));
    let step = SimDuration::from_millis(200);
    let deadline = SimTime::ZERO + timeout;
    while k.is_alive(pid) {
        assert!(k.now() < deadline, "program did not finish in {timeout:?}");
        k.advance(step);
    }
    k.exit_record(pid).expect("exited task has a record").clone()
}

/// Helper: spawn a list of programs and run until all exit, returning the
/// kernel for inspection.
pub fn run_all_to_completion(
    kcfg: KernelConfig,
    programs: Vec<(String, Uid, Program, u64)>,
    timeout: SimDuration,
) -> (Kernel, Vec<Pid>) {
    let mut k = Kernel::new(kcfg);
    let pids: Vec<Pid> = programs
        .into_iter()
        .map(|(comm, uid, prog, seed)| k.spawn(SpawnSpec::new(comm, uid, prog).seed(seed)))
        .collect();
    let step = SimDuration::from_millis(200);
    let deadline = SimTime::ZERO + timeout;
    while pids.iter().any(|&p| k.is_alive(p)) {
        assert!(k.now() < deadline, "programs did not finish in {timeout:?}");
        k.advance(step);
    }
    (k, pids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptop_machine::access::MemoryBehavior;
    use tiptop_machine::config::MachineConfig;
    use tiptop_machine::exec::ExecProfile;

    fn kcfg() -> KernelConfig {
        KernelConfig::new(MachineConfig::nehalem_w3550().noiseless()).seed(11)
    }

    fn short_program(insns: u64) -> Program {
        Program::single(
            ExecProfile::builder("short")
                .base_cpi(0.8)
                .branches(0.18, 0.0)
                .memory(MemoryBehavior::uniform(16 * 1024))
                .build(),
            insns,
        )
    }

    #[test]
    fn top_view_shows_cpu_but_nothing_else() {
        let mut k = Kernel::new(kcfg());
        k.add_user(Uid(1), "user1");
        let pid = k.spawn(SpawnSpec::new(
            "spin",
            Uid(1),
            Program::endless(ExecProfile::builder("x").build()),
        ));
        let mut top = TopView::new();
        top.refresh(&k);
        k.advance(SimDuration::from_secs(1));
        let rows = top.refresh(&k);
        assert_eq!(rows[0].pid, pid);
        assert!(rows[0].cpu_pct > 99.0);
        assert_eq!(rows[0].user, "user1");
    }

    #[test]
    fn pin_reports_exact_count_and_1_7x_wall() {
        let report = PinInscount::default().run(
            kcfg(),
            short_program(500_000_000),
            3,
            SimDuration::from_secs(60),
        );
        // The program retires at least its requested instructions; slice
        // rounding may add a sliver within the final epoch.
        assert!(report.instructions >= 500_000_000);
        assert!(report.instructions < 505_000_000);
        assert!((report.slowdown() - 1.7).abs() < 1e-6);
        assert!(report.instrumented_wall > report.native_wall);
    }

    #[test]
    #[should_panic(expected = "did not finish")]
    fn pin_rejects_endless_programs() {
        PinInscount::default().run(
            kcfg(),
            Program::endless(ExecProfile::builder("x").build()),
            0,
            SimDuration::from_millis(600),
        );
    }

    #[test]
    fn run_all_waits_for_every_program() {
        let (k, pids) = run_all_to_completion(
            kcfg(),
            vec![
                ("a".into(), Uid(1), short_program(100_000_000), 1),
                ("b".into(), Uid(1), short_program(300_000_000), 2),
            ],
            SimDuration::from_secs(60),
        );
        for pid in pids {
            assert!(k.exit_record(pid).is_some());
        }
    }
}
