//! **Policy lab** — the pluggable-scheduling payoff: N policies × M
//! scenarios through [`run_reactive`], ranked. Where [`tournament`] fixed
//! the detector question to *restart vs resume*, the lab crosses three
//! **detector × placement** policies — the [`IpcFloor`] threshold, the
//! [`Cusum`] statistic (both relieving onto a fixed spare) and the
//! [`Population`] change-point detector composed with [`LeastLoaded`]
//! placement (destination picked from live fleet load) — with three
//! scenarios that also exercise the *in-kernel* layer:
//!
//! * `burst/cfs` — the tournament's finite burst on the default
//!   [`CfsLike`] epoch planner;
//! * `burst/rr`  — the identical burst with every kernel booted on the
//!   [`RoundRobin`] planner (`ClusterScenario::scheduler`), demonstrating
//!   that swapping the in-kernel scheduler is a config knob, not a kernel
//!   edit;
//! * `fleet`     — a three-node variant whose *designated* relief machine
//!   is itself busy with background load while a third node idles: fixed
//!   placement pays the co-location, least-loaded routes around it.
//!
//! Every cell relocates the payload in [`MigrationMode::Resume`] (the
//! tournament already settled restart-vs-resume), reports the trigger and
//! apply instants, the destination, the payload's completion wall-clock
//! (the ranking metric), its recovered IPC on the destination, the canary's
//! recovery on the victim node, and the migrations fired — and each cell's
//! stream is byte-identical at any worker-thread count.
//!
//! [`run_reactive`]: tiptop_core::cluster::ClusterSession::run_reactive
//! [`tournament`]: crate::experiments::tournament
//! [`IpcFloor`]: tiptop_core::reactive::IpcFloor
//! [`Cusum`]: tiptop_core::reactive::Cusum
//! [`Population`]: tiptop_core::reactive::Population
//! [`LeastLoaded`]: tiptop_core::reactive::LeastLoaded
//! [`CfsLike`]: tiptop_kernel::sched::CfsLike
//! [`RoundRobin`]: tiptop_kernel::sched::RoundRobin
//! [`MigrationMode::Resume`]: tiptop_core::reactive::MigrationMode

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::cluster::{
    ClusterCollectSink, ClusterFrame, ClusterScenario, ClusterSession, MachineRef,
};
use tiptop_core::config::ScreenConfig;
use tiptop_core::monitor::Monitor;
use tiptop_core::reactive::{
    AppliedDecision, Balanced, Cusum, IpcFloor, MigrationMode, Population, SchedulerPolicy,
};
use tiptop_core::session::cluster_series_for_comm;
use tiptop_kernel::sched::SchedulerSelect;
use tiptop_kernel::task::SpawnSpec;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_workloads::datacenter::{grid_script, tournament_script, TournamentScript, USER3};

use crate::experiments::default_threads;
use crate::experiments::grid::{DELAY_S, SPARE_NODE, VICTIM_NODE};
use crate::experiments::tournament::{
    nodes, render_stream, CANARY, CUSUM_DRIFT, CUSUM_SKIP, CUSUM_THRESHOLD, CUSUM_WARMUP,
    FLOOR_PATIENCE_REFRESHES, IPC_FLOOR, PAYLOAD,
};
use crate::report::{Series, TableReport};

/// The third machine of the `fleet` scenario: idle, and *not* any
/// detector's designated relief — only live-load placement finds it.
pub const IDLE_NODE: &str = "node-idle";

/// Endless background jobs parked on the designated spare in the `fleet`
/// scenario, so fixed placement relieves onto a busy machine.
const FLEET_BACKGROUND_JOBS: usize = 4;

/// Population calibration: skip the canary's cold-start ramp (same window
/// the CUSUM skips), build the reference population from the next four
/// plateau samples, and declare a change-point after two consecutive
/// samples below `μ − 4σ` — with the dwell sitting ~0.2 IPC under the
/// plateau, the band is generous against refresh noise yet the second
/// dwell sample confirms, one refresh ahead of the floor's patience.
const POP_SKIP: usize = CUSUM_SKIP;
const POP_WARMUP: usize = 4;
const POP_SIGMAS: f64 = 4.0;
const POP_CONFIRM: usize = 2;

/// The detector × placement policies the lab ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabPolicy {
    /// [`IpcFloor`](tiptop_core::reactive::IpcFloor) → fixed spare.
    Floor,
    /// [`Cusum`](tiptop_core::reactive::Cusum) → fixed spare.
    Cusum,
    /// [`Population`](tiptop_core::reactive::Population) →
    /// [`LeastLoaded`](tiptop_core::reactive::LeastLoaded) destination.
    Population,
}

impl LabPolicy {
    pub const ALL: [LabPolicy; 3] = [LabPolicy::Floor, LabPolicy::Cusum, LabPolicy::Population];

    pub fn label(self) -> &'static str {
        match self {
            LabPolicy::Floor => "ipc-floor",
            LabPolicy::Cusum => "cusum",
            LabPolicy::Population => "population+least-loaded",
        }
    }
}

/// The scenarios each policy is run through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabScenario {
    /// Tournament burst, default CFS-like kernels, two nodes.
    BurstCfs,
    /// Identical burst with every kernel on the round-robin planner.
    BurstRr,
    /// Three nodes; the designated spare carries background load.
    Fleet,
}

impl LabScenario {
    pub const ALL: [LabScenario; 3] = [
        LabScenario::BurstCfs,
        LabScenario::BurstRr,
        LabScenario::Fleet,
    ];

    pub fn label(self) -> &'static str {
        match self {
            LabScenario::BurstCfs => "burst/cfs",
            LabScenario::BurstRr => "burst/rr",
            LabScenario::Fleet => "fleet",
        }
    }
}

/// One cell of the policy × scenario grid.
pub struct LabCell {
    pub policy: LabPolicy,
    pub scenario: LabScenario,
    /// The deciding frame's sim-time (seconds).
    pub trigger: f64,
    /// The epoch boundary the relocation landed at.
    pub applied: f64,
    /// Where the payload actually went — fixed relief or live pick.
    pub destination: String,
    /// The payload's completion wall-clock (seconds from submit to its
    /// final incarnation's exit) — the lab's ranking metric.
    pub payload_wall: f64,
    /// The payload's mean IPC on its destination after the relocation.
    pub recovered_ipc: f64,
    /// The canary's mean IPC on the victim node after the relocation.
    pub canary_recovery_ipc: f64,
    /// Migrations the policy fired (exactly one: the payload).
    pub migrations: usize,
}

pub struct PolicyLabResult {
    pub arrival: f64,
    pub dwell: f64,
    pub cells: Vec<LabCell>,
    pub scale: f64,
}

/// Run the full policy × scenario grid on the default worker pool.
pub fn run(seed: u64, scale: f64) -> PolicyLabResult {
    run_on(seed, scale, default_threads())
}

/// [`run`] with an explicit worker-thread count; every cell's stream is
/// byte-identical at any count.
pub fn run_on(seed: u64, scale: f64, threads: usize) -> PolicyLabResult {
    let script = tournament_script(scale);
    let mut cells = Vec::new();
    for scenario in LabScenario::ALL {
        for policy in LabPolicy::ALL {
            cells.push(run_cell(seed, scale, &script, threads, policy, scenario));
        }
    }
    PolicyLabResult {
        arrival: script.arrival.as_secs_f64(),
        dwell: script.dwell.as_secs_f64(),
        cells,
        scale,
    }
}

/// One cell's stream rendered to bytes — the determinism artifact the
/// regression test compares across worker-thread counts (for `burst/rr`,
/// this is also the alternative-scheduler determinism golden).
pub fn run_cell_stream(
    seed: u64,
    scale: f64,
    threads: usize,
    policy: LabPolicy,
    scenario: LabScenario,
) -> String {
    let script = tournament_script(scale);
    let (merged, decisions, _session) =
        run_cell_raw(seed, scale, &script, threads, policy, scenario);
    render_stream(&merged, &decisions)
}

/// The cast for one scenario. All three scenarios share the tournament's
/// victim/spare pair; `fleet` parks endless background jobs on the spare
/// (so its *designated* relief is the busy machine) and adds an idle third
/// node; `burst/rr` boots every kernel on the round-robin planner.
fn cluster_for(
    seed: u64,
    scale: f64,
    script: &TournamentScript,
    scenario: LabScenario,
) -> ClusterSession {
    let (victim_node, mut spare_node) = nodes(seed, script);
    let mut cluster = ClusterScenario::new();
    match scenario {
        LabScenario::BurstCfs => {}
        LabScenario::BurstRr => {
            cluster = cluster.scheduler(SchedulerSelect::round_robin());
        }
        LabScenario::Fleet => {
            // The grid script's endless aggressors, re-timed to t=0: a
            // standing ~400% load on the designated spare.
            for job in grid_script(scale)
                .aggressors
                .into_iter()
                .take(FLEET_BACKGROUND_JOBS)
            {
                spare_node = spare_node.spawn_at(
                    SimTime::ZERO,
                    format!("bg-{}", job.comm),
                    SpawnSpec::new(format!("bg-{}", job.comm), USER3, job.program.clone())
                        .seed(job.seed + 17),
                );
            }
        }
    }
    cluster = cluster
        .machine(VICTIM_NODE, victim_node)
        .machine(SPARE_NODE, spare_node);
    if scenario == LabScenario::Fleet {
        let (_, idle) = nodes(seed + 7, script);
        cluster = cluster.machine(IDLE_NODE, idle);
    }
    cluster.build().expect("no scripted migrations to validate")
}

fn policy_for(policy: LabPolicy) -> Box<dyn SchedulerPolicy> {
    let delay = SimDuration::from_secs_f64(DELAY_S);
    let mode = MigrationMode::Resume;
    match policy {
        LabPolicy::Floor => Box::new(
            IpcFloor::new(
                VICTIM_NODE,
                CANARY,
                IPC_FLOOR,
                delay * FLOOR_PATIENCE_REFRESHES,
                SPARE_NODE,
            )
            .source("tiptop")
            .mode(mode)
            .evicting(|row| row.comm == PAYLOAD),
        ),
        LabPolicy::Cusum => Box::new(
            Cusum::new(
                VICTIM_NODE,
                CANARY,
                CUSUM_WARMUP,
                CUSUM_DRIFT,
                CUSUM_THRESHOLD,
                SPARE_NODE,
            )
            .skip(CUSUM_SKIP)
            .source("tiptop")
            .mode(mode)
            .evicting(|row| row.comm == PAYLOAD),
        ),
        LabPolicy::Population => Box::new(
            Balanced::new(
                Population::new(
                    VICTIM_NODE,
                    CANARY,
                    POP_WARMUP,
                    POP_SIGMAS,
                    POP_CONFIRM,
                    SPARE_NODE,
                )
                .skip(POP_SKIP)
                .source("tiptop")
                .mode(mode)
                .evicting(|row| row.comm == PAYLOAD),
            )
            .source("tiptop"),
        ),
    }
}

fn run_cell_raw(
    seed: u64,
    scale: f64,
    script: &TournamentScript,
    threads: usize,
    policy: LabPolicy,
    scenario: LabScenario,
) -> (Vec<ClusterFrame>, Vec<AppliedDecision>, ClusterSession) {
    let mut session = cluster_for(seed, scale, script, scenario);
    let mut policies = vec![policy_for(policy)];

    // The tournament's shared horizon: generous enough for the laziest
    // trigger plus the payload's remainder, even co-running with the
    // fleet scenario's background load.
    let horizon = script.arrival.as_secs_f64() + 2.1 * script.dwell.as_secs_f64();
    let refreshes = (horizon / DELAY_S).ceil() as usize;
    let delay = SimDuration::from_secs_f64(DELAY_S);
    let monitors = move |_m: MachineRef<'_>| -> Vec<Box<dyn Monitor + Send>> {
        vec![Box::new(Tiptop::new(
            TiptopOptions::default()
                .observer(tiptop_kernel::task::Uid::ROOT)
                .delay(delay),
            ScreenConfig::default_screen(),
        ))]
    };
    let mut sink = ClusterCollectSink::new();
    let decisions = session
        .run_reactive(threads, refreshes, monitors, &mut policies, &mut sink)
        .expect("policy lab cell run");
    (sink.into_frames(), decisions, session)
}

fn run_cell(
    seed: u64,
    scale: f64,
    script: &TournamentScript,
    threads: usize,
    policy: LabPolicy,
    scenario: LabScenario,
) -> LabCell {
    let (merged, decisions, session) = run_cell_raw(seed, scale, script, threads, policy, scenario);
    let d = decisions.first().expect("the detector fired");
    let trigger = d.decided_at.as_secs_f64();
    let applied = d.applied_at.as_secs_f64();
    let destination = d.to.clone();

    let dest_shard = session.session(&destination).expect("shard survived");
    let done = dest_shard
        .kernel()
        .exit_record(dest_shard.pid(PAYLOAD).expect("landed on the destination"))
        .expect("finished within the horizon");
    let payload_wall = done.end_time.as_secs_f64();

    let recovered = Series::new(
        format!("{PAYLOAD} IPC ({destination})"),
        cluster_series_for_comm(&merged, &destination, Some("tiptop"), PAYLOAD, "IPC"),
    );
    let recovered_ipc = recovered.mean_in(applied, payload_wall + DELAY_S);
    let canary = Series::new(
        format!("{CANARY} IPC"),
        cluster_series_for_comm(&merged, VICTIM_NODE, Some("tiptop"), CANARY, "IPC"),
    );
    let canary_recovery_ipc = canary.mean_in(applied + DELAY_S, applied + 5.0 * DELAY_S);

    LabCell {
        policy,
        scenario,
        trigger,
        applied,
        destination,
        payload_wall,
        recovered_ipc,
        canary_recovery_ipc,
        migrations: decisions.len(),
    }
}

impl PolicyLabResult {
    /// The cell for one (policy, scenario) pair.
    pub fn cell(&self, policy: LabPolicy, scenario: LabScenario) -> &LabCell {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.scenario == scenario)
            .expect("the full grid ran")
    }

    /// Policies of one scenario ranked by payload wall-clock, fastest
    /// first; ties keep [`LabPolicy::ALL`] order (stable sort).
    pub fn ranking(&self, scenario: LabScenario) -> Vec<LabPolicy> {
        let mut cells: Vec<&LabCell> = self
            .cells
            .iter()
            .filter(|c| c.scenario == scenario)
            .collect();
        cells.sort_by(|a, b| a.payload_wall.partial_cmp(&b.payload_wall).unwrap());
        cells.iter().map(|c| c.policy).collect()
    }

    /// The ranked outcome table: within each scenario, fastest payload
    /// wall-clock first.
    pub fn report(&self) -> String {
        let mut t = TableReport::new(
            format!(
                "policy lab ({} policies × {} scenarios, burst t={:.0}s; \
                 ranked by payload wall-clock within each scenario)",
                LabPolicy::ALL.len(),
                LabScenario::ALL.len(),
                self.arrival,
            ),
            &[
                "scenario",
                "rank",
                "policy",
                "trigger (s)",
                "applied (s)",
                "destination",
                "wall (s)",
                "IPC at dest",
                "canary IPC",
                "moves",
            ],
        );
        for scenario in LabScenario::ALL {
            for (rank, policy) in self.ranking(scenario).into_iter().enumerate() {
                let c = self.cell(policy, scenario);
                t.row(vec![
                    scenario.label().to_string(),
                    format!("{}", rank + 1),
                    policy.label().to_string(),
                    format!("{:.1}", c.trigger),
                    format!("{:.3}", c.applied),
                    c.destination.clone(),
                    format!("{:.2}", c.payload_wall),
                    format!("{:.2}", c.recovered_ipc),
                    format!("{:.2}", c.canary_recovery_ipc),
                    format!("{}", c.migrations),
                ]);
            }
        }
        t.render()
    }
}
