//! Checkpoint/restore contract tests: a resume-mode migration chain
//! conserves the job's retired instruction count no matter how the hops
//! are arranged — onward moves, round trips (`A→B→A`), random chains —
//! and per-machine incarnation addressing never lets two live
//! incarnations of one tag coexist.

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::cluster::{ClusterFrame, ClusterScenario, MachineRef};
use tiptop_core::config::ScreenConfig;
use tiptop_core::scenario::{Scenario, SessionError};
use tiptop_kernel::program::Program;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::access::MemoryBehavior;
use tiptop_machine::config::MachineConfig;
use tiptop_machine::exec::ExecProfile;
use tiptop_machine::time::{SimDuration, SimTime};

/// Exactly 20e9 instructions: ~5.3s of work on the W3550, so hops at
/// 1..=4s land while the job is still running.
const JOB_INSNS: u64 = 20_000_000_000;

fn job() -> Program {
    Program::single(
        ExecProfile::builder("job")
            .base_cpi(0.8)
            .branches(0.18, 0.0)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .build(),
        JOB_INSNS,
    )
}

fn node(seed: u64) -> Scenario {
    Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(seed)
        .user(Uid(1), "u1")
}

fn tool(delay_s: u64) -> Box<Tiptop> {
    Box::new(Tiptop::new(
        TiptopOptions::default()
            .observer(Uid::ROOT)
            .delay(SimDuration::from_secs(delay_s)),
        ScreenConfig::default_screen(),
    ))
}

fn rendered(frames: &[ClusterFrame]) -> String {
    frames
        .iter()
        .map(|cf| {
            format!(
                "[{} #{} {}]\n{}",
                cf.machine,
                cf.seq,
                cf.source,
                cf.frame.render()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// What an unmigrated run retires: the whole program, by construction.
fn baseline_total() -> u64 {
    let mut session = node(1)
        .spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(5))
        .build()
        .unwrap();
    let mut tool = Tiptop::new(
        TiptopOptions::default()
            .observer(Uid::ROOT)
            .delay(SimDuration::from_secs(1)),
        ScreenConfig::default_screen(),
    );
    let _ = session.run(&mut tool, 7).unwrap();
    let rec = session
        .kernel()
        .exit_record(session.pid("job").unwrap())
        .expect("unmigrated job finishes within 7s");
    rec.total_instructions
}

#[test]
fn resume_round_trip_conserves_instructions_and_is_byte_identical() {
    // A→B→A: the job leaves home at 2s, comes back at 4s, and still
    // finishes as one program — the second incarnation on node-a reports
    // the whole job's totals.
    let run_at = |threads: usize| {
        let mut session = ClusterScenario::new()
            .machine(
                "node-a",
                node(1).spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(5)),
            )
            .machine("node-b", node(2))
            .resume_at(SimTime::from_secs(2), "job", "node-a", "node-b")
            .resume_at(SimTime::from_secs(4), "job", "node-b", "node-a")
            .build()
            .unwrap();
        let frames = session
            .run_collect(threads, 7, |_m: MachineRef<'_>| tool(1))
            .unwrap();
        (rendered(&frames), session)
    };
    let (golden, session) = run_at(1);

    let a = session.session("node-a").unwrap();
    let b = session.session("node-b").unwrap();
    assert_eq!(
        a.incarnations("job").len(),
        2,
        "home hosts two incarnations"
    );
    assert_eq!(b.incarnations("job").len(), 1);

    // The first two incarnations end exactly at their hop instants; the
    // last one retires the *whole job's* instruction count — conservation.
    let first = a.kernel().exit_record(a.incarnations("job")[0]).unwrap();
    assert_eq!(first.end_time, SimTime::from_secs(2));
    let middle = b.kernel().exit_record(b.incarnations("job")[0]).unwrap();
    assert_eq!(middle.start_time, SimTime::from_secs(2));
    assert_eq!(middle.end_time, SimTime::from_secs(4));
    let last = a.kernel().exit_record(a.incarnations("job")[1]).unwrap();
    assert_eq!(last.start_time, SimTime::from_secs(4));
    assert_eq!(last.total_instructions, JOB_INSNS);
    assert_eq!(last.total_instructions, baseline_total());
    assert!(last.end_time < SimTime::from_secs(7), "finished mid-run");

    assert_eq!(session.handovers().len(), 2);

    // Byte-identical merged streams at 1/2/8 worker threads.
    for threads in [2, 8] {
        let (stream, _) = run_at(threads);
        assert_eq!(golden, stream, "{threads} workers must not change one byte");
    }
}

#[test]
fn random_resume_chains_conserve_instructions_and_never_alias_live_tasks() {
    // Deterministic LCG: random chained-hop scripts over three machines,
    // including round trips, all sharing one invariant pair — the final
    // incarnation retires exactly the unmigrated total, and at no instant
    // do two incarnations of the tag live at once.
    let machines = ["node-a", "node-b", "node-c"];
    let expected = baseline_total();
    let mut state: u64 = 0x5eed_cafe_f00d_1234;
    let mut next = |m: u64| -> u64 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for script in 0..5 {
        let hops = 1 + next(4) as usize; // 1..=4 hops at 1s, 2s, ...
        let mut cluster = ClusterScenario::new()
            .machine(
                machines[0],
                node(1).spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(5)),
            )
            .machine(machines[1], node(2))
            .machine(machines[2], node(3));
        let mut at_home = 0usize;
        let mut path = vec![at_home];
        for hop in 0..hops {
            let to = {
                let step = 1 + next(machines.len() as u64 - 1) as usize;
                (at_home + step) % machines.len()
            };
            cluster = cluster.resume_at(
                SimTime::from_secs(1 + hop as u64),
                "job",
                machines[at_home],
                machines[to],
            );
            at_home = to;
            path.push(to);
        }
        let mut session = cluster
            .build()
            .unwrap_or_else(|e| panic!("script {script} path {path:?}: {e:?}"));
        session
            .run_collect(2, 7, |_m: MachineRef<'_>| tool(1))
            .unwrap_or_else(|e| panic!("script {script} path {path:?}: {e:?}"));

        // Conservation: the final incarnation's exit record equals the
        // unmigrated run's retired total.
        let home = session.session(machines[at_home]).unwrap();
        let pid = *home.incarnations("job").last().unwrap();
        let exit = home
            .kernel()
            .exit_record(pid)
            .unwrap_or_else(|| panic!("script {script} path {path:?}: job unfinished"));
        assert_eq!(exit.total_instructions, expected, "path {path:?}");

        // No aliasing: collect every incarnation's [start, end) lifetime
        // across all machines; sorted, they must tile without overlap.
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for m in machines {
            let s = session.session(m).unwrap();
            for &pid in s.incarnations("job") {
                let rec = s.kernel().exit_record(pid).unwrap();
                spans.push((rec.start_time.as_nanos(), rec.end_time.as_nanos()));
            }
        }
        assert_eq!(spans.len(), hops + 1, "one incarnation per hop + origin");
        spans.sort_unstable();
        for pair in spans.windows(2) {
            assert!(
                pair[1].0 >= pair[0].1,
                "path {path:?}: incarnations {pair:?} alias — two live at once"
            );
        }
    }
}

#[test]
fn incarnation_addressing_rejects_aliasing_and_dead_sources_at_build() {
    let base = || {
        ClusterScenario::new()
            .machine(
                "node-a",
                node(1).spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(5)),
            )
            .machine(
                "node-b",
                node(2).spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(6)),
            )
    };

    // Destination already carries a live incarnation of the tag: the hop
    // would alias two live tasks under one address — rejected.
    let err = base()
        .resume_at(SimTime::from_secs(2), "job", "node-a", "node-b")
        .build()
        .unwrap_err();
    match err {
        SessionError::InvalidScenario(msg) => {
            assert!(msg.contains("destination already carries"), "{msg}")
        }
        other => panic!("expected InvalidScenario, got {other:?}"),
    }

    // After node-b's own incarnation dies, the same hop validates: the
    // address is free again.
    ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(5)),
        )
        .machine(
            "node-b",
            node(2)
                .spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(6))
                .kill_at(SimTime::from_secs(1), "job"),
        )
        .resume_at(SimTime::from_secs(2), "job", "node-a", "node-b")
        .build()
        .expect("dead incarnation frees the address");

    // A hop out of a machine whose incarnation is already gone names a
    // dead source — rejected with the kill instant.
    let err = ClusterScenario::new()
        .machine(
            "node-a",
            node(1)
                .spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(5))
                .kill_at(SimTime::from_secs(1), "job"),
        )
        .machine("node-b", node(2))
        .resume_at(SimTime::from_secs(2), "job", "node-a", "node-b")
        .build()
        .unwrap_err();
    match err {
        SessionError::InvalidScenario(msg) => {
            assert!(msg.contains("already gone"), "{msg}")
        }
        other => panic!("expected InvalidScenario, got {other:?}"),
    }

    // Two resume hops of one tag cannot share an instant: both would key
    // the same checkpoint slot on the handoff board.
    let err = ClusterScenario::new()
        .machine(
            "node-a",
            node(1).spawn("job", SpawnSpec::new("job", Uid(1), job()).seed(5)),
        )
        .machine("node-b", node(2))
        .machine("node-c", node(3))
        .resume_at(SimTime::from_secs(2), "job", "node-a", "node-b")
        .resume_at(SimTime::from_secs(2), "job", "node-b", "node-c")
        .build()
        .unwrap_err();
    match err {
        SessionError::InvalidScenario(msg) => {
            assert!(msg.contains("shares this instant"), "{msg}")
        }
        other => panic!("expected InvalidScenario, got {other:?}"),
    }
}
