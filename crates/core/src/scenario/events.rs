//! Workload events, the triggers that fire them, and the cross-machine
//! checkpoint handoff board.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use tiptop_kernel::kernel::Checkpoint;
use tiptop_kernel::sched::CpuSet;
use tiptop_kernel::task::SpawnSpec;
use tiptop_machine::time::{SimDuration, SimTime};

/// When a [`WorkloadEvent`] fires.
///
/// [`Trigger::At`] is the classic scripted schedule — the event applies at
/// an exact absolute instant. [`Trigger::AfterExit`] is a dependency edge:
/// the event applies `delay` after the tagged job's *final incarnation*
/// exits (naturally or by a plain kill — a checkpoint-kill migrates the job
/// away and does not count as an exit). Edges across events form a DAG,
/// validated by topological sort at build time.
#[derive(Clone, Debug, PartialEq)]
pub enum Trigger {
    /// Fire at a scripted absolute instant.
    At(SimTime),
    /// Fire `delay` after the tagged job exits.
    ///
    /// The dependency's exit instant is exact
    /// ([`ExitRecord::end_time`](tiptop_kernel::kernel::ExitRecord)); the
    /// event fires at `exit + delay`, clamped forward to the instant the
    /// exit became observable when the kernel only reaped it at a later
    /// epoch boundary (so the observed fire instant is always `>=
    /// exit + delay`, and exact whenever the delay spans at least one
    /// scheduler epoch).
    AfterExit { tag: String, delay: SimDuration },
}

/// An action on the workload, fired by its [`Trigger`].
#[derive(Debug)]
pub enum WorkloadEvent {
    /// Create the task; its pid becomes addressable by `tag`.
    Spawn { tag: String, spec: SpawnSpec },
    /// SIGKILL the tagged task.
    Kill { tag: String },
    /// Change the tagged task's nice level.
    Renice { tag: String, nice: i32 },
    /// Change the tagged task's CPU affinity (`taskset`-style pinning — the
    /// §3.4 interference experiments move tasks between SMT siblings and
    /// separate cores mid-run).
    Pin { tag: String, cpus: CpuSet },
    /// Checkpoint the tagged task's progress, then SIGKILL it — the source
    /// half of a resume-mode migration. The checkpoint is published on the
    /// session's [`HandoffBoard`] under `(tag, instant)`. A tag whose
    /// program already ran to completion has nothing to checkpoint; that
    /// surfaces as a typed
    /// [`SessionError::InvalidDecision`](super::SessionError::InvalidDecision).
    CheckpointKill { tag: String },
    /// Spawn a new incarnation of the tagged task from the checkpoint
    /// published under `(tag, instant)` — the destination half of a
    /// resume-mode migration. `spec` is the job's original spec, retained so
    /// the tag stays re-migratable from here.
    ResumeSpawn { tag: String, spec: SpawnSpec },
}

impl WorkloadEvent {
    /// The tag this event targets.
    pub(crate) fn tag(&self) -> &str {
        match self {
            WorkloadEvent::Spawn { tag, .. }
            | WorkloadEvent::Kill { tag }
            | WorkloadEvent::Renice { tag, .. }
            | WorkloadEvent::Pin { tag, .. }
            | WorkloadEvent::CheckpointKill { tag }
            | WorkloadEvent::ResumeSpawn { tag, .. } => tag,
        }
    }

    /// Does this event create a new incarnation of its tag?
    pub(crate) fn is_spawn(&self) -> bool {
        matches!(
            self,
            WorkloadEvent::Spawn { .. } | WorkloadEvent::ResumeSpawn { .. }
        )
    }

    /// Does this event end its tag's current incarnation?
    pub(crate) fn is_kill(&self) -> bool {
        matches!(
            self,
            WorkloadEvent::Kill { .. } | WorkloadEvent::CheckpointKill { .. }
        )
    }
}

/// A dependency-triggered event waiting for its dependency's exit: the
/// runtime form of a [`Trigger::AfterExit`] entry, held by the
/// [`Session`](super::Session) until the dependency's final incarnation
/// completes.
#[derive(Debug)]
pub(crate) struct DeferredEvent {
    /// The tag whose exit fires this event.
    pub(crate) dep: String,
    /// How many incarnations of `dep` the schedule creates on this machine
    /// — the exit of the *last* one is the completion that fires the edge
    /// (a migrated-and-returned job completes once, at its final
    /// incarnation's exit).
    pub(crate) min_incarnations: usize,
    pub(crate) delay: SimDuration,
    pub(crate) ev: WorkloadEvent,
}

/// Cross-machine checkpoint transport for resume-mode migrations: the
/// source machine's [`WorkloadEvent::CheckpointKill`] publishes the
/// checkpoint under `(tag, instant)`, the destination's
/// [`WorkloadEvent::ResumeSpawn`] takes it. Shared (via `Arc`) by every
/// session of a cluster; the cluster's run loops order the two sides so a
/// take never races its publish (see `crate::cluster`).
///
/// Keys stay registered after their checkpoint is taken, so the cluster's
/// worker gating can distinguish "not yet produced" from "already consumed".
#[derive(Debug, Default)]
pub struct HandoffBoard {
    inner: Mutex<BoardInner>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct BoardInner {
    /// `Some` until taken, then `None` (the key itself is never removed).
    published: HashMap<(String, SimTime), Option<Checkpoint>>,
    /// Shard indices whose run has finished (cleanly or not) — a consumer
    /// waiting on a checkpoint its producer can no longer publish must fail
    /// rather than wait forever.
    done: Vec<bool>,
}

impl HandoffBoard {
    pub(crate) fn new(shards: usize) -> Arc<Self> {
        Arc::new(HandoffBoard {
            inner: Mutex::new(BoardInner {
                published: HashMap::new(),
                done: vec![false; shards],
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn publish(&self, tag: &str, at: SimTime, cp: Checkpoint) {
        let mut inner = self.inner.lock().unwrap();
        inner.published.insert((tag.to_string(), at), Some(cp));
        self.cv.notify_all();
    }

    pub(crate) fn take(&self, tag: &str, at: SimTime) -> Option<Checkpoint> {
        let mut inner = self.inner.lock().unwrap();
        inner
            .published
            .get_mut(&(tag.to_string(), at))
            .and_then(|slot| slot.take())
    }

    /// Has the checkpoint for `(tag, at)` ever been published?
    pub(crate) fn is_published(&self, tag: &str, at: SimTime) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.published.contains_key(&(tag.to_string(), at))
    }

    /// Record that shard `index`'s run is over; wakes every waiter.
    pub(crate) fn mark_done(&self, index: usize) {
        let mut inner = self.inner.lock().unwrap();
        if index < inner.done.len() {
            inner.done[index] = true;
        }
        self.cv.notify_all();
    }

    /// Block until the checkpoint for `(tag, at)` is published, or until
    /// shard `producer` finishes without publishing it (returns `false`).
    pub(crate) fn wait_published(&self, tag: &str, at: SimTime, producer: usize) -> bool {
        let key = (tag.to_string(), at);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.published.contains_key(&key) {
                return true;
            }
            if inner.done.get(producer).copied().unwrap_or(true) {
                return false;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }
}
