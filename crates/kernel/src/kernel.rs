//! The kernel: owns the machine, the tasks, the scheduler, `/proc`, and the
//! `perf_event` subsystem; advances simulated time in epochs.
//!
//! This is the layer tiptop talks to. It exposes exactly the interfaces the
//! real tool uses on Linux — `/proc` reads and the four perf syscalls — plus
//! `spawn`/`advance` for driving experiments.

use std::collections::BTreeMap;

use tiptop_machine::config::MachineConfig;
use tiptop_machine::machine::{Machine, SliceRequest};
use tiptop_machine::pmu::{EventCounts, HwEvent};
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_machine::topology::PuId;

use crate::errno::Errno;
use crate::perf::{
    multiplex_active, PerfCounter, PerfEventAttr, PerfFd, PerfValue, MAX_FDS_PER_OBSERVER,
};
use crate::procfs::ProcStat;
use crate::program::NextWork;
use crate::sched::{plan_epoch, weight_for_nice, CpuSet, SchedEntity};
use crate::task::{Pid, SpawnSpec, Task, TaskState, Uid};

/// Kernel construction parameters.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    pub machine: MachineConfig,
    /// Scheduler epoch. Coarser than a real kernel tick, but far finer than
    /// tiptop's seconds-scale refresh; 20 ms keeps multi-hour simulations
    /// cheap while timesharing still averages out within one refresh.
    pub epoch: SimDuration,
    pub seed: u64,
}

impl KernelConfig {
    pub fn new(machine: MachineConfig) -> Self {
        KernelConfig {
            machine,
            epoch: SimDuration::from_millis(20),
            seed: 0,
        }
    }

    pub fn epoch(mut self, e: SimDuration) -> Self {
        assert!(!e.is_zero(), "epoch must be positive");
        self.epoch = e;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// What remains of a task after it exits: final accounting, readable via
/// [`Kernel::exit_record`] (the ground truth for §2.4-style validation).
#[derive(Clone, Debug)]
pub struct ExitRecord {
    pub pid: Pid,
    pub comm: String,
    pub uid: Uid,
    pub start_time: SimTime,
    pub end_time: SimTime,
    pub utime: SimDuration,
    pub total_instructions: u64,
    pub ground_truth: EventCounts,
}

/// The simulated operating system.
pub struct Kernel {
    cfg: KernelConfig,
    machine: Machine,
    now: SimTime,
    epoch_index: u64,
    tasks: BTreeMap<Pid, Task>,
    /// Tombstones of exited tasks; pids are never reused.
    exited: BTreeMap<Pid, ExitRecord>,
    next_pid: u32,
    counters: BTreeMap<PerfFd, PerfCounter>,
    next_fd: u64,
    users: BTreeMap<Uid, String>,
}

impl Kernel {
    pub fn new(cfg: KernelConfig) -> Self {
        let machine = Machine::new(cfg.machine.clone(), cfg.seed);
        let mut users = BTreeMap::new();
        users.insert(Uid::ROOT, "root".to_string());
        Kernel {
            machine,
            now: SimTime::ZERO,
            epoch_index: 0,
            tasks: BTreeMap::new(),
            exited: BTreeMap::new(),
            next_pid: 100,
            counters: BTreeMap::new(),
            next_fd: 3,
            users,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn num_alive(&self) -> usize {
        self.tasks.len()
    }

    /// Ground-truth lifetime event totals for a task (what the hardware
    /// really did). Used by the validation experiments, not by the tool.
    /// Works for live and exited tasks.
    pub fn ground_truth(&self, pid: Pid) -> Option<EventCounts> {
        self.tasks
            .get(&pid)
            .map(|t| t.ground_truth)
            .or_else(|| self.exited.get(&pid).map(|r| r.ground_truth))
    }

    /// Final accounting of an exited task.
    pub fn exit_record(&self, pid: Pid) -> Option<&ExitRecord> {
        self.exited.get(&pid)
    }

    /// All tombstones, ascending by pid. Lets observers report tasks that
    /// spawned *and* exited between two of their samples.
    pub fn exit_records(&self) -> impl Iterator<Item = &ExitRecord> {
        self.exited.values()
    }

    // ------------------------------------------------------------------
    // User management
    // ------------------------------------------------------------------

    /// Register a user name for a uid (like `/etc/passwd`).
    pub fn add_user(&mut self, uid: Uid, name: impl Into<String>) {
        self.users.insert(uid, name.into());
    }

    /// `/etc/passwd` lookup; unknown uids render as their number.
    pub fn username(&self, uid: Uid) -> String {
        self.users
            .get(&uid)
            .cloned()
            .unwrap_or_else(|| uid.0.to_string())
    }

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    /// Create a task. It becomes runnable immediately.
    pub fn spawn(&mut self, spec: SpawnSpec) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let mut task = Task::new(pid, spec, self.now);
        // CFS: a newcomer starts at the current minimum vruntime so it
        // neither starves others nor waits forever.
        let min_vr = self
            .tasks
            .values()
            .filter(|t| t.state == TaskState::Runnable)
            .map(|t| t.vruntime)
            .fold(f64::INFINITY, f64::min);
        if min_vr.is_finite() {
            task.vruntime = min_vr;
        }
        self.tasks.insert(pid, task);
        pid
    }

    /// Terminate a task right now (SIGKILL-style).
    pub fn kill(&mut self, pid: Pid) -> Result<(), Errno> {
        let task = self.tasks.get_mut(&pid).ok_or(Errno::ESRCH)?;
        task.state = TaskState::Zombie;
        task.end_time = Some(self.now);
        Ok(())
    }

    /// Change a task's nice level (`renice`-style), clamped to the Linux
    /// range. Takes effect from the next scheduler epoch.
    pub fn renice(&mut self, pid: Pid, nice: i32) -> Result<(), Errno> {
        let task = self.tasks.get_mut(&pid).ok_or(Errno::ESRCH)?;
        task.nice = nice.clamp(-20, 19);
        Ok(())
    }

    /// Change a task's CPU affinity mask (`sched_setaffinity`-style, the
    /// paper's §3.4 `taskset` experiments). Takes effect from the next
    /// scheduler epoch; `EINVAL` if the mask allows no PU of this machine.
    pub fn set_affinity(&mut self, pid: Pid, cpus: CpuSet) -> Result<(), Errno> {
        let num_pus = self.cfg.machine.topology.num_pus();
        if !(0..num_pus).any(|p| cpus.allows(PuId(p))) {
            return Err(Errno::EINVAL);
        }
        let task = self.tasks.get_mut(&pid).ok_or(Errno::ESRCH)?;
        task.affinity = cpus;
        Ok(())
    }

    /// Has the task exited (or never existed)?
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.tasks.contains_key(&pid)
    }

    // ------------------------------------------------------------------
    // /proc
    // ------------------------------------------------------------------

    /// List live pids, ascending (a `/proc` directory scan).
    pub fn pids(&self) -> Vec<Pid> {
        self.tasks.keys().copied().collect()
    }

    /// Read `/proc/<pid>/stat`. `None` if the task is gone — callers must
    /// cope, exactly like the real tool.
    pub fn stat(&self, pid: Pid) -> Option<ProcStat> {
        let t = self.tasks.get(&pid)?;
        Some(ProcStat {
            pid: t.pid,
            tgid: t.tgid,
            comm: t.comm.clone(),
            uid: t.uid,
            state: t.state,
            nice: t.nice,
            utime: t.utime,
            stime: t.stime,
            start_time: t.start_time,
            processor: t.last_pu,
            ground_truth_instructions: t.total_instructions,
        })
    }

    // ------------------------------------------------------------------
    // perf_event syscalls
    // ------------------------------------------------------------------

    /// `perf_event_open(attr, pid, cpu, group_fd, flags)` as the observer
    /// `observer`. Only per-task counting (`cpu == -1`) is supported, which
    /// is all tiptop uses (§2.3: "We set cpu to -1 to monitor events per
    /// task").
    pub fn perf_event_open(
        &mut self,
        attr: &PerfEventAttr,
        pid: Pid,
        cpu: i32,
        observer: Uid,
    ) -> Result<PerfFd, Errno> {
        if cpu != -1 {
            return Err(Errno::EINVAL);
        }
        let task = self.tasks.get(&pid).ok_or(Errno::ESRCH)?;
        if !observer.is_root() && observer != task.uid {
            return Err(Errno::EACCES);
        }
        let open_by_observer = self
            .counters
            .values()
            .filter(|c| c.owner == observer)
            .count();
        if open_by_observer >= MAX_FDS_PER_OBSERVER {
            return Err(Errno::EMFILE);
        }
        let fd = PerfFd(self.next_fd);
        self.next_fd += 1;
        self.counters.insert(
            fd,
            PerfCounter {
                fd,
                task: pid,
                owner: observer,
                hw: attr.event.to_hw(),
                enabled: !attr.disabled,
                count: 0,
                time_enabled: SimDuration::ZERO,
                time_running: SimDuration::ZERO,
            },
        );
        Ok(fd)
    }

    /// Read the counter. Remains valid after the task exits (the fd holds
    /// the final value), like Linux.
    pub fn perf_read(&self, fd: PerfFd) -> Result<PerfValue, Errno> {
        let c = self.counters.get(&fd).ok_or(Errno::EBADF)?;
        Ok(PerfValue {
            value: c.count,
            time_enabled: c.time_enabled,
            time_running: c.time_running,
        })
    }

    pub fn perf_enable(&mut self, fd: PerfFd) -> Result<(), Errno> {
        self.counters.get_mut(&fd).ok_or(Errno::EBADF)?.enabled = true;
        Ok(())
    }

    pub fn perf_disable(&mut self, fd: PerfFd) -> Result<(), Errno> {
        self.counters.get_mut(&fd).ok_or(Errno::EBADF)?.enabled = false;
        Ok(())
    }

    pub fn perf_close(&mut self, fd: PerfFd) -> Result<(), Errno> {
        self.counters.remove(&fd).map(|_| ()).ok_or(Errno::EBADF)
    }

    /// Open fds held by an observer (for leak assertions in tests).
    pub fn open_fds(&self, observer: Uid) -> usize {
        self.counters
            .values()
            .filter(|c| c.owner == observer)
            .count()
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advance simulated time by `dur`, running whole epochs (the final
    /// epoch is shortened to land exactly on `now + dur`).
    pub fn advance(&mut self, dur: SimDuration) {
        let target = self.now + dur;
        while self.now < target {
            let e = self.cfg.epoch.min(target - self.now);
            self.run_epoch(e);
        }
    }

    /// Advance to an absolute instant (no-op if already past).
    pub fn advance_until(&mut self, t: SimTime) {
        if t > self.now {
            self.advance(t - self.now);
        }
    }

    // ------------------------------------------------------------------
    // The epoch engine
    // ------------------------------------------------------------------

    fn run_epoch(&mut self, epoch_len: SimDuration) {
        let epoch_end = self.now + epoch_len;
        let clock = self.cfg.machine.uarch.clock;
        let budget_cycles = clock.cycles_in(epoch_len);

        self.wake_and_settle();

        // Plan placement for this epoch.
        let entities: Vec<SchedEntity> = self
            .tasks
            .values()
            .filter(|t| t.state == TaskState::Runnable)
            .map(|t| SchedEntity {
                pid: t.pid,
                vruntime: t.vruntime,
                weight: weight_for_nice(t.nice),
                affinity: t.affinity,
                last_pu: t.last_pu,
            })
            .collect();
        let plan = plan_epoch(self.machine.topology(), &entities);

        // Per-task epoch bookkeeping. `remaining` tracks unspent cycle
        // budget (used = budget - remaining); `blocked` marks tasks that
        // slept or exited mid-epoch and must not run again this epoch.
        let mut blocked: std::collections::BTreeSet<Pid> = std::collections::BTreeSet::new();
        let mut remaining: BTreeMap<Pid, u64> = BTreeMap::new();
        let mut pu_of: BTreeMap<Pid, PuId> = BTreeMap::new();
        let mut epoch_delta: BTreeMap<Pid, EventCounts> = BTreeMap::new();
        for (pu, pid) in plan.running_pairs() {
            remaining.insert(pid, budget_cycles);
            pu_of.insert(pid, pu);
        }

        // Execute in rounds so phase boundaries inside the epoch are honored.
        for _round in 0..8 {
            // Collect (pid, remaining_phase_instructions) of tasks that still
            // have cycles and compute work.
            let mut runnable_now: Vec<(Pid, u64)> = Vec::new();
            let mut to_sleep: Vec<(Pid, SimTime)> = Vec::new();
            let mut to_exit: Vec<Pid> = Vec::new();
            for (&pid, &rem) in remaining.iter() {
                if rem == 0 || blocked.contains(&pid) {
                    continue;
                }
                let task = self.tasks.get_mut(&pid).expect("planned task exists");
                match task.cursor.step(&task.program) {
                    NextWork::Compute {
                        remaining: insns, ..
                    } => {
                        runnable_now.push((pid, insns));
                    }
                    NextWork::Sleep { duration } => {
                        // Sleep begins at the point in the epoch where the
                        // task stopped computing.
                        let used = budget_cycles - rem;
                        let start = self.now + clock.duration_of(used);
                        to_sleep.push((pid, start + duration));
                    }
                    NextWork::Exit => to_exit.push(pid),
                }
            }
            for (pid, until) in to_sleep {
                let t = self.tasks.get_mut(&pid).unwrap();
                t.state = TaskState::Sleeping;
                t.sleep_until = Some(until);
                blocked.insert(pid);
            }
            for pid in to_exit {
                let t = self.tasks.get_mut(&pid).unwrap();
                t.state = TaskState::Zombie;
                let used = budget_cycles - remaining[&pid];
                t.end_time = Some(self.now + clock.duration_of(used));
                blocked.insert(pid);
            }
            if runnable_now.is_empty() {
                break;
            }

            // Build joint slice requests. Split borrows: take tasks out of
            // the map temporarily.
            let mut borrowed: Vec<(Pid, Task)> = runnable_now
                .iter()
                .map(|(pid, _)| (*pid, self.tasks.remove(pid).unwrap()))
                .collect();
            {
                let mut requests: Vec<SliceRequest<'_>> = Vec::with_capacity(borrowed.len());
                for ((pid, task), (_, phase_insns)) in borrowed.iter_mut().zip(runnable_now.iter())
                {
                    // Destructure to borrow disjoint fields: the profile
                    // borrows `program` (via the cursor), the stream is a
                    // separate field.
                    let Task {
                        program,
                        cursor,
                        stream,
                        cpi_hint,
                        ..
                    } = task;
                    let profile = match cursor.step(program) {
                        NextWork::Compute { profile, .. } => profile,
                        _ => unreachable!("filtered to compute work above"),
                    };
                    let mut req = SliceRequest::new(pu_of[&*pid], profile, stream)
                        .cycles(remaining[&*pid])
                        .max_instructions(*phase_insns);
                    if *cpi_hint > 0.0 {
                        req = req.cpi_hint(*cpi_hint);
                    }
                    requests.push(req);
                }
                let outcomes = self.machine.execute_epoch(&mut requests);

                for ((pid, task), outcome) in borrowed.iter_mut().zip(outcomes) {
                    task.cursor.retire(outcome.instructions);
                    task.total_instructions += outcome.instructions;
                    task.ground_truth.accumulate(&outcome.events);
                    if outcome.instructions > 0 {
                        task.cpi_hint = outcome.cycles as f64 / outcome.instructions as f64;
                    }
                    task.last_pu = Some(pu_of[&*pid]);
                    let rem = remaining.get_mut(pid).unwrap();
                    *rem = rem.saturating_sub(outcome.cycles.max(1));
                    epoch_delta
                        .entry(*pid)
                        .or_default()
                        .accumulate(&outcome.events);
                }
            }
            for (pid, task) in borrowed {
                self.tasks.insert(pid, task);
            }
        }

        // Charge CPU time, fairness, and perf counters.
        for (&pid, &pu) in pu_of.iter() {
            let used_cycles = budget_cycles - remaining.get(&pid).copied().unwrap_or(0);
            if used_cycles == 0 {
                continue;
            }
            let run_dur = clock.duration_of(used_cycles);
            let delta = epoch_delta.get(&pid).copied().unwrap_or(EventCounts::ZERO);
            if let Some(task) = self.tasks.get_mut(&pid) {
                task.utime += run_dur;
                task.vruntime += run_dur.as_nanos() as f64 / weight_for_nice(task.nice);
                task.last_pu = Some(pu);
            }
            self.apply_perf_deltas(pid, run_dur, &delta);
        }

        // Reap zombies (tombstones keep the pid reserved).
        let dead: Vec<Pid> = self
            .tasks
            .iter()
            .filter(|(_, t)| t.state == TaskState::Zombie)
            .map(|(&p, _)| p)
            .collect();
        for pid in dead {
            let t = self.tasks.remove(&pid).unwrap();
            self.exited.insert(
                pid,
                ExitRecord {
                    pid,
                    comm: t.comm,
                    uid: t.uid,
                    start_time: t.start_time,
                    end_time: t.end_time.unwrap_or(epoch_end),
                    utime: t.utime,
                    total_instructions: t.total_instructions,
                    ground_truth: t.ground_truth,
                },
            );
        }

        self.now = epoch_end;
        self.epoch_index += 1;
    }

    /// Wake expired sleepers.
    fn wake_and_settle(&mut self) {
        let now = self.now;
        for t in self.tasks.values_mut() {
            if t.state == TaskState::Sleeping {
                if let Some(until) = t.sleep_until {
                    if until <= now {
                        t.state = TaskState::Runnable;
                        t.sleep_until = None;
                    }
                }
            }
        }
    }

    /// Update all counters attached to `pid` for an epoch in which the task
    /// ran for `run_dur` and the hardware observed `delta`.
    fn apply_perf_deltas(&mut self, pid: Pid, run_dur: SimDuration, delta: &EventCounts) {
        let pmu = self.cfg.machine.uarch.pmu;

        // Distinct requested events for this task, split fixed/programmable.
        let mut fixed: Vec<HwEvent> = Vec::new();
        let mut programmable: Vec<HwEvent> = Vec::new();
        for c in self.counters.values() {
            if c.task == pid && c.enabled {
                let bucket = if c.hw.is_fixed() && fixed_slot(c.hw) < pmu.fixed_counters {
                    &mut fixed
                } else {
                    &mut programmable
                };
                if !bucket.contains(&c.hw) {
                    bucket.push(c.hw);
                }
            }
        }
        programmable.sort_by_key(|e| e.index());
        let active = multiplex_active(&programmable, pmu.programmable_counters, self.epoch_index);

        for c in self.counters.values_mut() {
            if c.task != pid || !c.enabled {
                continue;
            }
            c.time_enabled += run_dur;
            let on_fixed = c.hw.is_fixed() && fixed_slot(c.hw) < pmu.fixed_counters;
            if on_fixed || active.contains(&c.hw) {
                c.count += delta.get(c.hw);
                c.time_running += run_dur;
            }
        }
    }
}

/// Which fixed-counter slot an event occupies (Intel order: instructions,
/// cycles, ref-cycles).
fn fixed_slot(e: HwEvent) -> usize {
    match e {
        HwEvent::Instructions => 0,
        HwEvent::Cycles => 1,
        HwEvent::RefCycles => 2,
        _ => usize::MAX,
    }
}
