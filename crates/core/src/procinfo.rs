//! `%CPU` computation from `/proc` deltas — exactly what `top` shows, and
//! the paper's motivating blind spot: it can read 100% while the pipeline
//! does almost nothing.

use std::collections::HashMap;

use tiptop_kernel::procfs::ProcStat;
use tiptop_kernel::task::Pid;
use tiptop_machine::time::{SimDuration, SimTime};

/// Tracks per-task CPU time between refreshes and converts the delta to a
/// percentage of wall time.
#[derive(Debug, Default)]
pub struct CpuTracker {
    last: HashMap<Pid, (SimDuration, SimTime)>,
}

impl CpuTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Update with a fresh `stat` read at `now`; returns `%CPU` over the
    /// interval since this task was last seen. The first observation of a
    /// task averages over its whole lifetime (like `top`'s first screen).
    pub fn update(&mut self, stat: &ProcStat, now: SimTime) -> f64 {
        let cpu = stat.cpu_time();
        let (prev_cpu, prev_t) = self
            .last
            .insert(stat.pid, (cpu, now))
            .unwrap_or((SimDuration::ZERO, stat.start_time));
        let wall = now.since(prev_t);
        if wall.is_zero() {
            return 0.0;
        }
        let used = cpu.saturating_sub(prev_cpu);
        100.0 * used.as_secs_f64() / wall.as_secs_f64()
    }

    /// Forget tasks no longer present (call with the live pid set).
    pub fn retain_pids(&mut self, alive: &dyn Fn(Pid) -> bool) {
        self.last.retain(|pid, _| alive(*pid));
    }

    pub fn tracked(&self) -> usize {
        self.last.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiptop_kernel::task::{TaskState, Uid};

    fn stat(pid: u32, utime_ms: u64, start: SimTime) -> ProcStat {
        ProcStat {
            pid: Pid(pid),
            tgid: Pid(pid),
            comm: "x".into(),
            uid: Uid(1),
            state: TaskState::Runnable,
            nice: 0,
            utime: SimDuration::from_millis(utime_ms),
            stime: SimDuration::ZERO,
            start_time: start,
            processor: None,
            ground_truth_instructions: 0,
        }
    }

    #[test]
    fn full_load_is_100_percent() {
        let mut t = CpuTracker::new();
        let start = SimTime::ZERO;
        t.update(&stat(1, 0, start), start);
        let pct = t.update(&stat(1, 1000, start), SimTime::from_secs(1));
        assert!((pct - 100.0).abs() < 1e-9, "got {pct}");
    }

    #[test]
    fn first_observation_averages_over_lifetime() {
        let mut t = CpuTracker::new();
        // Task started at t=1s, has 500 ms of CPU at t=2s → 50%.
        let pct = t.update(&stat(1, 500, SimTime::from_secs(1)), SimTime::from_secs(2));
        assert!((pct - 50.0).abs() < 1e-9, "got {pct}");
    }

    #[test]
    fn partial_load() {
        let mut t = CpuTracker::new();
        t.update(&stat(1, 0, SimTime::ZERO), SimTime::ZERO);
        let pct = t.update(&stat(1, 437, SimTime::ZERO), SimTime::from_secs(1));
        assert!((pct - 43.7).abs() < 1e-9, "process11's 43.7%: got {pct}");
    }

    #[test]
    fn zero_wall_interval_is_zero() {
        let mut t = CpuTracker::new();
        t.update(&stat(1, 100, SimTime::ZERO), SimTime::from_secs(1));
        assert_eq!(
            t.update(&stat(1, 100, SimTime::ZERO), SimTime::from_secs(1)),
            0.0
        );
    }

    #[test]
    fn retain_drops_dead_tasks() {
        let mut t = CpuTracker::new();
        t.update(&stat(1, 0, SimTime::ZERO), SimTime::ZERO);
        t.update(&stat(2, 0, SimTime::ZERO), SimTime::ZERO);
        t.retain_pids(&|pid| pid == Pid(1));
        assert_eq!(t.tracked(), 1);
    }
}
