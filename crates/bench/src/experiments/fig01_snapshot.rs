//! **Figure 1** — a tiptop snapshot of a shared data-center node: eleven
//! processes, three users, on a bi-Xeon E5640 (16 logical cores). The
//! regenerated screen must show the same structure: %CPU ≈ 100 for ten
//! jobs and ~44% for one, a wide IPC spread (≈0.7 … ≈2.4), and exactly one
//! memory-bound job with non-zero DMIS (LLC misses per hundred
//! instructions).

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::config::ScreenConfig;
use tiptop_core::render::Frame;
use tiptop_core::scenario::Scenario;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::SimDuration;
use tiptop_workloads::datacenter::{fig1_jobs, fig1_reference, users, Fig1Row};

use crate::report::TableReport;

/// The regenerated snapshot plus the paper's reference rows.
pub struct Fig01Result {
    pub frame: Frame,
    pub reference: Vec<Fig1Row>,
}

/// Run the node for `warmup_s` seconds, then take the snapshot with a
/// tiptop refresh interval of `delay_s`.
pub fn run(seed: u64, warmup_s: u64, delay_s: u64) -> Fig01Result {
    let mut scenario = Scenario::new(MachineConfig::datacenter_e5640()).seed(seed);
    for (uid, name) in users() {
        scenario = scenario.user(uid, name);
    }
    for job in fig1_jobs() {
        let comm = job.comm.clone();
        scenario = scenario.spawn(
            comm,
            SpawnSpec::new(job.comm, job.uid, job.program).seed(job.seed),
        );
    }
    let mut session = scenario.build().expect("fig1 job tags are unique");
    session
        .advance(SimDuration::from_secs(warmup_s))
        .expect("no scheduled events");

    // The observer is root here (the paper's author monitoring all users'
    // jobs on the grid node — any single user would see only their own).
    let mut tool = Tiptop::new(
        TiptopOptions::default()
            .observer(Uid::ROOT)
            .delay(SimDuration::from_secs(delay_s)),
        ScreenConfig::default_screen(),
    );
    let frames = session
        .run(&mut tool, 3)
        .expect("monitor has a positive interval");
    Fig01Result {
        frame: frames.into_iter().last().unwrap(),
        reference: fig1_reference(),
    }
}

impl Fig01Result {
    /// The regenerated screen plus a paper-vs-measured comparison table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("=== Figure 1: regenerated tiptop snapshot ===\n");
        out.push_str(&self.frame.render());
        out.push('\n');

        let mut t = TableReport::new(
            "paper vs measured (matched by command name)",
            &[
                "COMMAND",
                "paper %CPU",
                "meas %CPU",
                "paper IPC",
                "meas IPC",
                "paper DMIS",
                "meas DMIS",
            ],
        );
        for r in &self.reference {
            let row = self.frame.row_for_comm(r.comm);
            let (cpu, ipc, dmis) = row
                .map(|row| {
                    (
                        format!("{:.1}", row.cpu_pct),
                        row.value("IPC")
                            .map(|v| format!("{v:.2}"))
                            .unwrap_or("-".into()),
                        row.value("DMIS")
                            .map(|v| format!("{v:.1}"))
                            .unwrap_or("-".into()),
                    )
                })
                .unwrap_or(("?".into(), "?".into(), "?".into()));
            t.row(vec![
                r.comm.to_string(),
                format!("{:.1}", r.cpu_pct),
                cpu,
                format!("{:.2}", r.ipc),
                ipc,
                format!("{:.1}", r.dmis),
                dmis,
            ]);
        }
        out.push_str(&t.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reproduces_fig1_structure() {
        let r = run(42, 20, 10);
        assert_eq!(r.frame.rows.len(), 11, "eleven processes visible");

        // Ten jobs near 100% CPU, one near 44%.
        let busy = r.frame.rows.iter().filter(|row| row.cpu_pct > 97.0).count();
        assert_eq!(busy, 10, "ten fully busy jobs");
        let idle_ish = r.frame.row_for_comm("process11").unwrap();
        assert!(
            (35.0..55.0).contains(&idle_ish.cpu_pct),
            "process11 should be ~43.7%, got {}",
            idle_ish.cpu_pct
        );

        // Sorted by %CPU descending, so process11 is last.
        assert_eq!(r.frame.rows.last().unwrap().comm, "process11");

        // IPC spread: fastest > 2, slowest < 0.9 (paper: 2.36 and 0.66).
        let fast = r
            .frame
            .row_for_comm("process4")
            .unwrap()
            .value("IPC")
            .unwrap();
        let slow = r
            .frame
            .row_for_comm("process6")
            .unwrap()
            .value("IPC")
            .unwrap();
        assert!(fast > 1.9, "process4 IPC {fast} should be ≈2.36");
        assert!(slow < 0.95, "process6 IPC {slow} should be ≈0.66");

        // Exactly one job with meaningful DMIS.
        let dmis_jobs = r
            .frame
            .rows
            .iter()
            .filter(|row| row.value("DMIS").unwrap_or(0.0) > 0.3)
            .count();
        assert_eq!(dmis_jobs, 1, "only process6 misses the LLC");
        let dmis = r
            .frame
            .row_for_comm("process6")
            .unwrap()
            .value("DMIS")
            .unwrap();
        assert!((0.4..1.6).contains(&dmis), "DMIS ≈ 0.9, got {dmis}");
    }

    #[test]
    fn report_renders() {
        let r = run(1, 10, 5);
        let text = r.report();
        assert!(text.contains("process6"));
        assert!(text.contains("paper IPC"));
    }
}
