use super::*;
use crate::app::{Tiptop, TiptopOptions};
use crate::config::ScreenConfig;
use tiptop_kernel::errno::Errno;
use tiptop_kernel::program::Program;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::access::MemoryBehavior;
use tiptop_machine::config::MachineConfig;
use tiptop_machine::exec::ExecProfile;
use tiptop_machine::time::{SimDuration, SimTime};

fn spin() -> Program {
    Program::endless(
        ExecProfile::builder("spin")
            .base_cpi(0.8)
            .branches(0.18, 0.0)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .build(),
    )
}

/// A program that retires `insns` instructions and exits.
fn burst(insns: u64) -> Program {
    Program::single(
        ExecProfile::builder("burst")
            .base_cpi(0.8)
            .memory(MemoryBehavior::uniform(16 * 1024))
            .build(),
        insns,
    )
}

fn base() -> Scenario {
    Scenario::new(MachineConfig::nehalem_w3550().noiseless())
        .seed(9)
        .user(Uid(1), "u1")
}

fn tool(delay_s: u64) -> Tiptop {
    Tiptop::new(
        TiptopOptions::default().delay(SimDuration::from_secs(delay_s)),
        ScreenConfig::default_screen(),
    )
}

#[test]
fn build_resolves_t0_spawns_immediately() {
    let session = base()
        .spawn("a", SpawnSpec::new("a", Uid(1), spin()))
        .spawn_at(
            SimTime::from_secs(2),
            "late",
            SpawnSpec::new("late", Uid(1), spin()),
        )
        .build()
        .unwrap();
    assert!(session.pid("a").is_some());
    assert!(session.pid("late").is_none(), "not yet spawned");
    assert_eq!(session.pending_events(), 1);
}

#[test]
fn duplicate_tags_rejected() {
    let err = base()
        .spawn("x", SpawnSpec::new("x", Uid(1), spin()))
        .spawn("x", SpawnSpec::new("x2", Uid(1), spin()))
        .build()
        .unwrap_err();
    assert!(matches!(err, SessionError::InvalidScenario(_)));
    assert!(err.to_string().contains("duplicate"));
}

#[test]
fn unknown_and_premature_events_rejected() {
    let err = base()
        .kill_at(SimTime::from_secs(1), "ghost")
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("unknown tag"));

    let err = base()
        .spawn_at(
            SimTime::from_secs(5),
            "late",
            SpawnSpec::new("late", Uid(1), spin()),
        )
        .kill_at(SimTime::from_secs(1), "late")
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("precedes its spawn"));

    // Same instant, but the kill is declared before the spawn: the
    // stable sort would apply it first, so build() must reject it too.
    let err = base()
        .kill_at(SimTime::from_secs(5), "x")
        .spawn_at(
            SimTime::from_secs(5),
            "x",
            SpawnSpec::new("x", Uid(1), spin()),
        )
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("precedes its spawn"), "got {err}");

    // Declared spawn-then-kill at the same instant is fine.
    assert!(base()
        .spawn_at(
            SimTime::from_secs(5),
            "y",
            SpawnSpec::new("y", Uid(1), spin())
        )
        .kill_at(SimTime::from_secs(5), "y")
        .build()
        .is_ok());
}

#[test]
fn spawn_at_takes_effect_at_the_instant() {
    let mut session = base()
        .spawn_at(
            SimTime::from_secs(3),
            "late",
            SpawnSpec::new("late", Uid(1), spin()),
        )
        .build()
        .unwrap();
    session.advance_to(SimTime::from_secs(2)).unwrap();
    assert!(session.pid("late").is_none());
    session.advance_to(SimTime::from_secs(3)).unwrap();
    let pid = session.pid("late").expect("spawned exactly at t=3");
    // It must not have run before t=3: lifetime CPU ≤ elapsed-since-3.
    session.advance_to(SimTime::from_secs(4)).unwrap();
    let st = session.kernel().stat(pid).unwrap();
    assert_eq!(st.start_time, SimTime::from_secs(3));
    assert!(st.cpu_time().as_secs_f64() <= 1.0 + 1e-9);
}

#[test]
fn kill_of_already_exited_task_is_typed_error() {
    let mut session = base()
        .spawn(
            "short",
            SpawnSpec::new(
                "short",
                Uid(1),
                Program::single(ExecProfile::builder("s").base_cpi(0.8).build(), 1_000_000),
            ),
        )
        .kill_at(SimTime::from_secs(5), "short")
        .build()
        .unwrap();
    // The program retires 1M instructions in well under a second; the
    // kill at t=5 hits a tombstone.
    let err = session.advance_to(SimTime::from_secs(6)).unwrap_err();
    assert!(
        matches!(
            err,
            SessionError::Syscall {
                call: "kill",
                errno: Errno::ESRCH,
                ..
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn run_matches_manual_loop_shape() {
    let mut session = base()
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
        .build()
        .unwrap();
    let mut t = tool(1);
    let frames = session.run(&mut t, 3).unwrap();
    assert_eq!(frames.len(), 3);
    assert_eq!(frames[0].time.as_secs_f64(), 1.0);
    assert_eq!(frames[2].time.as_secs_f64(), 3.0);
    session.teardown(&mut t);
    assert_eq!(
        session.kernel().open_fds(Uid::ROOT),
        0,
        "teardown closes fds"
    );
}

#[test]
fn run_until_stops_on_predicate() {
    let mut session = base()
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
        .build()
        .unwrap();
    let frames = session
        .run_until(&mut tool(1), 100, |f| f.time.as_secs_f64() >= 2.0)
        .unwrap();
    assert_eq!(frames.len(), 2);
}

#[test]
fn monitors_with_different_intervals_interleave() {
    let mut session = base()
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
        .build()
        .unwrap();
    let mut fast = tool(1);
    let mut slow = tool(3);
    let mut times: Vec<(String, f64)> = Vec::new();
    let mut sink = |source: &str, frame: crate::render::Frame| {
        times.push((source.to_string(), frame.time.as_secs_f64()));
    };
    session
        .run_all(&mut [&mut fast, &mut slow], 3, &mut sink)
        .unwrap();
    // fast at 1,2,3; slow at 3,6,9 — same-instant order follows slices.
    let expect = [
        ("tiptop", 1.0),
        ("tiptop", 2.0),
        ("tiptop", 3.0),
        ("tiptop", 3.0),
        ("tiptop", 6.0),
        ("tiptop", 9.0),
    ];
    assert_eq!(times.len(), expect.len());
    for ((_, got), (_, want)) in times.iter().zip(expect.iter()) {
        assert_eq!(got, want);
    }
}

#[test]
fn zero_interval_monitor_rejected() {
    let mut session = base()
        .spawn("spin", SpawnSpec::new("spin", Uid(1), spin()))
        .build()
        .unwrap();
    let err = session.run(&mut tool(0), 1).unwrap_err();
    assert!(matches!(err, SessionError::InvalidScenario(_)));
}

// ---------------------------------------------------------------------
// Dependency triggers
// ---------------------------------------------------------------------

#[test]
fn spawn_after_fires_at_exit_plus_delay() {
    let mut session = base()
        .spawn("a", SpawnSpec::new("a", Uid(1), burst(50_000_000)))
        .spawn_after(
            "a",
            SimDuration::from_millis(100),
            "b",
            SpawnSpec::new("b", Uid(1), spin()),
        )
        .build()
        .unwrap();
    assert_eq!(session.deferred_events(), 1);
    session.advance_to(SimTime::from_secs(10)).unwrap();
    let a = session.pid("a").unwrap();
    let b = session.pid("b").expect("b spawned after a's exit");
    let exit = session.kernel().exit_record(a).expect("a exited").end_time;
    let spawn = session.kernel().stat(b).unwrap().start_time;
    let want = exit + SimDuration::from_millis(100);
    assert!(
        spawn >= want,
        "b spawned at {spawn:?}, before a's exit {exit:?} + 100ms"
    );
    // The 100ms delay spans several 20ms epochs, so the fire instant is
    // exact, not just a lower bound.
    assert_eq!(spawn, want, "delay >= one epoch resolves exactly");
    assert_eq!(session.deferred_events(), 0);
}

#[test]
fn kill_after_ends_dependent_when_dep_exits() {
    let mut session = base()
        .spawn("a", SpawnSpec::new("a", Uid(1), burst(50_000_000)))
        .spawn("victim", SpawnSpec::new("victim", Uid(1), spin()))
        .kill_after("a", SimDuration::from_millis(40), "victim")
        .build()
        .unwrap();
    session.advance_to(SimTime::from_secs(10)).unwrap();
    let a = session.pid("a").unwrap();
    let victim = session.pid("victim").unwrap();
    assert!(!session.kernel().is_alive(victim), "killed by a's exit");
    let exit = session.kernel().exit_record(a).unwrap().end_time;
    let end = session.kernel().exit_record(victim).unwrap().end_time;
    assert_eq!(end, exit + SimDuration::from_millis(40));
}

#[test]
fn chained_dependencies_fire_in_order() {
    let mut session = base()
        .spawn("s1", SpawnSpec::new("s1", Uid(1), burst(30_000_000)))
        .spawn_after(
            "s1",
            SimDuration::ZERO,
            "s2",
            SpawnSpec::new("s2", Uid(1), burst(30_000_000)),
        )
        .spawn_after(
            "s2",
            SimDuration::ZERO,
            "s3",
            SpawnSpec::new("s3", Uid(1), burst(30_000_000)),
        )
        .build()
        .unwrap();
    session.advance_to(SimTime::from_secs(20)).unwrap();
    // All three stages ran to completion; their records carry exact
    // lifetimes.
    let records: Vec<_> = ["s1", "s2", "s3"]
        .iter()
        .map(|t| {
            let pid = session.pid(t).unwrap_or_else(|| panic!("{t} spawned"));
            session
                .kernel()
                .exit_record(pid)
                .unwrap_or_else(|| panic!("{t} exited"))
                .clone()
        })
        .collect();
    let starts: Vec<SimTime> = records.iter().map(|r| r.start_time).collect();
    assert!(starts[0] < starts[1] && starts[1] < starts[2], "{starts:?}");
    // Every stage waits for the previous stage's exit.
    for w in records.windows(2) {
        assert!(
            w[1].start_time >= w[0].end_time,
            "{} spawned before {} exited",
            w[1].comm,
            w[0].comm
        );
    }
}

#[test]
fn dependency_on_killed_dep_fires_at_kill_instant() {
    // A plain SIGKILL is a completion: the kill instant is exact, so a
    // zero-epoch delay resolves exactly even mid-epoch.
    let kill_at = SimTime::ZERO + SimDuration::from_millis(1_234);
    let mut session = base()
        .spawn("a", SpawnSpec::new("a", Uid(1), spin()))
        .kill_at(kill_at, "a")
        .spawn_after(
            "a",
            SimDuration::from_millis(5),
            "b",
            SpawnSpec::new("b", Uid(1), spin()),
        )
        .build()
        .unwrap();
    session.advance_to(SimTime::from_secs(3)).unwrap();
    let b = session.pid("b").expect("spawned after the kill");
    assert_eq!(
        session.kernel().stat(b).unwrap().start_time,
        kill_at + SimDuration::from_millis(5)
    );
}

#[test]
fn cycle_rejected_with_typed_error() {
    let err = base()
        .spawn_after(
            "b",
            SimDuration::ZERO,
            "a",
            SpawnSpec::new("a", Uid(1), spin()),
        )
        .spawn_after(
            "a",
            SimDuration::ZERO,
            "b",
            SpawnSpec::new("b", Uid(1), spin()),
        )
        .build()
        .unwrap_err();
    match err {
        SessionError::InvalidDag(DagError::Cycle { tags }) => {
            assert_eq!(tags, vec!["a".to_string(), "b".to_string()]);
        }
        other => panic!("expected Cycle, got {other:?}"),
    }
}

#[test]
fn unknown_dependency_rejected_with_typed_error() {
    let err = base()
        .spawn_after(
            "ghost",
            SimDuration::ZERO,
            "b",
            SpawnSpec::new("b", Uid(1), spin()),
        )
        .build()
        .unwrap_err();
    match err {
        SessionError::InvalidDag(DagError::UnknownDependency {
            event_tag,
            dependency,
        }) => {
            assert_eq!(event_tag, "b");
            assert_eq!(dependency, "ghost");
        }
        other => panic!("expected UnknownDependency, got {other:?}"),
    }
}

#[test]
fn dependency_on_checkpoint_killed_tag_rejected() {
    // 'a' is checkpoint-killed (migrated away) and never resumed here: its
    // exit never lands, so after-exit edges on it are dead on arrival.
    let mut scenario = base().spawn("a", SpawnSpec::new("a", Uid(1), spin()));
    scenario = scenario.spawn_after(
        "a",
        SimDuration::ZERO,
        "b",
        SpawnSpec::new("b", Uid(1), spin()),
    );
    scenario.schedule(
        SimTime::from_secs(1),
        WorkloadEvent::CheckpointKill { tag: "a".into() },
    );
    let err = scenario.build().unwrap_err();
    match err {
        SessionError::InvalidDag(DagError::DependencyOnKilled { dependency }) => {
            assert_eq!(dependency, "a");
        }
        other => panic!("expected DependencyOnKilled, got {other:?}"),
    }
}

#[test]
fn timed_event_on_dependent_tag_rejected() {
    let err = base()
        .spawn("a", SpawnSpec::new("a", Uid(1), burst(1_000_000)))
        .spawn_after(
            "a",
            SimDuration::ZERO,
            "b",
            SpawnSpec::new("b", Uid(1), spin()),
        )
        .kill_at(SimTime::from_secs(5), "b")
        .build()
        .unwrap_err();
    assert!(
        matches!(
            err,
            SessionError::InvalidDag(DagError::TimedEventOnDependentTag { .. })
        ),
        "got {err:?}"
    );
}

#[test]
fn same_instant_timed_events_apply_before_resolved_dependents() {
    // 'dep' is killed at exactly t=1s; a same-instant timed spawn of 'c'
    // and a zero-delay dependent 'b' both land at t=1s — the timed event
    // applies first, the resolved dependent after (declaration order of
    // the dependency edges thereafter).
    let kill_at = SimTime::from_secs(1);
    let mut session = base()
        .spawn("dep", SpawnSpec::new("dep", Uid(1), spin()))
        .kill_at(kill_at, "dep")
        .spawn_at(kill_at, "c", SpawnSpec::new("c", Uid(1), spin()))
        .spawn_after(
            "dep",
            SimDuration::ZERO,
            "b",
            SpawnSpec::new("b", Uid(1), spin()),
        )
        .build()
        .unwrap();
    session.advance_to(SimTime::from_secs(2)).unwrap();
    let c = session.pid("c").unwrap();
    let b = session.pid("b").unwrap();
    assert_eq!(session.kernel().stat(c).unwrap().start_time, kill_at);
    assert_eq!(session.kernel().stat(b).unwrap().start_time, kill_at);
    // Same instant, but the timed spawn got the lower pid: it applied
    // first.
    assert!(c.0 < b.0, "timed event applies before resolved dependent");
}

#[test]
fn schedule_after_matches_build_time_errors() {
    let mut session = base()
        .spawn("a", SpawnSpec::new("a", Uid(1), burst(30_000_000)))
        .build()
        .unwrap();
    // Unknown dependency: same typed error as at build time.
    let err = session
        .schedule_after(
            "ghost",
            SimDuration::ZERO,
            WorkloadEvent::Spawn {
                tag: "b".into(),
                spec: SpawnSpec::new("b", Uid(1), spin()),
            },
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            SessionError::InvalidDag(DagError::UnknownDependency { .. })
        ),
        "got {err:?}"
    );
    // A feasible live-injected edge fires like a scripted one.
    session
        .schedule_after(
            "a",
            SimDuration::from_millis(50),
            WorkloadEvent::Spawn {
                tag: "b".into(),
                spec: SpawnSpec::new("b", Uid(1), spin()),
            },
        )
        .unwrap();
    session.advance_to(SimTime::from_secs(10)).unwrap();
    let exit = session
        .kernel()
        .exit_record(session.pid("a").unwrap())
        .unwrap()
        .end_time;
    let spawn = session
        .kernel()
        .stat(session.pid("b").unwrap())
        .unwrap()
        .start_time;
    assert_eq!(spawn, exit + SimDuration::from_millis(50));
}

#[test]
fn live_injected_cycle_rejected() {
    // Scripted: 'b' is a timed spawn, 'c' spawns after 'b'. Injecting a
    // *respawn* of 'b' gated on 'c' closes a loop among the spawn-after
    // edges — rejected with the same typed error as at build time.
    let mut session = base()
        .spawn("b", SpawnSpec::new("b", Uid(1), burst(30_000_000)))
        .spawn_after(
            "b",
            SimDuration::ZERO,
            "c",
            SpawnSpec::new("c", Uid(1), spin()),
        )
        .build()
        .unwrap();
    let err = session
        .schedule_after(
            "c",
            SimDuration::ZERO,
            WorkloadEvent::Spawn {
                tag: "b".into(),
                spec: SpawnSpec::new("b", Uid(1), spin()),
            },
        )
        .unwrap_err();
    assert!(
        matches!(err, SessionError::InvalidDag(DagError::Cycle { .. })),
        "got {err:?}"
    );
}
