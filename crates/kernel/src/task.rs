//! Tasks: the kernel's unit of scheduling and counting.
//!
//! Following Linux, a *task* is a single thread of execution; a process is
//! the group of tasks sharing a `tgid`. Performance counters attach to tasks
//! (the paper: "Events can be counted per thread, or per process" — per-
//! process views are produced by the tool aggregating over the thread
//! group).

use tiptop_machine::access::TaskStream;
use tiptop_machine::pmu::EventCounts;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_machine::topology::PuId;

use crate::program::{Program, ProgramCursor};
use crate::sched::CpuSet;

/// Process/task identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// User identifier. Uid 0 is root and may observe anyone.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Uid(pub u32);

impl Uid {
    pub const ROOT: Uid = Uid(0);

    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

/// Scheduler-visible task state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// Wants CPU.
    Runnable,
    /// Blocked until `Task::sleep_until`.
    Sleeping,
    /// Finished; will be reaped at the end of the epoch.
    Zombie,
}

impl TaskState {
    /// One-letter code as shown by `ps`/`top`.
    pub fn code(self) -> char {
        match self {
            TaskState::Runnable => 'R',
            TaskState::Sleeping => 'S',
            TaskState::Zombie => 'Z',
        }
    }
}

/// Everything the kernel knows about one task.
#[derive(Debug)]
pub struct Task {
    pub pid: Pid,
    /// Thread-group id: equals `pid` for a process's main thread.
    pub tgid: Pid,
    pub uid: Uid,
    pub comm: String,
    pub nice: i32,
    pub affinity: CpuSet,
    pub state: TaskState,

    pub program: Program,
    pub cursor: ProgramCursor,
    pub sleep_until: Option<SimTime>,

    /// Address stream state feeding the machine's cache sampler.
    pub stream: TaskStream,
    /// CPI observed in the previous slice (feedback for the machine's
    /// stream-interleaving estimate). 0 until first run.
    pub cpi_hint: f64,

    /// User-mode CPU time consumed.
    pub utime: SimDuration,
    /// Kernel-mode CPU time (small, charged for syscall-heavy work; unused
    /// by the current workloads but reported via /proc).
    pub stime: SimDuration,
    pub start_time: SimTime,
    pub end_time: Option<SimTime>,
    /// PU the task last ran on (reported in /proc, used for cache-warmth
    /// placement).
    pub last_pu: Option<PuId>,
    /// CFS virtual runtime, nanoseconds scaled by weight.
    pub vruntime: f64,

    /// Ground-truth lifetime event totals (what the hardware really did —
    /// the validation experiments compare tiptop's readings against this).
    pub ground_truth: EventCounts,
    pub total_instructions: u64,
}

/// Everything needed to create a task. `Clone` so a grid scheduler can
/// re-submit the same job description elsewhere (cluster migration).
#[derive(Clone, Debug)]
pub struct SpawnSpec {
    pub comm: String,
    pub uid: Uid,
    pub program: Program,
    pub nice: i32,
    pub affinity: CpuSet,
    /// Thread group to join; `None` starts a new process.
    pub tgid: Option<Pid>,
    /// Stream seed; tasks with equal seeds draw identical address sequences.
    pub seed: u64,
}

impl SpawnSpec {
    pub fn new(comm: impl Into<String>, uid: Uid, program: Program) -> Self {
        SpawnSpec {
            comm: comm.into(),
            uid,
            program,
            nice: 0,
            affinity: CpuSet::all(),
            tgid: None,
            seed: 0,
        }
    }

    pub fn nice(mut self, n: i32) -> Self {
        self.nice = n;
        self
    }

    /// Pin to a CPU set (the paper's `taskset` experiments in §3.4).
    pub fn affinity(mut self, set: CpuSet) -> Self {
        self.affinity = set;
        self
    }

    pub fn thread_of(mut self, tgid: Pid) -> Self {
        self.tgid = Some(tgid);
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

impl Task {
    pub fn new(pid: Pid, spec: SpawnSpec, now: SimTime) -> Task {
        Task {
            pid,
            tgid: spec.tgid.unwrap_or(pid),
            uid: spec.uid,
            comm: spec.comm,
            nice: spec.nice,
            affinity: spec.affinity,
            state: TaskState::Runnable,
            program: spec.program,
            cursor: ProgramCursor::default(),
            sleep_until: None,
            stream: TaskStream::new(pid.0 as u64, spec.seed.wrapping_add(pid.0 as u64)),
            cpi_hint: 0.0,
            utime: SimDuration::ZERO,
            stime: SimDuration::ZERO,
            start_time: now,
            end_time: None,
            last_pu: None,
            vruntime: 0.0,
            ground_truth: EventCounts::ZERO,
            total_instructions: 0,
        }
    }

    pub fn is_alive(&self) -> bool {
        self.state != TaskState::Zombie
    }

    /// Total CPU time (user + system).
    pub fn cpu_time(&self) -> SimDuration {
        self.utime + self.stime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Phase;
    use tiptop_machine::exec::ExecProfile;

    #[test]
    fn spawn_spec_builder() {
        let prog = Program::run_once(vec![Phase::compute(ExecProfile::builder("x").build(), 100)]);
        let spec = SpawnSpec::new("worker", Uid(1000), prog)
            .nice(5)
            .affinity(CpuSet::single(PuId(2)))
            .seed(9);
        let t = Task::new(Pid(42), spec, SimTime::from_secs(1));
        assert_eq!(t.tgid, Pid(42), "main thread's tgid is its own pid");
        assert_eq!(t.nice, 5);
        assert!(t.affinity.allows(PuId(2)));
        assert!(!t.affinity.allows(PuId(0)));
        assert_eq!(t.state, TaskState::Runnable);
        assert_eq!(t.start_time, SimTime::from_secs(1));
    }

    #[test]
    fn thread_joins_group() {
        let prog = Program::endless(ExecProfile::builder("t").build());
        let spec = SpawnSpec::new("thr", Uid(1000), prog).thread_of(Pid(10));
        let t = Task::new(Pid(11), spec, SimTime::ZERO);
        assert_eq!(t.tgid, Pid(10));
    }

    #[test]
    fn state_codes() {
        assert_eq!(TaskState::Runnable.code(), 'R');
        assert_eq!(TaskState::Sleeping.code(), 'S');
        assert_eq!(TaskState::Zombie.code(), 'Z');
    }

    #[test]
    fn root_uid() {
        assert!(Uid::ROOT.is_root());
        assert!(!Uid(1000).is_root());
    }
}
