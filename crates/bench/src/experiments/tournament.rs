//! **Tournament** — restart vs resume, ranked: the checkpoint/restore
//! subsystem turned into a 2×2 policy experiment. The cast is the
//! [`grid`]/[`reactive`] node pair, but the burst is finite and user1's
//! migratable job is a *finite batch payload* (`sim-batch`): when a
//! detector watching the endless canary (`sim-fluid`) decides the node is
//! thrashed, the payload is relocated to the spare node either
//! **restart-from-zero** ([`MigrationMode::Restart`]) or
//! **checkpoint/resume** ([`MigrationMode::Resume`]), and the detector is
//! either the [`IpcFloor`] threshold or the [`Cusum`] change-point
//! statistic. Four cells, each reporting the decision instants, the
//! payload's completion wall-clock, the instructions the migration threw
//! away, and the payload's recovered IPC on the spare node.
//!
//! The headline pin: within a detector the trigger instant is identical
//! across modes (the decision is made from the same merged stream), so the
//! wall-clock gap is *pure mode* — and resume, which carries the payload's
//! progress across the hop, completes in strictly less wall-clock than
//! restart, which redoes every retired instruction. Every cell's stream is
//! byte-identical at any worker-thread count.
//!
//! [`grid`]: crate::experiments::grid
//! [`reactive`]: crate::experiments::reactive
//! [`IpcFloor`]: tiptop_core::reactive::IpcFloor
//! [`Cusum`]: tiptop_core::reactive::Cusum
//! [`MigrationMode::Restart`]: tiptop_core::reactive::MigrationMode
//! [`MigrationMode::Resume`]: tiptop_core::reactive::MigrationMode

use tiptop_core::app::{Tiptop, TiptopOptions};
use tiptop_core::cluster::{
    ClusterCollectSink, ClusterFrame, ClusterScenario, ClusterSession, MachineRef,
};
use tiptop_core::config::ScreenConfig;
use tiptop_core::monitor::Monitor;
use tiptop_core::reactive::{AppliedDecision, Cusum, IpcFloor, MigrationMode, SchedulerPolicy};
use tiptop_core::scenario::Scenario;
use tiptop_core::session::cluster_series_for_comm;
use tiptop_kernel::task::{SpawnSpec, Uid};
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::{SimDuration, SimTime};
use tiptop_workloads::datacenter::{tournament_script, users, Job, TournamentScript};

use crate::experiments::default_threads;
use crate::experiments::grid::{SPARE_NODE, VICTIM_NODE};
use crate::report::{Series, TableReport};

/// Tiptop refresh interval (simulated seconds), shared with [`grid`].
///
/// [`grid`]: crate::experiments::grid
pub const DELAY_S: f64 = crate::experiments::grid::DELAY_S;

/// The canary the detectors watch and the payload they relocate (shared
/// with [`policy_lab`](crate::experiments::policy_lab)).
pub const CANARY: &str = "sim-fluid";
pub const PAYLOAD: &str = "sim-batch";

/// The floor guarded on the canary — same level as the `reactive`
/// experiment (healthy ~1.26, dwell ~1.0).
pub const IPC_FLOOR: f64 = 1.15;
/// Refreshes of sustained breach before the floor fires: short, because the
/// tournament measures relocation modes, not detector patience.
pub const FLOOR_PATIENCE_REFRESHES: u64 = 2;

/// CUSUM calibration: the canary's first four samples are cold-start ramp
/// (its warm tier takes ~8 s to settle into the L3) and are skipped, the
/// next three calibrate the healthy plateau (~1.22), and the dwell's
/// ~0.15-per-sample deviation beyond the drift allowance crosses the
/// threshold within a few refreshes while refresh-to-refresh noise never
/// accumulates. The threshold is set a notch above the floor detector's
/// effective patience, so the two families legitimately disagree on the
/// trigger instant (one refresh apart) and the tournament compares modes
/// under each.
pub const CUSUM_SKIP: usize = 4;
pub const CUSUM_WARMUP: usize = 3;
pub const CUSUM_DRIFT: f64 = 0.05;
pub const CUSUM_THRESHOLD: f64 = 0.45;

/// The two detector families the tournament ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Detector {
    IpcFloor,
    Cusum,
}

impl Detector {
    pub fn label(self) -> &'static str {
        match self {
            Detector::IpcFloor => "ipc-floor",
            Detector::Cusum => "cusum",
        }
    }
}

/// One cell of the 2×2: a detector crossed with a migration mode.
pub struct Cell {
    pub detector: Detector,
    pub mode: MigrationMode,
    /// The deciding frame's sim-time (seconds).
    pub trigger: f64,
    /// The epoch boundary the relocation landed at.
    pub applied: f64,
    /// The payload's completion wall-clock (seconds from its t=0 submit to
    /// the final incarnation's exit) — the tournament's ranking metric.
    pub payload_wall: f64,
    /// The final incarnation's retired total: the whole job, in every cell.
    pub payload_total_insns: u64,
    /// Instructions retired on the contended node and then *redone* —
    /// restart's price; zero under resume.
    pub wasted_insns: u64,
    /// The payload's mean IPC on the spare node after the relocation.
    pub recovered_ipc: f64,
    /// The canary's mean IPC over the dwell stretch before the trigger.
    pub canary_dwell_ipc: f64,
    /// Every decision the cell's policy fired (exactly one: the payload).
    pub decisions: Vec<AppliedDecision>,
}

pub struct TournamentResult {
    pub arrival: f64,
    pub dwell: f64,
    /// The payload's full instruction budget, for conservation checks.
    pub payload_insns: u64,
    /// The four cells in (detector, mode) order: floor/restart,
    /// floor/resume, cusum/restart, cusum/resume.
    pub cells: Vec<Cell>,
    pub scale: f64,
}

/// Run the tournament on the default worker pool.
pub fn run(seed: u64, scale: f64) -> TournamentResult {
    run_on(seed, scale, default_threads())
}

/// [`run`] with an explicit worker-thread count; every cell's stream is
/// byte-identical at any count.
pub fn run_on(seed: u64, scale: f64, threads: usize) -> TournamentResult {
    let script = tournament_script(scale);
    let cells = [
        (Detector::IpcFloor, MigrationMode::Restart),
        (Detector::IpcFloor, MigrationMode::Resume),
        (Detector::Cusum, MigrationMode::Restart),
        (Detector::Cusum, MigrationMode::Resume),
    ]
    .into_iter()
    .map(|(detector, mode)| run_cell(seed, &script, threads, detector, mode))
    .collect();
    TournamentResult {
        arrival: script.arrival.as_secs_f64(),
        dwell: script.dwell.as_secs_f64(),
        payload_insns: script.payload_insns,
        cells,
        scale,
    }
}

/// One cell's stream rendered to bytes — the determinism artifact the
/// regression test compares across worker-thread counts.
pub fn run_cell_stream(
    seed: u64,
    scale: f64,
    threads: usize,
    detector: Detector,
    mode: MigrationMode,
) -> String {
    let script = tournament_script(scale);
    let (merged, decisions, _session) = run_cell_raw(seed, &script, threads, detector, mode);
    render_stream(&merged, &decisions)
}

pub(crate) fn render_stream(merged: &[ClusterFrame], decisions: &[AppliedDecision]) -> String {
    let mut out: String = merged
        .iter()
        .map(|cf| {
            format!(
                "[{} #{} {}]\n{}",
                cf.machine,
                cf.seq,
                cf.source,
                cf.frame.render()
            )
        })
        .collect::<Vec<_>>()
        .join("\n");
    for d in decisions {
        out.push_str(&format!(
            "\n[decision {} {} '{}' {}->{} decided {:.3} applied {:.3}]",
            d.policy,
            d.mode.label(),
            d.tag,
            d.from,
            d.to,
            d.decided_at.as_secs_f64(),
            d.applied_at.as_secs_f64(),
        ));
    }
    out
}

/// The two-node cast: the contended node carries the canary, the payload
/// and the burst; the spare sits idle until the relocation. Shared with
/// [`policy_lab`](crate::experiments::policy_lab), which adds a third node.
pub(crate) fn nodes(seed: u64, script: &TournamentScript) -> (Scenario, Scenario) {
    let machine = || {
        MachineConfig::datacenter_e5640()
            .noiseless()
            .with_samples(4096)
    };
    let node = |seed: u64| {
        let mut sc = Scenario::new(machine()).seed(seed);
        for (uid, name) in users() {
            sc = sc.user(uid, name);
        }
        sc
    };
    let spawn = |mut sc: Scenario, job: &Job| {
        sc = sc.spawn_at(
            SimTime::ZERO + job.start,
            job.comm.clone(),
            SpawnSpec::new(job.comm.clone(), job.uid, job.program.clone()).seed(job.seed),
        );
        sc
    };
    let mut victim_node = node(seed);
    victim_node = spawn(victim_node, &script.canary);
    victim_node = spawn(victim_node, &script.payload);
    for job in &script.aggressors {
        victim_node = spawn(victim_node, job);
    }
    (victim_node, node(seed + 1))
}

fn policy_for(detector: Detector, mode: MigrationMode) -> Box<dyn SchedulerPolicy> {
    let delay = SimDuration::from_secs_f64(DELAY_S);
    match detector {
        Detector::IpcFloor => Box::new(
            IpcFloor::new(
                VICTIM_NODE,
                CANARY,
                IPC_FLOOR,
                delay * FLOOR_PATIENCE_REFRESHES,
                SPARE_NODE,
            )
            .source("tiptop")
            .mode(mode)
            .evicting(|row| row.comm == PAYLOAD),
        ),
        Detector::Cusum => Box::new(
            Cusum::new(
                VICTIM_NODE,
                CANARY,
                CUSUM_WARMUP,
                CUSUM_DRIFT,
                CUSUM_THRESHOLD,
                SPARE_NODE,
            )
            .skip(CUSUM_SKIP)
            .source("tiptop")
            .mode(mode)
            .evicting(|row| row.comm == PAYLOAD),
        ),
    }
}

/// Build one cell's cluster, install its policy, and run it to the shared
/// horizon — the slowest cell is restart under the laziest detector
/// (trigger plus the payload's whole budget redone from zero), so every
/// cell observes the same refresh count.
fn run_cell_raw(
    seed: u64,
    script: &TournamentScript,
    threads: usize,
    detector: Detector,
    mode: MigrationMode,
) -> (Vec<ClusterFrame>, Vec<AppliedDecision>, ClusterSession) {
    let (victim_node, spare_node) = nodes(seed, script);
    let mut session = ClusterScenario::new()
        .machine(VICTIM_NODE, victim_node)
        .machine(SPARE_NODE, spare_node)
        .build()
        .expect("no scripted migrations to validate");
    let mut policies = vec![policy_for(detector, mode)];

    let horizon = script.arrival.as_secs_f64() + 2.1 * script.dwell.as_secs_f64();
    let refreshes = (horizon / DELAY_S).ceil() as usize;
    let delay = SimDuration::from_secs_f64(DELAY_S);
    let monitors = move |_m: MachineRef<'_>| -> Vec<Box<dyn Monitor + Send>> {
        vec![Box::new(Tiptop::new(
            TiptopOptions::default().observer(Uid::ROOT).delay(delay),
            ScreenConfig::default_screen(),
        ))]
    };
    let mut sink = ClusterCollectSink::new();
    let decisions = session
        .run_reactive(threads, refreshes, monitors, &mut policies, &mut sink)
        .expect("tournament cell run");
    (sink.into_frames(), decisions, session)
}

fn run_cell(
    seed: u64,
    script: &TournamentScript,
    threads: usize,
    detector: Detector,
    mode: MigrationMode,
) -> Cell {
    let (merged, decisions, session) = run_cell_raw(seed, script, threads, detector, mode);
    let d = decisions.first().expect("the detector fired");
    let trigger = d.decided_at.as_secs_f64();
    let applied = d.applied_at.as_secs_f64();

    let victim_shard = session.session(VICTIM_NODE).expect("shard survived");
    let spare_shard = session.session(SPARE_NODE).expect("shard survived");
    let cut = victim_shard
        .kernel()
        .exit_record(
            victim_shard
                .pid(PAYLOAD)
                .expect("spawned on the victim node"),
        )
        .expect("relocated off the node");
    let done = spare_shard
        .kernel()
        .exit_record(spare_shard.pid(PAYLOAD).expect("landed on the spare node"))
        .expect("finished within the horizon");
    let payload_wall = done.end_time.as_secs_f64();
    let payload_total_insns = done.total_instructions;
    // Restart throws away everything the contended node had retired;
    // resume carries it across the hop.
    let wasted_insns = match mode {
        MigrationMode::Restart => cut.total_instructions,
        MigrationMode::Resume => 0,
    };

    let recovered = Series::new(
        format!("{PAYLOAD} IPC (spare)"),
        cluster_series_for_comm(&merged, SPARE_NODE, Some("tiptop"), PAYLOAD, "IPC"),
    );
    let recovered_ipc = recovered.mean_in(applied, payload_wall + DELAY_S);
    let canary = Series::new(
        format!("{CANARY} IPC"),
        cluster_series_for_comm(&merged, VICTIM_NODE, Some("tiptop"), CANARY, "IPC"),
    );
    let canary_dwell_ipc = canary.mean_in(trigger - 3.0 * DELAY_S, trigger + 1e-9);

    Cell {
        detector,
        mode,
        trigger,
        applied,
        payload_wall,
        payload_total_insns,
        wasted_insns,
        recovered_ipc,
        canary_dwell_ipc,
        decisions,
    }
}

impl TournamentResult {
    /// The cell for one (detector, mode) pair.
    pub fn cell(&self, detector: Detector, mode: MigrationMode) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.detector == detector && c.mode == mode)
            .expect("all four cells ran")
    }

    /// Resume's wall-clock saving over restart under one detector
    /// (seconds; positive when resume wins).
    pub fn saving(&self, detector: Detector) -> f64 {
        self.cell(detector, MigrationMode::Restart).payload_wall
            - self.cell(detector, MigrationMode::Resume).payload_wall
    }

    pub fn report(&self) -> String {
        let mut t = TableReport::new(
            format!(
                "restart-vs-resume tournament (burst t={:.0}s, payload {:.1} Ginsns; \
                 wall-clock = payload completion)",
                self.arrival,
                self.payload_insns as f64 / 1e9,
            ),
            &[
                "detector",
                "mode",
                "trigger (s)",
                "applied (s)",
                "wall (s)",
                "wasted (Ginsns)",
                "IPC on spare",
            ],
        );
        for c in &self.cells {
            t.row(vec![
                c.detector.label().to_string(),
                c.mode.label().to_string(),
                format!("{:.1}", c.trigger),
                format!("{:.3}", c.applied),
                format!("{:.2}", c.payload_wall),
                format!("{:.2}", c.wasted_insns as f64 / 1e9),
                format!("{:.2}", c.recovered_ipc),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "resume saves {:.2}s under ipc-floor, {:.2}s under cusum\n",
            self.saving(Detector::IpcFloor),
            self.saving(Detector::Cusum),
        ));
        out
    }
}
