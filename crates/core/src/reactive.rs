//! Reactive fleet scheduling: policies that watch the merged cluster
//! stream and issue migrations **live**.
//!
//! The paper's thesis is that live performance monitoring should *inform
//! decisions*. The scripted
//! [`ClusterScenario::migrate_at`](crate::cluster::ClusterScenario::migrate_at)
//! replays a grid scheduler's decision; this module lets the decision be
//! *made* during the run: a [`SchedulerPolicy`] observes every frame of the
//! merged stream (the same frames the sink sees) and returns
//! [`MigrationDecision`]s, which
//! [`ClusterSession::run_reactive`](crate::cluster::ClusterSession::run_reactive)
//! validates at run time and injects into the affected machines' event
//! queues at the next scheduler-epoch boundary after the deciding frame.
//! Decisions are keyed to sim-time, so a reactive run is byte-identical at
//! any worker-thread count.
//!
//! Three built-in policies cover the classic detector families:
//!
//! * [`IpcFloor`] — threshold detection on a monitored IPC series (the
//!   simplest online change-point detector): when a watched job's IPC stays
//!   below a floor for a sustained breach window, every co-running job
//!   matching an eviction rule is migrated to a relief machine.
//! * [`Cusum`] — a one-sided CUSUM change-point detector: it calibrates a
//!   reference IPC over a warmup window, then accumulates downward
//!   deviations beyond a drift allowance and fires when the cumulative sum
//!   crosses a decision threshold.
//! * [`Population`] — a population-based change-point detector in the
//!   spirit of Prates et al.: the warmup samples form a reference
//!   *population* (mean and spread), and a change-point is declared once a
//!   confirmation run of samples falls outside the population's tolerance
//!   band.
//!
//! Either policy can issue its migrations in [`MigrationMode::Restart`]
//! (the destination re-runs the job from instruction zero) or
//! [`MigrationMode::Resume`] (the source checkpoints at kill time and the
//! destination continues mid-program; see
//! [`Kernel::checkpoint`](tiptop_kernel::kernel::Kernel::checkpoint)).
//!
//! Detectors answer *when* to migrate; **placement** answers *where to*.
//! The built-in detectors name a fixed relief machine, while
//! [`LeastLoaded`] tracks live per-machine load off the same merged stream
//! and [`Balanced`] composes the two — any detector's eviction decisions,
//! re-routed at fire time to the machine the fleet currently loads least.

use std::collections::{BTreeMap, HashSet};

use tiptop_machine::time::{SimDuration, SimTime};

use crate::cluster::ClusterFrame;
use crate::render::Row;

/// How a migration moves a job's work to the destination machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MigrationMode {
    /// Kill on the source, re-spawn from the original spec on the
    /// destination: the job starts over from instruction zero (the only
    /// behaviour before the checkpoint/restore subsystem existed).
    #[default]
    Restart,
    /// Checkpoint at kill time and resume mid-program on the destination:
    /// the new incarnation continues from the captured program cursor with
    /// its accumulated counters and address-stream state intact.
    Resume,
}

impl MigrationMode {
    /// Lower-case label used in rendered decision/handover lines.
    pub fn label(self) -> &'static str {
        match self {
            MigrationMode::Restart => "restart",
            MigrationMode::Resume => "resume",
        }
    }
}

/// One live scheduling decision: move the job tagged `tag` from machine
/// `from` to machine `to`, restarting or resuming it per `mode`. The
/// run-time counterpart of
/// [`ClusterScenario::migrate_at`](crate::cluster::ClusterScenario::migrate_at);
/// the driver validates it against the live sessions (typed
/// [`SessionError::InvalidDecision`](crate::scenario::SessionError) on an
/// infeasible request) and applies it at the next epoch boundary.
///
/// By the convention every workload script in this repository follows, a
/// job's scenario *tag* equals its command name — which is what a policy
/// reads off a frame row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationDecision {
    pub tag: String,
    pub from: String,
    pub to: String,
    pub mode: MigrationMode,
}

/// A decision that was validated and injected during a reactive run:
/// what moved, who decided, and the two instants that matter — the merged
/// frame that triggered it and the epoch boundary where it applied.
#[derive(Clone, Debug)]
pub struct AppliedDecision {
    /// [`SchedulerPolicy::name`] of the deciding policy.
    pub policy: String,
    pub tag: String,
    pub from: String,
    pub to: String,
    pub mode: MigrationMode,
    /// Sim-time of the frame the policy fired on.
    pub decided_at: SimTime,
    /// The next epoch boundary after `decided_at`: where the kill lands on
    /// the source and the spawn on the destination (same instant on both).
    pub applied_at: SimTime,
}

/// A scheduler that closes the monitor→migration loop: it observes the
/// merged cluster stream frame by frame — in merge order, exactly as a
/// [`ClusterFrameSink`](crate::cluster::ClusterFrameSink) would — and
/// returns migration decisions.
///
/// Policies run on the driving thread between observation rounds, so they
/// need no `Send`; their state may be arbitrary, but `observe` must be a
/// deterministic function of the frames seen so far — that is what keeps
/// reactive runs byte-identical at any worker-thread count.
pub trait SchedulerPolicy {
    /// Short identifier, used to label applied decisions and errors.
    fn name(&self) -> &str;

    /// Observe one frame of the merged stream; return any migrations this
    /// frame triggers (usually none).
    fn observe(&mut self, frame: &ClusterFrame) -> Vec<MigrationDecision>;
}

/// A custom eviction rule over a triggering frame's rows.
type EvictRule = Box<dyn FnMut(&Row) -> bool>;

/// Threshold detection on a monitored IPC series: watch one job (`comm`)
/// on one machine; once its IPC has been seen healthy (at or above
/// `threshold`) and then stays below the floor for a sustained breach of
/// at least `cooldown`, evict co-running jobs to the relief machine `to`.
///
/// * **Arming** — the policy only reacts to a *drop*: it must first see
///   the watched IPC at or above the floor (so a cold-start ramp below the
///   floor never fires it).
/// * **`cooldown`** — the breach must persist this long before the policy
///   pays a migration: a debounce against transient dips, and, because the
///   breach clock resets on firing, a refire throttle too. Zero means
///   "fire on the first breached frame".
/// * **Eviction rule** — which rows of the triggering frame to move. The
///   default evicts every job owned by a different **non-root** user than
///   the watched victim (the grid-scheduler story: protect the interactive
///   user, move the batch arrivals — root-owned rows are monitoring/system
///   plumbing such as tiptop's own modelled self-load task, not grid
///   jobs); [`IpcFloor::evicting`] installs a custom rule. Each tag is
///   evicted at most once.
pub struct IpcFloor {
    machine: String,
    comm: String,
    threshold: f64,
    cooldown: SimDuration,
    to: String,
    mode: MigrationMode,
    /// Only frames of this monitor are considered (`None`: any frame whose
    /// watched row carries a finite IPC).
    source: Option<String>,
    evict: Option<EvictRule>,
    armed: bool,
    breach_since: Option<SimTime>,
    moved: HashSet<String>,
}

impl IpcFloor {
    pub fn new(
        machine: impl Into<String>,
        comm: impl Into<String>,
        threshold: f64,
        cooldown: SimDuration,
        to: impl Into<String>,
    ) -> Self {
        IpcFloor {
            machine: machine.into(),
            comm: comm.into(),
            threshold,
            cooldown,
            to: to.into(),
            mode: MigrationMode::Restart,
            source: None,
            evict: None,
            armed: false,
            breach_since: None,
            moved: HashSet::new(),
        }
    }

    /// Restrict the watched frames to one monitor's (e.g. `"tiptop"` when
    /// a `top` runs alongside it on the same machine).
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Issue migrations in this mode (default [`MigrationMode::Restart`]).
    pub fn mode(mut self, mode: MigrationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Install a custom eviction rule over the triggering frame's rows
    /// (the watched victim itself is never evicted).
    pub fn evicting(mut self, rule: impl FnMut(&Row) -> bool + 'static) -> Self {
        self.evict = Some(Box::new(rule));
        self
    }
}

/// Shared firing logic: evict the triggering frame's co-runners matching
/// the rule (default: jobs of a different non-root user than the victim),
/// each tag at most once across the policy's lifetime.
#[allow(clippy::too_many_arguments)]
fn evict_corunners(
    cf: &ClusterFrame,
    victim: &Row,
    machine: &str,
    to: &str,
    mode: MigrationMode,
    evict: &mut Option<EvictRule>,
    moved: &mut HashSet<String>,
) -> Vec<MigrationDecision> {
    let victim_pid = victim.pid;
    let victim_user = victim.user.clone();
    let mut out = Vec::new();
    for row in &cf.frame.rows {
        if row.pid == victim_pid {
            continue;
        }
        let hit = match evict {
            Some(rule) => rule(row),
            None => row.user != victim_user && row.user != "root",
        };
        if hit && moved.insert(row.comm.clone()) {
            out.push(MigrationDecision {
                tag: row.comm.clone(),
                from: machine.to_string(),
                to: to.to_string(),
                mode,
            });
        }
    }
    out
}

impl SchedulerPolicy for IpcFloor {
    fn name(&self) -> &str {
        "ipc-floor"
    }

    fn observe(&mut self, cf: &ClusterFrame) -> Vec<MigrationDecision> {
        if cf.machine != self.machine || self.source.as_ref().is_some_and(|s| *s != cf.source) {
            return Vec::new();
        }
        let Some(victim) = cf.frame.row_for_comm(&self.comm) else {
            return Vec::new();
        };
        let Some(ipc) = victim.value("IPC").filter(|v| v.is_finite()) else {
            return Vec::new();
        };
        if ipc >= self.threshold {
            self.armed = true;
            self.breach_since = None;
            return Vec::new();
        }
        if !self.armed {
            return Vec::new();
        }
        let t = cf.frame.time;
        let since = *self.breach_since.get_or_insert(t);
        if t - since < self.cooldown {
            return Vec::new();
        }
        // Fire: evict matching co-runners (each tag at most once) and reset
        // the breach clock so a continued breach must re-accumulate a full
        // cooldown before firing again.
        self.breach_since = None;
        evict_corunners(
            cf,
            victim,
            &self.machine,
            &self.to,
            self.mode,
            &mut self.evict,
            &mut self.moved,
        )
    }
}

/// One-sided CUSUM change-point detection on a monitored IPC series: the
/// classic sequential detector for a *sustained downward shift* in a noisy
/// signal, dropped in beside [`IpcFloor`] so the `tournament` experiment
/// can rank the two families.
///
/// The first `warmup` watched samples calibrate a reference level `μ` (their
/// mean) without detecting anything — optionally after [`Cusum::skip`]ping
/// some leading samples, so a monitor's cold-start ramp doesn't depress the
/// calibrated baseline. After warmup the policy accumulates downward
/// deviations beyond a drift allowance,
///
/// ```text
/// S ← max(0, S + (μ − ipc − drift))
/// ```
///
/// and fires when `S > threshold`, evicting co-running jobs matching the
/// eviction rule (same defaults as [`IpcFloor`]) to the relief machine.
/// Firing resets `S` to zero, so a persisting shift must re-accumulate the
/// full threshold before firing again. Unlike a fixed floor, CUSUM needs no
/// absolute "healthy" level up front — it reacts to a shift *relative to
/// the job's own calibrated baseline*, and small dips below `μ − drift` are
/// integrated over time instead of being ignored until a hard floor breaks.
pub struct Cusum {
    machine: String,
    comm: String,
    skip: usize,
    warmup: usize,
    drift: f64,
    threshold: f64,
    to: String,
    mode: MigrationMode,
    source: Option<String>,
    evict: Option<EvictRule>,
    seen: usize,
    ref_sum: f64,
    s: f64,
    moved: HashSet<String>,
}

impl Cusum {
    /// Watch `comm` on `machine`; calibrate over `warmup` samples, then
    /// fire once the cumulative downward deviation (with `drift` slack per
    /// sample) exceeds `threshold`, relieving onto `to`.
    pub fn new(
        machine: impl Into<String>,
        comm: impl Into<String>,
        warmup: usize,
        drift: f64,
        threshold: f64,
        to: impl Into<String>,
    ) -> Self {
        assert!(warmup > 0, "CUSUM needs at least one calibration sample");
        Cusum {
            machine: machine.into(),
            comm: comm.into(),
            skip: 0,
            warmup,
            drift,
            threshold,
            to: to.into(),
            mode: MigrationMode::Restart,
            source: None,
            evict: None,
            seen: 0,
            ref_sum: 0.0,
            s: 0.0,
            moved: HashSet::new(),
        }
    }

    /// Restrict the watched frames to one monitor's.
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Ignore the first `n` watched samples entirely — they neither
    /// calibrate nor accumulate. A monitor observing a freshly-spawned job
    /// reports a few ramping samples while caches and tiers warm; including
    /// them in the calibration mean would depress `μ` below the true
    /// healthy level and blind the detector to a later downward shift.
    pub fn skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Issue migrations in this mode (default [`MigrationMode::Restart`]).
    pub fn mode(mut self, mode: MigrationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Install a custom eviction rule over the triggering frame's rows
    /// (the watched victim itself is never evicted).
    pub fn evicting(mut self, rule: impl FnMut(&Row) -> bool + 'static) -> Self {
        self.evict = Some(Box::new(rule));
        self
    }

    /// The cumulative sum's current value (test/diagnostic introspection).
    pub fn statistic(&self) -> f64 {
        self.s
    }
}

impl SchedulerPolicy for Cusum {
    fn name(&self) -> &str {
        "cusum"
    }

    fn observe(&mut self, cf: &ClusterFrame) -> Vec<MigrationDecision> {
        if cf.machine != self.machine || self.source.as_ref().is_some_and(|s| *s != cf.source) {
            return Vec::new();
        }
        let Some(victim) = cf.frame.row_for_comm(&self.comm) else {
            return Vec::new();
        };
        let Some(ipc) = victim.value("IPC").filter(|v| v.is_finite()) else {
            return Vec::new();
        };
        if self.skip > 0 {
            self.skip -= 1;
            return Vec::new();
        }
        if self.seen < self.warmup {
            self.seen += 1;
            self.ref_sum += ipc;
            return Vec::new();
        }
        let reference = self.ref_sum / self.warmup as f64;
        self.s = (self.s + (reference - ipc - self.drift)).max(0.0);
        if self.s <= self.threshold {
            return Vec::new();
        }
        self.s = 0.0;
        evict_corunners(
            cf,
            victim,
            &self.machine,
            &self.to,
            self.mode,
            &mut self.evict,
            &mut self.moved,
        )
    }
}

/// Population-based change-point detection on a monitored IPC series
/// (after Prates et al.): rather than a fixed floor or an accumulated sum,
/// the detector builds a reference *population* from the first `warmup`
/// watched samples — mean `μ` and population standard deviation `σ` — and
/// declares a change-point when `confirm` consecutive samples fall below
/// the tolerance band `μ − sigmas·σ`.
///
/// * **Calibration** — optionally [`Population::skip`] the cold-start ramp,
///   then the next `warmup` samples form the population; nothing fires
///   while calibrating. The band adapts to the job's own noise level: a
///   jittery signal widens `σ` and keeps ordinary wobble inside the band.
/// * **Confirmation run** — one outlier is not a change-point; a sample
///   back inside the band resets the run. Only `confirm` consecutive
///   out-of-population samples fire the eviction (the population analogue
///   of [`IpcFloor`]'s cooldown).
/// * Firing evicts co-runners exactly as the other detectors do (same
///   default rule, same at-most-once dedupe) and resets the run, so a
///   persisting shift must re-confirm before firing again.
pub struct Population {
    machine: String,
    comm: String,
    skip: usize,
    warmup: usize,
    sigmas: f64,
    confirm: usize,
    to: String,
    mode: MigrationMode,
    source: Option<String>,
    evict: Option<EvictRule>,
    samples: Vec<f64>,
    run: usize,
    moved: HashSet<String>,
}

impl Population {
    /// Watch `comm` on `machine`; calibrate a population over `warmup`
    /// samples, then fire after `confirm` consecutive samples below
    /// `μ − sigmas·σ`, relieving onto `to`.
    pub fn new(
        machine: impl Into<String>,
        comm: impl Into<String>,
        warmup: usize,
        sigmas: f64,
        confirm: usize,
        to: impl Into<String>,
    ) -> Self {
        assert!(
            warmup > 0,
            "population needs at least one calibration sample"
        );
        assert!(confirm > 0, "confirmation run must be at least one sample");
        Population {
            machine: machine.into(),
            comm: comm.into(),
            skip: 0,
            warmup,
            sigmas,
            confirm,
            to: to.into(),
            mode: MigrationMode::Restart,
            source: None,
            evict: None,
            samples: Vec::new(),
            run: 0,
            moved: HashSet::new(),
        }
    }

    /// Restrict the watched frames to one monitor's.
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Ignore the first `n` watched samples entirely (cold-start ramp; see
    /// [`Cusum::skip`]).
    pub fn skip(mut self, n: usize) -> Self {
        self.skip = n;
        self
    }

    /// Issue migrations in this mode (default [`MigrationMode::Restart`]).
    pub fn mode(mut self, mode: MigrationMode) -> Self {
        self.mode = mode;
        self
    }

    /// Install a custom eviction rule over the triggering frame's rows
    /// (the watched victim itself is never evicted).
    pub fn evicting(mut self, rule: impl FnMut(&Row) -> bool + 'static) -> Self {
        self.evict = Some(Box::new(rule));
        self
    }

    /// The calibrated `(μ, σ)` of the reference population, once `warmup`
    /// samples are in (test/diagnostic introspection).
    pub fn reference(&self) -> Option<(f64, f64)> {
        (self.samples.len() >= self.warmup).then(|| {
            let n = self.samples.len() as f64;
            let mean = self.samples.iter().sum::<f64>() / n;
            let var = self.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
            (mean, var.sqrt())
        })
    }

    /// Length of the current out-of-population confirmation run.
    pub fn breach_run(&self) -> usize {
        self.run
    }
}

impl SchedulerPolicy for Population {
    fn name(&self) -> &str {
        "population"
    }

    fn observe(&mut self, cf: &ClusterFrame) -> Vec<MigrationDecision> {
        if cf.machine != self.machine || self.source.as_ref().is_some_and(|s| *s != cf.source) {
            return Vec::new();
        }
        let Some(victim) = cf.frame.row_for_comm(&self.comm) else {
            return Vec::new();
        };
        let Some(ipc) = victim.value("IPC").filter(|v| v.is_finite()) else {
            return Vec::new();
        };
        if self.skip > 0 {
            self.skip -= 1;
            return Vec::new();
        }
        if self.samples.len() < self.warmup {
            self.samples.push(ipc);
            return Vec::new();
        }
        let (mean, sd) = self.reference().expect("population is calibrated");
        if ipc >= mean - self.sigmas * sd {
            self.run = 0;
            return Vec::new();
        }
        self.run += 1;
        if self.run < self.confirm {
            return Vec::new();
        }
        self.run = 0;
        evict_corunners(
            cf,
            victim,
            &self.machine,
            &self.to,
            self.mode,
            &mut self.evict,
            &mut self.moved,
        )
    }
}

/// Live fleet-load tracker and placement rule: remembers, per machine, the
/// load reported by that machine's latest frame (the summed `%CPU` of its
/// non-root rows) and picks the least-loaded machine as a migration
/// destination. Ties break on the *machine index* — the declaration order
/// of [`ClusterScenario::machine`](crate::cluster::ClusterScenario) — so
/// the choice is stable across runs and worker-thread counts.
#[derive(Default)]
pub struct LeastLoaded {
    source: Option<String>,
    /// machine name → (declaration index, latest load).
    loads: BTreeMap<String, (usize, f64)>,
}

impl LeastLoaded {
    pub fn new() -> Self {
        Self::default()
    }

    /// Only count frames of this monitor toward load (e.g. `"tiptop"` when
    /// a `top` runs alongside it).
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Fold one frame of the merged stream into the per-machine loads.
    pub fn observe(&mut self, cf: &ClusterFrame) {
        if self.source.as_ref().is_some_and(|s| *s != cf.source) {
            return;
        }
        let load: f64 = cf
            .frame
            .rows
            .iter()
            .filter(|r| r.user != "root")
            .map(|r| r.cpu_pct)
            .sum();
        self.loads
            .insert(cf.machine.to_string(), (cf.machine_index, load));
    }

    /// The latest observed load of `machine`, if any frame arrived yet.
    pub fn load_of(&self, machine: &str) -> Option<f64> {
        self.loads.get(machine).map(|(_, load)| *load)
    }

    /// The least-loaded machine other than `exclude` (typically the
    /// migration source); `None` until some other machine has reported.
    /// Ties break on the lowest machine index.
    pub fn pick(&self, exclude: &str) -> Option<String> {
        self.loads
            .iter()
            .filter(|(name, _)| name.as_str() != exclude)
            .min_by(|(_, (ia, la)), (_, (ib, lb))| la.partial_cmp(lb).unwrap().then(ia.cmp(ib)))
            .map(|(name, _)| name.clone())
    }
}

/// Detector × placement composition: wraps any [`SchedulerPolicy`] and
/// re-routes each decision's destination to the machine [`LeastLoaded`]
/// currently ranks lowest, instead of the detector's fixed relief machine.
/// The inner detector still decides *when* and *what* to evict; the
/// placement rule decides *where to*, from fleet state as of the deciding
/// frame.
pub struct Balanced {
    inner: Box<dyn SchedulerPolicy>,
    placement: LeastLoaded,
    name: String,
}

impl Balanced {
    pub fn new(inner: impl SchedulerPolicy + 'static) -> Self {
        let name = format!("{}+least-loaded", inner.name());
        Balanced {
            inner: Box::new(inner),
            placement: LeastLoaded::new(),
            name,
        }
    }

    /// Only count frames of this monitor toward load (the inner detector
    /// keeps its own source filter).
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.placement = self.placement.source(source);
        self
    }
}

impl SchedulerPolicy for Balanced {
    fn name(&self) -> &str {
        &self.name
    }

    fn observe(&mut self, cf: &ClusterFrame) -> Vec<MigrationDecision> {
        // Fold the frame into the load picture first, so a decision fired
        // on this very frame already sees it.
        self.placement.observe(cf);
        let mut decisions = self.inner.observe(cf);
        for d in &mut decisions {
            if let Some(to) = self.placement.pick(&d.from) {
                d.to = to;
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::Frame;
    use tiptop_kernel::task::Pid;

    fn frame_at(t: u64, rows: Vec<(&str, &str, f64)>) -> ClusterFrame {
        let rows = rows
            .into_iter()
            .enumerate()
            .map(|(i, (comm, user, ipc))| {
                Row::new(
                    Pid(100 + i as u32),
                    user,
                    comm,
                    100.0,
                    Vec::new(),
                    crate::render::values_of([("IPC", ipc)]),
                )
            })
            .collect();
        ClusterFrame {
            machine: "node".into(),
            machine_index: 0,
            source: "tiptop".into(),
            seq: t as usize,
            frame: Frame {
                time: SimTime::from_secs(t),
                headers: Vec::new().into(),
                rows,
                unobservable: 0,
            },
        }
    }

    #[test]
    fn fires_only_after_arming_and_a_sustained_breach() {
        let mut p = IpcFloor::new("node", "victim", 1.0, SimDuration::from_secs(2), "spare");
        // Cold start below the floor: not armed, never fires.
        assert!(p
            .observe(&frame_at(1, vec![("victim", "u1", 0.5)]))
            .is_empty());
        // Healthy sample arms it.
        assert!(p
            .observe(&frame_at(2, vec![("victim", "u1", 1.4)]))
            .is_empty());
        // Breach starts at t=3; cooldown 2 s means t=5 is the first firing
        // instant — and a recovery in between resets the clock.
        assert!(p
            .observe(&frame_at(
                3,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        assert!(p
            .observe(&frame_at(
                4,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        let fired = p.observe(&frame_at(
            5,
            vec![
                ("victim", "u1", 0.8),
                ("batch", "u2", 1.2),
                ("peer", "u1", 1.0),
            ],
        ));
        // Default rule: evict other users' jobs, never the victim's user's.
        assert_eq!(
            fired,
            vec![MigrationDecision {
                tag: "batch".to_string(),
                from: "node".to_string(),
                to: "spare".to_string(),
                mode: MigrationMode::Restart,
            }]
        );
        // A continued breach must re-accumulate the cooldown, and an
        // already-moved tag is never re-evicted.
        assert!(p
            .observe(&frame_at(
                6,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        assert!(p
            .observe(&frame_at(
                8,
                vec![("victim", "u1", 0.8), ("batch", "u2", 1.2)]
            ))
            .is_empty());
    }

    #[test]
    fn custom_eviction_rule_and_source_filter() {
        let mut p = IpcFloor::new("node", "victim", 1.0, SimDuration::ZERO, "spare")
            .source("tiptop")
            .evicting(|row: &Row| row.comm.starts_with("batch"));
        let mut other = frame_at(1, vec![("victim", "u1", 1.4)]);
        other.source = "top".into();
        assert!(p.observe(&other).is_empty(), "wrong monitor is ignored");
        assert!(p
            .observe(&frame_at(1, vec![("victim", "u1", 1.4)]))
            .is_empty());
        let fired = p.observe(&frame_at(
            2,
            vec![
                ("victim", "u1", 0.5),
                ("batch0", "u1", 1.0),
                ("other", "u2", 1.0),
            ],
        ));
        assert_eq!(fired.len(), 1, "only the rule's matches are evicted");
        assert_eq!(fired[0].tag, "batch0");
    }

    #[test]
    fn cusum_calibrates_then_fires_on_a_sustained_shift() {
        // Warmup 3 samples at IPC ≈ 1.4 → reference 1.4. Drift 0.1,
        // threshold 0.5: a drop to 1.0 deviates 0.4−0.1=0.3 per sample, so
        // the second breached sample (S=0.6) crosses the threshold.
        let mut p = Cusum::new("node", "victim", 3, 0.1, 0.5, "spare").mode(MigrationMode::Resume);
        for t in 1..=3 {
            assert!(p
                .observe(&frame_at(t, vec![("victim", "u1", 1.4)]))
                .is_empty());
        }
        // Small wobble within the drift allowance never accumulates.
        assert!(p
            .observe(&frame_at(4, vec![("victim", "u1", 1.35)]))
            .is_empty());
        assert_eq!(p.statistic(), 0.0, "wobble inside drift clamps to zero");
        assert!(p
            .observe(&frame_at(
                5,
                vec![("victim", "u1", 1.0), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        let fired = p.observe(&frame_at(
            6,
            vec![("victim", "u1", 1.0), ("batch", "u2", 1.2)],
        ));
        assert_eq!(
            fired,
            vec![MigrationDecision {
                tag: "batch".to_string(),
                from: "node".to_string(),
                to: "spare".to_string(),
                mode: MigrationMode::Resume,
            }]
        );
        assert_eq!(p.statistic(), 0.0, "firing resets the statistic");
        // The shift must re-accumulate before firing again, and the moved
        // tag is never re-evicted.
        assert!(p
            .observe(&frame_at(
                7,
                vec![("victim", "u1", 1.0), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        assert!(p
            .observe(&frame_at(
                8,
                vec![("victim", "u1", 1.0), ("batch", "u2", 1.2)]
            ))
            .is_empty());
    }

    #[test]
    fn cusum_skip_discards_the_cold_start_ramp_from_calibration() {
        // Without skip, the ramp samples (0.6, 0.9) would drag the
        // reference mean to ~1.0 and a later dwell at 1.1 would never
        // accumulate. Skipping them calibrates on the plateau (1.4).
        let mut p = Cusum::new("node", "victim", 2, 0.05, 0.4, "spare").skip(2);
        for (t, ipc) in [(1, 0.6), (2, 0.9), (3, 1.4), (4, 1.4)] {
            assert!(p
                .observe(&frame_at(t, vec![("victim", "u1", ipc)]))
                .is_empty());
        }
        assert_eq!(p.statistic(), 0.0, "ramp and warmup never accumulate");
        // Shift to 1.1: deviation 0.3−0.05=0.25 per sample; the second
        // breached sample (S=0.5) crosses the 0.4 threshold.
        assert!(p
            .observe(&frame_at(
                5,
                vec![("victim", "u1", 1.1), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        let fired = p.observe(&frame_at(
            6,
            vec![("victim", "u1", 1.1), ("batch", "u2", 1.2)],
        ));
        assert_eq!(fired.len(), 1, "calibrated on the plateau, not the ramp");
        assert_eq!(fired[0].tag, "batch");
    }

    #[test]
    fn cusum_ignores_other_machines_and_unwatched_frames() {
        let mut p = Cusum::new("node", "victim", 1, 0.0, 0.1, "spare").source("tiptop");
        let mut elsewhere = frame_at(1, vec![("victim", "u1", 1.4)]);
        elsewhere.machine = "other".into();
        assert!(p.observe(&elsewhere).is_empty());
        let mut wrong_source = frame_at(1, vec![("victim", "u1", 1.4)]);
        wrong_source.source = "top".into();
        assert!(p.observe(&wrong_source).is_empty());
        assert_eq!(p.statistic(), 0.0, "ignored frames never calibrate");
    }

    #[test]
    fn population_calibrates_mu_sigma_then_fires_at_the_confirmed_step() {
        // Warmup population 1.38/1.42/1.38/1.42: μ = 1.40, σ = 0.02. With
        // sigmas = 3 the tolerance band floors at 1.34.
        let mut p = Population::new("node", "victim", 4, 3.0, 2, "spare");
        assert_eq!(p.reference(), None, "not calibrated before warmup");
        for (t, ipc) in [(1, 1.38), (2, 1.42), (3, 1.38), (4, 1.42)] {
            assert!(p
                .observe(&frame_at(t, vec![("victim", "u1", ipc)]))
                .is_empty());
        }
        let (mean, sd) = p.reference().expect("calibrated after 4 samples");
        assert!((mean - 1.40).abs() < 1e-12, "μ = {mean}");
        assert!((sd - 0.02).abs() < 1e-12, "σ = {sd}");
        // In-band wobble (1.36 > 1.34) never starts a run.
        assert!(p
            .observe(&frame_at(5, vec![("victim", "u1", 1.36)]))
            .is_empty());
        assert_eq!(p.breach_run(), 0);
        // A step to 1.0 is out of population; confirm = 2 means the second
        // consecutive out-of-band sample — t=7, the change-point instant —
        // fires, not the first.
        assert!(p
            .observe(&frame_at(
                6,
                vec![("victim", "u1", 1.0), ("batch", "u2", 1.2)]
            ))
            .is_empty());
        assert_eq!(p.breach_run(), 1);
        let fired = p.observe(&frame_at(
            7,
            vec![("victim", "u1", 1.0), ("batch", "u2", 1.2)],
        ));
        assert_eq!(
            fired,
            vec![MigrationDecision {
                tag: "batch".to_string(),
                from: "node".to_string(),
                to: "spare".to_string(),
                mode: MigrationMode::Restart,
            }]
        );
        assert_eq!(p.breach_run(), 0, "firing resets the confirmation run");
    }

    #[test]
    fn population_recovery_resets_the_confirmation_run() {
        let mut p = Population::new("node", "victim", 2, 2.0, 2, "spare").skip(1);
        // Skip the ramp sample, calibrate on 1.4/1.4 (σ = 0): any sample
        // below μ is out of population.
        for (t, ipc) in [(1, 0.7), (2, 1.4), (3, 1.4)] {
            assert!(p
                .observe(&frame_at(t, vec![("victim", "u1", ipc)]))
                .is_empty());
        }
        // Outlier, recovery, outlier: the run never reaches confirm = 2.
        for (t, ipc) in [(4, 1.0), (5, 1.4), (6, 1.0)] {
            assert!(p
                .observe(&frame_at(
                    t,
                    vec![("victim", "u1", ipc), ("batch", "u2", 1.2)]
                ))
                .is_empty());
        }
        assert_eq!(p.breach_run(), 1);
        // The second consecutive outlier confirms the change-point.
        let fired = p.observe(&frame_at(
            7,
            vec![("victim", "u1", 1.0), ("batch", "u2", 1.2)],
        ));
        assert_eq!(fired.len(), 1);
    }

    /// A frame labelled as coming from `machine` (declaration index `idx`);
    /// rows are `(comm, user, ipc)` like [`frame_at`]'s, plus a `%CPU`.
    fn fleet_frame(
        machine: &str,
        idx: usize,
        t: u64,
        rows: Vec<(&str, &str, f64, f64)>,
    ) -> ClusterFrame {
        let cpus: Vec<f64> = rows.iter().map(|(_, _, _, cpu)| *cpu).collect();
        let mut cf = frame_at(
            t,
            rows.into_iter()
                .map(|(comm, user, ipc, _)| (comm, user, ipc))
                .collect(),
        );
        for (row, cpu) in cf.frame.rows.iter_mut().zip(cpus) {
            row.cpu_pct = cpu;
        }
        cf.machine = machine.into();
        cf.machine_index = idx;
        cf
    }

    #[test]
    fn least_loaded_picks_live_minimum_and_ties_break_on_machine_index() {
        let mut ll = LeastLoaded::new();
        assert_eq!(ll.pick("node-a"), None, "nothing observed yet");
        ll.observe(&fleet_frame(
            "node-a",
            0,
            1,
            vec![("job1", "u1", 1.2, 180.0), ("sys", "root", 1.0, 40.0)],
        ));
        ll.observe(&fleet_frame(
            "node-b",
            1,
            1,
            vec![("job2", "u2", 1.2, 90.0)],
        ));
        ll.observe(&fleet_frame(
            "node-c",
            2,
            1,
            vec![("job3", "u3", 1.2, 90.0)],
        ));
        // Root rows don't count toward load.
        assert_eq!(ll.load_of("node-a"), Some(180.0));
        // b and c tie at 90: the lower machine index wins, stably.
        assert_eq!(ll.pick("node-a"), Some("node-b".to_string()));
        // The source machine is excluded even when it is the minimum.
        assert_eq!(ll.pick("node-b"), Some("node-c".to_string()));
        // Loads are live: a newer frame replaces a machine's standing.
        ll.observe(&fleet_frame(
            "node-c",
            2,
            2,
            vec![("job3", "u3", 1.2, 10.0)],
        ));
        assert_eq!(ll.pick("node-a"), Some("node-c".to_string()));
    }

    #[test]
    fn balanced_reroutes_decisions_to_the_least_loaded_machine() {
        // IpcFloor aims at a fixed "spare", but the wrapper re-routes to
        // whatever machine the fleet currently loads least.
        let mut p = Balanced::new(IpcFloor::new(
            "node",
            "victim",
            1.0,
            SimDuration::ZERO,
            "spare",
        ));
        assert_eq!(p.name(), "ipc-floor+least-loaded");
        p.observe(&fleet_frame(
            "spare",
            1,
            1,
            vec![("busy", "u3", 1.2, 150.0)],
        ));
        p.observe(&fleet_frame("idle", 2, 1, vec![]));
        // Arm, then breach.
        assert!(p
            .observe(&fleet_frame(
                "node",
                0,
                1,
                vec![("victim", "u1", 1.4, 100.0)]
            ))
            .is_empty());
        let fired = p.observe(&fleet_frame(
            "node",
            0,
            2,
            vec![("victim", "u1", 0.5, 100.0), ("batch", "u2", 1.2, 100.0)],
        ));
        assert_eq!(fired.len(), 1);
        assert_eq!(
            fired[0].to, "idle",
            "destination comes from live load, not the detector's fixed relief"
        );
        assert_eq!(fired[0].tag, "batch");
    }
}
