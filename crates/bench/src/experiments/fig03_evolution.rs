//! **Figure 3** — the §3.1 use case: a biologists' evolutionary algorithm
//! in R whose matrices diverge to ±Inf/NaN. On Nehalem every x87 operation
//! on a non-finite operand takes a ~264-cycle micro-code assist, so IPC
//! collapses from ≈1 to ≈0.03 at the exact time step where the arithmetic
//! diverges — while `%CPU` stays at 100. Clipping the matrices (the paper's
//! fix) removes the collapse; on the PPC970, which has no assist behaviour,
//! the same run never collapses (Fig 3 (d)).

use tiptop_core::config::ScreenConfig;
use tiptop_machine::config::MachineConfig;
use tiptop_machine::time::SimDuration;
use tiptop_workloads::rlang::EvolutionAlgorithm;

use crate::experiments::drive_to_completion;
use crate::report::{PanelSet, Series, TableReport};

/// One monitored run of the evolutionary algorithm.
pub struct EvolutionRun {
    pub label: String,
    pub clipped: bool,
    /// Tiptop's IPC column over time.
    pub ipc: Series,
    /// Tiptop's `%ASS` column (FP assists per hundred instructions).
    pub assists: Series,
    /// First instant at which the tool sees assists firing (`None` when the
    /// run never diverges — the clipped fix and the PPC970).
    pub collapse_time: Option<f64>,
    /// Total run time in simulated seconds.
    pub wall: f64,
}

/// The three panels of the regenerated figure.
pub struct Fig03Result {
    pub runs: Vec<EvolutionRun>,
    /// Time step at which the matrix first contains non-finite values
    /// (property of the numerics, identical for both unclipped runs).
    pub divergence_step: Option<usize>,
    pub steps: usize,
}

/// Run the §3.1 scenario three ways: unclipped on Nehalem (the anomaly),
/// clipped on Nehalem (the fix), unclipped on PPC970 (no assists, no
/// collapse). `scale` compresses the per-step instruction budget (1.0 is
/// the paper's ≈4.6 h run; tests use ~0.001).
pub fn run(seed: u64, scale: f64) -> Fig03Result {
    let unclipped = EvolutionAlgorithm::paper(false, scale);
    let steps = unclipped.steps;
    let divergence_step = unclipped.divergence_step();
    let runs = vec![
        run_one(
            "Nehalem x87",
            MachineConfig::nehalem_w3550(),
            false,
            scale,
            seed,
        ),
        run_one(
            "Nehalem x87 clipped",
            MachineConfig::nehalem_w3550(),
            true,
            scale,
            seed + 1,
        ),
        run_one(
            "PPC970",
            MachineConfig::ppc970_machine(),
            false,
            scale,
            seed + 2,
        ),
    ];
    Fig03Result {
        runs,
        divergence_step,
        steps,
    }
}

fn run_one(label: &str, machine: MachineConfig, clip: bool, scale: f64, seed: u64) -> EvolutionRun {
    let algo = EvolutionAlgorithm::paper(clip, scale);
    // The §3.1 screen: the author added the `%ASS` column to tiptop to trace
    // IPC and FP assists simultaneously.
    let r = drive_to_completion(
        machine,
        seed,
        "R",
        algo.program(),
        ScreenConfig::fp_assist_screen(),
        SimDuration::from_millis(500),
    );
    let ipc = r.series("IPC", format!("{label} IPC"));
    let assists = r.series("%ASS", format!("{label} %ASS"));
    let collapse_time = assists
        .points
        .iter()
        .find(|(_, a)| *a > 1.0)
        .map(|(t, _)| *t);
    EvolutionRun {
        label: label.to_string(),
        clipped: clip,
        ipc,
        assists,
        collapse_time,
        wall: r.wall(),
    }
}

impl Fig03Result {
    pub fn run_for(&self, label: &str) -> &EvolutionRun {
        self.runs
            .iter()
            .find(|r| r.label == label)
            .expect("known run label")
    }

    /// The paper's headline: how much faster the whole run finishes once
    /// the matrices are clipped (§3.1 reports 2.3×).
    pub fn clip_speedup(&self) -> f64 {
        self.run_for("Nehalem x87").wall / self.run_for("Nehalem x87 clipped").wall
    }

    pub fn report(&self) -> String {
        let mut fig = PanelSet::new("Figure 3: R evolutionary algorithm, IPC over time");
        for r in &self.runs {
            fig.panel(&r.label, vec![r.ipc.clone(), r.assists.clone()]);
        }
        let mut out = fig.render(72, 12);
        let mut t = TableReport::new(
            format!(
                "divergence at step {:?} of {} (paper: 953 of 3327 samples)",
                self.divergence_step, self.steps
            ),
            &[
                "run",
                "collapse at (s)",
                "mean IPC",
                "final IPC",
                "wall (s)",
            ],
        );
        for r in &self.runs {
            t.row(vec![
                r.label.clone(),
                r.collapse_time
                    .map(|c| format!("{c:.1}"))
                    .unwrap_or("-".into()),
                format!("{:.2}", r.ipc.mean()),
                format!(
                    "{:.3}",
                    r.ipc.points.last().map(|(_, y)| *y).unwrap_or(f64::NAN)
                ),
                format!("{:.1}", r.wall),
            ]);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "clip speedup: {:.1}x (paper: 2.3x)\n",
            self.clip_speedup()
        ));
        out
    }
}
