//! Declarative experiment sessions: a [`Scenario`] assembles the machine,
//! the users, and *triggered workload events* (spawn at t, kill at t, spawn
//! when another job exits, ...); building it yields a [`Session`] that owns
//! the kernel, applies each event at its exact instant, and drives any set
//! of [`Monitor`](crate::monitor::Monitor)s — tiptop, `top`, Pin, or
//! several at once — through one loop.
//!
//! Every event carries a [`Trigger`]: [`Trigger::At`] fires at a scripted
//! absolute instant (the classic schedule — `spawn_at`, `kill_at`, ...),
//! while [`Trigger::AfterExit`] fires a configurable delay after another
//! tagged job's final incarnation exits (`spawn_after`, `kill_after`, ...),
//! turning the flat schedule into a dependency DAG. Dependency edges are
//! validated at build time by a Kahn topological sort — cycles, unknown
//! dependencies, and dependencies that can never complete are typed
//! [`DagError`]s.
//!
//! This replaces the seed's hand-rolled `Kernel::new` + `spawn` + `advance`
//! choreography that every experiment used to reassemble:
//!
//! ```
//! use tiptop_core::prelude::*;
//! use tiptop_kernel::prelude::*;
//! use tiptop_machine::prelude::*;
//!
//! let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
//!     .seed(7)
//!     .user(Uid(1), "alice")
//!     .spawn(
//!         "hog",
//!         SpawnSpec::new("hog", Uid(1), Program::endless(ExecProfile::builder("hog").build())),
//!     )
//!     .kill_at(SimTime::from_secs(5), "hog")
//!     .build()
//!     .unwrap();
//!
//! let mut tool = Tiptop::new(
//!     TiptopOptions::default().delay(SimDuration::from_secs(1)),
//!     ScreenConfig::default_screen(),
//! );
//! let frames = session.run(&mut tool, 6).unwrap();
//! assert!(frames[3].row_for_comm("hog").is_some(), "alive at t=4s");
//! assert!(frames[5].row_for_comm("hog").is_none(), "killed at t=5s");
//! ```
//!
//! A pipeline chains stages with `spawn_after` instead of guessing
//! instants:
//!
//! ```
//! use tiptop_core::prelude::*;
//! use tiptop_kernel::prelude::*;
//! use tiptop_machine::prelude::*;
//!
//! let profile = || ExecProfile::builder("stage").base_cpi(0.8).build();
//! let mut session = Scenario::new(MachineConfig::nehalem_w3550().noiseless())
//!     .user(Uid(1), "etl")
//!     .spawn("extract", SpawnSpec::new("extract", Uid(1), Program::single(profile(), 5_000_000)))
//!     .spawn_after(
//!         "extract",
//!         SimDuration::ZERO,
//!         "transform",
//!         SpawnSpec::new("transform", Uid(1), Program::single(profile(), 5_000_000)),
//!     )
//!     .build()
//!     .unwrap();
//! assert!(session.pid("transform").is_none(), "waits for extract to exit");
//! session.advance(SimDuration::from_secs(10)).unwrap();
//! assert!(session.pid("transform").is_some(), "spawned by extract's exit");
//! ```

mod builder;
mod errors;
mod events;
mod session;
pub(crate) mod validation;

pub use builder::Scenario;
pub use errors::{DagError, SessionError};
pub use events::{HandoffBoard, Trigger, WorkloadEvent};
pub use session::Session;

#[cfg(test)]
mod tests;
